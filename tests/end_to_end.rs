//! End-to-end integration: profile a workload, run scenarios under
//! every strategy, and check the paper's qualitative claims on a
//! reduced grid.

use jem::core::{run_scenario, Profile, Strategy};
use jem::sim::{Scenario, Situation};
use jem_apps::workload_by_name;

#[test]
fn fe_strategies_have_sane_relative_energies() {
    let w = workload_by_name("fe").unwrap();
    let profile = Profile::build(w.as_ref(), 42);

    let scenario = Scenario::paper(Situation::GoodDominant, &w.sizes(), 1).with_runs(30);
    let mut energies = Vec::new();
    for strategy in Strategy::ALL {
        let r = run_scenario(w.as_ref(), &profile, &scenario, strategy);
        assert_eq!(r.invocations, 30);
        assert!(r.total_energy.nanojoules() > 0.0, "{strategy}");
        energies.push((strategy, r.total_energy));
        println!(
            "fe/{strategy}: total {} | per-inv {}",
            r.total_energy,
            r.mean_energy()
        );
    }

    let get = |s: Strategy| {
        energies
            .iter()
            .find(|(st, _)| *st == s)
            .map(|(_, e)| *e)
            .unwrap()
    };

    // Compiled beats interpreted for 30 invocations of a hot method.
    assert!(
        get(Strategy::Local1) < get(Strategy::Interpreter),
        "L1 {} !< I {}",
        get(Strategy::Local1),
        get(Strategy::Interpreter)
    );

    // The adaptive strategy never loses badly to the best static one
    // (paper: it *wins*; we allow a small tolerance on tiny grids).
    let best_static = Strategy::STATIC
        .iter()
        .map(|&s| get(s))
        .fold(get(Strategy::Remote), |a, b| if b < a { b } else { a });
    let al = get(Strategy::AdaptiveLocal);
    assert!(
        al.nanojoules() <= best_static.nanojoules() * 1.10,
        "AL {al} should be within 10% of best static {best_static}"
    );
}

#[test]
fn adaptive_results_match_static_results() {
    // Whatever path executes the method, the computed values must be
    // identical (differential correctness of the whole framework).
    let w = workload_by_name("sort").unwrap();
    let profile = Profile::build(w.as_ref(), 7);
    let scenario = Scenario::paper(Situation::Uniform, &w.sizes(), 3).with_runs(8);

    for strategy in Strategy::ALL {
        let r = run_scenario(w.as_ref(), &profile, &scenario, strategy);
        // run_scenario panics internally on VmError; reaching here with
        // the right count is the check.
        assert_eq!(r.reports.len(), 8, "{strategy}");
    }
}

#[test]
fn remote_wins_in_good_channel_for_compute_dense_small_io() {
    // fe ships two floats + an int and gets one float back, but burns
    // hundreds of thousands of interpreted instructions: the classic
    // offloading win. In a Class 4 channel, Remote must beat
    // Interpreter.
    let w = workload_by_name("fe").unwrap();
    let profile = Profile::build(w.as_ref(), 42);
    let scenario = Scenario {
        situation: Situation::GoodDominant,
        channel: jem::radio::ChannelProcess::Fixed(jem::radio::ChannelClass::C4),
        sizes: jem::sim::SizeDist::Fixed(4096),
        runs: 10,
        seed: 5,
        faults: jem::sim::FaultSpec::NONE,
    };
    let remote = run_scenario(w.as_ref(), &profile, &scenario, Strategy::Remote);
    let interp = run_scenario(w.as_ref(), &profile, &scenario, Strategy::Interpreter);
    assert!(
        remote.total_energy < interp.total_energy,
        "remote {} !< interp {}",
        remote.total_energy,
        interp.total_energy
    );
}

#[test]
fn remote_loses_in_poor_channel_with_heavy_io() {
    // mf ships a whole image both ways; in a Class 1 channel the PA at
    // 5.88 W makes that a terrible trade against local native code.
    let w = workload_by_name("mf").unwrap();
    let profile = Profile::build(w.as_ref(), 42);
    let scenario = Scenario {
        situation: Situation::PoorDominant,
        channel: jem::radio::ChannelProcess::Fixed(jem::radio::ChannelClass::C1),
        sizes: jem::sim::SizeDist::Fixed(32),
        runs: 10,
        seed: 5,
        faults: jem::sim::FaultSpec::NONE,
    };
    let remote = run_scenario(w.as_ref(), &profile, &scenario, Strategy::Remote);
    let l2 = run_scenario(w.as_ref(), &profile, &scenario, Strategy::Local2);
    assert!(
        l2.total_energy < remote.total_energy,
        "L2 {} !< remote {}",
        l2.total_energy,
        remote.total_energy
    );
}

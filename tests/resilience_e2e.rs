//! End-to-end resilience acceptance: under bursty response loss, AA
//! with the default retry/breaker policy must strictly beat naive AA
//! (timeout once, fall back, try again next invocation), and degraded
//! runs must stay reproducible bit-for-bit.

use std::sync::OnceLock;

use jem::core::{run_scenario_with, Profile, ResilienceConfig, Strategy};
use jem::sim::{Scenario, Situation};
use jem_apps::workload_by_name;

/// fe is the offload-friendly workload (heavy compute, tiny payloads):
/// AA keeps choosing remote execution, so it actually meets the
/// injected faults. The profile is expensive; share it across tests.
fn fe_profile() -> &'static Profile {
    static PROFILE: OnceLock<Profile> = OnceLock::new();
    PROFILE.get_or_init(|| {
        let w = workload_by_name("fe").unwrap();
        Profile::build(w.as_ref(), 42)
    })
}

#[test]
fn aa_with_breaker_beats_naive_aa_under_bursty_loss() {
    let w = workload_by_name("fe").unwrap();
    let profile = fe_profile();
    for loss_bad in [0.5, 0.75] {
        let scenario = Scenario::paper_degraded(Situation::GoodDominant, &w.sizes(), 7, loss_bad)
            .with_runs(300);
        let resilient = run_scenario_with(
            w.as_ref(),
            profile,
            &scenario,
            Strategy::AdaptiveAdaptive,
            &ResilienceConfig::default(),
        )
        .expect("scenario run failed");
        let naive = run_scenario_with(
            w.as_ref(),
            profile,
            &scenario,
            Strategy::AdaptiveAdaptive,
            &ResilienceConfig::naive(),
        )
        .expect("scenario run failed");
        assert!(
            resilient.total_energy < naive.total_energy,
            "loss_bad {loss_bad}: resilient {} !< naive {}",
            resilient.total_energy,
            naive.total_energy
        );
        // The win comes from the breaker actually engaging …
        assert!(
            resilient.stats.breaker_trips > 0,
            "loss_bad {loss_bad}: breaker never tripped"
        );
        // … and from burning less energy on doomed remote attempts.
        assert!(
            resilient.stats.wasted_energy < naive.stats.wasted_energy,
            "loss_bad {loss_bad}: resilient waste {} !< naive waste {}",
            resilient.stats.wasted_energy,
            naive.stats.wasted_energy
        );
    }
}

#[test]
fn degraded_runs_are_reproducible_bit_for_bit() {
    let w = workload_by_name("fe").unwrap();
    let profile = fe_profile();
    let scenario =
        Scenario::paper_degraded(Situation::GoodDominant, &w.sizes(), 7, 0.5).with_runs(300);
    let run = |resilience: &ResilienceConfig| {
        run_scenario_with(
            w.as_ref(),
            profile,
            &scenario,
            Strategy::AdaptiveAdaptive,
            resilience,
        )
        .expect("scenario run failed")
    };
    for cfg in [ResilienceConfig::default(), ResilienceConfig::naive()] {
        let a = run(&cfg);
        let b = run(&cfg);
        assert_eq!(
            a.total_energy.nanojoules().to_bits(),
            b.total_energy.nanojoules().to_bits(),
            "identical seeds must give identical energy totals"
        );
        assert_eq!(format!("{:?}", a.stats), format!("{:?}", b.stats));
    }
}

//! Reduced-scale assertions of the paper's figure shapes (the full
//! grids live in `jem-bench`; these run in the ordinary test suite).

use jem::core::{run_scenario, Profile, Strategy};
use jem::jvm::OptLevel;
use jem::radio::{ChannelClass, ChannelProcess};
use jem::sim::{Scenario, Situation, SizeDist};
use jem_apps::workload_by_name;

fn fixed_scenario(size: u32, class: ChannelClass, runs: usize) -> Scenario {
    Scenario {
        situation: Situation::Uniform,
        channel: ChannelProcess::Fixed(class),
        sizes: SizeDist::Fixed(size),
        runs,
        seed: 7,
        faults: jem::sim::FaultSpec::NONE,
    }
}

/// Fig 6, small input: one cold invocation — remote in a good channel
/// and plain interpretation both beat every compile-first strategy.
#[test]
fn fig6_small_input_ordering() {
    let w = workload_by_name("hpf").unwrap();
    let p = Profile::build(w.as_ref(), 42);
    let energy = |s: Strategy, c: ChannelClass| {
        run_scenario(w.as_ref(), &p, &fixed_scenario(8, c, 1), s).total_energy
    };
    let r4 = energy(Strategy::Remote, ChannelClass::C4);
    let i = energy(Strategy::Interpreter, ChannelClass::C4);
    let l1 = energy(Strategy::Local1, ChannelClass::C4);
    let l2 = energy(Strategy::Local2, ChannelClass::C4);
    assert!(r4 < i, "R(C4) {r4} !< I {i}");
    assert!(i < l1, "I {i} !< L1 {l1}");
    assert!(i < l2, "I {i} !< L2 {l2}");
    // Remote cost rises monotonically as the channel degrades.
    let r3 = energy(Strategy::Remote, ChannelClass::C3);
    let r2 = energy(Strategy::Remote, ChannelClass::C2);
    let r1 = energy(Strategy::Remote, ChannelClass::C1);
    assert!(r4 < r3 && r3 < r2 && r2 < r1);
}

/// Fig 6, large input: L2 beats both L1 and remote execution at C4
/// (the paper's 512x512 column), and interpretation is the worst
/// local choice.
#[test]
fn fig6_large_input_ordering() {
    let w = workload_by_name("hpf").unwrap();
    let p = Profile::build(w.as_ref(), 42);
    let energy = |s: Strategy| {
        run_scenario(w.as_ref(), &p, &fixed_scenario(128, ChannelClass::C4, 1), s).total_energy
    };
    let r = energy(Strategy::Remote);
    let i = energy(Strategy::Interpreter);
    let l1 = energy(Strategy::Local1);
    let l2 = energy(Strategy::Local2);
    assert!(l2 < l1, "L2 {l2} !< L1 {l1}");
    assert!(l2 < r, "L2 {l2} !< R {r}");
    assert!(l1 < i, "L1 {l1} !< I {i}");
}

/// Fig 8 shapes: local compile energy grows strictly with the level;
/// remote compilation gets cheaper as the channel improves; and for a
/// compile-heavy app, downloading beats local compilation in a good
/// channel (the paper's db observation).
#[test]
fn fig8_compilation_shapes() {
    let w = workload_by_name("db").unwrap();
    let p = Profile::build(w.as_ref(), 42);
    let local = |l: OptLevel| p.e_compile_local(l, false);
    assert!(local(OptLevel::L1) < local(OptLevel::L2));
    assert!(local(OptLevel::L2) < local(OptLevel::L3));
    let remote = |c: ChannelClass| p.e_remote_compile(OptLevel::L2, c);
    assert!(remote(ChannelClass::C4) < remote(ChannelClass::C3));
    assert!(remote(ChannelClass::C3) < remote(ChannelClass::C2));
    assert!(remote(ChannelClass::C2) < remote(ChannelClass::C1));
    assert!(
        remote(ChannelClass::C4) < local(OptLevel::L2),
        "db: download at C4 should beat compiling locally"
    );
}

/// Fig 7 mechanism, distilled: for a compute-dense method with tiny
/// I/O (fe), the adaptive strategies exploit remote execution and
/// beat the best static local strategy over a run.
#[test]
fn fig7_adaptive_wins_on_offloadable_workload() {
    let w = workload_by_name("fe").unwrap();
    let p = Profile::build(w.as_ref(), 42);
    let scenario = Scenario::paper(Situation::GoodDominant, &w.sizes(), 3).with_runs(60);
    let e = |s: Strategy| run_scenario(w.as_ref(), &p, &scenario, s).total_energy;
    let best_static = [
        e(Strategy::Remote),
        e(Strategy::Interpreter),
        e(Strategy::Local1),
        e(Strategy::Local2),
        e(Strategy::Local3),
    ]
    .into_iter()
    .reduce(|a, b| if b < a { b } else { a })
    .unwrap();
    let aa = e(Strategy::AdaptiveAdaptive);
    assert!(
        aa.nanojoules() <= best_static.nanojoules() * 1.05,
        "AA {aa} should be within 5% of (or beat) best static {best_static}"
    );
}

/// The AA refinement never loses to AL (it has a superset of choices
/// and the same decision rule).
#[test]
fn aa_no_worse_than_al() {
    for name in ["fe", "db"] {
        let w = workload_by_name(name).unwrap();
        let p = Profile::build(w.as_ref(), 42);
        let scenario = Scenario::paper(Situation::Uniform, &w.sizes(), 5).with_runs(50);
        let al = run_scenario(w.as_ref(), &p, &scenario, Strategy::AdaptiveLocal).total_energy;
        let aa = run_scenario(w.as_ref(), &p, &scenario, Strategy::AdaptiveAdaptive).total_energy;
        assert!(
            aa.nanojoules() <= al.nanojoules() * 1.01,
            "{name}: AA {aa} worse than AL {al}"
        );
    }
}

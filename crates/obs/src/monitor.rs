//! Online invariant monitors: streaming checks that run *while* the
//! simulation executes, not after it.
//!
//! A [`MonitorSink`] tees any [`TraceSink`]: every event passes
//! through unchanged and is simultaneously evaluated against a set of
//! streaming invariants. Violations inject structured
//! [`TraceEventKind::Alert`] events into the trace (zero energy delta,
//! so the conservation ledger stays intact) and accumulate into a
//! final [`HealthReport`].
//!
//! Invariants:
//!
//! * **conservation** — per invocation, the event deltas after
//!   `invocation-start` must telescope to the `invocation-end` energy
//!   (the runtime checkpoints *after* emitting the start event, so the
//!   start delta belongs to the previous invocation's tail);
//! * **negative-delta** — no event may carry a negative component
//!   delta: cumulative meters are monotone, so a correctly-derived
//!   delta can never go below zero;
//! * **retry-storm** — retries across a sliding invocation window
//!   above a threshold;
//! * **breaker-flap** — breaker transitions across a sliding
//!   invocation window above a threshold;
//! * **predictor-regret** — once enough decisions have been observed,
//!   the running mean relative error between the chosen candidate's
//!   predicted energy and the invocation's actual energy must stay
//!   under a threshold (only invocations that executed in the chosen
//!   mode count — fallbacks measure resilience, not prediction);
//! * **regret-trend** — the series-driven twin of predictor-regret:
//!   compares the mean relative prediction error of the most recent
//!   decision window against the window before it and fires when the
//!   error is *worsening* past a factor — a converged predictor that
//!   starts diverging (channel drift, faults) trips this long before
//!   the running mean crosses the absolute regret threshold;
//! * **energy-rate-anomaly** — tracks the per-invocation energy rate
//!   (invocation energy over invocation sim-time, the same derived
//!   series the `.jts` timeline exports) across a sliding window and
//!   fires when one invocation's rate jumps past a multiple of the
//!   window mean — the signature of retry storms burning PA power or
//!   a mispredicted offload under a degraded channel.
//!
//! Monitoring draws nothing from the RNG and never mutates the
//! simulation: monitored and unmonitored runs are bit-identical in
//! results, and on an alert-free run the monitored *trace* is
//! byte-identical too (sequence numbers are only rewritten after the
//! first injected alert). Both properties are enforced by tests in
//! `crates/core`.

use crate::json::Json;
use crate::trace::{TraceEvent, TraceEventKind, TraceSink};
use jem_energy::EnergyBreakdown;
use std::collections::{BTreeMap, VecDeque};

/// Thresholds for the streaming invariants. Defaults are lenient
/// enough that clean paper-scenario runs never alert (zero retries,
/// zero transitions, converged predictor) while real pathologies still
/// fire; tighten them for watchdog tests.
#[derive(Debug, Clone)]
pub struct MonitorConfig {
    /// Relative tolerance of the per-invocation conservation check
    /// (absorbs only float summation-order noise).
    pub conservation_rel_tol: f64,
    /// Sliding window (in invocations) of the retry-storm watchdog.
    pub retry_window: u64,
    /// Retries tolerated within the window before alerting.
    pub retry_max: u64,
    /// Sliding window (in invocations) of the breaker-flap watchdog.
    pub flap_window: u64,
    /// Breaker transitions tolerated within the window.
    pub flap_max: u64,
    /// Decisions observed before the regret check arms.
    pub regret_min_decisions: u64,
    /// Maximum tolerated mean relative error of chosen-candidate
    /// predictions.
    pub regret_mean_threshold: f64,
    /// Followed decisions per comparison window of the regret-trend
    /// watchdog (it compares two adjacent windows of this size).
    pub trend_window: u64,
    /// Fire when the recent window's mean relative error exceeds the
    /// prior window's mean by this factor …
    pub trend_factor: f64,
    /// … and is at least this large in absolute terms (a converged
    /// predictor tripling a near-zero error is not a pathology).
    pub trend_min_err: f64,
    /// Sliding window (in completed invocations) of the
    /// energy-rate-anomaly watchdog.
    pub rate_window: u64,
    /// Fire when an invocation's energy rate (nJ/ns) exceeds the
    /// window mean by this factor.
    pub rate_factor: f64,
}

impl Default for MonitorConfig {
    fn default() -> MonitorConfig {
        MonitorConfig {
            conservation_rel_tol: 1e-6,
            retry_window: 50,
            retry_max: 25,
            flap_window: 50,
            flap_max: 12,
            regret_min_decisions: 50,
            regret_mean_threshold: 1.0,
            trend_window: 25,
            trend_factor: 4.0,
            trend_min_err: 0.5,
            rate_window: 30,
            rate_factor: 8.0,
        }
    }
}

/// One fired alert, as recorded in the health report.
#[derive(Debug, Clone, PartialEq)]
pub struct AlertRecord {
    /// Which invariant fired.
    pub monitor: String,
    /// "warn" or "critical".
    pub severity: String,
    /// Human-readable diagnostic.
    pub message: String,
    /// Invocation the triggering event belonged to.
    pub invocation: u64,
    /// Sim-time of the triggering event (ns).
    pub at_ns: f64,
}

/// Alerts retained verbatim in the report; beyond this only counts
/// grow, so a pathological run cannot balloon the report.
const REPORT_ALERT_CAP: usize = 64;

/// The end-of-run verdict of a monitored stream.
#[derive(Debug, Clone, Default)]
pub struct HealthReport {
    /// Fired alerts, stream order, capped at [`REPORT_ALERT_CAP`].
    pub alerts: Vec<AlertRecord>,
    /// Total alerts per monitor (uncapped).
    pub counts: BTreeMap<String, u64>,
    /// Total alerts fired (uncapped).
    pub total_alerts: u64,
    /// Events observed.
    pub events: u64,
    /// Invocations observed.
    pub invocations: u64,
    /// Shards observed.
    pub shards: u64,
}

impl HealthReport {
    /// Whether the run finished without a single alert.
    pub fn healthy(&self) -> bool {
        self.total_alerts == 0
    }

    /// Deterministic text rendering (CI greps the first line).
    pub fn render_text(&self) -> String {
        let mut lines = Vec::new();
        if self.healthy() {
            lines.push(format!(
                "health: OK — 0 alerts over {} invocations / {} events / {} shards",
                self.invocations, self.events, self.shards
            ));
        } else {
            lines.push(format!(
                "health: ALERT — {} alerts over {} invocations / {} events / {} shards",
                self.total_alerts, self.invocations, self.events, self.shards
            ));
            for (monitor, n) in &self.counts {
                lines.push(format!("  {monitor}: {n}"));
            }
            for a in &self.alerts {
                lines.push(format!(
                    "  [{}] {} @ invocation {} t={:.1}ns: {}",
                    a.severity, a.monitor, a.invocation, a.at_ns, a.message
                ));
            }
            if self.total_alerts as usize > self.alerts.len() {
                lines.push(format!(
                    "  … and {} more alerts",
                    self.total_alerts as usize - self.alerts.len()
                ));
            }
        }
        lines.join("\n")
    }

    /// Machine-readable report document.
    pub fn to_json(&self) -> Json {
        let mut counts = Json::object();
        for (monitor, n) in &self.counts {
            counts = counts.with(monitor.as_str(), *n);
        }
        let alerts: Vec<Json> = self
            .alerts
            .iter()
            .map(|a| {
                Json::object()
                    .with("monitor", a.monitor.as_str())
                    .with("severity", a.severity.as_str())
                    .with("message", a.message.as_str())
                    .with("invocation", a.invocation)
                    .with("t_ns", a.at_ns)
            })
            .collect();
        Json::object()
            .with("schema", "jem-health/v1")
            .with("healthy", self.healthy())
            .with("total_alerts", self.total_alerts)
            .with("events", self.events)
            .with("invocations", self.invocations)
            .with("shards", self.shards)
            .with("counts", counts)
            .with("alerts", Json::Arr(alerts))
    }
}

/// Per-shard regret bookkeeping.
#[derive(Debug, Clone, Default)]
struct RegretState {
    /// Chosen mode + predicted nJ of the most recent decision.
    pending: Option<(String, f64)>,
    decisions: u64,
    rel_err_sum: f64,
    fired: bool,
}

/// The pure streaming evaluator: feed events, collect alerts. Holds a
/// few counters and two sliding windows — O(window) memory, no event
/// buffering.
#[derive(Debug)]
pub struct Monitor {
    config: MonitorConfig,
    report: HealthReport,
    /// Conservation accumulator: Some(sum) once the current
    /// invocation's start has been seen.
    inv_sum_nj: Option<f64>,
    current_invocation: u64,
    /// (invocation, retries) per recent invocation with retries.
    retry_window: VecDeque<(u64, u64)>,
    retry_cooldown_until: u64,
    /// Invocation numbers of recent breaker transitions.
    flap_window: VecDeque<u64>,
    flap_cooldown_until: u64,
    regret: RegretState,
    /// Relative errors of recent followed decisions (regret-trend),
    /// capped at two comparison windows.
    trend_errs: VecDeque<f64>,
    trend_cooldown_until: u64,
    /// Energy rates (nJ/ns) of recent completed invocations.
    rate_window: VecDeque<f64>,
    rate_cooldown_until: u64,
}

impl Monitor {
    /// A monitor with the given thresholds.
    pub fn new(config: MonitorConfig) -> Monitor {
        Monitor {
            config,
            report: HealthReport::default(),
            inv_sum_nj: None,
            current_invocation: 0,
            retry_window: VecDeque::new(),
            retry_cooldown_until: 0,
            flap_window: VecDeque::new(),
            flap_cooldown_until: 0,
            regret: RegretState::default(),
            trend_errs: VecDeque::new(),
            trend_cooldown_until: 0,
            rate_window: VecDeque::new(),
            rate_cooldown_until: 0,
        }
    }

    /// Reset per-run state at a shard boundary (each shard is an
    /// independent run; report totals keep accumulating).
    pub fn begin_shard(&mut self) {
        self.report.shards += 1;
        self.inv_sum_nj = None;
        self.current_invocation = 0;
        self.retry_window.clear();
        self.retry_cooldown_until = 0;
        self.flap_window.clear();
        self.flap_cooldown_until = 0;
        self.regret = RegretState::default();
        self.trend_errs.clear();
        self.trend_cooldown_until = 0;
        self.rate_window.clear();
        self.rate_cooldown_until = 0;
    }

    /// Evaluate one event; returns the alerts it fired (usually none).
    pub fn observe(&mut self, ev: &TraceEvent) -> Vec<AlertRecord> {
        if self.report.shards == 0 {
            self.begin_shard();
        }
        self.report.events += 1;
        let mut alerts = Vec::new();
        if ev.invocation != self.current_invocation {
            self.current_invocation = ev.invocation;
            self.report.invocations += 1;
        }
        // Non-negative component deltas: exact check — cumulative
        // meters are monotone, so any negative delta is a real bug.
        for (c, e) in ev.delta.iter() {
            if e.nanojoules() < 0.0 {
                alerts.push(self.fire(
                    ev,
                    "negative-delta",
                    "critical",
                    format!(
                        "component '{}' delta {:.6} nJ < 0 at event kind '{}'",
                        c.name(),
                        e.nanojoules(),
                        ev.kind.name()
                    ),
                ));
            }
        }
        if let Some(sum) = self.inv_sum_nj.as_mut() {
            *sum += ev.delta.total().nanojoules();
        }
        match &ev.kind {
            TraceEventKind::InvocationStart { .. } => {
                // The runtime checkpoints after emitting this event,
                // so the conservation sum starts here at zero.
                self.inv_sum_nj = Some(0.0);
            }
            TraceEventKind::DecisionEvaluated {
                interpret_nj,
                remote_nj,
                local_nj,
                chosen,
                ..
            } => {
                let predicted = match chosen.as_str() {
                    "interpret" => Some(*interpret_nj),
                    "remote" => Some(*remote_nj),
                    "local/L1" => Some(local_nj[0]),
                    "local/L2" => Some(local_nj[1]),
                    "local/L3" => Some(local_nj[2]),
                    _ => None,
                };
                if let Some(p) = predicted {
                    self.regret.pending = Some((chosen.clone(), p));
                }
            }
            TraceEventKind::RetryAttempt { .. } => {
                match self.retry_window.back_mut() {
                    Some((inv, n)) if *inv == ev.invocation => *n += 1,
                    _ => self.retry_window.push_back((ev.invocation, 1)),
                }
                while let Some(&(inv, _)) = self.retry_window.front() {
                    if inv + self.config.retry_window <= ev.invocation {
                        self.retry_window.pop_front();
                    } else {
                        break;
                    }
                }
                let total: u64 = self.retry_window.iter().map(|&(_, n)| n).sum();
                if total > self.config.retry_max && ev.invocation >= self.retry_cooldown_until {
                    // One alert per window span, not per retry.
                    self.retry_cooldown_until = ev.invocation + self.config.retry_window;
                    alerts.push(self.fire(
                        ev,
                        "retry-storm",
                        "warn",
                        format!(
                            "{} retries within {} invocations (max {})",
                            total, self.config.retry_window, self.config.retry_max
                        ),
                    ));
                }
            }
            TraceEventKind::BreakerTransition { from, to } => {
                self.flap_window.push_back(ev.invocation);
                while let Some(&inv) = self.flap_window.front() {
                    if inv + self.config.flap_window <= ev.invocation {
                        self.flap_window.pop_front();
                    } else {
                        break;
                    }
                }
                let total = self.flap_window.len() as u64;
                if total > self.config.flap_max && ev.invocation >= self.flap_cooldown_until {
                    self.flap_cooldown_until = ev.invocation + self.config.flap_window;
                    alerts.push(self.fire(
                        ev,
                        "breaker-flap",
                        "warn",
                        format!(
                            "{} breaker transitions ({from}->{to} latest) within {} invocations (max {})",
                            total, self.config.flap_window, self.config.flap_max
                        ),
                    ));
                }
            }
            TraceEventKind::InvocationEnd {
                mode, energy, time, ..
            } => {
                if let Some(sum) = self.inv_sum_nj.take() {
                    let want = energy.nanojoules();
                    let tol = self.config.conservation_rel_tol * want.abs().max(1.0);
                    if (sum - want).abs() > tol {
                        alerts.push(self.fire(
                            ev,
                            "conservation",
                            "critical",
                            format!(
                                "invocation deltas sum to {sum:.6} nJ but invocation-end declares {want:.6} nJ (tol {tol:.3e})"
                            ),
                        ));
                    }
                }
                if let Some((chosen, predicted)) = self.regret.pending.take() {
                    // Only score decisions the runtime actually
                    // followed — a fallback measures resilience.
                    if chosen == *mode {
                        let actual = energy.nanojoules();
                        let rel_err = (predicted - actual).abs() / actual.abs().max(1.0);
                        self.regret.decisions += 1;
                        self.regret.rel_err_sum += rel_err;
                        let mean = self.regret.rel_err_sum / self.regret.decisions as f64;
                        if self.regret.decisions >= self.config.regret_min_decisions
                            && mean > self.config.regret_mean_threshold
                            && !self.regret.fired
                        {
                            self.regret.fired = true;
                            alerts.push(self.fire(
                                ev,
                                "predictor-regret",
                                "warn",
                                format!(
                                    "mean relative prediction error {:.3} over {} followed decisions (max {:.3})",
                                    mean, self.regret.decisions, self.config.regret_mean_threshold
                                ),
                            ));
                        }
                        // Regret trend: adjacent-window comparison of
                        // the same error series the timeline exports.
                        let w = self.config.trend_window as usize;
                        if w > 0 {
                            self.trend_errs.push_back(rel_err);
                            while self.trend_errs.len() > 2 * w {
                                self.trend_errs.pop_front();
                            }
                            if self.trend_errs.len() == 2 * w
                                && ev.invocation >= self.trend_cooldown_until
                            {
                                let prior = self.trend_errs.iter().take(w).sum::<f64>() / w as f64;
                                let recent = self.trend_errs.iter().skip(w).sum::<f64>() / w as f64;
                                if recent > self.config.trend_min_err
                                    && recent > self.config.trend_factor * prior
                                {
                                    self.trend_cooldown_until =
                                        ev.invocation + self.config.trend_window;
                                    alerts.push(self.fire(
                                        ev,
                                        "regret-trend",
                                        "warn",
                                        format!(
                                            "mean relative prediction error rose from {prior:.3} to {recent:.3} \
                                             across adjacent {w}-decision windows (max factor {:.1})",
                                            self.config.trend_factor
                                        ),
                                    ));
                                }
                            }
                        }
                    }
                }
                // Energy-rate anomaly: per-invocation energy rate
                // (nJ/ns ≡ W) against the sliding-window mean.
                let t_ns = time.nanos();
                let w = self.config.rate_window as usize;
                if t_ns > 0.0 && w > 0 {
                    let rate = energy.nanojoules() / t_ns;
                    if self.rate_window.len() >= w && ev.invocation >= self.rate_cooldown_until {
                        let mean =
                            self.rate_window.iter().sum::<f64>() / self.rate_window.len() as f64;
                        if mean > 0.0 && rate > self.config.rate_factor * mean {
                            self.rate_cooldown_until = ev.invocation + self.config.rate_window;
                            alerts.push(self.fire(
                                ev,
                                "energy-rate-anomaly",
                                "warn",
                                format!(
                                    "invocation energy rate {rate:.6} nJ/ns is {:.1}x the \
                                     {w}-invocation mean {mean:.6} (max factor {:.1})",
                                    rate / mean,
                                    self.config.rate_factor
                                ),
                            ));
                        }
                    }
                    self.rate_window.push_back(rate);
                    while self.rate_window.len() > w {
                        self.rate_window.pop_front();
                    }
                }
            }
            _ => {}
        }
        alerts
    }

    fn fire(
        &mut self,
        ev: &TraceEvent,
        monitor: &str,
        severity: &str,
        message: String,
    ) -> AlertRecord {
        let record = AlertRecord {
            monitor: monitor.to_string(),
            severity: severity.to_string(),
            message,
            invocation: ev.invocation,
            at_ns: ev.at.nanos(),
        };
        self.report.total_alerts += 1;
        *self.report.counts.entry(monitor.to_string()).or_default() += 1;
        if self.report.alerts.len() < REPORT_ALERT_CAP {
            self.report.alerts.push(record.clone());
        }
        record
    }

    /// Consume the monitor, yielding the final report.
    pub fn finish(self) -> HealthReport {
        self.report
    }

    /// Snapshot the report so far without consuming the monitor — the
    /// live `/health` endpoint polls this mid-run.
    pub fn report(&self) -> HealthReport {
        self.report.clone()
    }
}

/// The sink-agnostic tee core: forwards events to any sink, injecting
/// alert events after their trigger. Sequence numbers are passed
/// through untouched until the first alert of a shard; after that,
/// subsequent events shift up so `seq` stays dense and
/// shard-detection (`seq` restart) still works. On an alert-free run
/// the output stream is byte-identical to the input.
#[derive(Debug)]
pub struct MonitorTee {
    monitor: Monitor,
    prev_in_seq: Option<u64>,
    seq_offset: u64,
}

impl MonitorTee {
    /// A tee running `config`'s invariants.
    pub fn new(config: MonitorConfig) -> MonitorTee {
        MonitorTee {
            monitor: Monitor::new(config),
            prev_in_seq: None,
            seq_offset: 0,
        }
    }

    /// Signal an explicit shard boundary (parallel sweeps whose cells
    /// each restart `seq` at 0 get this automatically).
    pub fn begin_shard(&mut self) {
        self.monitor.begin_shard();
        self.prev_in_seq = None;
        self.seq_offset = 0;
    }

    /// Observe `ev`, forward it (and any fired alerts) to `out`.
    pub fn process(&mut self, ev: TraceEvent, out: &mut dyn TraceSink) {
        if self.prev_in_seq.is_some_and(|prev| ev.seq <= prev) {
            self.begin_shard();
        }
        self.prev_in_seq = Some(ev.seq);
        let alerts = self.monitor.observe(&ev);
        let base_seq = ev.seq + self.seq_offset;
        let (invocation, ordinal, at) = (ev.invocation, ev.ordinal, ev.at);
        let mut forwarded = ev;
        forwarded.seq = base_seq;
        out.record(forwarded);
        for (i, alert) in alerts.iter().enumerate() {
            out.record(TraceEvent {
                seq: base_seq + 1 + i as u64,
                invocation,
                ordinal: ordinal.saturating_add(1),
                at,
                delta: EnergyBreakdown::new(),
                kind: TraceEventKind::Alert {
                    monitor: alert.monitor.clone(),
                    severity: alert.severity.clone(),
                    message: alert.message.clone(),
                },
            });
        }
        self.seq_offset += alerts.len() as u64;
    }

    /// Finish monitoring and yield the health report.
    pub fn finish(self) -> HealthReport {
        self.monitor.finish()
    }

    /// Snapshot the report so far without consuming the tee.
    pub fn report(&self) -> HealthReport {
        self.monitor.report()
    }
}

/// A [`TraceSink`] adapter over [`MonitorTee`]: wrap any sink, run a
/// traced scenario against it, then call [`MonitorSink::finish`].
pub struct MonitorSink<'a> {
    tee: MonitorTee,
    inner: &'a mut dyn TraceSink,
}

impl<'a> MonitorSink<'a> {
    /// Monitor `inner` with `config`'s thresholds.
    pub fn new(inner: &'a mut dyn TraceSink, config: MonitorConfig) -> MonitorSink<'a> {
        MonitorSink {
            tee: MonitorTee::new(config),
            inner,
        }
    }

    /// Finish monitoring and yield the health report.
    pub fn finish(self) -> HealthReport {
        self.tee.finish()
    }
}

impl TraceSink for MonitorSink<'_> {
    fn enabled(&self) -> bool {
        self.inner.enabled()
    }
    fn record(&mut self, event: TraceEvent) {
        self.tee.process(event, self.inner);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::RingSink;
    use jem_energy::{Component, Energy, SimTime};

    fn delta(c: Component, nj: f64) -> EnergyBreakdown {
        let mut b = EnergyBreakdown::new();
        b.charge(c, Energy::from_nanojoules(nj));
        b
    }

    fn ev(
        seq: u64,
        invocation: u64,
        ordinal: u64,
        d: EnergyBreakdown,
        kind: TraceEventKind,
    ) -> TraceEvent {
        TraceEvent {
            seq,
            invocation,
            ordinal,
            at: SimTime::from_nanos(seq as f64 * 10.0),
            delta: d,
            kind,
        }
    }

    fn start(seq: u64, invocation: u64) -> TraceEvent {
        ev(
            seq,
            invocation,
            0,
            delta(Component::Core, 1.0),
            TraceEventKind::InvocationStart {
                strategy: "AA".into(),
                method: "fe::Main.integrate".into(),
                size: 64,
                true_class: "C3".into(),
                chosen_class: "C3".into(),
            },
        )
    }

    fn end(seq: u64, invocation: u64, ordinal: u64, core_nj: f64, declared_nj: f64) -> TraceEvent {
        ev(
            seq,
            invocation,
            ordinal,
            delta(Component::Core, core_nj),
            TraceEventKind::InvocationEnd {
                mode: "interpret".into(),
                energy: Energy::from_nanojoules(declared_nj),
                time: SimTime::from_nanos(10.0),
                instructions: 100 * invocation,
            },
        )
    }

    #[test]
    fn clean_invocation_produces_no_alerts() {
        let mut m = Monitor::new(MonitorConfig::default());
        assert!(m.observe(&start(0, 1)).is_empty());
        assert!(m.observe(&end(1, 1, 1, 50.0, 50.0)).is_empty());
        let report = m.finish();
        assert!(report.healthy());
        assert_eq!(report.invocations, 1);
        assert_eq!(report.events, 2);
        assert!(report.render_text().starts_with("health: OK"));
    }

    #[test]
    fn conservation_violation_fires_critical() {
        let mut m = Monitor::new(MonitorConfig::default());
        m.observe(&start(0, 1));
        let alerts = m.observe(&end(1, 1, 1, 50.0, 99.0));
        assert_eq!(alerts.len(), 1);
        assert_eq!(alerts[0].monitor, "conservation");
        assert_eq!(alerts[0].severity, "critical");
        assert!(!m.finish().healthy());
    }

    #[test]
    fn start_delta_is_excluded_from_conservation() {
        // The start event's own delta (pre-checkpoint energy) must not
        // count against the invocation's declared energy.
        let mut m = Monitor::new(MonitorConfig::default());
        let mut s = start(0, 1);
        s.delta = delta(Component::Core, 1e9);
        assert!(m.observe(&s).is_empty());
        assert!(m.observe(&end(1, 1, 1, 50.0, 50.0)).is_empty());
    }

    #[test]
    fn negative_component_delta_fires() {
        let mut m = Monitor::new(MonitorConfig::default());
        let alerts = m.observe(&ev(
            0,
            1,
            0,
            delta(Component::Dram, -0.5),
            TraceEventKind::EarlyWake {
                wait: SimTime::from_nanos(1.0),
            },
        ));
        assert_eq!(alerts.len(), 1);
        assert_eq!(alerts[0].monitor, "negative-delta");
    }

    #[test]
    fn retry_storm_fires_once_per_window() {
        let config = MonitorConfig {
            retry_window: 10,
            retry_max: 2,
            ..MonitorConfig::default()
        };
        let mut m = Monitor::new(config);
        let mut fired = 0;
        for i in 0..6u64 {
            let alerts = m.observe(&ev(
                i,
                i + 1,
                1,
                delta(Component::Leakage, 1.0),
                TraceEventKind::RetryAttempt {
                    attempt: 1,
                    backoff: SimTime::from_nanos(5.0),
                },
            ));
            fired += alerts.len();
        }
        // 3rd retry crosses the threshold; cooldown suppresses the
        // rest of the window.
        assert_eq!(fired, 1);
        let report = m.finish();
        assert_eq!(report.counts.get("retry-storm"), Some(&1));
    }

    #[test]
    fn breaker_flap_fires_and_old_transitions_age_out() {
        let config = MonitorConfig {
            flap_window: 5,
            flap_max: 2,
            ..MonitorConfig::default()
        };
        let mut m = Monitor::new(config);
        let transition = |seq, inv| {
            ev(
                seq,
                inv,
                0,
                EnergyBreakdown::new(),
                TraceEventKind::BreakerTransition {
                    from: "closed".into(),
                    to: "open".into(),
                },
            )
        };
        // Two transitions far apart: no alert (window slides past).
        assert!(m.observe(&transition(0, 1)).is_empty());
        assert!(m.observe(&transition(1, 20)).is_empty());
        // Three within a window: alert.
        assert!(m.observe(&transition(2, 21)).is_empty());
        let alerts = m.observe(&transition(3, 22));
        assert_eq!(alerts.len(), 1);
        assert_eq!(alerts[0].monitor, "breaker-flap");
    }

    #[test]
    fn regret_fires_only_after_min_decisions_and_when_followed() {
        let config = MonitorConfig {
            regret_min_decisions: 3,
            regret_mean_threshold: 0.5,
            ..MonitorConfig::default()
        };
        let mut m = Monitor::new(config);
        let decision = |seq, inv, chosen: &str| {
            ev(
                seq,
                inv,
                1,
                EnergyBreakdown::new(),
                TraceEventKind::DecisionEvaluated {
                    k: inv,
                    s_bar: 64.0,
                    pa_bar_w: 0.4,
                    interpret_nj: 1000.0,
                    remote_nj: 500.0,
                    local_nj: [800.0, 700.0, 600.0],
                    chosen: chosen.into(),
                    remote_allowed: true,
                },
            )
        };
        let mut fired = 0;
        let mut seq = 0;
        for inv in 1..=4u64 {
            m.observe(&start(seq, inv));
            fired += m.observe(&decision(seq + 1, inv, "interpret")).len();
            // Actual is 10x the prediction: rel error ~0.9 each time.
            let e = ev(
                seq + 2,
                inv,
                2,
                delta(Component::Core, 10_000.0),
                TraceEventKind::InvocationEnd {
                    mode: "interpret".into(),
                    energy: Energy::from_nanojoules(10_000.0),
                    time: SimTime::from_nanos(10.0),
                    instructions: 100 * inv,
                },
            );
            fired += m.observe(&e).len();
            seq += 3;
        }
        assert_eq!(fired, 1, "fires exactly once after the 3rd decision");
        // Fallback invocations (mode != chosen) never count.
        let mut m2 = Monitor::new(MonitorConfig {
            regret_min_decisions: 1,
            regret_mean_threshold: 0.1,
            ..MonitorConfig::default()
        });
        m2.observe(&start(0, 1));
        m2.observe(&decision(1, 1, "remote"));
        let e = ev(
            2,
            1,
            2,
            delta(Component::Core, 10_000.0),
            TraceEventKind::InvocationEnd {
                mode: "local/L3".into(), // fell back
                energy: Energy::from_nanojoules(10_000.0),
                time: SimTime::from_nanos(10.0),
                instructions: 100,
            },
        );
        assert!(m2.observe(&e).is_empty());
        assert!(m2.finish().healthy());
    }

    #[test]
    fn tee_is_transparent_on_clean_streams() {
        let events = vec![start(0, 1), end(1, 1, 1, 50.0, 50.0)];
        let mut plain = RingSink::new(16);
        let mut monitored = RingSink::new(16);
        for e in &events {
            plain.record(e.clone());
        }
        let mut tee = MonitorTee::new(MonitorConfig::default());
        for e in &events {
            tee.process(e.clone(), &mut monitored);
        }
        assert!(tee.finish().healthy());
        assert_eq!(plain.into_events(), monitored.into_events());
    }

    #[test]
    fn tee_injects_alert_events_with_dense_seq() {
        let events = vec![start(0, 1), end(1, 1, 1, 50.0, 99.0), start(2, 2), {
            let mut e = end(3, 2, 1, 10.0, 10.0);
            e.at = SimTime::from_nanos(40.0);
            e
        }];
        let mut out = RingSink::new(16);
        let mut tee = MonitorTee::new(MonitorConfig::default());
        for e in &events {
            tee.process(e.clone(), &mut out);
        }
        let report = tee.finish();
        assert_eq!(report.total_alerts, 1);
        let got = out.into_events();
        assert_eq!(got.len(), 5);
        // Dense seq: 0,1,2(alert),3,4 — no restart introduced.
        let seqs: Vec<u64> = got.iter().map(|e| e.seq).collect();
        assert_eq!(seqs, [0, 1, 2, 3, 4]);
        assert!(matches!(got[2].kind, TraceEventKind::Alert { .. }));
        assert_eq!(got[2].delta.total().nanojoules(), 0.0);
        assert_eq!(got[2].invocation, 1);
    }

    #[test]
    fn tee_resets_on_shard_restart() {
        // Two shards, each starting at seq 0; the second is clean and
        // must not inherit the first's offset or windows.
        let mut out = RingSink::new(32);
        let mut tee = MonitorTee::new(MonitorConfig::default());
        tee.process(start(0, 1), &mut out);
        tee.process(end(1, 1, 1, 50.0, 99.0), &mut out); // alert
        tee.process(start(0, 1), &mut out); // seq restart: new shard
        tee.process(end(1, 1, 1, 50.0, 50.0), &mut out);
        let report = tee.finish();
        assert_eq!(report.shards, 2);
        assert_eq!(report.total_alerts, 1);
        let got = out.into_events();
        let seqs: Vec<u64> = got.iter().map(|e| e.seq).collect();
        assert_eq!(seqs, [0, 1, 2, 0, 1]);
    }

    #[test]
    fn energy_rate_anomaly_fires_on_spike_not_on_steady_load() {
        let config = MonitorConfig {
            rate_window: 5,
            rate_factor: 3.0,
            ..MonitorConfig::default()
        };
        // Steady energy rate: never fires.
        let mut m = Monitor::new(config.clone());
        let mut seq = 0;
        for inv in 1..=20u64 {
            m.observe(&start(seq, inv));
            m.observe(&end(seq + 1, inv, 1, 100.0, 100.0));
            seq += 2;
        }
        assert!(m.finish().healthy());

        // One invocation spikes to 20x the window mean: fires once,
        // then the cooldown suppresses the rest of the window.
        let mut m = Monitor::new(config);
        let mut fired = 0;
        let mut seq = 0;
        for inv in 1..=12u64 {
            let nj = if inv >= 7 { 2000.0 } else { 100.0 };
            m.observe(&start(seq, inv));
            fired += m.observe(&end(seq + 1, inv, 1, nj, nj)).len();
            seq += 2;
        }
        assert_eq!(fired, 1, "spike fires exactly once inside the cooldown");
        let report = m.finish();
        assert_eq!(report.counts.get("energy-rate-anomaly"), Some(&1));
    }

    #[test]
    fn regret_trend_fires_when_prediction_error_worsens() {
        let config = MonitorConfig {
            trend_window: 3,
            trend_factor: 2.0,
            trend_min_err: 0.1,
            ..MonitorConfig::default()
        };
        let decision = |seq, inv| {
            ev(
                seq,
                inv,
                1,
                EnergyBreakdown::new(),
                TraceEventKind::DecisionEvaluated {
                    k: inv,
                    s_bar: 64.0,
                    pa_bar_w: 0.4,
                    interpret_nj: 1000.0,
                    remote_nj: 500.0,
                    local_nj: [800.0, 700.0, 600.0],
                    chosen: "interpret".into(),
                    remote_allowed: true,
                },
            )
        };
        // Converged predictor (error ~0) that suddenly degrades to a
        // large error: the adjacent-window comparison fires.
        let mut m = Monitor::new(config.clone());
        let mut fired = 0;
        let mut seq = 0;
        for inv in 1..=6u64 {
            let actual = if inv > 3 { 3000.0 } else { 1000.0 };
            m.observe(&start(seq, inv));
            m.observe(&decision(seq + 1, inv));
            fired += m.observe(&end(seq + 2, inv, 2, actual, actual)).len();
            seq += 3;
        }
        assert_eq!(fired, 1, "worsening trend fires once");
        let report = m.finish();
        assert_eq!(report.counts.get("regret-trend"), Some(&1));

        // A constantly-bad-but-stable predictor does not trend.
        let mut m = Monitor::new(config);
        let mut fired = 0;
        let mut seq = 0;
        for inv in 1..=12u64 {
            m.observe(&start(seq, inv));
            m.observe(&decision(seq + 1, inv));
            fired += m.observe(&end(seq + 2, inv, 2, 1400.0, 1400.0)).len();
            seq += 3;
        }
        assert_eq!(fired, 0, "stable error is regret, not a trend");
    }
}

//! A small metrics registry: counters, gauges, and log-bucketed
//! histograms with Prometheus text-format and JSON exposition.
//!
//! Families are stored in `BTreeMap`s and label sets are rendered
//! canonically, so exposition output is deterministic: two
//! identically-seeded runs produce byte-identical `.prom` and JSON
//! files. All values come from the simulator (sim-time, nanojoules);
//! no wall clock is ever sampled.

use crate::json::Json;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Histogram bucket boundaries (upper bounds, strictly increasing).
#[derive(Debug, Clone, PartialEq)]
pub struct Buckets(Vec<f64>);

impl Buckets {
    /// Geometric (log-spaced) boundaries: `start, start·growth,
    /// start·growth², …` — `count` of them. The right choice for
    /// quantities spanning decades, like invocation energies.
    pub fn log(start: f64, growth: f64, count: usize) -> Buckets {
        assert!(
            start > 0.0 && growth > 1.0,
            "log buckets need start>0, growth>1"
        );
        let mut bounds = Vec::with_capacity(count);
        let mut b = start;
        for _ in 0..count {
            bounds.push(b);
            b *= growth;
        }
        Buckets(bounds)
    }

    /// Explicit boundaries (must be strictly increasing).
    pub fn explicit(bounds: Vec<f64>) -> Buckets {
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "bucket bounds must be strictly increasing"
        );
        Buckets(bounds)
    }

    /// The upper bounds.
    pub fn bounds(&self) -> &[f64] {
        &self.0
    }
}

/// A fixed-bucket histogram with sum/count/min/max.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    bounds: Vec<f64>,
    /// One count per bound, plus a final overflow (+Inf) slot.
    counts: Vec<u64>,
    sum: f64,
    count: u64,
    min: f64,
    max: f64,
}

impl Histogram {
    /// An empty histogram with the given buckets.
    pub fn new(buckets: &Buckets) -> Histogram {
        Histogram {
            bounds: buckets.0.clone(),
            counts: vec![0; buckets.0.len() + 1],
            sum: 0.0,
            count: 0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Record one observation.
    pub fn observe(&mut self, v: f64) {
        let slot = self
            .bounds
            .iter()
            .position(|&b| v <= b)
            .unwrap_or(self.bounds.len());
        self.counts[slot] += 1;
        self.sum += v;
        self.count += 1;
        if v < self.min {
            self.min = v;
        }
        if v > self.max {
            self.max = v;
        }
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of observations.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Mean observation (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Smallest observation (`inf` when empty).
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest observation (`-inf` when empty).
    pub fn max(&self) -> f64 {
        self.max
    }

    /// `(upper_bound, cumulative_count)` pairs, ending with `+Inf`.
    pub fn cumulative(&self) -> Vec<(f64, u64)> {
        let mut acc = 0;
        let mut out = Vec::with_capacity(self.counts.len());
        for (i, &c) in self.counts.iter().enumerate() {
            acc += c;
            let bound = self.bounds.get(i).copied().unwrap_or(f64::INFINITY);
            out.push((bound, acc));
        }
        out
    }

    /// Deterministic quantile estimate from the bucket counts (`None`
    /// when empty). Finds the bucket holding the `q`-rank observation
    /// and interpolates linearly inside it — the same estimator as
    /// Prometheus' `histogram_quantile`, with two refinements the
    /// recorded extremes allow: the first bucket's lower edge is the
    /// observed minimum (not 0), the overflow bucket returns the
    /// observed maximum, and the result is clamped to `[min, max]`.
    /// Pure arithmetic over counts, so identically-seeded runs render
    /// identical estimates.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        let target = q.clamp(0.0, 1.0) * self.count as f64;
        let mut acc = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            let prev = acc;
            acc += c;
            if c > 0 && acc as f64 >= target {
                let upper = self.bounds.get(i).copied().unwrap_or(f64::INFINITY);
                if !upper.is_finite() {
                    return Some(self.max);
                }
                let lower = if i == 0 {
                    self.min.min(upper)
                } else {
                    self.bounds[i - 1]
                };
                let frac = ((target - prev as f64) / c as f64).clamp(0.0, 1.0);
                let v = lower + (upper - lower) * frac;
                return Some(v.clamp(self.min, self.max));
            }
        }
        Some(self.max)
    }

    /// Merge another histogram's observations into this one. Both must
    /// share the same bucket boundaries.
    pub fn merge(&mut self, other: &Histogram) {
        assert_eq!(self.bounds, other.bounds, "histogram bucket mismatch");
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.sum += other.sum;
        self.count += other.count;
        if other.min < self.min {
            self.min = other.min;
        }
        if other.max > self.max {
            self.max = other.max;
        }
    }

    fn to_json(&self) -> Json {
        let buckets: Vec<Json> = self
            .cumulative()
            .into_iter()
            .map(|(le, c)| {
                Json::object()
                    .with(
                        "le",
                        if le.is_finite() {
                            Json::from(le)
                        } else {
                            Json::Str("+Inf".into())
                        },
                    )
                    .with("count", c)
            })
            .collect();
        let mut obj = Json::object()
            .with("buckets", Json::Arr(buckets))
            .with("sum", self.sum)
            .with("count", self.count);
        if self.count > 0 {
            obj = obj.with("min", self.min).with("max", self.max);
            for (name, q) in QUANTILES {
                if let Some(v) = self.quantile(q) {
                    obj = obj.with(name, v);
                }
            }
        }
        obj
    }
}

/// The quantile estimates both expositions precompute for every
/// non-empty histogram, so latency/energy distributions are readable
/// without post-processing the bucket counts.
const QUANTILES: [(&str, f64); 3] = [("p50", 0.50), ("p90", 0.90), ("p99", 0.99)];

/// Canonical label rendering: `key="value",…` sorted by key.
fn render_labels(labels: &[(&str, String)]) -> String {
    let mut sorted: Vec<(&str, &str)> = labels.iter().map(|(k, v)| (*k, v.as_str())).collect();
    sorted.sort();
    let mut out = String::new();
    for (i, (k, v)) in sorted.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{k}=\"{}\"",
            v.replace('\\', "\\\\").replace('"', "\\\"")
        );
    }
    out
}

/// A registry of metric families. Series within a family are keyed by
/// their canonical label string ("" for unlabelled series).
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    counters: BTreeMap<String, BTreeMap<String, u64>>,
    gauges: BTreeMap<String, BTreeMap<String, f64>>,
    histograms: BTreeMap<String, BTreeMap<String, Histogram>>,
    help: BTreeMap<String, String>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    /// Attach HELP text to a family (shown in Prometheus exposition).
    pub fn set_help(&mut self, family: &str, help: &str) {
        self.help.insert(family.to_string(), help.to_string());
    }

    /// Add `delta` to a counter series.
    pub fn add(&mut self, family: &str, labels: &[(&str, String)], delta: u64) {
        *self
            .counters
            .entry(family.to_string())
            .or_default()
            .entry(render_labels(labels))
            .or_insert(0) += delta;
    }

    /// Increment an unlabelled counter.
    pub fn inc(&mut self, family: &str) {
        self.add(family, &[], 1);
    }

    /// Set a gauge series to `value`.
    pub fn set_gauge(&mut self, family: &str, labels: &[(&str, String)], value: f64) {
        self.gauges
            .entry(family.to_string())
            .or_default()
            .insert(render_labels(labels), value);
    }

    /// Record an observation into a histogram series, creating it with
    /// `buckets` on first use (later calls reuse the existing buckets).
    pub fn observe(&mut self, family: &str, labels: &[(&str, String)], buckets: &Buckets, v: f64) {
        self.histograms
            .entry(family.to_string())
            .or_default()
            .entry(render_labels(labels))
            .or_insert_with(|| Histogram::new(buckets))
            .observe(v);
    }

    /// The current value of a counter series (0 if absent).
    pub fn counter_value(&self, family: &str, labels: &[(&str, String)]) -> u64 {
        self.counters
            .get(family)
            .and_then(|m| m.get(&render_labels(labels)))
            .copied()
            .unwrap_or(0)
    }

    /// A histogram series, if it has recorded anything.
    pub fn histogram(&self, family: &str, labels: &[(&str, String)]) -> Option<&Histogram> {
        self.histograms
            .get(family)
            .and_then(|m| m.get(&render_labels(labels)))
    }

    /// Prometheus text exposition (format version 0.0.4).
    pub fn render_prometheus(&self) -> String {
        let mut out = String::new();
        let fmt = |v: f64| Json::from(v).render();
        for (family, series) in &self.counters {
            self.write_header(&mut out, family, "counter");
            for (labels, v) in series {
                let _ = writeln!(out, "{}{} {}", family, braced(labels), v);
            }
        }
        for (family, series) in &self.gauges {
            self.write_header(&mut out, family, "gauge");
            for (labels, v) in series {
                let _ = writeln!(out, "{}{} {}", family, braced(labels), fmt(*v));
            }
        }
        for (family, series) in &self.histograms {
            self.write_header(&mut out, family, "histogram");
            for (labels, h) in series {
                for (le, c) in h.cumulative() {
                    let le_s = if le.is_finite() {
                        fmt(le)
                    } else {
                        "+Inf".to_string()
                    };
                    let joined = if labels.is_empty() {
                        format!("le=\"{le_s}\"")
                    } else {
                        format!("{labels},le=\"{le_s}\"")
                    };
                    let _ = writeln!(out, "{family}_bucket{{{joined}}} {c}");
                }
                let _ = writeln!(out, "{}_sum{} {}", family, braced(labels), fmt(h.sum()));
                let _ = writeln!(out, "{}_count{} {}", family, braced(labels), h.count());
                for (name, q) in QUANTILES {
                    if let Some(v) = h.quantile(q) {
                        let _ = writeln!(out, "{family}_{name}{} {}", braced(labels), fmt(v));
                    }
                }
            }
        }
        out
    }

    fn write_header(&self, out: &mut String, family: &str, kind: &str) {
        if let Some(help) = self.help.get(family) {
            let _ = writeln!(out, "# HELP {family} {help}");
        }
        let _ = writeln!(out, "# TYPE {family} {kind}");
    }

    /// JSON exposition: every series with its family, labels and value.
    pub fn to_json(&self) -> Json {
        let labels_json = |labels: &str| -> Json {
            let mut obj = Json::object();
            if !labels.is_empty() {
                for pair in split_labels(labels) {
                    obj = obj.with(&pair.0, pair.1.as_str());
                }
            }
            obj
        };
        let mut counters = Vec::new();
        for (family, series) in &self.counters {
            for (labels, v) in series {
                counters.push(
                    Json::object()
                        .with("name", family.as_str())
                        .with("labels", labels_json(labels))
                        .with("value", *v),
                );
            }
        }
        let mut gauges = Vec::new();
        for (family, series) in &self.gauges {
            for (labels, v) in series {
                gauges.push(
                    Json::object()
                        .with("name", family.as_str())
                        .with("labels", labels_json(labels))
                        .with("value", *v),
                );
            }
        }
        let mut histograms = Vec::new();
        for (family, series) in &self.histograms {
            for (labels, h) in series {
                histograms.push(
                    Json::object()
                        .with("name", family.as_str())
                        .with("labels", labels_json(labels))
                        .with("histogram", h.to_json()),
                );
            }
        }
        Json::object()
            .with("counters", Json::Arr(counters))
            .with("gauges", Json::Arr(gauges))
            .with("histograms", Json::Arr(histograms))
    }
}

fn braced(labels: &str) -> String {
    if labels.is_empty() {
        String::new()
    } else {
        format!("{{{labels}}}")
    }
}

/// Split a canonical label string back into pairs (inverse of
/// [`render_labels`] for values without embedded quotes/commas, which
/// is all the simulator produces).
fn split_labels(labels: &str) -> Vec<(String, String)> {
    labels
        .split(',')
        .filter_map(|part| {
            let (k, v) = part.split_once('=')?;
            Some((k.to_string(), v.trim_matches('"').to_string()))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mode(m: &str) -> Vec<(&'static str, String)> {
        vec![("mode", m.to_string())]
    }

    #[test]
    fn log_buckets_are_geometric() {
        let b = Buckets::log(1.0, 10.0, 4);
        assert_eq!(b.bounds(), &[1.0, 10.0, 100.0, 1000.0]);
    }

    #[test]
    fn histogram_buckets_and_moments() {
        let mut h = Histogram::new(&Buckets::log(1.0, 10.0, 3));
        for v in [0.5, 5.0, 50.0, 5000.0] {
            h.observe(v);
        }
        assert_eq!(h.count(), 4);
        assert_eq!(h.sum(), 5055.5);
        assert_eq!(h.min(), 0.5);
        assert_eq!(h.max(), 5000.0);
        let cum = h.cumulative();
        assert_eq!(cum[0], (1.0, 1));
        assert_eq!(cum[1], (10.0, 2));
        assert_eq!(cum[2], (100.0, 3));
        assert_eq!(cum[3].1, 4);
        assert!(cum[3].0.is_infinite());
    }

    #[test]
    fn quantile_estimates_are_deterministic_and_ordered() {
        let mut h = Histogram::new(&Buckets::log(1.0, 2.0, 12));
        assert_eq!(h.quantile(0.5), None);
        for i in 1..=100 {
            h.observe(i as f64);
        }
        let p50 = h.quantile(0.50).unwrap();
        let p90 = h.quantile(0.90).unwrap();
        let p99 = h.quantile(0.99).unwrap();
        // Log buckets quantize, so allow the bucket's span, but the
        // estimates must bracket the true ranks and stay ordered.
        assert!((32.0..=64.0).contains(&p50), "p50 = {p50}");
        assert!((64.0..=100.0).contains(&p90), "p90 = {p90}");
        assert!((64.0..=100.0).contains(&p99), "p99 = {p99}");
        assert!(p50 <= p90 && p90 <= p99);
        // Extremes clamp to observed min/max.
        assert_eq!(h.quantile(0.0).unwrap(), 1.0);
        assert_eq!(h.quantile(1.0).unwrap(), 100.0);
        // Single observation: every quantile is that observation.
        let mut one = Histogram::new(&Buckets::log(1.0, 2.0, 4));
        one.observe(3.0);
        assert_eq!(one.quantile(0.5), Some(3.0));
        assert_eq!(one.quantile(0.99), Some(3.0));
    }

    #[test]
    fn exposition_includes_quantiles() {
        let mut r = MetricsRegistry::new();
        r.observe("lat_ns", &[], &Buckets::log(1.0, 2.0, 4), 3.0);
        let text = r.render_prometheus();
        assert!(text.contains("lat_ns_p50 3"), "{text}");
        assert!(text.contains("lat_ns_p90 3"), "{text}");
        assert!(text.contains("lat_ns_p99 3"), "{text}");
        let doc = r.to_json().render();
        assert!(doc.contains("\"p50\":3"), "{doc}");
        assert!(doc.contains("\"p99\":3"), "{doc}");
        // Empty histograms render no quantile lines.
        let r2 = MetricsRegistry::new();
        assert!(!r2.render_prometheus().contains("_p50"));
    }

    #[test]
    fn histogram_merge_equals_concatenation() {
        let buckets = Buckets::log(1.0, 2.0, 8);
        let mut a = Histogram::new(&buckets);
        let mut b = Histogram::new(&buckets);
        let mut whole = Histogram::new(&buckets);
        for (i, v) in [0.3, 1.5, 2.0, 9.0, 77.0, 300.0].iter().enumerate() {
            if i % 2 == 0 {
                a.observe(*v)
            } else {
                b.observe(*v)
            }
            whole.observe(*v);
        }
        a.merge(&b);
        assert_eq!(a, whole);
    }

    #[test]
    fn prometheus_exposition_shape() {
        let mut r = MetricsRegistry::new();
        r.set_help("invocations_total", "Completed invocations.");
        r.add("invocations_total", &mode("remote"), 3);
        r.inc("fallbacks_total");
        r.set_gauge("regret_nj", &[], 125.5);
        r.observe(
            "invocation_energy_nj",
            &[],
            &Buckets::log(1.0, 10.0, 2),
            5.0,
        );
        let text = r.render_prometheus();
        assert!(text.contains("# HELP invocations_total Completed invocations."));
        assert!(text.contains("# TYPE invocations_total counter"));
        assert!(text.contains("invocations_total{mode=\"remote\"} 3"));
        assert!(text.contains("fallbacks_total 1"));
        assert!(text.contains("regret_nj 125.5"));
        assert!(text.contains("invocation_energy_nj_bucket{le=\"10\"} 1"));
        assert!(text.contains("invocation_energy_nj_bucket{le=\"+Inf\"} 1"));
        assert!(text.contains("invocation_energy_nj_sum 5"));
        assert!(text.contains("invocation_energy_nj_count 1"));
    }

    #[test]
    fn exposition_is_deterministic() {
        let build = || {
            let mut r = MetricsRegistry::new();
            // Insertion order differs run to run in callers; BTreeMaps
            // must canonicalize it.
            r.add("z_total", &[], 1);
            r.add("a_total", &mode("local/L2"), 2);
            r.add("a_total", &mode("interpret"), 7);
            r.observe("h", &[], &Buckets::log(1.0, 2.0, 4), 3.0);
            r
        };
        let mut r1 = build();
        let r2 = {
            let mut r = MetricsRegistry::new();
            r.observe("h", &[], &Buckets::log(1.0, 2.0, 4), 3.0);
            r.add("a_total", &mode("interpret"), 7);
            r.add("a_total", &mode("local/L2"), 2);
            r.add("z_total", &[], 1);
            r
        };
        assert_eq!(r1.render_prometheus(), r2.render_prometheus());
        assert_eq!(r1.to_json().render(), r2.to_json().render());
        r1.inc("a_total");
        assert_eq!(r1.counter_value("a_total", &[]), 1);
    }

    #[test]
    fn json_exposition_round_trips_text() {
        let mut r = MetricsRegistry::new();
        r.add("x_total", &mode("remote"), 9);
        r.observe("e_nj", &[], &Buckets::log(1.0, 10.0, 2), 42.0);
        let doc = r.to_json();
        let text = doc.render_pretty();
        let back = Json::parse(&text).unwrap();
        assert_eq!(back.render(), doc.render());
        let counters = back.get("counters").and_then(Json::as_array).unwrap();
        assert_eq!(counters.len(), 1);
        assert_eq!(
            counters[0]
                .get("labels")
                .and_then(|l| l.get("mode"))
                .and_then(Json::as_str),
            Some("remote")
        );
    }
}

//! The `.jtb` compact binary trace format ("Jem Trace Binary").
//!
//! The JSON Chrome export ([`crate::chrome_trace`]) is great for
//! viewers but costs hundreds of bytes per event and forces the whole
//! run into memory before writing. `.jtb` is the scalable counterpart:
//! a streaming, block-oriented wire format that [`WriterSink`] /
//! [`FileSink`] produce in O(block) memory while the run executes, and
//! that [`JtbStream`] decodes back **losslessly** — every
//! [`TraceEvent`] field survives the round-trip bit-for-bit (enforced
//! by property test against the JSON path).
//!
//! # Layout
//!
//! ```text
//! file    := header record* footer trailer
//! header  := "JTB1"  version:varint (=1)
//! record  := 0x01 shard-name:str          -- start a new shard
//!          | 0x02 bytes:str               -- define next interned string
//!          | 0x03 len:varint payload      -- one event block
//!          | 0x04 dropped:varint          -- sink evicted events (truncated!)
//!          | 0x06 bytes:varint events:varint -- crash-salvage marker
//! footer  := 0x05 block-index             -- per-block counts + energy sums
//! trailer := footer-offset:u64le  "JTBE"
//! str     := len:varint utf8-bytes
//! ```
//!
//! A block payload carries the first event's absolute `seq` /
//! `invocation` / `t` and then per-event deltas: zigzag-varint
//! sequence and invocation deltas, the invocation-scoped `ordinal` as
//! a plain varint, and sim-time / energy values in the *maybe-scaled*
//! codec below. Strings (method names, mode labels, reasons) are
//! interned once per file — definition records precede the first block
//! that references them, so a reader that skips block payloads (using
//! the footer index) still resolves every id.
//!
//! # The maybe-scaled f64 codec
//!
//! Energy deltas and durations are usually "nice" decimals (whole
//! picojoules / fractions of a nanosecond from rational power ×
//! time products). Each value `v` is encoded as:
//!
//! * `varint(zigzag(v*1000) << 1 | 1)` when `v*1000` is exactly
//!   representable as an integer **and** dividing back returns the
//!   identical f64 — typically 1–3 bytes; or
//! * a single `0x00` byte followed by the 8 raw little-endian IEEE
//!   bytes otherwise.
//!
//! The scaled path is opportunistic compression; the raw fallback
//! guarantees losslessness unconditionally.
//!
//! # Truncation is never silent
//!
//! If the producing sink evicted events (ring overflow), the writer
//! emits an explicit `0x04` record and the footer repeats the count.
//! Loaders surface it as [`LoadedTrace::dropped`]; `jem-profile`
//! refuses to reconcile such a ledger.

use crate::json::Json;
use crate::trace::{
    breakdown_from_json, dropped_from_chrome_trace, events_from_chrome_trace, split_shards,
    TraceEvent, TraceEventKind, TraceShard, TraceSink,
};
use jem_energy::{Component, Energy, EnergyBreakdown, SimTime};
use std::collections::HashMap;
use std::collections::VecDeque;
use std::io::{Read, Write};

/// Leading file magic.
pub const JTB_MAGIC: &[u8; 4] = b"JTB1";
/// Trailing file magic.
pub const JTB_END_MAGIC: &[u8; 4] = b"JTBE";
const JTB_VERSION: u64 = 1;

const R_SHARD: u8 = 0x01;
const R_STRDEF: u8 = 0x02;
const R_BLOCK: u8 = 0x03;
const R_TRUNC: u8 = 0x04;
const R_FOOTER: u8 = 0x05;
/// Crash-salvage marker appended by [`salvage_jtb`]: the payload is
/// `dropped-bytes:varint dropped-events:varint` describing the torn
/// tail that had to be discarded.
const R_RECOVER: u8 = 0x06;

/// Leading magic of a serialized [`JtbWriter`] checkpoint state.
const JWS_MAGIC: &[u8; 4] = b"JWS1";

/// Preferred events per block: flushed at the next invocation start
/// once this many are buffered.
const BLOCK_EVENTS: usize = 1024;
/// Hard flush threshold — bounds writer memory even if one invocation
/// emits absurdly many events.
const BLOCK_EVENTS_MAX: usize = 4 * BLOCK_EVENTS;

/// Whether `bytes` begin with the `.jtb` magic (the format sniff the
/// CLIs use before falling back to JSON).
pub fn is_jtb(bytes: &[u8]) -> bool {
    bytes.starts_with(JTB_MAGIC)
}

// ---------------------------------------------------------------
// Primitive codecs
// ---------------------------------------------------------------

pub(crate) fn zigzag(i: i64) -> u64 {
    ((i << 1) ^ (i >> 63)) as u64
}

pub(crate) fn unzigzag(u: u64) -> i64 {
    ((u >> 1) as i64) ^ -((u & 1) as i64)
}

pub(crate) fn put_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Encode `v` in the maybe-scaled codec (see module docs).
pub(crate) fn put_msf(out: &mut Vec<u8>, v: f64) {
    let s = v * 1000.0;
    if s.is_finite() && s.fract() == 0.0 && s.abs() < 9.0e15 {
        let i = s as i64;
        if (i as f64) == s && (i as f64) / 1000.0 == v {
            let z = zigzag(i);
            if z < (1u64 << 63) {
                put_varint(out, (z << 1) | 1);
                return;
            }
        }
    }
    out.push(0x00);
    out.extend_from_slice(&v.to_bits().to_le_bytes());
}

/// A byte cursor with decode-error context.
pub(crate) struct Cur<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> Cur<'a> {
    pub(crate) fn new(data: &'a [u8]) -> Cur<'a> {
        Cur { data, pos: 0 }
    }

    pub(crate) fn remaining(&self) -> usize {
        self.data.len() - self.pos
    }

    /// Bytes consumed so far (follow-mode readers commit up to here).
    pub(crate) fn pos(&self) -> usize {
        self.pos
    }

    pub(crate) fn u8(&mut self) -> Result<u8, String> {
        let b = *self
            .data
            .get(self.pos)
            .ok_or("jtb: unexpected end of data")?;
        self.pos += 1;
        Ok(b)
    }

    pub(crate) fn bytes(&mut self, n: usize) -> Result<&'a [u8], String> {
        if self.remaining() < n {
            return Err("jtb: unexpected end of data".into());
        }
        let s = &self.data[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    pub(crate) fn varint(&mut self) -> Result<u64, String> {
        let mut v = 0u64;
        let mut shift = 0u32;
        loop {
            let b = self.u8()?;
            if shift >= 64 || (shift == 63 && b > 1) {
                return Err("jtb: varint overflow".into());
            }
            v |= u64::from(b & 0x7f) << shift;
            if b & 0x80 == 0 {
                return Ok(v);
            }
            shift += 7;
        }
    }

    pub(crate) fn f64(&mut self) -> Result<f64, String> {
        let b = self.bytes(8)?;
        let mut a = [0u8; 8];
        a.copy_from_slice(b);
        Ok(f64::from_bits(u64::from_le_bytes(a)))
    }

    pub(crate) fn msf(&mut self) -> Result<f64, String> {
        let tag = self.varint()?;
        if tag & 1 == 1 {
            return Ok(unzigzag(tag >> 1) as f64 / 1000.0);
        }
        if tag != 0 {
            return Err("jtb: reserved msf tag".into());
        }
        self.f64()
    }
}

// ---------------------------------------------------------------
// Event payload codec
// ---------------------------------------------------------------

/// Numeric tags for [`TraceEventKind`], stable wire contract.
fn kind_tag(kind: &TraceEventKind) -> u8 {
    match kind {
        TraceEventKind::InvocationStart { .. } => 0,
        TraceEventKind::DecisionEvaluated { .. } => 1,
        TraceEventKind::CompileStart { .. } => 2,
        TraceEventKind::CompileEnd { .. } => 3,
        TraceEventKind::TxWindow { .. } => 4,
        TraceEventKind::RxWindow { .. } => 5,
        TraceEventKind::PowerDown { .. } => 6,
        TraceEventKind::EarlyWake { .. } => 7,
        TraceEventKind::RetryAttempt { .. } => 8,
        TraceEventKind::BreakerTransition { .. } => 9,
        TraceEventKind::Fallback { .. } => 10,
        TraceEventKind::Degraded { .. } => 11,
        TraceEventKind::Alert { .. } => 12,
        TraceEventKind::InvocationEnd { .. } => 13,
    }
}

#[derive(Clone)]
struct Interner {
    ids: HashMap<String, u64>,
    /// Definition records accumulated since the last flush, written to
    /// the stream before the block that references them.
    pending_defs: Vec<u8>,
}

impl Interner {
    fn new() -> Interner {
        Interner {
            ids: HashMap::new(),
            pending_defs: Vec::new(),
        }
    }

    /// The interned strings in id order (id `i` at index `i`).
    fn table(&self) -> Vec<String> {
        let mut v = vec![String::new(); self.ids.len()];
        for (s, &id) in &self.ids {
            v[id as usize] = s.clone();
        }
        v
    }

    fn intern(&mut self, s: &str) -> u64 {
        if let Some(&id) = self.ids.get(s) {
            return id;
        }
        let id = self.ids.len() as u64;
        self.ids.insert(s.to_string(), id);
        self.pending_defs.push(R_STRDEF);
        put_varint(&mut self.pending_defs, s.len() as u64);
        self.pending_defs.extend_from_slice(s.as_bytes());
        id
    }
}

fn put_str(out: &mut Vec<u8>, strings: &mut Interner, s: &str) {
    let id = strings.intern(s);
    put_varint(out, id);
}

fn encode_kind(out: &mut Vec<u8>, strings: &mut Interner, kind: &TraceEventKind) {
    out.push(kind_tag(kind));
    match kind {
        TraceEventKind::InvocationStart {
            strategy,
            method,
            size,
            true_class,
            chosen_class,
        } => {
            put_str(out, strings, strategy);
            put_str(out, strings, method);
            put_varint(out, u64::from(*size));
            put_str(out, strings, true_class);
            put_str(out, strings, chosen_class);
        }
        TraceEventKind::DecisionEvaluated {
            k,
            s_bar,
            pa_bar_w,
            interpret_nj,
            remote_nj,
            local_nj,
            chosen,
            remote_allowed,
        } => {
            put_varint(out, *k);
            put_msf(out, *s_bar);
            put_msf(out, *pa_bar_w);
            put_msf(out, *interpret_nj);
            put_msf(out, *remote_nj);
            for v in local_nj {
                put_msf(out, *v);
            }
            put_str(out, strings, chosen);
            out.push(u8::from(*remote_allowed));
        }
        TraceEventKind::CompileStart { level, source } => {
            put_str(out, strings, level);
            put_str(out, strings, source);
        }
        TraceEventKind::CompileEnd { level, source, ok } => {
            put_str(out, strings, level);
            put_str(out, strings, source);
            out.push(u8::from(*ok));
        }
        TraceEventKind::TxWindow {
            bytes,
            airtime,
            retransmit,
        } => {
            put_varint(out, *bytes);
            put_msf(out, airtime.nanos());
            out.push(u8::from(*retransmit));
        }
        TraceEventKind::RxWindow { bytes, airtime } => {
            put_varint(out, *bytes);
            put_msf(out, airtime.nanos());
        }
        TraceEventKind::PowerDown { duration, reason } => {
            put_msf(out, duration.nanos());
            put_str(out, strings, reason);
        }
        TraceEventKind::EarlyWake { wait } => {
            put_msf(out, wait.nanos());
        }
        TraceEventKind::RetryAttempt { attempt, backoff } => {
            put_varint(out, u64::from(*attempt));
            put_msf(out, backoff.nanos());
        }
        TraceEventKind::BreakerTransition { from, to } => {
            put_str(out, strings, from);
            put_str(out, strings, to);
        }
        TraceEventKind::Fallback { reason } => {
            put_str(out, strings, reason);
        }
        TraceEventKind::Degraded { what } => {
            put_str(out, strings, what);
        }
        TraceEventKind::Alert {
            monitor,
            severity,
            message,
        } => {
            put_str(out, strings, monitor);
            put_str(out, strings, severity);
            put_str(out, strings, message);
        }
        TraceEventKind::InvocationEnd {
            mode,
            energy,
            time,
            instructions,
        } => {
            put_str(out, strings, mode);
            put_msf(out, energy.nanojoules());
            put_msf(out, time.nanos());
            put_varint(out, *instructions);
        }
    }
}

fn decode_kind(cur: &mut Cur<'_>, strings: &[String]) -> Result<TraceEventKind, String> {
    let get = |cur: &mut Cur<'_>| -> Result<String, String> {
        let id = cur.varint()? as usize;
        strings
            .get(id)
            .cloned()
            .ok_or_else(|| format!("jtb: string id {id} not defined"))
    };
    let tag = cur.u8()?;
    Ok(match tag {
        0 => TraceEventKind::InvocationStart {
            strategy: get(cur)?,
            method: get(cur)?,
            size: cur.varint()? as u32,
            true_class: get(cur)?,
            chosen_class: get(cur)?,
        },
        1 => {
            let k = cur.varint()?;
            let s_bar = cur.msf()?;
            let pa_bar_w = cur.msf()?;
            let interpret_nj = cur.msf()?;
            let remote_nj = cur.msf()?;
            let mut local_nj = [0.0; 3];
            for v in &mut local_nj {
                *v = cur.msf()?;
            }
            TraceEventKind::DecisionEvaluated {
                k,
                s_bar,
                pa_bar_w,
                interpret_nj,
                remote_nj,
                local_nj,
                chosen: get(cur)?,
                remote_allowed: cur.u8()? != 0,
            }
        }
        2 => TraceEventKind::CompileStart {
            level: get(cur)?,
            source: get(cur)?,
        },
        3 => TraceEventKind::CompileEnd {
            level: get(cur)?,
            source: get(cur)?,
            ok: cur.u8()? != 0,
        },
        4 => TraceEventKind::TxWindow {
            bytes: cur.varint()?,
            airtime: SimTime::from_nanos(cur.msf()?),
            retransmit: cur.u8()? != 0,
        },
        5 => TraceEventKind::RxWindow {
            bytes: cur.varint()?,
            airtime: SimTime::from_nanos(cur.msf()?),
        },
        6 => TraceEventKind::PowerDown {
            duration: SimTime::from_nanos(cur.msf()?),
            reason: get(cur)?,
        },
        7 => TraceEventKind::EarlyWake {
            wait: SimTime::from_nanos(cur.msf()?),
        },
        8 => TraceEventKind::RetryAttempt {
            attempt: cur.varint()? as u32,
            backoff: SimTime::from_nanos(cur.msf()?),
        },
        9 => TraceEventKind::BreakerTransition {
            from: get(cur)?,
            to: get(cur)?,
        },
        10 => TraceEventKind::Fallback { reason: get(cur)? },
        11 => TraceEventKind::Degraded { what: get(cur)? },
        12 => TraceEventKind::Alert {
            monitor: get(cur)?,
            severity: get(cur)?,
            message: get(cur)?,
        },
        13 => TraceEventKind::InvocationEnd {
            mode: get(cur)?,
            energy: Energy::from_nanojoules(cur.msf()?),
            time: SimTime::from_nanos(cur.msf()?),
            instructions: cur.varint()?,
        },
        other => return Err(format!("jtb: unknown event kind tag {other}")),
    })
}

fn encode_block(events: &[TraceEvent], strings: &mut Interner) -> Vec<u8> {
    let mut out = Vec::with_capacity(events.len() * 16);
    let first = &events[0];
    put_varint(&mut out, events.len() as u64);
    put_varint(&mut out, first.seq);
    put_varint(&mut out, first.invocation);
    out.extend_from_slice(&first.at.nanos().to_bits().to_le_bytes());
    let mut prev_seq = first.seq;
    let mut prev_inv = first.invocation;
    let mut prev_at = first.at.nanos();
    for ev in events {
        put_varint(&mut out, zigzag(ev.seq as i64 - prev_seq as i64));
        put_varint(&mut out, zigzag(ev.invocation as i64 - prev_inv as i64));
        put_varint(&mut out, ev.ordinal);
        put_msf(&mut out, ev.at.nanos() - prev_at);
        prev_seq = ev.seq;
        prev_inv = ev.invocation;
        prev_at = ev.at.nanos();
        let mut mask = 0u8;
        for (i, (_, e)) in ev.delta.iter().enumerate() {
            if e.nanojoules() != 0.0 {
                mask |= 1 << i;
            }
        }
        out.push(mask);
        for (i, (_, e)) in ev.delta.iter().enumerate() {
            if mask & (1 << i) != 0 {
                put_msf(&mut out, e.nanojoules());
            }
        }
        encode_kind(&mut out, strings, &ev.kind);
    }
    out
}

fn decode_block(payload: &[u8], strings: &[String]) -> Result<Vec<TraceEvent>, String> {
    let mut cur = Cur::new(payload);
    let count = cur.varint()? as usize;
    let mut prev_seq = cur.varint()?;
    let mut prev_inv = cur.varint()?;
    let mut prev_at = cur.f64()?;
    let mut out = Vec::with_capacity(count);
    for _ in 0..count {
        let seq = (prev_seq as i64 + unzigzag(cur.varint()?)) as u64;
        let invocation = (prev_inv as i64 + unzigzag(cur.varint()?)) as u64;
        let ordinal = cur.varint()?;
        let at = prev_at + cur.msf()?;
        prev_seq = seq;
        prev_inv = invocation;
        prev_at = at;
        let mask = cur.u8()?;
        let mut delta = EnergyBreakdown::new();
        for (i, c) in Component::ALL.iter().enumerate() {
            if mask & (1 << i) != 0 {
                delta.charge(*c, Energy::from_nanojoules(cur.msf()?));
            }
        }
        let kind = decode_kind(&mut cur, strings)?;
        out.push(TraceEvent {
            seq,
            invocation,
            ordinal,
            at: SimTime::from_nanos(at),
            delta,
            kind,
        });
    }
    if cur.remaining() != 0 {
        return Err("jtb: trailing bytes in block payload".into());
    }
    Ok(out)
}

// ---------------------------------------------------------------
// Block index (footer)
// ---------------------------------------------------------------

/// Per-block metadata recorded in the footer: enough to answer coarse
/// queries (event counts, per-component energy partial sums, sim-time
/// range) without decoding the block, and to seek straight to it.
#[derive(Debug, Clone, PartialEq)]
pub struct BlockMeta {
    /// Byte offset of the block's `R_BLOCK` record in the file.
    pub offset: u64,
    /// Payload length in bytes.
    pub len: u64,
    /// Events in the block.
    pub events: u64,
    /// Index of the shard the block belongs to.
    pub shard: u64,
    /// First event's run-level sequence number.
    pub first_seq: u64,
    /// First event's invocation index.
    pub first_invocation: u64,
    /// Sim-time of the first event (ns).
    pub t_first: f64,
    /// Sim-time of the last event (ns).
    pub t_last: f64,
    /// Per-component energy-delta partial sums over the block (nJ),
    /// in [`Component::ALL`] order.
    pub energy_nj: [f64; 5],
}

/// The footer index: one [`BlockMeta`] per block plus file totals.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct JtbIndex {
    /// Per-block metadata, file order.
    pub blocks: Vec<BlockMeta>,
    /// Number of shards in the file.
    pub shards: u64,
    /// Total events across all blocks.
    pub events: u64,
    /// Events the producing sink evicted (0 = complete ledger).
    pub dropped: u64,
}

impl JtbIndex {
    /// Total energy breakdown telescoped from the per-block partial
    /// sums — the footer-only answer to "what did this run cost".
    pub fn total_energy(&self) -> EnergyBreakdown {
        let mut b = EnergyBreakdown::new();
        for blk in &self.blocks {
            for (i, c) in Component::ALL.iter().enumerate() {
                b.charge(*c, Energy::from_nanojoules(blk.energy_nj[i]));
            }
        }
        b
    }

    /// Parse just the footer of a complete `.jtb` file — O(index), no
    /// block decoding.
    ///
    /// # Errors
    /// A message describing the corruption (bad magic, out-of-range
    /// footer offset, malformed index).
    pub fn read(data: &[u8]) -> Result<JtbIndex, String> {
        if !is_jtb(data) {
            return Err("jtb: bad leading magic (not a .jtb file)".into());
        }
        if data.len() < JTB_MAGIC.len() + 12 {
            return Err("jtb: file too short for trailer".into());
        }
        let tail = &data[data.len() - 12..];
        if &tail[8..] != JTB_END_MAGIC {
            return Err("jtb: bad trailing magic (truncated file?)".into());
        }
        let mut off = [0u8; 8];
        off.copy_from_slice(&tail[..8]);
        let footer_offset = u64::from_le_bytes(off) as usize;
        if footer_offset >= data.len() - 12 {
            return Err("jtb: footer offset out of range".into());
        }
        let mut cur = Cur::new(&data[footer_offset..data.len() - 12]);
        if cur.u8()? != R_FOOTER {
            return Err("jtb: footer offset does not point at a footer record".into());
        }
        parse_footer(&mut cur)
    }
}

fn parse_footer(cur: &mut Cur<'_>) -> Result<JtbIndex, String> {
    let n_blocks = cur.varint()? as usize;
    let mut blocks = Vec::with_capacity(n_blocks);
    for _ in 0..n_blocks {
        let offset = cur.varint()?;
        let len = cur.varint()?;
        let events = cur.varint()?;
        let shard = cur.varint()?;
        let first_seq = cur.varint()?;
        let first_invocation = cur.varint()?;
        let t_first = cur.f64()?;
        let t_last = cur.f64()?;
        let mut energy_nj = [0.0; 5];
        for e in &mut energy_nj {
            *e = cur.f64()?;
        }
        blocks.push(BlockMeta {
            offset,
            len,
            events,
            shard,
            first_seq,
            first_invocation,
            t_first,
            t_last,
            energy_nj,
        });
    }
    let shards = cur.varint()?;
    let events = cur.varint()?;
    let dropped = cur.varint()?;
    Ok(JtbIndex {
        blocks,
        shards,
        events,
        dropped,
    })
}

fn render_footer(index: &JtbIndex) -> Vec<u8> {
    let mut out = vec![R_FOOTER];
    put_varint(&mut out, index.blocks.len() as u64);
    for blk in &index.blocks {
        put_varint(&mut out, blk.offset);
        put_varint(&mut out, blk.len);
        put_varint(&mut out, blk.events);
        put_varint(&mut out, blk.shard);
        put_varint(&mut out, blk.first_seq);
        put_varint(&mut out, blk.first_invocation);
        out.extend_from_slice(&blk.t_first.to_bits().to_le_bytes());
        out.extend_from_slice(&blk.t_last.to_bits().to_le_bytes());
        for e in &blk.energy_nj {
            out.extend_from_slice(&e.to_bits().to_le_bytes());
        }
    }
    put_varint(&mut out, index.shards);
    put_varint(&mut out, index.events);
    put_varint(&mut out, index.dropped);
    out
}

// ---------------------------------------------------------------
// Writer
// ---------------------------------------------------------------

/// Streaming `.jtb` encoder over any [`Write`]. Buffers at most one
/// block of events (a few thousand), so memory stays O(block) no
/// matter how long the run is. Call [`JtbWriter::finish`] to write the
/// footer — a file without its trailer is detectably truncated.
pub struct JtbWriter<W: Write> {
    out: W,
    offset: u64,
    buf: Vec<TraceEvent>,
    strings: Interner,
    index: JtbIndex,
    /// Shard count so far; 0 means no shard started (the first pushed
    /// event auto-starts "client").
    shards: u64,
    finished: bool,
}

impl<W: Write> JtbWriter<W> {
    /// Start a `.jtb` stream on `out` (writes the header immediately).
    ///
    /// # Errors
    /// Propagates the underlying write error.
    pub fn new(out: W) -> std::io::Result<JtbWriter<W>> {
        let mut w = JtbWriter {
            out,
            offset: 0,
            buf: Vec::new(),
            strings: Interner::new(),
            index: JtbIndex::default(),
            shards: 0,
            finished: false,
        };
        let mut header = JTB_MAGIC.to_vec();
        put_varint(&mut header, JTB_VERSION);
        w.write_all(&header)?;
        Ok(w)
    }

    fn write_all(&mut self, bytes: &[u8]) -> std::io::Result<()> {
        self.out.write_all(bytes)?;
        self.offset += bytes.len() as u64;
        Ok(())
    }

    /// Begin a new shard (flushes the pending block first).
    ///
    /// # Errors
    /// Propagates the underlying write error.
    pub fn begin_shard(&mut self, name: &str) -> std::io::Result<()> {
        self.flush_block()?;
        let mut rec = vec![R_SHARD];
        put_varint(&mut rec, name.len() as u64);
        rec.extend_from_slice(name.as_bytes());
        self.write_all(&rec)?;
        self.shards += 1;
        self.index.shards = self.shards;
        Ok(())
    }

    /// Append one event. Blocks are cut at invocation starts once
    /// [`BLOCK_EVENTS`] are buffered (hard cap [`BLOCK_EVENTS_MAX`]).
    ///
    /// # Errors
    /// Propagates the underlying write error.
    pub fn push(&mut self, event: TraceEvent) -> std::io::Result<()> {
        if self.shards == 0 {
            self.begin_shard("client")?;
        }
        let aligned = event.ordinal == 0 && self.buf.len() >= BLOCK_EVENTS;
        if aligned || self.buf.len() >= BLOCK_EVENTS_MAX {
            self.flush_block()?;
        }
        self.buf.push(event);
        Ok(())
    }

    /// Record that the producing sink evicted `n` events before they
    /// reached this writer.
    pub fn note_dropped(&mut self, n: u64) {
        self.index.dropped += n;
    }

    /// Flush the buffered block (even below the preferred block size)
    /// and the underlying writer, so live followers see every event
    /// recorded so far. Changes where blocks are cut — only the
    /// `--flush-every` opt-in path calls this; the default cadence
    /// keeps output byte-identical to previous releases.
    ///
    /// # Errors
    /// Propagates the underlying write/flush error.
    pub fn flush_now(&mut self) -> std::io::Result<()> {
        self.flush_block()?;
        self.out.flush()
    }

    fn flush_block(&mut self) -> std::io::Result<()> {
        if self.buf.is_empty() {
            return Ok(());
        }
        let payload = encode_block(&self.buf, &mut self.strings);
        // String definitions referenced by this block must precede it.
        let defs = std::mem::take(&mut self.strings.pending_defs);
        self.write_all(&defs)?;
        let block_offset = self.offset;
        let mut header = vec![R_BLOCK];
        put_varint(&mut header, payload.len() as u64);
        self.write_all(&header)?;
        self.write_all(&payload)?;
        let first = &self.buf[0];
        let mut energy_nj = [0.0; 5];
        for ev in &self.buf {
            for (i, (_, e)) in ev.delta.iter().enumerate() {
                energy_nj[i] += e.nanojoules();
            }
        }
        self.index.blocks.push(BlockMeta {
            offset: block_offset,
            len: payload.len() as u64,
            events: self.buf.len() as u64,
            shard: self.shards - 1,
            first_seq: first.seq,
            first_invocation: first.invocation,
            t_first: first.at.nanos(),
            t_last: self.buf[self.buf.len() - 1].at.nanos(),
            energy_nj,
        });
        self.index.events += self.buf.len() as u64;
        self.buf.clear();
        Ok(())
    }

    /// Flush, write the truncation record (if any drops were noted),
    /// the footer and the trailer, and return the underlying writer.
    ///
    /// # Errors
    /// Propagates the underlying write error.
    pub fn finish(mut self) -> std::io::Result<W> {
        self.flush_block()?;
        if self.index.dropped > 0 {
            let mut rec = vec![R_TRUNC];
            put_varint(&mut rec, self.index.dropped);
            self.write_all(&rec)?;
        }
        let footer_offset = self.offset;
        let footer = render_footer(&self.index);
        self.write_all(&footer)?;
        let mut trailer = footer_offset.to_le_bytes().to_vec();
        trailer.extend_from_slice(JTB_END_MAGIC);
        self.write_all(&trailer)?;
        self.out.flush()?;
        self.finished = true;
        Ok(self.out)
    }

    /// Events written (excluding the still-buffered block).
    pub fn events_written(&self) -> u64 {
        self.index.events
    }

    /// Byte offset the next record will land at (buffered events are
    /// not yet included — they flush later, exactly as they would in
    /// an uninterrupted run).
    pub fn offset(&self) -> u64 {
        self.offset
    }

    /// Mutable access to the underlying output (to flush it before a
    /// checkpoint is taken).
    pub fn get_mut(&mut self) -> &mut W {
        &mut self.out
    }

    /// Serialize the writer's resumable state: offset, interner,
    /// block index, and the still-buffered events. Restoring via
    /// [`JtbWriter::resume`] onto an output truncated to
    /// [`JtbWriter::offset`] continues the stream **byte-identically**
    /// to an uninterrupted run — the block buffer is deliberately not
    /// flushed, so block boundaries stay where they would have been.
    pub fn encode_ckpt(&self) -> Vec<u8> {
        let mut out = JWS_MAGIC.to_vec();
        put_varint(&mut out, self.offset);
        put_varint(&mut out, self.shards);
        // Buffered events are encoded as a regular block against a
        // scratch interner so decode can reuse `decode_block`. Ids in
        // the payload resolve against the scratch table (existing
        // strings plus any the buffer introduces); the restored
        // interner keeps only the original prefix — the resumed
        // flush re-interns the new ones in the same order, emitting
        // the same definition records an uninterrupted run would.
        let mut scratch = self.strings.clone();
        let payload = if self.buf.is_empty() {
            Vec::new()
        } else {
            encode_block(&self.buf, &mut scratch)
        };
        let all = scratch.table();
        put_varint(&mut out, self.strings.ids.len() as u64);
        put_varint(&mut out, all.len() as u64);
        for s in &all {
            put_varint(&mut out, s.len() as u64);
            out.extend_from_slice(s.as_bytes());
        }
        put_varint(&mut out, self.strings.pending_defs.len() as u64);
        out.extend_from_slice(&self.strings.pending_defs);
        let footer = render_footer(&self.index);
        put_varint(&mut out, footer.len() as u64);
        out.extend_from_slice(&footer);
        put_varint(&mut out, payload.len() as u64);
        out.extend_from_slice(&payload);
        out
    }

    /// Rebuild a writer from checkpoint `state` on an output already
    /// positioned at the state's recorded offset. Writes no header —
    /// every byte up to the offset is already in the output.
    ///
    /// # Errors
    /// A message describing the state corruption.
    pub fn resume(out: W, state: &[u8]) -> Result<JtbWriter<W>, String> {
        Ok(JtbWriter::from_state(out, decode_writer_state(state)?))
    }

    fn from_state(out: W, st: WriterState) -> JtbWriter<W> {
        JtbWriter {
            out,
            offset: st.offset,
            buf: st.buf,
            strings: st.strings,
            index: st.index,
            shards: st.shards,
            finished: false,
        }
    }
}

/// Decoded [`JtbWriter::encode_ckpt`] state.
struct WriterState {
    offset: u64,
    shards: u64,
    strings: Interner,
    index: JtbIndex,
    buf: Vec<TraceEvent>,
}

fn decode_writer_state(state: &[u8]) -> Result<WriterState, String> {
    let mut cur = Cur::new(state);
    if cur.bytes(4)? != JWS_MAGIC {
        return Err("jtb: bad writer-state magic".into());
    }
    let offset = cur.varint()?;
    let shards = cur.varint()?;
    let n_orig = cur.varint()? as usize;
    let n_all = cur.varint()? as usize;
    if n_orig > n_all {
        return Err("jtb: writer-state string counts inconsistent".into());
    }
    let mut all = Vec::with_capacity(n_all.min(state.len()));
    for _ in 0..n_all {
        let len = cur.varint()? as usize;
        let s = std::str::from_utf8(cur.bytes(len)?)
            .map_err(|_| "jtb: writer-state string not utf-8".to_string())?;
        all.push(s.to_string());
    }
    let n_pending = cur.varint()? as usize;
    let pending_defs = cur.bytes(n_pending)?.to_vec();
    let n_footer = cur.varint()? as usize;
    let mut fcur = Cur::new(cur.bytes(n_footer)?);
    if fcur.u8()? != R_FOOTER {
        return Err("jtb: writer-state index is not a footer record".into());
    }
    let index = parse_footer(&mut fcur)?;
    let n_payload = cur.varint()? as usize;
    let payload = cur.bytes(n_payload)?;
    let buf = if payload.is_empty() {
        Vec::new()
    } else {
        decode_block(payload, &all)?
    };
    if cur.remaining() != 0 {
        return Err("jtb: trailing bytes in writer state".into());
    }
    let mut strings = Interner::new();
    for s in all.into_iter().take(n_orig) {
        let id = strings.ids.len() as u64;
        strings.ids.insert(s, id);
    }
    strings.pending_defs = pending_defs;
    Ok(WriterState {
        offset,
        shards,
        strings,
        index,
        buf,
    })
}

/// A [`TraceSink`] streaming straight into a `.jtb` writer. Since
/// `record` cannot return errors, the first I/O failure is latched and
/// reported by [`WriterSink::finish`].
pub struct WriterSink<W: Write> {
    writer: Option<JtbWriter<W>>,
    error: Option<std::io::Error>,
    flush_every_ns: Option<f64>,
    last_flush_t: f64,
}

impl<W: Write> WriterSink<W> {
    /// Wrap `out` in a streaming `.jtb` sink.
    ///
    /// # Errors
    /// Propagates the header write error.
    pub fn new(out: W) -> std::io::Result<WriterSink<W>> {
        Ok(WriterSink {
            writer: Some(JtbWriter::new(out)?),
            error: None,
            flush_every_ns: None,
            last_flush_t: 0.0,
        })
    }

    /// Flush the open block and the output whenever a new invocation
    /// starts at least `sim_ns` of sim-time after the previous flush —
    /// the `--flush-every` backend. Flushes land on invocation
    /// boundaries so followers always see whole invocations; the block
    /// layout changes (blocks are cut early), but the decoded stream
    /// is identical. Off by default, keeping output byte-identical.
    pub fn set_flush_every(&mut self, sim_ns: f64) {
        self.flush_every_ns = Some(sim_ns);
    }

    /// Flush the buffered block and the output now, latching errors.
    pub fn flush_now(&mut self) {
        if self.error.is_some() {
            return;
        }
        if let Some(w) = self.writer.as_mut() {
            if let Err(e) = w.flush_now() {
                self.error = Some(e);
            }
        }
    }

    /// Begin a new shard in the underlying writer.
    pub fn begin_shard(&mut self, name: &str) {
        if self.error.is_some() {
            return;
        }
        if let Some(w) = self.writer.as_mut() {
            if let Err(e) = w.begin_shard(name) {
                self.error = Some(e);
            }
        }
    }

    /// Record sink-side drops (forwarded to the truncation record).
    pub fn note_dropped(&mut self, n: u64) {
        if let Some(w) = self.writer.as_mut() {
            w.note_dropped(n);
        }
    }

    /// Write footer + trailer, surfacing any latched record error.
    ///
    /// # Errors
    /// The first error hit by `record`, or the footer write error.
    pub fn finish(mut self) -> std::io::Result<W> {
        if let Some(e) = self.error.take() {
            return Err(e);
        }
        let writer = self.writer.take().expect("WriterSink::finish called twice");
        writer.finish()
    }

    /// Flush the underlying output and serialize resumable writer
    /// state (see [`JtbWriter::encode_ckpt`]). `None` if an I/O error
    /// is latched — the error stays latched for
    /// [`WriterSink::finish`] to report.
    pub fn ckpt_state(&mut self) -> Option<Vec<u8>> {
        if self.error.is_some() {
            return None;
        }
        let w = self.writer.as_mut()?;
        if let Err(e) = w.get_mut().flush() {
            self.error = Some(e);
            return None;
        }
        Some(w.encode_ckpt())
    }
}

impl<W: Write> TraceSink for WriterSink<W> {
    fn record(&mut self, event: TraceEvent) {
        if self.error.is_some() {
            return;
        }
        // Flush *before* pushing an invocation's first event, so the
        // flushed prefix ends exactly at the previous invocation's
        // final event — followers never see a half-invocation.
        if let Some(every) = self.flush_every_ns {
            if event.ordinal == 0 && event.at.nanos() >= self.last_flush_t + every {
                self.last_flush_t = event.at.nanos();
                self.flush_now();
                if self.error.is_some() {
                    return;
                }
            }
        }
        if let Some(w) = self.writer.as_mut() {
            if let Err(e) = w.push(event) {
                self.error = Some(e);
            }
        }
    }

    fn ckpt_state(&mut self) -> Option<Vec<u8>> {
        WriterSink::ckpt_state(self)
    }
}

/// A [`WriterSink`] over a buffered file — the `--trace out.jtb`
/// backend: the full fig6/fig7 grids stream through it in O(block)
/// memory.
pub struct FileSink {
    path: String,
    inner: WriterSink<std::io::BufWriter<std::fs::File>>,
}

impl FileSink {
    /// Create (truncate) `path` and start a `.jtb` stream on it.
    ///
    /// # Errors
    /// Propagates file-creation and header write errors.
    pub fn create(path: &str) -> std::io::Result<FileSink> {
        let file = std::fs::File::create(path)?;
        Ok(FileSink {
            path: path.to_string(),
            inner: WriterSink::new(std::io::BufWriter::new(file))?,
        })
    }

    /// The destination path.
    pub fn path(&self) -> &str {
        &self.path
    }

    /// Reopen `path` at a checkpointed writer state: the file is
    /// truncated to the state's recorded offset — discarding any
    /// bytes written after the checkpoint was taken — and appending
    /// resumes exactly where the checkpoint left off, so the finished
    /// file is byte-identical to one from an uninterrupted run.
    ///
    /// # Errors
    /// State corruption, or the file being shorter than the
    /// checkpointed offset (it was checkpointed flushed, so a later
    /// crash can only leave it longer).
    pub fn resume(path: &str, state: &[u8]) -> Result<FileSink, String> {
        use std::io::{Seek, SeekFrom};
        let st = decode_writer_state(state)?;
        let mut file = std::fs::OpenOptions::new()
            .read(true)
            .write(true)
            .open(path)
            .map_err(|e| format!("jtb: cannot reopen {path}: {e}"))?;
        let len = file
            .metadata()
            .map_err(|e| format!("jtb: cannot stat {path}: {e}"))?
            .len();
        if len < st.offset {
            return Err(format!(
                "jtb: {path} is shorter ({len} bytes) than its checkpointed offset {}",
                st.offset
            ));
        }
        file.set_len(st.offset)
            .map_err(|e| format!("jtb: cannot truncate {path}: {e}"))?;
        file.seek(SeekFrom::End(0))
            .map_err(|e| format!("jtb: cannot seek {path}: {e}"))?;
        Ok(FileSink {
            path: path.to_string(),
            inner: WriterSink {
                writer: Some(JtbWriter::from_state(std::io::BufWriter::new(file), st)),
                error: None,
                flush_every_ns: None,
                last_flush_t: 0.0,
            },
        })
    }

    /// Enable invocation-aligned flushing every `sim_ns` of sim-time
    /// (see [`WriterSink::set_flush_every`]) — the `--flush-every`
    /// flag. Not compatible with checkpoint/resume byte-identity, so
    /// callers gate it against `--ckpt`.
    pub fn set_flush_every(&mut self, sim_ns: f64) {
        self.inner.set_flush_every(sim_ns);
    }

    /// Begin a new shard.
    pub fn begin_shard(&mut self, name: &str) {
        self.inner.begin_shard(name);
    }

    /// Record sink-side drops.
    pub fn note_dropped(&mut self, n: u64) {
        self.inner.note_dropped(n);
    }

    /// Finish the stream and flush the file.
    ///
    /// # Errors
    /// Any latched record error or the footer write error.
    pub fn finish(self) -> std::io::Result<()> {
        self.inner.finish()?.flush()
    }
}

impl TraceSink for FileSink {
    fn record(&mut self, event: TraceEvent) {
        self.inner.record(event);
    }

    fn ckpt_state(&mut self) -> Option<Vec<u8>> {
        let state = self.inner.ckpt_state()?;
        // The checkpoint claims every byte below `offset` is in the
        // file; make that durable before the state escapes.
        if let Some(w) = self.inner.writer.as_mut() {
            if let Err(e) = w.get_mut().get_ref().sync_data() {
                self.inner.error = Some(e);
                return None;
            }
        }
        Some(state)
    }
}

/// Encode shards to `.jtb` bytes in one call (the batch counterpart of
/// [`FileSink`], for already-collected event vectors).
pub fn jtb_bytes(shards: &[TraceShard]) -> Vec<u8> {
    let mut w = JtbWriter::new(Vec::new()).expect("vec write cannot fail");
    for shard in shards {
        w.begin_shard(&shard.name).expect("vec write cannot fail");
        w.note_dropped(shard.dropped);
        for ev in &shard.events {
            w.push(ev.clone()).expect("vec write cannot fail");
        }
    }
    w.finish().expect("vec write cannot fail")
}

// ---------------------------------------------------------------
// Streaming reader
// ---------------------------------------------------------------

/// Streaming `.jtb` decoder: yields events one at a time, holding one
/// decoded block in memory. The footer is validated when the stream
/// ends (block/event counts must match what was actually read).
pub struct JtbStream<R: Read> {
    r: R,
    pos: u64,
    strings: Vec<String>,
    shard_names: Vec<String>,
    pending: VecDeque<TraceEvent>,
    pending_shard: usize,
    dropped: u64,
    recovered: Option<RecoveredNote>,
    blocks_read: u64,
    events_read: u64,
    footer: Option<JtbIndex>,
    done: bool,
}

impl<R: Read> JtbStream<R> {
    /// Open a stream, checking the header magic and version.
    ///
    /// # Errors
    /// "bad leading magic" / unsupported version / short read.
    pub fn new(mut r: R) -> Result<JtbStream<R>, String> {
        let mut magic = [0u8; 4];
        r.read_exact(&mut magic)
            .map_err(|e| format!("jtb: cannot read header: {e}"))?;
        if &magic != JTB_MAGIC {
            return Err("jtb: bad leading magic (not a .jtb file)".into());
        }
        let mut s = JtbStream {
            r,
            pos: 4,
            strings: Vec::new(),
            shard_names: Vec::new(),
            pending: VecDeque::new(),
            pending_shard: 0,
            dropped: 0,
            recovered: None,
            blocks_read: 0,
            events_read: 0,
            footer: None,
            done: false,
        };
        let version = s.read_varint()?;
        if version != JTB_VERSION {
            return Err(format!("jtb: unsupported version {version}"));
        }
        Ok(s)
    }

    fn read_u8(&mut self) -> Result<u8, String> {
        let mut b = [0u8; 1];
        self.r
            .read_exact(&mut b)
            .map_err(|_| "jtb: unexpected end of stream".to_string())?;
        self.pos += 1;
        Ok(b[0])
    }

    fn read_exact(&mut self, buf: &mut [u8]) -> Result<(), String> {
        self.r
            .read_exact(buf)
            .map_err(|_| "jtb: unexpected end of stream".to_string())?;
        self.pos += buf.len() as u64;
        Ok(())
    }

    fn read_varint(&mut self) -> Result<u64, String> {
        let mut v = 0u64;
        let mut shift = 0u32;
        loop {
            let b = self.read_u8()?;
            if shift >= 64 || (shift == 63 && b > 1) {
                return Err("jtb: varint overflow".into());
            }
            v |= u64::from(b & 0x7f) << shift;
            if b & 0x80 == 0 {
                return Ok(v);
            }
            shift += 7;
        }
    }

    fn read_string(&mut self) -> Result<String, String> {
        let len = self.read_varint()? as usize;
        let mut bytes = vec![0u8; len];
        self.read_exact(&mut bytes)?;
        String::from_utf8(bytes).map_err(|_| "jtb: invalid utf-8 string".into())
    }

    /// The next event with its shard index, or `None` at a validated
    /// end of stream.
    ///
    /// # Errors
    /// Any decode error, including a missing or inconsistent footer.
    pub fn next_event(&mut self) -> Result<Option<(usize, TraceEvent)>, String> {
        loop {
            if let Some(ev) = self.pending.pop_front() {
                return Ok(Some((self.pending_shard, ev)));
            }
            if self.done {
                return Ok(None);
            }
            let record_offset = self.pos;
            let tag = self.read_u8()?;
            match tag {
                R_SHARD => {
                    let name = self.read_string()?;
                    self.shard_names.push(name);
                }
                R_STRDEF => {
                    let s = self.read_string()?;
                    self.strings.push(s);
                }
                R_BLOCK => {
                    let len = self.read_varint()? as usize;
                    let mut payload = vec![0u8; len];
                    self.read_exact(&mut payload)?;
                    let events = decode_block(&payload, &self.strings)?;
                    self.blocks_read += 1;
                    self.events_read += events.len() as u64;
                    self.pending_shard = self.shard_names.len().saturating_sub(1);
                    self.pending = events.into();
                }
                R_TRUNC => {
                    self.dropped = self.read_varint()?;
                }
                R_RECOVER => {
                    let dropped_bytes = self.read_varint()?;
                    let dropped_events = self.read_varint()?;
                    self.recovered = Some(RecoveredNote {
                        dropped_bytes,
                        dropped_events,
                    });
                }
                R_FOOTER => {
                    let footer = self.read_footer()?;
                    if footer.blocks.len() as u64 != self.blocks_read
                        || footer.events != self.events_read
                    {
                        return Err(format!(
                            "jtb: footer disagrees with stream ({} blocks / {} events vs {} / {})",
                            footer.blocks.len(),
                            footer.events,
                            self.blocks_read,
                            self.events_read
                        ));
                    }
                    self.dropped = self.dropped.max(footer.dropped);
                    // The trailer must point back at this footer.
                    let mut trailer = [0u8; 12];
                    self.read_exact(&mut trailer)?;
                    let mut off = [0u8; 8];
                    off.copy_from_slice(&trailer[..8]);
                    if u64::from_le_bytes(off) != record_offset || &trailer[8..] != JTB_END_MAGIC {
                        return Err("jtb: bad trailer (truncated or corrupt file)".into());
                    }
                    self.footer = Some(footer);
                    self.done = true;
                }
                other => return Err(format!("jtb: unknown record tag 0x{other:02x}")),
            }
        }
    }

    /// Shard names seen so far (all of them once the stream ends).
    pub fn shard_names(&self) -> &[String] {
        &self.shard_names
    }

    /// Declared dropped-event count (final once the stream ends).
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// The crash-salvage marker, if this trace went through
    /// [`salvage_jtb`].
    pub fn recovered(&self) -> Option<RecoveredNote> {
        self.recovered
    }

    /// The validated footer index (available once the stream ends).
    pub fn index(&self) -> Option<&JtbIndex> {
        self.footer.as_ref()
    }

    fn read_footer(&mut self) -> Result<JtbIndex, String> {
        // Footer records are small; slurp the fixed-layout fields via
        // a byte cursor to share the parse with JtbIndex::read.
        let n_blocks = self.read_varint()? as usize;
        let mut blocks = Vec::with_capacity(n_blocks);
        for _ in 0..n_blocks {
            let offset = self.read_varint()?;
            let len = self.read_varint()?;
            let events = self.read_varint()?;
            let shard = self.read_varint()?;
            let first_seq = self.read_varint()?;
            let first_invocation = self.read_varint()?;
            let mut f = [0u8; 8];
            self.read_exact(&mut f)?;
            let t_first = f64::from_bits(u64::from_le_bytes(f));
            self.read_exact(&mut f)?;
            let t_last = f64::from_bits(u64::from_le_bytes(f));
            let mut energy_nj = [0.0; 5];
            for e in &mut energy_nj {
                self.read_exact(&mut f)?;
                *e = f64::from_bits(u64::from_le_bytes(f));
            }
            blocks.push(BlockMeta {
                offset,
                len,
                events,
                shard,
                first_seq,
                first_invocation,
                t_first,
                t_last,
                energy_nj,
            });
        }
        let shards = self.read_varint()?;
        let events = self.read_varint()?;
        let dropped = self.read_varint()?;
        Ok(JtbIndex {
            blocks,
            shards,
            events,
            dropped,
        })
    }
}

// ---------------------------------------------------------------
// Follow-mode reader
// ---------------------------------------------------------------

/// One [`JtbFollower::poll`] / [`crate::timeline::JtsFollower::poll`]
/// outcome.
#[derive(Debug, PartialEq)]
pub enum FollowStatus<T> {
    /// New complete items decoded since the previous poll.
    Events(Vec<T>),
    /// No complete new records yet — the writer is (or may still be)
    /// mid-record. A torn tail is indistinguishable from a live
    /// writer, so this never errors; poll again later.
    Idle,
    /// The footer and trailer arrived and validated: the file is
    /// complete and no further items will appear.
    End,
}

/// Whether a decode error means "ran off the end of the bytes read so
/// far" (a torn tail — retryable) rather than real corruption. The
/// shared cursor and the stream reader both funnel every short read
/// through this one message.
pub(crate) fn is_torn_tail(err: &str) -> bool {
    err.contains("unexpected end of data") || err.contains("unexpected end of stream")
}

/// Tail a growing `.jtb` file: [`JtbFollower::poll`] decodes every
/// record that has fully arrived and treats a torn tail as
/// [`FollowStatus::Idle`] instead of an error, resuming at the same
/// record boundary on the next poll. Decode state (string interner,
/// shard names, block counts) is carried across polls, so the
/// concatenation of all polled events converges to exactly the
/// [`JtbStream`] full-file fold once the writer finishes.
pub struct JtbFollower {
    file: std::fs::File,
    /// Absolute file offset of the next byte to read.
    file_pos: u64,
    /// Unconsumed bytes (the tail of a possibly-torn record).
    buf: Vec<u8>,
    /// Absolute file offset of `buf[0]`.
    buf_offset: u64,
    header_done: bool,
    strings: Vec<String>,
    shard_names: Vec<String>,
    dropped: u64,
    recovered: Option<RecoveredNote>,
    blocks_read: u64,
    events_read: u64,
    footer: Option<JtbIndex>,
    done: bool,
}

impl JtbFollower {
    /// Open `path` for tailing. The file must exist but may be empty
    /// or torn mid-record — even a partial header is just
    /// [`FollowStatus::Idle`] until more bytes land.
    ///
    /// # Errors
    /// Only filesystem errors (the path does not exist / cannot be
    /// opened); nothing is decoded yet.
    pub fn open(path: &str) -> Result<JtbFollower, String> {
        let file =
            std::fs::File::open(path).map_err(|e| format!("jtb: cannot open {path}: {e}"))?;
        Ok(JtbFollower {
            file,
            file_pos: 0,
            buf: Vec::new(),
            buf_offset: 0,
            header_done: false,
            strings: Vec::new(),
            shard_names: Vec::new(),
            dropped: 0,
            recovered: None,
            blocks_read: 0,
            events_read: 0,
            footer: None,
            done: false,
        })
    }

    /// Read any newly-appended bytes and decode every complete record.
    ///
    /// # Errors
    /// Real corruption only (bad magic, unknown tag, inconsistent
    /// footer). Short data is never an error here.
    pub fn poll(&mut self) -> Result<FollowStatus<(usize, TraceEvent)>, String> {
        use std::io::{Read as _, Seek, SeekFrom};
        if self.done {
            return Ok(FollowStatus::End);
        }
        self.file
            .seek(SeekFrom::Start(self.file_pos))
            .map_err(|e| format!("jtb: seek failed: {e}"))?;
        let mut fresh = Vec::new();
        self.file
            .read_to_end(&mut fresh)
            .map_err(|e| format!("jtb: read failed: {e}"))?;
        self.file_pos += fresh.len() as u64;
        self.buf.extend_from_slice(&fresh);

        let mut out = Vec::new();
        let mut committed = 0usize;
        loop {
            match self.parse_one(committed, &mut out) {
                Ok(Some(next)) => {
                    committed = next;
                    if self.done {
                        break;
                    }
                }
                Ok(None) => break,
                Err(e) if is_torn_tail(&e) => break,
                Err(e) => return Err(e),
            }
        }
        self.buf.drain(..committed);
        self.buf_offset += committed as u64;
        if !out.is_empty() {
            Ok(FollowStatus::Events(out))
        } else if self.done {
            Ok(FollowStatus::End)
        } else {
            Ok(FollowStatus::Idle)
        }
    }

    /// Parse one header/record starting at `from`; push decoded events
    /// to `out`. Returns the new committed offset, or `None` when the
    /// buffer is fully consumed. A torn-tail error leaves all state
    /// before `from` intact (mutations below only happen once the
    /// whole record parsed).
    fn parse_one(
        &mut self,
        from: usize,
        out: &mut Vec<(usize, TraceEvent)>,
    ) -> Result<Option<usize>, String> {
        let data = &self.buf[from..];
        if data.is_empty() {
            return Ok(None);
        }
        let mut cur = Cur::new(data);
        if !self.header_done {
            let magic = cur.bytes(4)?;
            if magic != JTB_MAGIC {
                return Err("jtb: bad leading magic (not a .jtb file)".into());
            }
            let version = cur.varint()?;
            if version != JTB_VERSION {
                return Err(format!("jtb: unsupported version {version}"));
            }
            self.header_done = true;
            return Ok(Some(from + cur.pos));
        }
        let record_offset = self.buf_offset + from as u64;
        match cur.u8()? {
            R_SHARD => {
                let name = cur_string(&mut cur)?;
                self.shard_names.push(name);
            }
            R_STRDEF => {
                let s = cur_string(&mut cur)?;
                self.strings.push(s);
            }
            R_BLOCK => {
                let len = cur.varint()? as usize;
                let payload = cur.bytes(len)?;
                let events = decode_block(payload, &self.strings)?;
                self.blocks_read += 1;
                self.events_read += events.len() as u64;
                let shard = self.shard_names.len().saturating_sub(1);
                out.extend(events.into_iter().map(|ev| (shard, ev)));
            }
            R_TRUNC => {
                self.dropped = cur.varint()?;
            }
            R_RECOVER => {
                let dropped_bytes = cur.varint()?;
                let dropped_events = cur.varint()?;
                self.recovered = Some(RecoveredNote {
                    dropped_bytes,
                    dropped_events,
                });
            }
            R_FOOTER => {
                let footer = parse_footer(&mut cur)?;
                let trailer = cur.bytes(12)?;
                let mut off = [0u8; 8];
                off.copy_from_slice(&trailer[..8]);
                if u64::from_le_bytes(off) != record_offset || &trailer[8..] != JTB_END_MAGIC {
                    return Err("jtb: bad trailer (truncated or corrupt file)".into());
                }
                if footer.blocks.len() as u64 != self.blocks_read
                    || footer.events != self.events_read
                {
                    return Err(format!(
                        "jtb: footer disagrees with stream ({} blocks / {} events vs {} / {})",
                        footer.blocks.len(),
                        footer.events,
                        self.blocks_read,
                        self.events_read
                    ));
                }
                self.dropped = self.dropped.max(footer.dropped);
                self.footer = Some(footer);
                self.done = true;
            }
            other => return Err(format!("jtb: unknown record tag 0x{other:02x}")),
        }
        Ok(Some(from + cur.pos))
    }

    /// Shard names seen so far.
    pub fn shard_names(&self) -> &[String] {
        &self.shard_names
    }

    /// Declared dropped-event count so far.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// The crash-salvage marker, if one has streamed past.
    pub fn recovered(&self) -> Option<RecoveredNote> {
        self.recovered
    }

    /// Events decoded so far.
    pub fn events_read(&self) -> u64 {
        self.events_read
    }

    /// The validated footer index, once [`FollowStatus::End`] was
    /// returned.
    pub fn index(&self) -> Option<&JtbIndex> {
        self.footer.as_ref()
    }
}

fn cur_string(cur: &mut Cur<'_>) -> Result<String, String> {
    let len = cur.varint()? as usize;
    if len > 1 << 20 {
        return Err("jtb: implausible string length".into());
    }
    String::from_utf8(cur.bytes(len)?.to_vec()).map_err(|_| "jtb: invalid utf-8 string".into())
}

impl JtbStream<std::io::BufReader<std::fs::File>> {
    /// Open `path` in follow (tail) mode: the returned
    /// [`JtbFollower`] decodes incrementally as the file grows instead
    /// of erroring at a torn tail the way a plain stream would.
    ///
    /// # Errors
    /// Filesystem errors opening the path.
    pub fn follow(path: &str) -> Result<JtbFollower, String> {
        JtbFollower::open(path)
    }
}

// ---------------------------------------------------------------
// Crash salvage
// ---------------------------------------------------------------

/// What a [`salvage_jtb`] pass kept and discarded.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SalvageReport {
    /// The input already had a valid footer and trailer; it was
    /// returned unchanged (and no salvage marker was added).
    pub already_complete: bool,
    /// Blocks kept — all decode cleanly and the last one ends on an
    /// `InvocationEnd` event.
    pub kept_blocks: u64,
    /// Events kept.
    pub kept_events: u64,
    /// Bytes discarded (torn tail plus dropped trailing blocks).
    pub dropped_bytes: u64,
    /// Fully-decoded events discarded with dropped trailing blocks.
    pub dropped_events: u64,
}

/// Salvage a crash-torn `.jtb` file: scan the valid record prefix,
/// cut trailing blocks until the kept events end on an invocation
/// boundary (`InvocationEnd`), then emit a complete file — kept bytes
/// verbatim, an explicit [`RecoveredNote`] record, and a rebuilt
/// footer + trailer. The result loads through every normal path
/// ([`load_trace_bytes`], `jem-profile`, `jem-query`, `tracecheck`)
/// as a first-class trace. A file that already ends with a valid
/// trailer is returned unchanged.
///
/// # Errors
/// Bad leading magic, an unsupported version, or a tear inside the
/// header itself — the cases where nothing is salvageable.
pub fn salvage_jtb(bytes: &[u8]) -> Result<(Vec<u8>, SalvageReport), String> {
    if !is_jtb(bytes) {
        return Err("jtb: bad leading magic (not a .jtb file)".into());
    }
    if let Ok(index) = JtbIndex::read(bytes) {
        return Ok((
            bytes.to_vec(),
            SalvageReport {
                already_complete: true,
                kept_blocks: index.blocks.len() as u64,
                kept_events: index.events,
                dropped_bytes: 0,
                dropped_events: 0,
            },
        ));
    }
    let mut cur = Cur::new(bytes);
    cur.bytes(JTB_MAGIC.len()).expect("magic checked by is_jtb");
    let version = cur
        .varint()
        .map_err(|_| "jtb: torn inside the header — nothing salvageable".to_string())?;
    if version != JTB_VERSION {
        return Err(format!("jtb: unsupported version {version}"));
    }
    let header_end = cur.pos;

    fn read_str_rec(cur: &mut Cur<'_>) -> Result<(), String> {
        let len = cur.varint()? as usize;
        let b = cur.bytes(len)?;
        std::str::from_utf8(b).map_err(|_| "jtb: invalid utf-8 string".to_string())?;
        Ok(())
    }
    fn read_strdef(cur: &mut Cur<'_>) -> Result<String, String> {
        let len = cur.varint()? as usize;
        let b = cur.bytes(len)?;
        String::from_utf8(b.to_vec()).map_err(|_| "jtb: invalid utf-8 string".into())
    }

    struct ScannedBlock {
        meta: BlockMeta,
        /// Byte offset one past the block record.
        end: usize,
        ends_invocation: bool,
    }
    let mut strings: Vec<String> = Vec::new();
    let mut shard_offsets: Vec<usize> = Vec::new();
    let mut blocks: Vec<ScannedBlock> = Vec::new();
    // Ring-eviction count from a kept R_TRUNC record (pre-footer, so
    // only present if the crash hit mid-finish), and counts from a
    // prior salvage pass to fold into the new marker.
    let mut prior_dropped = 0u64;
    let mut prior_recover = (0u64, 0u64);
    loop {
        let record_start = cur.pos;
        if cur.remaining() == 0 {
            break;
        }
        let Ok(tag) = cur.u8() else { break };
        match tag {
            R_SHARD => {
                if read_str_rec(&mut cur).is_err() {
                    break;
                }
                shard_offsets.push(record_start);
            }
            R_STRDEF => {
                let Ok(s) = read_strdef(&mut cur) else {
                    break;
                };
                strings.push(s);
            }
            R_BLOCK => {
                let parsed = cur
                    .varint()
                    .and_then(|len| cur.bytes(len as usize).map(|p| (len, p)))
                    .and_then(|(len, p)| decode_block(p, &strings).map(|evs| (len, evs)));
                let Ok((len, events)) = parsed else {
                    break;
                };
                if events.is_empty() {
                    // The writer never emits empty blocks.
                    break;
                }
                let mut energy_nj = [0.0; 5];
                for ev in &events {
                    for (i, (_, e)) in ev.delta.iter().enumerate() {
                        energy_nj[i] += e.nanojoules();
                    }
                }
                let first = &events[0];
                let last = &events[events.len() - 1];
                blocks.push(ScannedBlock {
                    meta: BlockMeta {
                        offset: record_start as u64,
                        len,
                        events: events.len() as u64,
                        shard: (shard_offsets.len() as u64).saturating_sub(1),
                        first_seq: first.seq,
                        first_invocation: first.invocation,
                        t_first: first.at.nanos(),
                        t_last: last.at.nanos(),
                        energy_nj,
                    },
                    end: cur.pos,
                    ends_invocation: matches!(last.kind, TraceEventKind::InvocationEnd { .. }),
                });
            }
            R_TRUNC => {
                let Ok(n) = cur.varint() else {
                    break;
                };
                prior_dropped = prior_dropped.max(n);
            }
            R_RECOVER => {
                let parsed = cur.varint().and_then(|b| cur.varint().map(|e| (b, e)));
                let Ok((b, e)) = parsed else {
                    break;
                };
                prior_recover.0 += b;
                prior_recover.1 += e;
            }
            // A footer without a valid trailer (or any unknown tag):
            // the tail from here on is regenerated.
            _ => {
                break;
            }
        }
    }

    // Cut trailing blocks until the kept events are a complete,
    // invocation-aligned prefix.
    let mut dropped_events = prior_recover.1;
    while blocks.last().map(|b| !b.ends_invocation).unwrap_or(false) {
        let b = blocks.pop().expect("guarded by map above");
        dropped_events += b.meta.events;
    }
    let keep_end = blocks.last().map(|b| b.end).unwrap_or(header_end);
    let dropped_bytes = (bytes.len() - keep_end) as u64 + prior_recover.0;

    let index = JtbIndex {
        blocks: blocks.iter().map(|b| b.meta.clone()).collect(),
        shards: shard_offsets.iter().filter(|&&o| o < keep_end).count() as u64,
        events: blocks.iter().map(|b| b.meta.events).sum(),
        dropped: prior_dropped,
    };
    let mut out = bytes[..keep_end].to_vec();
    if prior_dropped > 0 {
        out.push(R_TRUNC);
        put_varint(&mut out, prior_dropped);
    }
    out.push(R_RECOVER);
    put_varint(&mut out, dropped_bytes);
    put_varint(&mut out, dropped_events);
    let footer_offset = out.len() as u64;
    out.extend_from_slice(&render_footer(&index));
    out.extend_from_slice(&footer_offset.to_le_bytes());
    out.extend_from_slice(JTB_END_MAGIC);
    let report = SalvageReport {
        already_complete: false,
        kept_blocks: index.blocks.len() as u64,
        kept_events: index.events,
        dropped_bytes,
        dropped_events,
    };
    Ok((out, report))
}

// ---------------------------------------------------------------
// Unified loader (format sniffing)
// ---------------------------------------------------------------

/// A trace materialized from either format, with its truncation state
/// and (for JSON inputs) the document's declared total.
#[derive(Debug, Clone)]
pub struct LoadedTrace {
    /// The shards, input order, with per-shard events `seq`-ordered.
    pub shards: Vec<TraceShard>,
    /// Events evicted by the producing sink (0 = complete ledger).
    pub dropped: u64,
    /// `otherData.total_energy` for Chrome-trace inputs; `None` for
    /// `.jtb` (whose footer partial sums are exact by construction).
    pub declared_total: Option<EnergyBreakdown>,
    /// The crash-salvage marker for traces that went through
    /// [`salvage_jtb`]; `None` for traces written uninterrupted. The
    /// kept events are a complete, invocation-aligned prefix — every
    /// consumer can treat a recovered trace as first-class.
    pub recovered: Option<RecoveredNote>,
}

/// The explicit marker a salvaged `.jtb` carries: what the salvage
/// pass discarded after the last intact invocation-aligned block.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecoveredNote {
    /// Bytes discarded (torn tail plus dropped trailing blocks).
    pub dropped_bytes: u64,
    /// Fully-decoded events discarded with trailing blocks cut to
    /// restore invocation alignment (events inside the torn tail
    /// itself are uncountable and excluded).
    pub dropped_events: u64,
}

impl LoadedTrace {
    /// All events flattened in shard order (shard boundaries remain
    /// recoverable via [`split_shards`], since `seq` restarts at 0).
    pub fn events(&self) -> Vec<TraceEvent> {
        let mut out = Vec::with_capacity(self.shards.iter().map(|s| s.events.len()).sum());
        for s in &self.shards {
            out.extend(s.events.iter().cloned());
        }
        out
    }

    /// Total event count across shards.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.events.len()).sum()
    }

    /// Whether the trace holds no events.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Load a trace from raw bytes: `.jtb` if the magic matches, otherwise
/// Chrome-trace JSON. This is the sniffing entry point every CLI uses.
///
/// # Errors
/// The format-specific decode error.
pub fn load_trace_bytes(bytes: &[u8]) -> Result<LoadedTrace, String> {
    if is_jtb(bytes) {
        return load_jtb_bytes(bytes);
    }
    let text = std::str::from_utf8(bytes)
        .map_err(|_| "trace: input is neither .jtb (bad magic) nor UTF-8 JSON".to_string())?;
    let doc = Json::parse(text).map_err(|e| format!("trace: JSON parse error: {e}"))?;
    load_chrome_doc(&doc)
}

/// Load a `.jtb` byte buffer completely (streaming under the hood).
///
/// # Errors
/// Any decode error, including footer/trailer validation.
pub fn load_jtb_bytes(bytes: &[u8]) -> Result<LoadedTrace, String> {
    let mut stream = JtbStream::new(bytes)?;
    let mut events = Vec::new();
    while let Some((_, ev)) = stream.next_event()? {
        events.push(ev);
    }
    let names = stream.shard_names().to_vec();
    Ok(LoadedTrace {
        dropped: stream.dropped(),
        recovered: stream.recovered(),
        shards: name_shards(events, names),
        declared_total: None,
    })
}

/// Split a flattened event stream on `seq` restarts and attach the
/// declared track names. Both loaders funnel through this, so a trace
/// loads into the same shard structure whichever format carried it —
/// in particular, several runs streamed into one declared track (the
/// single-sink bench bins) split back into per-run shards. Names only
/// line up when the declared list matches the split count; otherwise
/// positional labels avoid misattributing.
fn name_shards(events: Vec<TraceEvent>, names: Vec<String>) -> Vec<TraceShard> {
    let splits: Vec<Vec<TraceEvent>> = split_shards(&events)
        .into_iter()
        .map(|s| s.to_vec())
        .collect();
    let named = names.len() == splits.len();
    splits
        .into_iter()
        .enumerate()
        .map(|(i, events)| {
            let name = if named {
                names[i].clone()
            } else {
                format!("shard-{i}")
            };
            TraceShard::new(name, events)
        })
        .collect()
}

/// Load a parsed Chrome-trace document into the unified shape.
///
/// # Errors
/// The first malformed event, or a missing `traceEvents` array.
pub fn load_chrome_doc(doc: &Json) -> Result<LoadedTrace, String> {
    let events = events_from_chrome_trace(doc)?;
    let names: Vec<String> = doc
        .get("otherData")
        .and_then(|o| o.get("shards"))
        .and_then(Json::as_array)
        .map(|arr| {
            arr.iter()
                .filter_map(Json::as_str)
                .map(str::to_string)
                .collect()
        })
        .unwrap_or_default();
    let declared_total = doc
        .get("otherData")
        .and_then(|o| o.get("total_energy"))
        .and_then(|t| breakdown_from_json(t).ok());
    Ok(LoadedTrace {
        shards: name_shards(events, names),
        dropped: dropped_from_chrome_trace(doc),
        declared_total,
        recovered: None,
    })
}

/// Read `path` (`-` = stdin) and load it with format sniffing.
///
/// # Errors
/// I/O errors (as text) or the format-specific decode error.
pub fn load_trace_path(path: &str) -> Result<LoadedTrace, String> {
    let bytes = if path == "-" {
        let mut buf = Vec::new();
        std::io::stdin()
            .read_to_end(&mut buf)
            .map_err(|e| format!("cannot read stdin: {e}"))?;
        buf
    } else {
        std::fs::read(path).map_err(|e| format!("cannot read {path}: {e}"))?
    };
    load_trace_bytes(&bytes)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn delta(c: Component, nj: f64) -> EnergyBreakdown {
        let mut b = EnergyBreakdown::new();
        b.charge(c, Energy::from_nanojoules(nj));
        b
    }

    /// One event of every kind, with awkward float values mixed in.
    fn all_kinds() -> Vec<TraceEvent> {
        let kinds = vec![
            TraceEventKind::InvocationStart {
                strategy: "AA".into(),
                method: "fe::Main.integrate".into(),
                size: 64,
                true_class: "C3".into(),
                chosen_class: "C4".into(),
            },
            TraceEventKind::DecisionEvaluated {
                k: 3,
                s_bar: 64.0,
                pa_bar_w: 0.37,
                interpret_nj: 5000.0,
                remote_nj: 1.0 / 3.0, // not milli-representable: raw path
                local_nj: [4000.0, 3500.5, f64::MAX],
                chosen: "remote".into(),
                remote_allowed: true,
            },
            TraceEventKind::CompileStart {
                level: "L2".into(),
                source: "download".into(),
            },
            TraceEventKind::CompileEnd {
                level: "L2".into(),
                source: "download".into(),
                ok: false,
            },
            TraceEventKind::TxWindow {
                bytes: 128,
                airtime: SimTime::from_nanos(2000.0),
                retransmit: false,
            },
            TraceEventKind::RxWindow {
                bytes: 4096,
                airtime: SimTime::from_micros(12.0),
            },
            TraceEventKind::PowerDown {
                duration: SimTime::from_millis(1.5),
                reason: "server-wait".into(),
            },
            TraceEventKind::EarlyWake {
                wait: SimTime::from_micros(3.0),
            },
            TraceEventKind::RetryAttempt {
                attempt: 2,
                backoff: SimTime::from_millis(100.0),
            },
            TraceEventKind::BreakerTransition {
                from: "closed".into(),
                to: "open".into(),
            },
            TraceEventKind::Fallback {
                reason: "connection-lost".into(),
            },
            TraceEventKind::Degraded {
                what: "remote-exec".into(),
            },
            TraceEventKind::Alert {
                monitor: "retry-storm".into(),
                severity: "warn".into(),
                message: "6 retries in 20 invocations".into(),
            },
            TraceEventKind::InvocationEnd {
                mode: "local/L3".into(),
                energy: Energy::from_microjoules(7.0),
                time: SimTime::from_millis(2.0),
                instructions: 987_654_321,
            },
        ];
        kinds
            .into_iter()
            .enumerate()
            .map(|(i, kind)| TraceEvent {
                seq: i as u64,
                invocation: 1 + i as u64 / 5,
                ordinal: (i as u64) % 5,
                at: SimTime::from_nanos(100.0 * i as f64 + 0.125),
                delta: delta(Component::ALL[i % 5], 0.1 * i as f64 + 1.0 / 7.0),
                kind,
            })
            .collect()
    }

    #[test]
    fn varint_and_zigzag_round_trip() {
        for v in [0u64, 1, 127, 128, 300, u64::MAX, 1 << 62] {
            let mut buf = Vec::new();
            put_varint(&mut buf, v);
            assert_eq!(Cur::new(&buf).varint().unwrap(), v);
        }
        for i in [0i64, 1, -1, 63, -64, i64::MAX, i64::MIN] {
            assert_eq!(unzigzag(zigzag(i)), i);
        }
    }

    #[test]
    fn msf_is_lossless_for_nice_and_nasty_values() {
        for v in [
            0.0,
            1.0,
            -1.0,
            0.001,
            -0.125,
            1.0 / 3.0,
            6.02e23,
            f64::MIN_POSITIVE,
            f64::MAX,
            1234.567,
        ] {
            let mut buf = Vec::new();
            put_msf(&mut buf, v);
            let back = Cur::new(&buf).msf().unwrap();
            assert_eq!(back, v, "msf round-trip of {v}");
        }
        // Nice values take the 1–3 byte path.
        let mut buf = Vec::new();
        put_msf(&mut buf, 0.0);
        assert_eq!(buf.len(), 1);
    }

    #[test]
    fn single_shard_round_trip_is_exact() {
        let events = all_kinds();
        let bytes = jtb_bytes(&[TraceShard::new("client", events.clone())]);
        let loaded = load_trace_bytes(&bytes).unwrap();
        assert_eq!(loaded.shards.len(), 1);
        assert_eq!(loaded.shards[0].name, "client");
        assert_eq!(loaded.shards[0].events, events);
        assert_eq!(loaded.dropped, 0);
    }

    #[test]
    fn multi_shard_round_trip_preserves_names_and_order() {
        let a = TraceShard::new("fe/iii", all_kinds());
        let b = TraceShard::new("kernel/i", all_kinds());
        let bytes = jtb_bytes(&[a.clone(), b.clone()]);
        let loaded = load_jtb_bytes(&bytes).unwrap();
        assert_eq!(loaded.shards.len(), 2);
        assert_eq!(loaded.shards[0].name, "fe/iii");
        assert_eq!(loaded.shards[1].name, "kernel/i");
        assert_eq!(loaded.shards[0].events, a.events);
        assert_eq!(loaded.shards[1].events, b.events);
    }

    #[test]
    fn truncation_marker_survives_round_trip() {
        let bytes = jtb_bytes(&[TraceShard::new("client", all_kinds()).with_dropped(42)]);
        let loaded = load_jtb_bytes(&bytes).unwrap();
        assert_eq!(loaded.dropped, 42);
        // And the footer-only read agrees.
        assert_eq!(JtbIndex::read(&bytes).unwrap().dropped, 42);
    }

    #[test]
    fn footer_index_partial_sums_telescope() {
        let events = all_kinds();
        let bytes = jtb_bytes(&[TraceShard::new("client", events.clone())]);
        let index = JtbIndex::read(&bytes).unwrap();
        assert_eq!(index.events, events.len() as u64);
        assert_eq!(index.shards, 1);
        assert!(!index.blocks.is_empty());
        let mut want = EnergyBreakdown::new();
        for ev in &events {
            want += ev.delta;
        }
        let got = index.total_energy();
        for (c, e) in want.iter() {
            assert!(
                (got[c].nanojoules() - e.nanojoules()).abs() <= 1e-12 * e.nanojoules().abs(),
                "component {}",
                c.name()
            );
        }
    }

    #[test]
    fn blocks_split_on_invocation_boundaries() {
        // 3 invocations × 600 events: the second block must start at
        // an ordinal-0 event even though 1024 is mid-invocation.
        let mut events = Vec::new();
        let mut seq = 0u64;
        for inv in 1..=3u64 {
            for ord in 0..600u64 {
                events.push(TraceEvent {
                    seq,
                    invocation: inv,
                    ordinal: ord,
                    at: SimTime::from_nanos(seq as f64),
                    delta: delta(Component::Core, 1.0),
                    kind: TraceEventKind::EarlyWake {
                        wait: SimTime::from_nanos(1.0),
                    },
                });
                seq += 1;
            }
        }
        let bytes = jtb_bytes(&[TraceShard::new("client", events.clone())]);
        let index = JtbIndex::read(&bytes).unwrap();
        assert!(index.blocks.len() >= 2);
        for blk in &index.blocks[1..] {
            let first = &events[blk.first_seq as usize];
            assert_eq!(first.ordinal, 0, "block must start at an invocation start");
        }
        assert_eq!(load_jtb_bytes(&bytes).unwrap().shards[0].events, events);
    }

    #[test]
    fn corrupted_header_is_rejected() {
        let mut bytes = jtb_bytes(&[TraceShard::new("client", all_kinds())]);
        bytes[0] = b'X';
        assert!(load_trace_bytes(&bytes)
            .unwrap_err()
            .contains("neither .jtb"));
        assert!(JtbIndex::read(&bytes).unwrap_err().contains("magic"));
        // A corrupt version is caught too.
        let mut bytes2 = jtb_bytes(&[TraceShard::new("client", all_kinds())]);
        bytes2[4] = 9;
        assert!(load_trace_bytes(&bytes2)
            .unwrap_err()
            .contains("unsupported version"));
    }

    #[test]
    fn truncated_file_is_rejected() {
        let bytes = jtb_bytes(&[TraceShard::new("client", all_kinds())]);
        // Chop the trailer: the stream must fail, not silently succeed.
        for cut in [bytes.len() - 1, bytes.len() - 13, bytes.len() / 2, 5] {
            let err = load_jtb_bytes(&bytes[..cut]).unwrap_err();
            assert!(
                err.contains("end of stream") || err.contains("trailer") || err.contains("jtb"),
                "cut at {cut}: {err}"
            );
        }
        assert!(JtbIndex::read(&bytes[..bytes.len() - 1]).is_err());
    }

    #[test]
    fn corrupted_footer_count_is_rejected() {
        let events = all_kinds();
        let mut w = JtbWriter::new(Vec::new()).unwrap();
        w.begin_shard("client").unwrap();
        for ev in &events {
            w.push(ev.clone()).unwrap();
        }
        // Forge the index before finish: claim one extra event.
        w.index.events += 1;
        let bytes = w.finish().unwrap();
        assert!(load_jtb_bytes(&bytes)
            .unwrap_err()
            .contains("footer disagrees"));
    }

    #[test]
    fn writer_sink_streams_like_a_ring() {
        let mut sink = WriterSink::new(Vec::new()).unwrap();
        for ev in all_kinds() {
            sink.record(ev);
        }
        let bytes = sink.finish().unwrap();
        assert_eq!(
            load_jtb_bytes(&bytes).unwrap().shards[0].events,
            all_kinds()
        );
    }

    #[test]
    fn jtb_is_much_smaller_than_chrome_json() {
        // Repeat the kind mix to amortize the string table, as a real
        // run does; the acceptance bar (≥5×) is checked end-to-end in
        // integration tests, this is the unit-level sanity version.
        let mut events = Vec::new();
        for rep in 0..50u64 {
            for mut ev in all_kinds() {
                ev.seq += rep * 14;
                ev.invocation = rep + 1;
                ev.at = SimTime::from_nanos(ev.at.nanos() + 1e5 * rep as f64);
                events.push(ev);
            }
        }
        let jtb = jtb_bytes(&[TraceShard::new("client", events.clone())]);
        let json = format!("{}\n", crate::trace::chrome_trace(&events).render());
        assert!(
            jtb.len() * 5 <= json.len(),
            ".jtb {} bytes vs JSON {} bytes",
            jtb.len(),
            json.len()
        );
    }

    /// A realistic invocation-shaped stream: `InvocationStart`, body
    /// events, `InvocationEnd`, repeated — what the runtime actually
    /// emits, and what salvage's alignment rule is defined over.
    fn invocation_stream(invocations: u64, per_inv: u64) -> Vec<TraceEvent> {
        let mut events = Vec::new();
        let mut seq = 0u64;
        for inv in 1..=invocations {
            for ord in 0..per_inv {
                let kind = if ord == 0 {
                    TraceEventKind::InvocationStart {
                        strategy: "AA".into(),
                        method: format!("fe::M{}.run", inv % 7),
                        size: 64,
                        true_class: "C3".into(),
                        chosen_class: "C4".into(),
                    }
                } else if ord == per_inv - 1 {
                    TraceEventKind::InvocationEnd {
                        mode: "local/L2".into(),
                        energy: Energy::from_nanojoules(5.0 * inv as f64),
                        time: SimTime::from_micros(2.0),
                        instructions: 100 * inv,
                    }
                } else {
                    TraceEventKind::EarlyWake {
                        wait: SimTime::from_nanos(ord as f64),
                    }
                };
                events.push(TraceEvent {
                    seq,
                    invocation: inv,
                    ordinal: ord,
                    at: SimTime::from_nanos(seq as f64 * 10.0),
                    delta: delta(Component::ALL[(seq % 5) as usize], 0.25 * ord as f64),
                    kind,
                });
                seq += 1;
            }
        }
        events
    }

    #[test]
    fn file_sink_resume_is_byte_identical() {
        let dir = std::env::temp_dir().join(format!("jem-wire-resume-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let golden_path = dir.join("golden.jtb");
        let resumed_path = dir.join("resumed.jtb");
        let events = invocation_stream(60, 30);

        let mut sink = FileSink::create(golden_path.to_str().unwrap()).unwrap();
        for ev in &events {
            sink.record(ev.clone());
        }
        sink.finish().unwrap();

        // Two kill/resume cycles: one checkpoint before any block has
        // flushed (pure buffered state) and one after the first flush
        // (interner + index state). Each "crash" writes extra events
        // past the checkpoint that resume must discard.
        let p = resumed_path.to_str().unwrap();
        let (cut1, cut2) = (700, 1300);
        let mut sink = FileSink::create(p).unwrap();
        for ev in &events[..cut1] {
            sink.record(ev.clone());
        }
        let state1 = sink.ckpt_state().unwrap();
        for ev in &events[cut1..cut1 + 90] {
            sink.record(ev.clone());
        }
        drop(sink); // crash: no finish

        let mut sink = FileSink::resume(p, &state1).unwrap();
        for ev in &events[cut1..cut2] {
            sink.record(ev.clone());
        }
        let state2 = sink.ckpt_state().unwrap();
        for ev in &events[cut2..cut2 + 90] {
            sink.record(ev.clone());
        }
        drop(sink); // crash again

        let mut sink = FileSink::resume(p, &state2).unwrap();
        for ev in &events[cut2..] {
            sink.record(ev.clone());
        }
        sink.finish().unwrap();

        assert_eq!(
            std::fs::read(&golden_path).unwrap(),
            std::fs::read(&resumed_path).unwrap(),
            "resumed stream must be byte-identical to the uninterrupted one"
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn salvage_recovers_invocation_aligned_prefix() {
        let events = invocation_stream(60, 30);
        let bytes = jtb_bytes(&[TraceShard::new("client", events.clone())]);
        assert!(load_jtb_bytes(&bytes).unwrap().recovered.is_none());

        let torn = &bytes[..bytes.len() * 2 / 3];
        assert!(load_jtb_bytes(torn).is_err(), "torn file must not load");
        let (salvaged, report) = salvage_jtb(torn).unwrap();
        assert!(!report.already_complete);
        assert!(report.kept_events > 0);
        assert!(report.dropped_bytes > 0);

        let loaded = load_jtb_bytes(&salvaged).unwrap();
        let note = loaded.recovered.expect("salvaged trace carries the marker");
        assert_eq!(note.dropped_bytes, report.dropped_bytes);
        assert_eq!(note.dropped_events, report.dropped_events);
        assert_eq!(loaded.dropped, 0, "salvage drops are not ring evictions");
        let kept = &loaded.shards[0].events;
        assert_eq!(
            kept.as_slice(),
            &events[..kept.len()],
            "kept prefix verbatim"
        );
        assert!(
            matches!(
                kept.last().unwrap().kind,
                TraceEventKind::InvocationEnd { .. }
            ),
            "kept prefix ends on an invocation boundary"
        );
        let index = JtbIndex::read(&salvaged).unwrap();
        assert_eq!(index.events, kept.len() as u64);

        let (again, rep2) = salvage_jtb(&salvaged).unwrap();
        assert!(rep2.already_complete);
        assert_eq!(
            again, salvaged,
            "salvage of a complete file is the identity"
        );
    }

    #[test]
    fn salvage_any_cut_yields_a_loadable_prefix() {
        let events = invocation_stream(20, 25);
        let bytes = jtb_bytes(&[TraceShard::new("client", events.clone())]);
        for cut in (5..bytes.len()).step_by(97) {
            let (salvaged, _) = salvage_jtb(&bytes[..cut]).unwrap();
            let loaded = load_jtb_bytes(&salvaged)
                .unwrap_or_else(|e| panic!("cut {cut}: salvaged file must load: {e}"));
            let kept = loaded.events();
            assert_eq!(kept.as_slice(), &events[..kept.len()], "cut {cut}");
        }
    }

    #[test]
    fn chrome_json_round_trips_through_loader() {
        let events = all_kinds();
        let doc = crate::trace::chrome_trace_truncated(&events, 3);
        let loaded = load_trace_bytes(doc.render().as_bytes()).unwrap();
        assert_eq!(loaded.events(), events);
        assert_eq!(loaded.dropped, 3);
        assert!(loaded.declared_total.is_some());
    }
}

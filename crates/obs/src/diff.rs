//! Differential comparison of two runs' artifacts.
//!
//! Every exported artifact in this workspace — traces, metrics,
//! `--json-out` results, profiles — is deterministic JSON, so "what
//! changed between run A and run B?" reduces to a structural diff
//! with domain smarts layered on top:
//!
//! * [`diff_json`] walks two documents and reports value-level
//!   differences (missing keys, type changes, numeric deltas outside
//!   tolerance), with noise-aware per-key thresholds so wall-clock
//!   throughput figures don't trip the gate that energy figures must;
//! * [`diff_traces`] understands trace semantics: per-method ×
//!   per-mode energy deltas (via [`TraceProfile`]), adaptive-decision
//!   *flips* — invocation k chose `remote` in A but `local/L2` in B —
//!   reported with both runs' recorded candidate energies so the
//!   *why* is in the report, and event-kind count deltas
//!   (retries/breaker trips appearing or vanishing).
//!
//! The identity property — diffing a run against itself yields an
//! empty report — holds by construction (every entry requires an
//! observed inequality) and is enforced by tests and the CI gate.

use crate::json::Json;
use crate::profile::TraceProfile;
use crate::trace::{TraceEvent, TraceEventKind};
use std::collections::BTreeMap;

/// How severe a difference is, which decides the exit code.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum DiffKind {
    /// Informational: inside the noisy-key tolerance, never fails.
    Note,
    /// A genuine difference that fails the comparison.
    Changed,
}

/// One observed difference.
#[derive(Debug, Clone)]
pub struct DiffEntry {
    /// Severity.
    pub kind: DiffKind,
    /// JSON-pointer-ish path ("results/0/mean_nj") or a semantic
    /// locus ("decision-flip shard=0 invocation=17").
    pub path: String,
    /// Human-readable description of the difference.
    pub detail: String,
    /// Relative delta for numeric differences, when defined.
    pub rel_delta: Option<f64>,
}

/// Tolerances for [`diff_json`]. The default policy is *exact*:
/// any numeric difference is a change — right for identically-seeded
/// determinism checks. Perf gating raises `rel_tol` and marks the
/// wall-clock keys noisy.
#[derive(Debug, Clone)]
pub struct DiffPolicy {
    /// Relative tolerance for numeric values (0 = exact).
    pub rel_tol: f64,
    /// Absolute floor under which numeric differences are ignored
    /// (guards `rel_tol` near zero).
    pub abs_tol: f64,
    /// Relative tolerance for keys matching [`DiffPolicy::noisy_markers`];
    /// inside it they produce [`DiffKind::Note`] entries only.
    pub noisy_rel_tol: f64,
    /// Key substrings treated as machine-dependent noise (wall-clock
    /// throughput). Matched against the final path segment.
    pub noisy_markers: Vec<String>,
    /// Key substrings skipped entirely.
    pub ignore_markers: Vec<String>,
}

impl Default for DiffPolicy {
    fn default() -> Self {
        DiffPolicy {
            rel_tol: 0.0,
            abs_tol: 0.0,
            noisy_rel_tol: 0.5,
            noisy_markers: vec![
                "wall_secs".to_string(),
                "sim_instructions_per_sec".to_string(),
                "throughput".to_string(),
            ],
            ignore_markers: Vec::new(),
        }
    }
}

impl DiffPolicy {
    /// The policy for perf gating: deterministic figures must match to
    /// `rel_tol`, machine-dependent throughput only warns inside
    /// `noisy_rel_tol`.
    pub fn perf_gate(rel_tol: f64, noisy_rel_tol: f64) -> DiffPolicy {
        DiffPolicy {
            rel_tol,
            abs_tol: 1e-9,
            noisy_rel_tol,
            ..DiffPolicy::default()
        }
    }

    fn classify(&self, path: &str) -> KeyClass {
        let leaf = path.rsplit('/').next().unwrap_or(path);
        if self
            .ignore_markers
            .iter()
            .any(|m| leaf.contains(m.as_str()))
        {
            KeyClass::Ignored
        } else if self.noisy_markers.iter().any(|m| leaf.contains(m.as_str())) {
            KeyClass::Noisy
        } else {
            KeyClass::Strict
        }
    }
}

#[derive(PartialEq)]
enum KeyClass {
    Strict,
    Noisy,
    Ignored,
}

/// The accumulated outcome of one comparison.
#[derive(Debug, Clone, Default)]
pub struct DiffReport {
    /// All entries, in discovery order.
    pub entries: Vec<DiffEntry>,
}

impl DiffReport {
    /// Whether any failing ([`DiffKind::Changed`]) entry exists.
    pub fn has_changes(&self) -> bool {
        self.entries.iter().any(|e| e.kind == DiffKind::Changed)
    }

    /// Whether the report is completely empty (no notes either).
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    fn push(&mut self, kind: DiffKind, path: String, detail: String, rel_delta: Option<f64>) {
        self.entries.push(DiffEntry {
            kind,
            path,
            detail,
            rel_delta,
        });
    }

    /// Render as the machine-readable report document
    /// (`schemas/diff-report.schema.json`).
    pub fn to_json(&self) -> Json {
        let entries: Vec<Json> = self
            .entries
            .iter()
            .map(|e| {
                let mut obj = Json::object()
                    .with(
                        "kind",
                        match e.kind {
                            DiffKind::Note => "note",
                            DiffKind::Changed => "changed",
                        },
                    )
                    .with("path", e.path.as_str())
                    .with("detail", e.detail.as_str());
                if let Some(rd) = e.rel_delta {
                    obj = obj.with("rel_delta", rd);
                }
                obj
            })
            .collect();
        Json::object()
            .with("schema", "jem-diff/v1")
            .with("changed", self.has_changes())
            .with(
                "changes",
                self.entries
                    .iter()
                    .filter(|e| e.kind == DiffKind::Changed)
                    .count() as u64,
            )
            .with(
                "notes",
                self.entries
                    .iter()
                    .filter(|e| e.kind == DiffKind::Note)
                    .count() as u64,
            )
            .with("entries", Json::Arr(entries))
    }

    /// Render a human-readable summary, one line per entry.
    pub fn render_text(&self) -> String {
        if self.is_empty() {
            return "no differences\n".to_string();
        }
        let mut out = String::new();
        for e in &self.entries {
            let tag = match e.kind {
                DiffKind::Note => "note   ",
                DiffKind::Changed => "CHANGED",
            };
            out.push_str(&format!("{tag} {}: {}\n", e.path, e.detail));
        }
        out
    }
}

/// Structurally compare two JSON documents under `policy`, appending
/// differences to `report`. Objects compare by key union, arrays
/// element-wise (length mismatch is a change).
pub fn diff_json(a: &Json, b: &Json, policy: &DiffPolicy, report: &mut DiffReport) {
    diff_json_at(a, b, policy, "", report);
}

fn diff_json_at(a: &Json, b: &Json, policy: &DiffPolicy, path: &str, report: &mut DiffReport) {
    match policy.classify(path) {
        KeyClass::Ignored => return,
        KeyClass::Noisy | KeyClass::Strict => {}
    }
    match (a, b) {
        (Json::Obj(ma), Json::Obj(mb)) => {
            let ka: Vec<&str> = ma.iter().map(|(k, _)| k.as_str()).collect();
            let kb: Vec<&str> = mb.iter().map(|(k, _)| k.as_str()).collect();
            for k in &ka {
                let child = join(path, k);
                match b.get(k) {
                    Some(bv) => diff_json_at(a.get(k).unwrap(), bv, policy, &child, report),
                    None => report.push(
                        DiffKind::Changed,
                        child,
                        "present in A, missing in B".to_string(),
                        None,
                    ),
                }
            }
            for k in kb {
                if !ka.contains(&k) {
                    report.push(
                        DiffKind::Changed,
                        join(path, k),
                        "missing in A, present in B".to_string(),
                        None,
                    );
                }
            }
        }
        (Json::Arr(xa), Json::Arr(xb)) => {
            if xa.len() != xb.len() {
                report.push(
                    DiffKind::Changed,
                    path.to_string(),
                    format!("array length {} vs {}", xa.len(), xb.len()),
                    None,
                );
            }
            for (i, (va, vb)) in xa.iter().zip(xb.iter()).enumerate() {
                diff_json_at(va, vb, policy, &join(path, &i.to_string()), report);
            }
        }
        _ => match (a.as_f64(), b.as_f64()) {
            (Some(na), Some(nb)) => {
                if na == nb {
                    return;
                }
                let denom = na
                    .abs()
                    .max(nb.abs())
                    .max(policy.abs_tol.max(f64::MIN_POSITIVE));
                let rel = (na - nb).abs() / denom;
                if (na - nb).abs() <= policy.abs_tol {
                    return;
                }
                let noisy = policy.classify(path) == KeyClass::Noisy;
                let tol = if noisy {
                    policy.noisy_rel_tol
                } else {
                    policy.rel_tol
                };
                let kind = if rel <= tol {
                    if noisy {
                        DiffKind::Note
                    } else {
                        return; // inside strict tolerance: not a difference
                    }
                } else {
                    DiffKind::Changed
                };
                report.push(
                    kind,
                    path.to_string(),
                    format!("{na} vs {nb} (rel {rel:.3e})"),
                    Some(rel),
                );
            }
            _ => {
                let ta = a.render();
                let tb = b.render();
                if ta != tb {
                    report.push(
                        DiffKind::Changed,
                        path.to_string(),
                        format!("{ta} vs {tb}"),
                        None,
                    );
                }
            }
        },
    }
}

fn join(path: &str, key: &str) -> String {
    if path.is_empty() {
        key.to_string()
    } else {
        format!("{path}/{key}")
    }
}

/// Combine a baseline-vs-N-candidates batch of comparisons into one
/// `jem-diff/v1` document. The top-level `entries` are every
/// candidate's entries with the candidate name prefixed onto the
/// path (so the combined document is itself a valid, readable
/// `jem-diff/v1` report), and a `batch` table records the baseline
/// plus per-candidate outcome counts. Shared by `jem-diff --batch`
/// and the `jem-lab` regression detector's per-line compare path.
pub fn combine_batch(baseline: &str, parts: &[(String, DiffReport)]) -> Json {
    let mut combined = DiffReport::default();
    let mut candidates = Vec::with_capacity(parts.len());
    for (name, report) in parts {
        for e in &report.entries {
            combined.entries.push(DiffEntry {
                kind: e.kind,
                path: format!("{name}/{}", e.path),
                detail: e.detail.clone(),
                rel_delta: e.rel_delta,
            });
        }
        candidates.push(
            Json::object()
                .with("name", name.as_str())
                .with("changed", report.has_changes())
                .with(
                    "changes",
                    report
                        .entries
                        .iter()
                        .filter(|e| e.kind == DiffKind::Changed)
                        .count() as u64,
                )
                .with(
                    "notes",
                    report
                        .entries
                        .iter()
                        .filter(|e| e.kind == DiffKind::Note)
                        .count() as u64,
                ),
        );
    }
    combined.to_json().with(
        "batch",
        Json::object()
            .with("baseline", baseline)
            .with("candidates", Json::Arr(candidates)),
    )
}

/// One run's decision record, for flip detection.
#[derive(Debug, Clone)]
struct Decision {
    chosen: String,
    interpret_nj: f64,
    remote_nj: f64,
    local_nj: [f64; 3],
    remote_allowed: bool,
}

fn collect_decisions(events: &[TraceEvent]) -> BTreeMap<(usize, u64, u64), Decision> {
    let mut out = BTreeMap::new();
    for (si, shard) in crate::trace::split_shards(events).into_iter().enumerate() {
        let mut ordinal: BTreeMap<u64, u64> = BTreeMap::new();
        for ev in shard {
            if let TraceEventKind::DecisionEvaluated {
                chosen,
                interpret_nj,
                remote_nj,
                local_nj,
                remote_allowed,
                ..
            } = &ev.kind
            {
                let ord = ordinal.entry(ev.invocation).or_insert(0);
                out.insert(
                    (si, ev.invocation, *ord),
                    Decision {
                        chosen: chosen.clone(),
                        interpret_nj: *interpret_nj,
                        remote_nj: *remote_nj,
                        local_nj: *local_nj,
                        remote_allowed: *remote_allowed,
                    },
                );
                *ord += 1;
            }
        }
    }
    out
}

fn kind_counts(events: &[TraceEvent]) -> BTreeMap<&'static str, u64> {
    let mut out = BTreeMap::new();
    for ev in events {
        *out.entry(ev.kind.name()).or_insert(0) += 1;
    }
    out
}

/// Semantically compare two trace streams: profile-cell energy deltas
/// (per method × mode × phase), adaptive-decision flips with both
/// runs' candidate energies, and event-kind count deltas.
pub fn diff_traces(a: &[TraceEvent], b: &[TraceEvent], policy: &DiffPolicy) -> DiffReport {
    let mut report = DiffReport::default();

    // Event-kind population: retries/breaker trips appearing or
    // vanishing is the loudest behavioural signal.
    let ca = kind_counts(a);
    let cb = kind_counts(b);
    let mut kinds: Vec<&&str> = ca.keys().chain(cb.keys()).collect();
    kinds.sort();
    kinds.dedup();
    for k in kinds {
        let na = ca.get(*k).copied().unwrap_or(0);
        let nb = cb.get(*k).copied().unwrap_or(0);
        if na != nb {
            report.push(
                DiffKind::Changed,
                format!("events/{k}"),
                format!("count {na} vs {nb}"),
                None,
            );
        }
    }

    // Decision flips, keyed by (shard, invocation, ordinal-within-
    // invocation) so retried decisions pair up positionally.
    let da = collect_decisions(a);
    let db = collect_decisions(b);
    for (key, x) in &da {
        match db.get(key) {
            Some(y) => {
                if x.chosen != y.chosen || x.remote_allowed != y.remote_allowed {
                    report.push(
                        DiffKind::Changed,
                        format!(
                            "decision-flip/shard={}/invocation={}/ordinal={}",
                            key.0, key.1, key.2
                        ),
                        format!(
                            "A chose '{}' (EI={:.1} ER={:.1} EL={:.1}/{:.1}/{:.1} remote_allowed={}), \
                             B chose '{}' (EI={:.1} ER={:.1} EL={:.1}/{:.1}/{:.1} remote_allowed={})",
                            x.chosen,
                            x.interpret_nj,
                            x.remote_nj,
                            x.local_nj[0],
                            x.local_nj[1],
                            x.local_nj[2],
                            x.remote_allowed,
                            y.chosen,
                            y.interpret_nj,
                            y.remote_nj,
                            y.local_nj[0],
                            y.local_nj[1],
                            y.local_nj[2],
                            y.remote_allowed,
                        ),
                        None,
                    );
                }
            }
            None => report.push(
                DiffKind::Changed,
                format!(
                    "decision-flip/shard={}/invocation={}/ordinal={}",
                    key.0, key.1, key.2
                ),
                "decision present in A, missing in B".to_string(),
                None,
            ),
        }
    }
    for key in db.keys() {
        if !da.contains_key(key) {
            report.push(
                DiffKind::Changed,
                format!(
                    "decision-flip/shard={}/invocation={}/ordinal={}",
                    key.0, key.1, key.2
                ),
                "decision missing in A, present in B".to_string(),
                None,
            );
        }
    }

    // Per-method / per-mode / per-phase energy deltas via the profile
    // fold — the structural diff inherits the policy's tolerances.
    let pa = TraceProfile::fold(a).to_json();
    let pb = TraceProfile::fold(b).to_json();
    let mut profile_report = DiffReport::default();
    diff_json(&pa, &pb, policy, &mut profile_report);
    for mut e in profile_report.entries {
        e.path = format!("profile/{}", e.path);
        report.entries.push(e);
    }

    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use jem_energy::{Component, Energy, EnergyBreakdown, SimTime};

    fn doc(x: f64, wall: f64) -> Json {
        Json::object()
            .with("mean_nj", x)
            .with("wall_secs", wall)
            .with("nested", Json::object().with("list", vec![1.0, 2.0, x]))
    }

    #[test]
    fn self_diff_is_empty() {
        let a = doc(1234.5, 0.7);
        let mut r = DiffReport::default();
        diff_json(&a, &a.clone(), &DiffPolicy::default(), &mut r);
        assert!(r.is_empty());
    }

    #[test]
    fn strict_keys_fail_and_noisy_keys_note() {
        let a = doc(1000.0, 1.0);
        let b = doc(1001.0, 1.2); // 0.1% energy drift, 20% wall drift
        let mut r = DiffReport::default();
        diff_json(&a, &b, &DiffPolicy::perf_gate(1e-9, 0.5), &mut r);
        assert!(r.has_changes());
        let energy = r.entries.iter().find(|e| e.path == "mean_nj").unwrap();
        assert_eq!(energy.kind, DiffKind::Changed);
        let wall = r.entries.iter().find(|e| e.path == "wall_secs").unwrap();
        assert_eq!(wall.kind, DiffKind::Note);
        // The same wall drift past the noisy tolerance fails.
        let c = doc(1000.0, 2.5);
        let mut r2 = DiffReport::default();
        diff_json(&a, &c, &DiffPolicy::perf_gate(1e-9, 0.5), &mut r2);
        let wall = r2.entries.iter().find(|e| e.path == "wall_secs").unwrap();
        assert_eq!(wall.kind, DiffKind::Changed);
    }

    #[test]
    fn structural_differences_are_reported() {
        let a = Json::object().with("x", 1.0).with("only_a", true);
        let b = Json::object().with("x", "one").with("only_b", true);
        let mut r = DiffReport::default();
        diff_json(&a, &b, &DiffPolicy::default(), &mut r);
        let paths: Vec<&str> = r.entries.iter().map(|e| e.path.as_str()).collect();
        assert!(paths.contains(&"x"));
        assert!(paths.contains(&"only_a"));
        assert!(paths.contains(&"only_b"));
        // Array length mismatches too.
        let mut r2 = DiffReport::default();
        diff_json(
            &Json::Arr(vec![Json::Num(1.0)]),
            &Json::Arr(vec![Json::Num(1.0), Json::Num(2.0)]),
            &DiffPolicy::default(),
            &mut r2,
        );
        assert!(r2.has_changes());
    }

    fn decision_event(seq: u64, invocation: u64, chosen: &str) -> TraceEvent {
        let mut d = EnergyBreakdown::new();
        d.charge(Component::Core, Energy::from_nanojoules(5.0));
        TraceEvent {
            seq,
            invocation,
            ordinal: 0,
            at: SimTime::from_nanos(seq as f64 * 10.0),
            delta: d,
            kind: TraceEventKind::DecisionEvaluated {
                k: invocation,
                s_bar: 64.0,
                pa_bar_w: 0.4,
                interpret_nj: 900.0,
                remote_nj: 700.0,
                local_nj: [400.0, 300.0, 350.0],
                chosen: chosen.to_string(),
                remote_allowed: true,
            },
        }
    }

    #[test]
    fn trace_self_diff_is_empty_and_flips_are_caught() {
        let a = vec![
            decision_event(0, 1, "remote"),
            decision_event(1, 2, "remote"),
        ];
        let r = diff_traces(&a, &a, &DiffPolicy::default());
        assert!(r.is_empty(), "self diff: {}", r.render_text());

        let b = vec![
            decision_event(0, 1, "remote"),
            decision_event(1, 2, "local/L2"),
        ];
        let r = diff_traces(&a, &b, &DiffPolicy::default());
        assert!(r.has_changes());
        let flip = r
            .entries
            .iter()
            .find(|e| e.path.starts_with("decision-flip"))
            .expect("flip entry");
        assert!(flip.detail.contains("'remote'"));
        assert!(flip.detail.contains("'local/L2'"));
        assert!(flip.detail.contains("ER=700.0"));
    }

    #[test]
    fn combine_batch_prefixes_and_counts() {
        let base = doc(1.0, 1.0);
        let same = doc(1.0, 1.0);
        let changed = doc(2.0, 1.0);
        let policy = DiffPolicy::default();
        let mut r_same = DiffReport::default();
        diff_json(&base, &same, &policy, &mut r_same);
        let mut r_changed = DiffReport::default();
        diff_json(&base, &changed, &policy, &mut r_changed);
        let combined = combine_batch(
            "baseline.json",
            &[
                ("cand-a".to_string(), r_same),
                ("cand-b".to_string(), r_changed),
            ],
        );
        assert_eq!(
            combined.get("schema").and_then(Json::as_str),
            Some("jem-diff/v1")
        );
        assert_eq!(combined.get("changed").and_then(Json::as_bool), Some(true));
        let batch = combined.get("batch").unwrap();
        assert_eq!(
            batch.get("baseline").and_then(Json::as_str),
            Some("baseline.json")
        );
        let cands = batch.get("candidates").and_then(Json::as_array).unwrap();
        assert_eq!(cands.len(), 2);
        assert_eq!(cands[0].get("changed").and_then(Json::as_bool), Some(false));
        assert_eq!(cands[1].get("changed").and_then(Json::as_bool), Some(true));
        // Entries are prefixed with the candidate name.
        let entries = combined.get("entries").and_then(Json::as_array).unwrap();
        assert!(entries.iter().all(|e| e
            .get("path")
            .and_then(Json::as_str)
            .unwrap()
            .starts_with("cand-")));
    }

    #[test]
    fn report_json_shape() {
        let a = doc(1.0, 1.0);
        let b = doc(2.0, 1.0);
        let mut r = DiffReport::default();
        diff_json(&a, &b, &DiffPolicy::default(), &mut r);
        let j = r.to_json();
        assert_eq!(j.get("schema").and_then(Json::as_str), Some("jem-diff/v1"));
        assert_eq!(j.get("changed").and_then(Json::as_bool), Some(true));
        assert!(j.get("changes").and_then(Json::as_u64).unwrap() >= 1);
        let text = r.render_text();
        assert!(text.contains("CHANGED"));
    }
}

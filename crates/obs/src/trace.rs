//! Structured sim-time event tracing.
//!
//! The runtime emits one [`TraceEvent`] per interesting step of an
//! invocation — decision evaluations, compilations, radio windows,
//! power-downs, retries, breaker transitions, fallbacks. Every event
//! is timestamped with [`SimTime`] (never wall clock: exported traces
//! from identically-seeded runs must be byte-identical) and carries
//! the [`EnergyBreakdown`] *delta* charged since the previous event,
//! so a trace doubles as an energy-conservation ledger: the per-event
//! deltas sum to the run's total breakdown.
//!
//! Sinks implement [`TraceSink`]; the default is no sink at all
//! ([`Tracer::off`]), which costs one branch per would-be event and
//! draws nothing from the RNG, so tracing cannot perturb seeded runs.
//! [`RingSink`] keeps a bounded in-memory window; [`chrome_trace`]
//! exports events in the Chrome `trace_event` JSON format that
//! Perfetto and `chrome://tracing` load directly.

use crate::json::Json;
use jem_energy::{Component, Energy, EnergyBreakdown, SimTime};
use std::collections::VecDeque;

/// What happened. String fields are stable labels (strategy keys,
/// mode names, channel classes) rather than foreign types, so this
/// crate stays below the simulator in the dependency order.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceEventKind {
    /// A top-level invocation began.
    InvocationStart {
        /// Strategy key ("AA", "AL", "R", …).
        strategy: String,
        /// Qualified potential-method label ("fe::Main.integrate") —
        /// the call-structure root the profiler attributes energy to.
        method: String,
        /// Input size parameter.
        size: u32,
        /// True channel class label.
        true_class: String,
        /// Class the pilot estimator chose.
        chosen_class: String,
    },
    /// The helper method evaluated the five candidate energies.
    DecisionEvaluated {
        /// Invocation counter `k` used in the estimates.
        k: u64,
        /// Predicted size parameter `s̄`.
        s_bar: f64,
        /// Predicted PA power `p̄` (watts).
        pa_bar_w: f64,
        /// `EI` candidate (nJ).
        interpret_nj: f64,
        /// `ER` candidate (nJ).
        remote_nj: f64,
        /// `EL1..EL3` candidates (nJ).
        local_nj: [f64; 3],
        /// The winning mode label.
        chosen: String,
        /// Whether the remote candidate was admissible (breaker).
        remote_allowed: bool,
    },
    /// A compilation began (`source` is "local" or "download").
    CompileStart {
        /// Optimization level label ("L1".."L3").
        level: String,
        /// "local" (client JIT) or "download" (remote compilation).
        source: String,
    },
    /// The matching compilation finished (or failed, for downloads).
    CompileEnd {
        /// Optimization level label.
        level: String,
        /// "local" or "download".
        source: String,
        /// Whether the compiled code was installed.
        ok: bool,
    },
    /// A radio transmit window.
    TxWindow {
        /// Wire bytes sent.
        bytes: u64,
        /// Airtime of the window.
        airtime: SimTime,
        /// Whether this was a retransmission at higher power.
        retransmit: bool,
    },
    /// A radio receive window.
    RxWindow {
        /// Wire bytes received.
        bytes: u64,
        /// Airtime of the window.
        airtime: SimTime,
    },
    /// The client powered down (leakage only) for `duration`.
    PowerDown {
        /// Length of the power-down window.
        duration: SimTime,
        /// Why ("server-wait", "backoff", "airtime", "timeout-overlap").
        reason: String,
    },
    /// The client woke before the server's result was ready and idled
    /// awake for `wait`.
    EarlyWake {
        /// Awake idle time burned at nominal power.
        wait: SimTime,
    },
    /// A remote retry is about to run.
    RetryAttempt {
        /// 1-based retry number within the invocation.
        attempt: u32,
        /// The jittered backoff nap preceding it.
        backoff: SimTime,
    },
    /// The circuit breaker changed state.
    BreakerTransition {
        /// State label before ("closed", "open", "half-open").
        from: String,
        /// State label after.
        to: String,
    },
    /// Remote execution failed for good; execution fell back locally.
    Fallback {
        /// Failure label ("connection-lost", "server-unavailable",
        /// "corrupt-response").
        reason: String,
    },
    /// The breaker forced this invocation away from a remote decision.
    Degraded {
        /// What degraded ("remote-exec" or "remote-compile").
        what: String,
    },
    /// An online monitor fired (injected by
    /// [`crate::monitor::MonitorSink`], never by the runtime itself).
    /// Alerts carry a zero energy delta, so a monitored trace remains
    /// a valid conservation ledger.
    Alert {
        /// Which invariant fired ("conservation", "negative-delta",
        /// "retry-storm", "breaker-flap", "predictor-regret").
        monitor: String,
        /// Severity label ("warn" or "critical").
        severity: String,
        /// Human-readable diagnostic.
        message: String,
    },
    /// The invocation completed.
    InvocationEnd {
        /// Mode the invocation executed in.
        mode: String,
        /// Client energy of the whole invocation.
        energy: Energy,
        /// Client wall time of the whole invocation.
        time: SimTime,
        /// Cumulative sim-instructions retired on the client machine
        /// at invocation end (a run-level counter, not per-invocation:
        /// consumers difference consecutive events for rates).
        instructions: u64,
    },
}

impl TraceEventKind {
    /// Stable kebab-case name of this event kind.
    pub fn name(&self) -> &'static str {
        match self {
            TraceEventKind::InvocationStart { .. } => "invocation-start",
            TraceEventKind::DecisionEvaluated { .. } => "decision-evaluated",
            TraceEventKind::CompileStart { .. } => "compile-start",
            TraceEventKind::CompileEnd { .. } => "compile-end",
            TraceEventKind::TxWindow { .. } => "tx-window",
            TraceEventKind::RxWindow { .. } => "rx-window",
            TraceEventKind::PowerDown { .. } => "power-down",
            TraceEventKind::EarlyWake { .. } => "early-wake",
            TraceEventKind::RetryAttempt { .. } => "retry-attempt",
            TraceEventKind::BreakerTransition { .. } => "breaker-transition",
            TraceEventKind::Fallback { .. } => "fallback",
            TraceEventKind::Degraded { .. } => "degraded",
            TraceEventKind::Alert { .. } => "alert",
            TraceEventKind::InvocationEnd { .. } => "invocation-end",
        }
    }

    /// The duration of windowed kinds (drives Chrome `X` events).
    pub fn duration(&self) -> Option<SimTime> {
        match self {
            TraceEventKind::TxWindow { airtime, .. } | TraceEventKind::RxWindow { airtime, .. } => {
                Some(*airtime)
            }
            TraceEventKind::PowerDown { duration, .. } => Some(*duration),
            TraceEventKind::EarlyWake { wait } => Some(*wait),
            _ => None,
        }
    }

    fn args_json(&self) -> Json {
        match self {
            TraceEventKind::InvocationStart {
                strategy,
                method,
                size,
                true_class,
                chosen_class,
            } => Json::object()
                .with("strategy", strategy.as_str())
                .with("method", method.as_str())
                .with("size", *size)
                .with("true_class", true_class.as_str())
                .with("chosen_class", chosen_class.as_str()),
            TraceEventKind::DecisionEvaluated {
                k,
                s_bar,
                pa_bar_w,
                interpret_nj,
                remote_nj,
                local_nj,
                chosen,
                remote_allowed,
            } => Json::object()
                .with("k", *k)
                .with("s_bar", *s_bar)
                .with("pa_bar_w", *pa_bar_w)
                .with("interpret_nj", *interpret_nj)
                .with("remote_nj", *remote_nj)
                .with("local_nj", local_nj.to_vec())
                .with("chosen", chosen.as_str())
                .with("remote_allowed", *remote_allowed),
            TraceEventKind::CompileStart { level, source } => Json::object()
                .with("level", level.as_str())
                .with("source", source.as_str()),
            TraceEventKind::CompileEnd { level, source, ok } => Json::object()
                .with("level", level.as_str())
                .with("source", source.as_str())
                .with("ok", *ok),
            TraceEventKind::TxWindow {
                bytes,
                airtime,
                retransmit,
            } => Json::object()
                .with("bytes", *bytes)
                .with("airtime_ns", airtime.nanos())
                .with("retransmit", *retransmit),
            TraceEventKind::RxWindow { bytes, airtime } => Json::object()
                .with("bytes", *bytes)
                .with("airtime_ns", airtime.nanos()),
            TraceEventKind::PowerDown { duration, reason } => Json::object()
                .with("duration_ns", duration.nanos())
                .with("reason", reason.as_str()),
            TraceEventKind::EarlyWake { wait } => Json::object().with("wait_ns", wait.nanos()),
            TraceEventKind::RetryAttempt { attempt, backoff } => Json::object()
                .with("attempt", *attempt)
                .with("backoff_ns", backoff.nanos()),
            TraceEventKind::BreakerTransition { from, to } => Json::object()
                .with("from", from.as_str())
                .with("to", to.as_str()),
            TraceEventKind::Fallback { reason } => Json::object().with("reason", reason.as_str()),
            TraceEventKind::Degraded { what } => Json::object().with("what", what.as_str()),
            TraceEventKind::Alert {
                monitor,
                severity,
                message,
            } => Json::object()
                .with("monitor", monitor.as_str())
                .with("severity", severity.as_str())
                .with("message", message.as_str()),
            TraceEventKind::InvocationEnd {
                mode,
                energy,
                time,
                instructions,
            } => Json::object()
                .with("mode", mode.as_str())
                .with("energy_nj", energy.nanojoules())
                .with("time_ns", time.nanos())
                .with("instructions", *instructions),
        }
    }

    fn from_args(name: &str, args: &Json) -> Result<TraceEventKind, String> {
        let s = |key: &str| -> Result<String, String> {
            args.get(key)
                .and_then(Json::as_str)
                .map(str::to_string)
                .ok_or_else(|| format!("{name}: missing string '{key}'"))
        };
        let n = |key: &str| -> Result<f64, String> {
            args.get(key)
                .and_then(Json::as_f64)
                .ok_or_else(|| format!("{name}: missing number '{key}'"))
        };
        let u = |key: &str| -> Result<u64, String> {
            args.get(key)
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("{name}: missing integer '{key}'"))
        };
        let b = |key: &str| -> Result<bool, String> {
            args.get(key)
                .and_then(Json::as_bool)
                .ok_or_else(|| format!("{name}: missing bool '{key}'"))
        };
        Ok(match name {
            "invocation-start" => TraceEventKind::InvocationStart {
                strategy: s("strategy")?,
                method: s("method")?,
                size: u("size")? as u32,
                true_class: s("true_class")?,
                chosen_class: s("chosen_class")?,
            },
            "decision-evaluated" => {
                let locals = args
                    .get("local_nj")
                    .and_then(Json::as_array)
                    .ok_or("decision-evaluated: missing 'local_nj'")?;
                if locals.len() != 3 {
                    return Err("decision-evaluated: local_nj must have 3 entries".into());
                }
                let mut local_nj = [0.0; 3];
                for (i, v) in locals.iter().enumerate() {
                    local_nj[i] = v.as_f64().ok_or("decision-evaluated: bad local_nj")?;
                }
                TraceEventKind::DecisionEvaluated {
                    k: u("k")?,
                    s_bar: n("s_bar")?,
                    pa_bar_w: n("pa_bar_w")?,
                    interpret_nj: n("interpret_nj")?,
                    remote_nj: n("remote_nj")?,
                    local_nj,
                    chosen: s("chosen")?,
                    remote_allowed: b("remote_allowed")?,
                }
            }
            "compile-start" => TraceEventKind::CompileStart {
                level: s("level")?,
                source: s("source")?,
            },
            "compile-end" => TraceEventKind::CompileEnd {
                level: s("level")?,
                source: s("source")?,
                ok: b("ok")?,
            },
            "tx-window" => TraceEventKind::TxWindow {
                bytes: u("bytes")?,
                airtime: SimTime::from_nanos(n("airtime_ns")?),
                retransmit: b("retransmit")?,
            },
            "rx-window" => TraceEventKind::RxWindow {
                bytes: u("bytes")?,
                airtime: SimTime::from_nanos(n("airtime_ns")?),
            },
            "power-down" => TraceEventKind::PowerDown {
                duration: SimTime::from_nanos(n("duration_ns")?),
                reason: s("reason")?,
            },
            "early-wake" => TraceEventKind::EarlyWake {
                wait: SimTime::from_nanos(n("wait_ns")?),
            },
            "retry-attempt" => TraceEventKind::RetryAttempt {
                attempt: u("attempt")? as u32,
                backoff: SimTime::from_nanos(n("backoff_ns")?),
            },
            "breaker-transition" => TraceEventKind::BreakerTransition {
                from: s("from")?,
                to: s("to")?,
            },
            "fallback" => TraceEventKind::Fallback {
                reason: s("reason")?,
            },
            "degraded" => TraceEventKind::Degraded { what: s("what")? },
            "alert" => TraceEventKind::Alert {
                monitor: s("monitor")?,
                severity: s("severity")?,
                message: s("message")?,
            },
            "invocation-end" => TraceEventKind::InvocationEnd {
                mode: s("mode")?,
                energy: Energy::from_nanojoules(n("energy_nj")?),
                time: SimTime::from_nanos(n("time_ns")?),
                instructions: u("instructions")?,
            },
            other => return Err(format!("unknown event kind '{other}'")),
        })
    }
}

/// One traced event.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// Monotonic sequence number within the run.
    pub seq: u64,
    /// 1-based index of the enclosing top-level invocation.
    pub invocation: u64,
    /// Invocation-scoped sequence number: resets to 0 at every
    /// [`Tracer::next_invocation`]. Lets block-oriented consumers (the
    /// `.jtb` wire format, monitors) align block boundaries on
    /// invocation starts without scanning for kind.
    pub ordinal: u64,
    /// Client sim-time when the event was recorded (end of the window
    /// for windowed kinds).
    pub at: SimTime,
    /// Energy charged to the client since the previous event — the
    /// conservation ledger: these deltas sum to the run's breakdown.
    pub delta: EnergyBreakdown,
    /// What happened.
    pub kind: TraceEventKind,
}

/// Serialize a breakdown as a `{component: nJ}` object plus a total.
pub fn breakdown_json(b: &EnergyBreakdown) -> Json {
    let mut obj = Json::object();
    for (c, e) in b.iter() {
        obj = obj.with(c.name(), e.nanojoules());
    }
    obj.with("total", b.total().nanojoules())
}

/// Parse a breakdown written by [`breakdown_json`] (the `total` member
/// is ignored; it is derived).
///
/// # Errors
/// A message naming the missing or mistyped component.
pub fn breakdown_from_json(v: &Json) -> Result<EnergyBreakdown, String> {
    let mut b = EnergyBreakdown::new();
    for c in Component::ALL {
        let nj = v
            .get(c.name())
            .and_then(Json::as_f64)
            .ok_or_else(|| format!("breakdown: missing component '{}'", c.name()))?;
        b.charge(c, Energy::from_nanojoules(nj));
    }
    Ok(b)
}

impl TraceEvent {
    /// The exported record format (one JSON object per event).
    pub fn to_json(&self) -> Json {
        Json::object()
            .with("seq", self.seq)
            .with("invocation", self.invocation)
            .with("ordinal", self.ordinal)
            .with("t_ns", self.at.nanos())
            .with("kind", self.kind.name())
            .with("delta_nj", breakdown_json(&self.delta))
            .with("args", self.kind.args_json())
    }

    /// Parse a record written by [`TraceEvent::to_json`].
    ///
    /// # Errors
    /// A message describing the first missing or mistyped field.
    pub fn from_json(v: &Json) -> Result<TraceEvent, String> {
        let kind_name = v
            .get("kind")
            .and_then(Json::as_str)
            .ok_or("event: missing 'kind'")?;
        let args = v.get("args").ok_or("event: missing 'args'")?;
        Ok(TraceEvent {
            seq: v
                .get("seq")
                .and_then(Json::as_u64)
                .ok_or("event: missing 'seq'")?,
            invocation: v
                .get("invocation")
                .and_then(Json::as_u64)
                .ok_or("event: missing 'invocation'")?,
            // Absent in pre-PR5 traces; 0 keeps those loadable.
            ordinal: v.get("ordinal").and_then(Json::as_u64).unwrap_or(0),
            at: SimTime::from_nanos(
                v.get("t_ns")
                    .and_then(Json::as_f64)
                    .ok_or("event: missing 't_ns'")?,
            ),
            delta: breakdown_from_json(v.get("delta_nj").ok_or("event: missing 'delta_nj'")?)?,
            kind: TraceEventKind::from_args(kind_name, args)?,
        })
    }
}

/// Destination for trace events.
pub trait TraceSink {
    /// Whether events should be produced at all. Emission sites skip
    /// every snapshot and allocation when this is false.
    fn enabled(&self) -> bool {
        true
    }
    /// Record one event.
    fn record(&mut self, event: TraceEvent);
    /// Record one event together with the machine's *cumulative*
    /// energy ledger at that instant. [`Tracer::emit`] always calls
    /// this entry point; the default drops the ledger and forwards to
    /// [`TraceSink::record`], so ordinary sinks never see it. Sinks
    /// that derive running state from the exact ledger (the timeline
    /// sampler — prefix-summing the per-event deltas re-rounds every
    /// step, so only the ledger value is bit-exact) override it.
    fn record_with_ledger(&mut self, event: TraceEvent, ledger: &EnergyBreakdown) {
        let _ = ledger;
        self.record(event);
    }
    /// Checkpoint hook: flush buffered I/O to durable storage and
    /// return an opaque serialized writer state from which the sink
    /// can later be resumed ([`crate::wire::FileSink::resume`]).
    /// Sinks that do not support crash-safe resumption return `None`
    /// (the default) — checkpointing callers must then either reject
    /// the configuration or checkpoint at coarser boundaries.
    fn ckpt_state(&mut self) -> Option<Vec<u8>> {
        None
    }
}

/// The default sink: drops everything, reports itself disabled.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullSink;

impl TraceSink for NullSink {
    fn enabled(&self) -> bool {
        false
    }
    fn record(&mut self, _event: TraceEvent) {}
}

/// A bounded in-memory ring of trace events. When full, the oldest
/// event is dropped (and counted), so long runs keep the most recent
/// window instead of growing without bound.
#[derive(Debug, Clone)]
pub struct RingSink {
    capacity: usize,
    events: VecDeque<TraceEvent>,
    recorded: u64,
    dropped: u64,
}

impl RingSink {
    /// A ring holding at most `capacity` events (min 1).
    pub fn new(capacity: usize) -> Self {
        RingSink {
            capacity: capacity.max(1),
            events: VecDeque::new(),
            recorded: 0,
            dropped: 0,
        }
    }

    /// The retained events, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &TraceEvent> {
        self.events.iter()
    }

    /// Consume the sink, returning the retained events oldest-first.
    pub fn into_events(self) -> Vec<TraceEvent> {
        self.events.into()
    }

    /// Retained event count.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether no events are retained.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Total events ever recorded (retained + dropped).
    pub fn recorded(&self) -> u64 {
        self.recorded
    }

    /// Events evicted because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }
}

impl TraceSink for RingSink {
    fn record(&mut self, event: TraceEvent) {
        if self.events.len() == self.capacity {
            self.events.pop_front();
            self.dropped += 1;
        }
        self.events.push_back(event);
        self.recorded += 1;
    }
}

impl<T: TraceSink + ?Sized> TraceSink for &mut T {
    fn enabled(&self) -> bool {
        (**self).enabled()
    }
    fn record(&mut self, event: TraceEvent) {
        (**self).record(event);
    }
    fn record_with_ledger(&mut self, event: TraceEvent, ledger: &EnergyBreakdown) {
        (**self).record_with_ledger(event, ledger);
    }
    fn ckpt_state(&mut self) -> Option<Vec<u8>> {
        (**self).ckpt_state()
    }
}

/// Serializable snapshot of a [`Tracer`]'s counters (see
/// [`Tracer::export_state`]).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct TracerState {
    /// Cumulative breakdown at the last emitted event (delta base).
    pub last: EnergyBreakdown,
    /// Next event sequence number.
    pub seq: u64,
    /// Current 1-based invocation index.
    pub invocation: u64,
    /// Next ordinal within the invocation.
    pub ordinal: u64,
}

/// The runtime's handle: an optional sink plus the delta bookkeeping.
///
/// With no sink attached every emission site reduces to one branch —
/// no snapshots, no allocation, no RNG draws — so traced and untraced
/// runs of the same seed produce bit-identical energy totals.
pub struct Tracer<'s> {
    sink: Option<&'s mut dyn TraceSink>,
    last: EnergyBreakdown,
    seq: u64,
    invocation: u64,
    ordinal: u64,
}

impl Default for Tracer<'_> {
    fn default() -> Self {
        Tracer::off()
    }
}

impl<'s> Tracer<'s> {
    /// A tracer with no sink: all emissions are no-ops.
    pub fn off() -> Tracer<'s> {
        Tracer {
            sink: None,
            last: EnergyBreakdown::new(),
            seq: 0,
            invocation: 0,
            ordinal: 0,
        }
    }

    /// A tracer feeding `sink`. A sink whose `enabled()` is false is
    /// treated exactly like no sink.
    pub fn attached(sink: &'s mut dyn TraceSink) -> Tracer<'s> {
        if sink.enabled() {
            Tracer {
                sink: Some(sink),
                last: EnergyBreakdown::new(),
                seq: 0,
                invocation: 0,
                ordinal: 0,
            }
        } else {
            Tracer::off()
        }
    }

    /// Like [`Tracer::attached`], but resuming from a checkpointed
    /// [`TracerState`]: sequence numbers, the invocation counter and
    /// the delta baseline continue exactly where the original tracer
    /// stopped.
    pub fn attached_with(sink: &'s mut dyn TraceSink, state: &TracerState) -> Tracer<'s> {
        let mut t = Tracer::attached(sink);
        if t.sink.is_some() {
            t.last = state.last;
            t.seq = state.seq;
            t.invocation = state.invocation;
            t.ordinal = state.ordinal;
        }
        t
    }

    /// Snapshot the tracer's counters and delta baseline for
    /// checkpointing (meaningful only between invocations).
    pub fn export_state(&self) -> TracerState {
        TracerState {
            last: self.last,
            seq: self.seq,
            invocation: self.invocation,
            ordinal: self.ordinal,
        }
    }

    /// Checkpoint hook pass-through to the attached sink (see
    /// [`TraceSink::ckpt_state`]); `None` when no sink is attached or
    /// the sink does not support resumption.
    pub fn sink_ckpt_state(&mut self) -> Option<Vec<u8>> {
        self.sink.as_deref_mut().and_then(|s| s.ckpt_state())
    }

    /// Whether events are being recorded. Callers may skip building
    /// event arguments when false (emission itself also checks).
    #[inline]
    pub fn enabled(&self) -> bool {
        self.sink.is_some()
    }

    /// Mark the start of the next top-level invocation; subsequent
    /// events carry its 1-based index.
    #[inline]
    pub fn next_invocation(&mut self) {
        if self.sink.is_some() {
            self.invocation += 1;
            self.ordinal = 0;
        }
    }

    /// Emit one event. `breakdown` is the machine's *cumulative*
    /// ledger at this instant; the tracer derives the per-event delta.
    #[inline]
    pub fn emit(&mut self, at: SimTime, breakdown: EnergyBreakdown, kind: TraceEventKind) {
        if let Some(sink) = self.sink.as_deref_mut() {
            let delta = breakdown - self.last;
            self.last = breakdown;
            let event = TraceEvent {
                seq: self.seq,
                invocation: self.invocation,
                ordinal: self.ordinal,
                at,
                delta,
                kind,
            };
            self.seq += 1;
            self.ordinal += 1;
            sink.record_with_ledger(event, &breakdown);
        }
    }
}

/// One independently traced event stream destined for its own thread
/// track in the exported document — e.g. one `fig7` grid cell. Shards
/// keep their own `seq` and sim-time origins; merging is deterministic
/// because shards are emitted in input order and events within a shard
/// in `seq` order.
#[derive(Debug, Clone)]
pub struct TraceShard {
    /// Track label shown by trace viewers ("fe/iii", …).
    pub name: String,
    /// The shard's events, `seq`-ordered from 0.
    pub events: Vec<TraceEvent>,
    /// Events the producing sink evicted before export (ring
    /// overflow). Non-zero means `events` is a *suffix* of the run —
    /// exports must carry this forward so truncation is never silent.
    pub dropped: u64,
}

impl TraceShard {
    /// A named shard over `events` (nothing dropped).
    pub fn new(name: impl Into<String>, events: Vec<TraceEvent>) -> TraceShard {
        TraceShard {
            name: name.into(),
            events,
            dropped: 0,
        }
    }

    /// Record that `dropped` earlier events were evicted by the sink.
    pub fn with_dropped(mut self, dropped: u64) -> TraceShard {
        self.dropped = dropped;
        self
    }
}

/// Render events as a Chrome `trace_event` JSON document — the format
/// Perfetto and `chrome://tracing` open directly. Point events become
/// instants (`ph:"i"`), windowed events become complete spans
/// (`ph:"X"`, with `ts` backdated by the window duration). Timestamps
/// are sim-time microseconds; every event's `args` carries the full
/// exported record, so the file remains a lossless conservation
/// ledger.
pub fn chrome_trace(events: &[TraceEvent]) -> Json {
    chrome_trace_truncated(events, 0)
}

/// [`chrome_trace`] for a stream whose sink evicted `dropped` events:
/// the count lands in `otherData.dropped_events` so downstream tools
/// can refuse to reconcile a partial ledger.
pub fn chrome_trace_truncated(events: &[TraceEvent], dropped: u64) -> Json {
    chrome_trace_sharded(std::slice::from_ref(
        &TraceShard::new("client", events.to_vec()).with_dropped(dropped),
    ))
}

/// Multi-shard [`chrome_trace`]: each shard becomes its own Chrome
/// thread track (tid = shard index + 1, labelled by a `thread_name`
/// metadata event), and `otherData.total_energy` telescopes over every
/// shard — the merged document stays one conservation ledger.
pub fn chrome_trace_sharded(shards: &[TraceShard]) -> Json {
    let n_events: usize = shards.iter().map(|s| s.events.len()).sum();
    let mut out = Vec::with_capacity(n_events + shards.len() + 1);
    // Process-name metadata event, so trace viewers label the track.
    out.push(
        Json::object()
            .with("name", "process_name")
            .with("ph", "M")
            .with("pid", 1u64)
            .with("tid", 1u64)
            .with("args", Json::object().with("name", "jem client (sim time)")),
    );
    let mut total = EnergyBreakdown::new();
    let mut shard_names = Vec::with_capacity(shards.len());
    for (si, shard) in shards.iter().enumerate() {
        let tid = si as u64 + 1;
        shard_names.push(Json::Str(shard.name.clone()));
        out.push(
            Json::object()
                .with("name", "thread_name")
                .with("ph", "M")
                .with("pid", 1u64)
                .with("tid", tid)
                .with("args", Json::object().with("name", shard.name.as_str())),
        );
        for ev in &shard.events {
            total += ev.delta;
            let us = ev.at.nanos() * 1e-3;
            let mut obj = Json::object().with("name", ev.kind.name());
            obj = match ev.kind.duration() {
                Some(dur) => {
                    let dur_us = dur.nanos() * 1e-3;
                    obj.with("ph", "X")
                        .with("ts", us - dur_us)
                        .with("dur", dur_us)
                }
                None => obj.with("ph", "i").with("ts", us).with("s", "t"),
            };
            out.push(
                obj.with("pid", 1u64)
                    .with("tid", tid)
                    .with("args", ev.to_json()),
            );
        }
    }
    let dropped: u64 = shards.iter().map(|s| s.dropped).sum();
    Json::object()
        .with("traceEvents", Json::Arr(out))
        .with("displayTimeUnit", "ns")
        .with(
            "otherData",
            Json::object()
                .with("events", n_events)
                .with("dropped_events", dropped)
                .with("shards", Json::Arr(shard_names))
                .with("total_energy", breakdown_json(&total)),
        )
}

/// The `otherData.dropped_events` count of a Chrome trace document
/// (0 for pre-PR5 documents that never recorded it).
pub fn dropped_from_chrome_trace(doc: &Json) -> u64 {
    doc.get("otherData")
        .and_then(|o| o.get("dropped_events"))
        .and_then(Json::as_u64)
        .unwrap_or(0)
}

/// Split a flattened event stream (e.g. re-imported via
/// [`events_from_chrome_trace`]) back into its shards: a new shard
/// starts wherever the monotonic `seq` counter restarts. A
/// single-shard stream comes back as one slice; an empty stream as
/// none.
pub fn split_shards(events: &[TraceEvent]) -> Vec<&[TraceEvent]> {
    let mut shards = Vec::new();
    let mut start = 0usize;
    for i in 1..events.len() {
        if events[i].seq <= events[i - 1].seq {
            shards.push(&events[start..i]);
            start = i;
        }
    }
    if start < events.len() {
        shards.push(&events[start..]);
    }
    shards
}

/// Extract the exported records back out of a Chrome trace document
/// (skipping metadata events). Inverse of [`chrome_trace`].
///
/// # Errors
/// A message describing the first malformed event.
pub fn events_from_chrome_trace(doc: &Json) -> Result<Vec<TraceEvent>, String> {
    let events = doc
        .get("traceEvents")
        .and_then(Json::as_array)
        .ok_or("trace: missing 'traceEvents' array")?;
    let mut out = Vec::new();
    for ev in events {
        if ev.get("ph").and_then(Json::as_str) == Some("M") {
            continue;
        }
        let args = ev.get("args").ok_or("trace: event missing 'args'")?;
        out.push(TraceEvent::from_json(args)?);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_events() -> Vec<TraceEvent> {
        let mut tracer_events = Vec::new();
        let mut b = EnergyBreakdown::new();
        b.charge(Component::Core, Energy::from_nanojoules(10.0));
        tracer_events.push(TraceEvent {
            seq: 0,
            invocation: 1,
            ordinal: 0,
            at: SimTime::from_nanos(100.0),
            delta: b,
            kind: TraceEventKind::DecisionEvaluated {
                k: 3,
                s_bar: 64.0,
                pa_bar_w: 0.37,
                interpret_nj: 5000.0,
                remote_nj: 1200.0,
                local_nj: [4000.0, 3500.0, 3600.0],
                chosen: "remote".to_string(),
                remote_allowed: true,
            },
        });
        let mut d = EnergyBreakdown::new();
        d.charge(Component::RadioTx, Energy::from_nanojoules(700.5));
        tracer_events.push(TraceEvent {
            seq: 1,
            invocation: 1,
            ordinal: 1,
            at: SimTime::from_nanos(2100.0),
            delta: d,
            kind: TraceEventKind::TxWindow {
                bytes: 128,
                airtime: SimTime::from_nanos(2000.0),
                retransmit: false,
            },
        });
        tracer_events
    }

    #[test]
    fn records_round_trip_through_json() {
        for ev in sample_events() {
            let text = ev.to_json().render();
            let back = TraceEvent::from_json(&Json::parse(&text).unwrap()).unwrap();
            assert_eq!(ev, back);
        }
    }

    #[test]
    fn every_kind_round_trips() {
        let kinds = vec![
            TraceEventKind::InvocationStart {
                strategy: "AA".into(),
                method: "fe::Main.integrate".into(),
                size: 64,
                true_class: "C3".into(),
                chosen_class: "C4".into(),
            },
            TraceEventKind::CompileStart {
                level: "L2".into(),
                source: "download".into(),
            },
            TraceEventKind::CompileEnd {
                level: "L2".into(),
                source: "download".into(),
                ok: false,
            },
            TraceEventKind::RxWindow {
                bytes: 4096,
                airtime: SimTime::from_micros(12.0),
            },
            TraceEventKind::PowerDown {
                duration: SimTime::from_millis(1.5),
                reason: "server-wait".into(),
            },
            TraceEventKind::EarlyWake {
                wait: SimTime::from_micros(3.0),
            },
            TraceEventKind::RetryAttempt {
                attempt: 2,
                backoff: SimTime::from_millis(100.0),
            },
            TraceEventKind::BreakerTransition {
                from: "closed".into(),
                to: "open".into(),
            },
            TraceEventKind::Fallback {
                reason: "connection-lost".into(),
            },
            TraceEventKind::Degraded {
                what: "remote-exec".into(),
            },
            TraceEventKind::Alert {
                monitor: "retry-storm".into(),
                severity: "warn".into(),
                message: "6 retries in 20 invocations".into(),
            },
            TraceEventKind::InvocationEnd {
                mode: "local/L3".into(),
                energy: Energy::from_microjoules(7.0),
                time: SimTime::from_millis(2.0),
                instructions: 123_456,
            },
        ];
        for kind in kinds {
            let ev = TraceEvent {
                seq: 9,
                invocation: 4,
                ordinal: 2,
                at: SimTime::from_micros(55.0),
                delta: EnergyBreakdown::new(),
                kind,
            };
            let back = TraceEvent::from_json(&ev.to_json()).unwrap();
            assert_eq!(ev, back);
        }
    }

    #[test]
    fn ring_sink_bounds_and_counts() {
        let mut ring = RingSink::new(2);
        for ev in sample_events() {
            ring.record(ev.clone());
            ring.record(ev);
        }
        assert_eq!(ring.len(), 2);
        assert_eq!(ring.recorded(), 4);
        assert_eq!(ring.dropped(), 2);
        // Oldest-first: the survivors are the last two recorded.
        assert_eq!(ring.events().next().unwrap().seq, 1);
    }

    #[test]
    fn null_sink_disables_tracer() {
        let mut null = NullSink;
        let tracer = Tracer::attached(&mut null);
        assert!(!tracer.enabled());
        let off = Tracer::off();
        assert!(!off.enabled());
    }

    #[test]
    fn tracer_computes_telescoping_deltas() {
        let mut ring = RingSink::new(16);
        {
            let mut t = Tracer::attached(&mut ring);
            t.next_invocation();
            let mut b = EnergyBreakdown::new();
            b.charge(Component::Core, Energy::from_nanojoules(5.0));
            t.emit(
                SimTime::from_nanos(1.0),
                b,
                TraceEventKind::Degraded {
                    what: "remote-exec".into(),
                },
            );
            b.charge(Component::RadioTx, Energy::from_nanojoules(3.0));
            t.emit(
                SimTime::from_nanos(2.0),
                b,
                TraceEventKind::Fallback {
                    reason: "connection-lost".into(),
                },
            );
        }
        let events = ring.into_events();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].delta.total().nanojoules(), 5.0);
        assert_eq!(events[1].delta.total().nanojoules(), 3.0);
        assert_eq!(events[0].invocation, 1);
        assert_eq!(events[1].seq, 1);
        // Ordinals count within the invocation, from 0.
        assert_eq!(events[0].ordinal, 0);
        assert_eq!(events[1].ordinal, 1);
    }

    #[test]
    fn chrome_trace_shape_and_inverse() {
        let events = sample_events();
        let doc = chrome_trace(&events);
        let arr = doc.get("traceEvents").and_then(Json::as_array).unwrap();
        // Process + thread metadata + two events.
        assert_eq!(arr.len(), 4);
        assert_eq!(arr[0].get("ph").and_then(Json::as_str), Some("M"));
        assert_eq!(arr[1].get("ph").and_then(Json::as_str), Some("M"));
        assert_eq!(arr[2].get("ph").and_then(Json::as_str), Some("i"));
        // The tx window is a complete span backdated by its airtime.
        assert_eq!(arr[3].get("ph").and_then(Json::as_str), Some("X"));
        let ts = arr[3].get("ts").and_then(Json::as_f64).unwrap();
        let dur = arr[3].get("dur").and_then(Json::as_f64).unwrap();
        assert!((ts + dur - 2.1).abs() < 1e-12);
        // Round-trip through the document text.
        let parsed = Json::parse(&doc.render_pretty()).unwrap();
        let back = events_from_chrome_trace(&parsed).unwrap();
        assert_eq!(back, events);
        // The embedded total matches the deltas.
        let total = doc
            .get("otherData")
            .and_then(|o| o.get("total_energy"))
            .and_then(|t| t.get("total"))
            .and_then(Json::as_f64)
            .unwrap();
        assert!((total - 710.5).abs() < 1e-9);
    }

    #[test]
    fn sharded_trace_merges_and_splits_back() {
        let shard_a = TraceShard::new("a", sample_events());
        let shard_b = TraceShard::new("b", sample_events());
        let doc = chrome_trace_sharded(&[shard_a.clone(), shard_b.clone()]);
        // Shard names land in otherData, every shard gets a
        // thread_name metadata event, and the total telescopes over
        // both shards.
        let names = doc
            .get("otherData")
            .and_then(|o| o.get("shards"))
            .and_then(Json::as_array)
            .unwrap();
        assert_eq!(names.len(), 2);
        assert_eq!(names[0].as_str(), Some("a"));
        let total = doc
            .get("otherData")
            .and_then(|o| o.get("total_energy"))
            .and_then(|t| t.get("total"))
            .and_then(Json::as_f64)
            .unwrap();
        assert!((total - 2.0 * 710.5).abs() < 1e-9);
        // Flattened re-import splits back at the seq restart.
        let back = events_from_chrome_trace(&doc).unwrap();
        assert_eq!(back.len(), 4);
        let shards = split_shards(&back);
        assert_eq!(shards.len(), 2);
        assert_eq!(shards[0], &shard_a.events[..]);
        assert_eq!(shards[1], &shard_b.events[..]);
        // Degenerate cases.
        assert!(split_shards(&[]).is_empty());
        assert_eq!(split_shards(&back[..2]).len(), 1);
    }
}

//! A small, dependency-free JSON value type with a deterministic
//! writer and a recursive-descent parser.
//!
//! The workspace's vendored `serde` is a no-op stub (see
//! `vendor/README.md`), so every machine-readable artifact this crate
//! emits — traces, metrics, bench results — goes through this module
//! instead. Two properties matter more here than generality:
//!
//! * **Determinism**: objects keep insertion order and numbers are
//!   formatted with Rust's shortest round-trip `f64` representation,
//!   so two identically-seeded runs serialize byte-for-byte
//!   identically (CI diffs the raw files).
//! * **Round-tripping**: `parse(render(v)) == v` for every value the
//!   simulator produces (non-finite numbers are rendered as `null`,
//!   which the simulator never produces in exported records).

use std::fmt;

/// A JSON value. Object members keep insertion order.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (always carried as `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, as ordered key/value pairs.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// An empty object.
    pub fn object() -> Json {
        Json::Obj(Vec::new())
    }

    /// Append a member to an object; panics on non-objects (builder
    /// misuse, not data errors).
    #[must_use]
    pub fn with(mut self, key: &str, value: impl Into<Json>) -> Json {
        match &mut self {
            Json::Obj(members) => members.push((key.to_string(), value.into())),
            other => panic!("Json::with on non-object {other:?}"),
        }
        self
    }

    /// Member lookup on objects (first match; `None` elsewhere).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a number, if it is one.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a `u64`, if it is a non-negative integral number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= 2f64.powi(53) => Some(*n as u64),
            _ => None,
        }
    }

    /// The value as a string slice, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a bool, if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an array slice, if it is one.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The value's members, if it is an object.
    pub fn as_object(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(members) => Some(members),
            _ => None,
        }
    }

    /// JSON type name, for error messages and schema checks.
    pub fn type_name(&self) -> &'static str {
        match self {
            Json::Null => "null",
            Json::Bool(_) => "boolean",
            Json::Num(_) => "number",
            Json::Str(_) => "string",
            Json::Arr(_) => "array",
            Json::Obj(_) => "object",
        }
    }

    /// Render as compact JSON.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Render as indented JSON (two spaces per level).
    pub fn render_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        let (nl, pad, pad_close) = match indent {
            Some(w) => ("\n", " ".repeat(w * (depth + 1)), " ".repeat(w * depth)),
            None => ("", String::new(), String::new()),
        };
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Num(n) => out.push_str(&format_number(*n)),
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(nl);
                    out.push_str(&pad);
                    item.write(out, indent, depth + 1);
                }
                out.push_str(nl);
                out.push_str(&pad_close);
                out.push(']');
            }
            Json::Obj(members) => {
                if members.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(nl);
                    out.push_str(&pad);
                    write_escaped(out, k);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    v.write(out, indent, depth + 1);
                }
                out.push_str(nl);
                out.push_str(&pad_close);
                out.push('}');
            }
        }
    }

    /// Parse a JSON document.
    ///
    /// # Errors
    /// A [`JsonError`] describing the first syntax error, with its
    /// byte offset.
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after document"));
        }
        Ok(v)
    }
}

impl From<f64> for Json {
    fn from(n: f64) -> Json {
        Json::Num(n)
    }
}

impl From<u64> for Json {
    fn from(n: u64) -> Json {
        Json::Num(n as f64)
    }
}

impl From<u32> for Json {
    fn from(n: u32) -> Json {
        Json::Num(f64::from(n))
    }
}

impl From<usize> for Json {
    fn from(n: usize) -> Json {
        Json::Num(n as f64)
    }
}

impl From<bool> for Json {
    fn from(b: bool) -> Json {
        Json::Bool(b)
    }
}

impl From<&str> for Json {
    fn from(s: &str) -> Json {
        Json::Str(s.to_string())
    }
}

impl From<String> for Json {
    fn from(s: String) -> Json {
        Json::Str(s)
    }
}

impl<T: Into<Json>> From<Vec<T>> for Json {
    fn from(items: Vec<T>) -> Json {
        Json::Arr(items.into_iter().map(Into::into).collect())
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

/// Shortest round-trip number formatting; integral values print
/// without a fractional part, non-finite values become `null`.
fn format_number(n: f64) -> String {
    if !n.is_finite() {
        return "null".to_string();
    }
    if n.fract() == 0.0 && n.abs() < 2f64.powi(53) {
        // `{:?}` would print `1.0`; JSON consumers prefer `1`.
        format!("{}", n as i64)
    } else {
        // Rust's Debug for f64 is the shortest representation that
        // round-trips, and it is valid JSON (e.g. `0.1`, `1e-9`).
        format!("{n:?}")
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A JSON syntax error with its byte offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the error in the input.
    pub offset: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, msg: &str) -> JsonError {
        JsonError {
            offset: self.pos,
            message: msg.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(members));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            let start = self.pos;
            // Consume a run of plain bytes in one go.
            while let Some(c) = self.peek() {
                if c == b'"' || c == b'\\' || c < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            s.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.err("invalid UTF-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => s.push('"'),
                        Some(b'\\') => s.push('\\'),
                        Some(b'/') => s.push('/'),
                        Some(b'n') => s.push('\n'),
                        Some(b'r') => s.push('\r'),
                        Some(b't') => s.push('\t'),
                        Some(b'b') => s.push('\u{8}'),
                        Some(b'f') => s.push('\u{c}'),
                        Some(b'u') => {
                            if self.pos + 4 >= self.bytes.len() {
                                return Err(self.err("truncated \\u escape"));
                            }
                            let hex = std::str::from_utf8(&self.bytes[self.pos + 1..self.pos + 5])
                                .map_err(|_| self.err("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            // Surrogates are not produced by our
                            // writer; map lone ones to U+FFFD.
                            s.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                _ => return Err(self.err("unterminated string")),
            }
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("bad number"))?;
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err("bad number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_compact_and_pretty() {
        let v = Json::object()
            .with("name", "fig7")
            .with("runs", 300u64)
            .with("ok", true)
            .with("items", vec![1.0, 2.5]);
        assert_eq!(
            v.render(),
            r#"{"name":"fig7","runs":300,"ok":true,"items":[1,2.5]}"#
        );
        assert!(v.render_pretty().contains("\n  \"name\": \"fig7\""));
    }

    #[test]
    fn parse_round_trips() {
        let v = Json::object()
            .with("e", 1e-9)
            .with("s", "a\"b\\c\nd")
            .with("null", Json::Null)
            .with("arr", vec![Json::Bool(false), Json::Num(-3.25)])
            .with("nested", Json::object().with("k", 42u64));
        let text = v.render();
        assert_eq!(Json::parse(&text).unwrap(), v);
        // And pretty output parses back to the same value.
        assert_eq!(Json::parse(&v.render_pretty()).unwrap(), v);
    }

    #[test]
    fn numbers_round_trip_exactly() {
        for n in [
            0.0,
            1.0,
            -1.0,
            0.1,
            1e-9,
            1.7976931348623157e308,
            5e-324,
            123456789.123456,
            -2.5e-7,
        ] {
            let text = Json::Num(n).render();
            let back = Json::parse(&text).unwrap().as_f64().unwrap();
            assert_eq!(n.to_bits(), back.to_bits(), "{n} via {text}");
        }
    }

    #[test]
    fn non_finite_becomes_null() {
        assert_eq!(Json::Num(f64::NAN).render(), "null");
        assert_eq!(Json::Num(f64::INFINITY).render(), "null");
    }

    #[test]
    fn parse_errors_have_offsets() {
        let err = Json::parse("{\"a\": }").unwrap_err();
        assert_eq!(err.offset, 6);
        assert!(Json::parse("[1,2").is_err());
        assert!(Json::parse("[] []").is_err());
        assert!(Json::parse("").is_err());
    }

    #[test]
    fn accessors() {
        let v = Json::parse(r#"{"a": 3, "b": [true, "x"]}"#).unwrap();
        assert_eq!(v.get("a").and_then(Json::as_u64), Some(3));
        let arr = v.get("b").and_then(Json::as_array).unwrap();
        assert_eq!(arr[0].as_bool(), Some(true));
        assert_eq!(arr[1].as_str(), Some("x"));
        assert_eq!(v.get("missing"), None);
        assert_eq!(v.type_name(), "object");
    }

    #[test]
    fn object_order_is_preserved() {
        let text = r#"{"z":1,"a":2,"m":3}"#;
        assert_eq!(Json::parse(text).unwrap().render(), text);
    }

    #[test]
    fn escapes_control_characters() {
        let v = Json::Str("\u{1}tab\there".to_string());
        let text = v.render();
        assert_eq!(text, "\"\\u0001tab\\there\"");
        assert_eq!(Json::parse(&text).unwrap(), v);
    }
}

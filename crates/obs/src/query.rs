//! Streaming trace queries: filter / group / aggregate an event
//! stream without materializing the run.
//!
//! The query algebra is deliberately small and closed:
//!
//! * **predicates** — event kind (exact name), method / mode / shard
//!   (substring), and a sim-time window `[since, until]` in ns;
//! * **group-by** — any subset of `{kind, method, mode, shard}`;
//! * **aggregates** — per group: event count, per-component energy
//!   sums, sim-time sum, and optionally a log-bucketed histogram of
//!   per-event energy deltas.
//!
//! Method and mode predicates apply to the *resolved* invocation
//! context — filtering `--mode remote` selects every event of remote
//! invocations (tx windows, retries, …), not just the `invocation-end`
//! that names the mode. Resolution runs on the same
//! [`InvocationResolver`] the profiler uses, so an unfiltered
//! `--group-by method,mode` query reconciles **bit-exactly** with
//! [`crate::profile::TraceProfile::method_mode_rows`] (group sums are
//! accumulated per profile cell and merged in the profiler's own
//! cell order — property-tested in `crates/core`).
//!
//! Memory is O(one invocation + groups); the `jem-query` bin feeds
//! this from a [`crate::wire::JtbStream`] so whole-run buffering never
//! happens on the binary path.

use crate::json::Json;
use crate::metrics::{Buckets, Histogram};
use crate::profile::{InvocationResolver, ResolvedEvent};
use crate::trace::{breakdown_json, TraceEvent};
use jem_energy::{EnergyBreakdown, SimTime};
use std::collections::BTreeMap;

/// A dimension events can be grouped by.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GroupKey {
    /// Event kind name ("tx-window", …).
    Kind,
    /// Resolved method label of the enclosing invocation.
    Method,
    /// Resolved execution mode of the enclosing invocation.
    Mode,
    /// Shard name.
    Shard,
}

impl GroupKey {
    /// Parse a key name as used on the CLI.
    ///
    /// # Errors
    /// Names the unknown key.
    pub fn parse(s: &str) -> Result<GroupKey, String> {
        Ok(match s {
            "kind" => GroupKey::Kind,
            "method" => GroupKey::Method,
            "mode" => GroupKey::Mode,
            "shard" => GroupKey::Shard,
            other => {
                return Err(format!(
                    "unknown group key '{other}' (kind|method|mode|shard)"
                ))
            }
        })
    }

    /// The CLI / column name.
    pub fn name(self) -> &'static str {
        match self {
            GroupKey::Kind => "kind",
            GroupKey::Method => "method",
            GroupKey::Mode => "mode",
            GroupKey::Shard => "shard",
        }
    }
}

/// A compiled query: predicates plus the group-by spec.
#[derive(Debug, Clone, Default)]
pub struct Query {
    /// Exact kind names to keep (empty = all kinds).
    pub kinds: Vec<String>,
    /// Substring the resolved method must contain.
    pub method: Option<String>,
    /// Substring the resolved mode must contain.
    pub mode: Option<String>,
    /// Substring the shard name must contain.
    pub shard: Option<String>,
    /// Inclusive lower sim-time bound (ns).
    pub since_ns: Option<f64>,
    /// Inclusive upper sim-time bound (ns).
    pub until_ns: Option<f64>,
    /// Group-by dimensions, output-column order.
    pub group_by: Vec<GroupKey>,
    /// Attach a per-group histogram of per-event energy deltas (nJ).
    pub histogram: bool,
}

/// Log buckets for the per-event energy-delta histogram: 0.1 nJ … 10 J
/// in decades, wide enough for every event this simulator emits.
fn energy_buckets() -> Buckets {
    Buckets::log(0.1, 10.0, 12)
}

/// Aggregates of one group.
#[derive(Debug, Clone)]
pub struct GroupStats {
    /// Matching events.
    pub count: u64,
    /// Per-component energy-delta sums.
    pub energy: EnergyBreakdown,
    /// Sim-time sum (inter-event deltas of matching events).
    pub time: SimTime,
    /// Per-event energy-delta histogram, when requested.
    pub histogram: Option<Histogram>,
}

impl GroupStats {
    fn new(histogram: bool) -> GroupStats {
        GroupStats {
            count: 0,
            energy: EnergyBreakdown::new(),
            time: SimTime::ZERO,
            histogram: histogram.then(|| Histogram::new(&energy_buckets())),
        }
    }

    fn absorb(&mut self, delta: EnergyBreakdown, dt: SimTime) {
        self.count += 1;
        self.energy += delta;
        self.time += dt;
        if let Some(h) = self.histogram.as_mut() {
            h.observe(delta.total().nanojoules());
        }
    }

    fn merge(&mut self, other: &GroupStats) {
        self.count += other.count;
        self.energy += other.energy;
        self.time += other.time;
        if let (Some(a), Some(b)) = (self.histogram.as_mut(), other.histogram.as_ref()) {
            a.merge(b);
        }
    }
}

/// One output row: the group-key values (one per `group_by` entry; a
/// single empty key when no grouping was requested) and the stats.
#[derive(Debug, Clone)]
pub struct QueryRow {
    /// Key values, aligned with the query's `group_by`.
    pub key: Vec<String>,
    /// The group's aggregates.
    pub stats: GroupStats,
}

/// The result of running a query over a stream.
#[derive(Debug, Clone)]
pub struct QueryResult {
    /// The group-by spec the rows are keyed by.
    pub group_by: Vec<GroupKey>,
    /// Rows in deterministic (lexicographic key) order.
    pub rows: Vec<QueryRow>,
    /// Events scanned (before predicates).
    pub scanned: u64,
    /// Events matched (after predicates).
    pub matched: u64,
    /// Dropped-event count reported by the source (truncated trace).
    pub dropped: u64,
}

/// Streaming query evaluator. Feed raw events with
/// [`QueryEngine::push`] (shard names via
/// [`QueryEngine::name_shard`]), then [`QueryEngine::finish`].
pub struct QueryEngine {
    query: Query,
    resolver: InvocationResolver,
    shard_names: Vec<String>,
    /// Group accumulators keyed `(group key, profile stack)`. The
    /// second level mirrors the profiler's cells so that merging in
    /// iteration order reproduces `method_mode_rows` sums bit-exactly
    /// (same additions, same order).
    cells: BTreeMap<(Vec<String>, Vec<String>), GroupStats>,
    scanned: u64,
    matched: u64,
    dropped: u64,
}

impl QueryEngine {
    /// An engine for `query`.
    pub fn new(query: Query) -> QueryEngine {
        QueryEngine {
            query,
            resolver: InvocationResolver::new(),
            shard_names: Vec::new(),
            cells: BTreeMap::new(),
            scanned: 0,
            matched: 0,
            dropped: 0,
        }
    }

    /// Name the shard with ordinal `idx` (unnamed shards render as
    /// `shard-N`).
    pub fn name_shard(&mut self, idx: usize, name: &str) {
        while self.shard_names.len() <= idx {
            let n = self.shard_names.len();
            self.shard_names.push(format!("shard-{n}"));
        }
        self.shard_names[idx] = name.to_string();
    }

    /// Record the source's dropped-event count (surfaced in the
    /// result so truncation is visible in query output too).
    pub fn note_dropped(&mut self, n: u64) {
        self.dropped = n;
    }

    /// Feed the next raw event.
    pub fn push(&mut self, ev: TraceEvent) {
        self.scanned += 1;
        self.resolver.push(ev);
        self.drain();
    }

    fn drain(&mut self) {
        while let Some(r) = self.resolver.next_resolved() {
            self.absorb(r);
        }
    }

    fn shard_name(&self, idx: usize) -> String {
        self.shard_names
            .get(idx)
            .cloned()
            .unwrap_or_else(|| format!("shard-{idx}"))
    }

    fn absorb(&mut self, r: ResolvedEvent) {
        let q = &self.query;
        if !q.kinds.is_empty() && !q.kinds.iter().any(|k| k == r.event.kind.name()) {
            return;
        }
        if let Some(m) = &q.method {
            if !r.method.contains(m.as_str()) {
                return;
            }
        }
        if let Some(m) = &q.mode {
            if !r.mode.contains(m.as_str()) {
                return;
            }
        }
        let shard_name = self.shard_name(r.shard);
        if let Some(s) = &q.shard {
            if !shard_name.contains(s.as_str()) {
                return;
            }
        }
        let at = r.event.at.nanos();
        if q.since_ns.is_some_and(|t| at < t) || q.until_ns.is_some_and(|t| at > t) {
            return;
        }
        self.matched += 1;
        let key: Vec<String> = q
            .group_by
            .iter()
            .map(|k| match k {
                GroupKey::Kind => r.event.kind.name().to_string(),
                GroupKey::Method => r.method.clone(),
                GroupKey::Mode => r.mode.clone(),
                GroupKey::Shard => shard_name.clone(),
            })
            .collect();
        let histogram = q.histogram;
        self.cells
            .entry((key, r.stack()))
            .or_insert_with(|| GroupStats::new(histogram))
            .absorb(r.event.delta, r.dt);
    }

    /// Flush the tail invocation and produce the sorted result.
    pub fn finish(mut self) -> QueryResult {
        self.resolver.finish();
        self.drain();
        // Merge the per-stack cells into their groups in BTreeMap
        // (lexicographic) order — the profiler's own merge order.
        let mut groups: BTreeMap<Vec<String>, GroupStats> = BTreeMap::new();
        let histogram = self.query.histogram;
        for ((key, _stack), stats) in &self.cells {
            groups
                .entry(key.clone())
                .or_insert_with(|| GroupStats::new(histogram))
                .merge(stats);
        }
        let rows = groups
            .into_iter()
            .map(|(key, stats)| QueryRow { key, stats })
            .collect();
        QueryResult {
            group_by: self.query.group_by.clone(),
            rows,
            scanned: self.scanned,
            matched: self.matched,
            dropped: self.dropped,
        }
    }
}

impl QueryResult {
    /// Deterministic fixed-width text table.
    pub fn render_text(&self) -> String {
        let key_header = if self.group_by.is_empty() {
            "(all)".to_string()
        } else {
            self.group_by
                .iter()
                .map(|k| k.name())
                .collect::<Vec<_>>()
                .join(" / ")
        };
        let mut lines = Vec::new();
        lines.push(format!(
            "{:<44} {:>10} {:>14} {:>14} {:>14}",
            key_header, "events", "energy uJ", "radio uJ", "time ms"
        ));
        for row in &self.rows {
            let key = if row.key.is_empty() {
                "(all)".to_string()
            } else {
                row.key.join(" / ")
            };
            let radio = row.stats.energy.total() - row.stats.energy.computation();
            lines.push(format!(
                "{:<44} {:>10} {:>14.3} {:>14.3} {:>14.4}",
                key,
                row.stats.count,
                row.stats.energy.total().microjoules(),
                radio.microjoules(),
                row.stats.time.millis(),
            ));
        }
        for row in &self.rows {
            if let Some(h) = &row.stats.histogram {
                let key = if row.key.is_empty() {
                    "(all)".to_string()
                } else {
                    row.key.join(" / ")
                };
                lines.push(format!(
                    "hist {key}: n={} mean={:.3} nJ min={:.3} max={:.3}",
                    h.count(),
                    h.mean(),
                    h.min(),
                    h.max()
                ));
                for (bound, cum) in h.cumulative() {
                    if bound.is_finite() {
                        lines.push(format!("  le {bound:>14.1} nJ: {cum}"));
                    } else {
                        lines.push(format!("  le           +Inf nJ: {cum}"));
                    }
                }
            }
        }
        lines.push(format!(
            "scanned {} events, matched {}{}",
            self.scanned,
            self.matched,
            if self.dropped > 0 {
                format!(
                    " — WARNING: trace truncated ({} events dropped)",
                    self.dropped
                )
            } else {
                String::new()
            }
        ));
        lines.join("\n")
    }

    /// Machine-readable result document.
    pub fn to_json(&self) -> Json {
        let rows: Vec<Json> = self
            .rows
            .iter()
            .map(|row| {
                let mut obj = Json::object();
                let mut key_obj = Json::object();
                for (k, v) in self.group_by.iter().zip(&row.key) {
                    key_obj = key_obj.with(k.name(), v.as_str());
                }
                obj = obj
                    .with("key", key_obj)
                    .with("events", row.stats.count)
                    .with("energy_nj", breakdown_json(&row.stats.energy))
                    .with("time_ns", row.stats.time.nanos());
                if let Some(h) = &row.stats.histogram {
                    let buckets: Vec<Json> = h
                        .cumulative()
                        .into_iter()
                        .map(|(bound, cum)| {
                            Json::object()
                                .with(
                                    "le",
                                    if bound.is_finite() {
                                        Json::Num(bound)
                                    } else {
                                        Json::Str("+Inf".to_string())
                                    },
                                )
                                .with("cumulative", cum)
                        })
                        .collect();
                    obj = obj.with(
                        "histogram",
                        Json::object()
                            .with("count", h.count())
                            .with("sum_nj", h.sum())
                            .with("buckets", Json::Arr(buckets)),
                    );
                }
                obj
            })
            .collect();
        Json::object()
            .with("schema", "jem-query/v1")
            .with(
                "group_by",
                Json::Arr(
                    self.group_by
                        .iter()
                        .map(|k| Json::Str(k.name().to_string()))
                        .collect(),
                ),
            )
            .with("scanned", self.scanned)
            .with("matched", self.matched)
            .with("dropped", self.dropped)
            .with("rows", Json::Arr(rows))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::TraceEventKind;
    use jem_energy::{Component, Energy};

    fn delta(c: Component, nj: f64) -> EnergyBreakdown {
        let mut b = EnergyBreakdown::new();
        b.charge(c, Energy::from_nanojoules(nj));
        b
    }

    fn ev(seq: u64, at_ns: f64, d: EnergyBreakdown, kind: TraceEventKind) -> TraceEvent {
        TraceEvent {
            seq,
            invocation: 1,
            ordinal: seq,
            at: SimTime::from_nanos(at_ns),
            delta: d,
            kind,
        }
    }

    fn stream() -> Vec<TraceEvent> {
        vec![
            ev(
                0,
                10.0,
                delta(Component::Core, 1.0),
                TraceEventKind::InvocationStart {
                    strategy: "AA".into(),
                    method: "fe::Main.integrate".into(),
                    size: 64,
                    true_class: "C3".into(),
                    chosen_class: "C3".into(),
                },
            ),
            ev(
                1,
                30.0,
                delta(Component::RadioTx, 40.0),
                TraceEventKind::TxWindow {
                    bytes: 64,
                    airtime: SimTime::from_nanos(20.0),
                    retransmit: false,
                },
            ),
            ev(
                2,
                60.0,
                delta(Component::Core, 9.0),
                TraceEventKind::InvocationEnd {
                    mode: "remote".into(),
                    energy: Energy::from_nanojoules(49.0),
                    time: SimTime::from_nanos(50.0),
                    instructions: 500,
                },
            ),
        ]
    }

    fn run(query: Query, events: &[TraceEvent]) -> QueryResult {
        let mut engine = QueryEngine::new(query);
        engine.name_shard(0, "client");
        for e in events {
            engine.push(e.clone());
        }
        engine.finish()
    }

    #[test]
    fn ungrouped_query_totals_the_stream() {
        let r = run(Query::default(), &stream());
        assert_eq!(r.rows.len(), 1);
        assert_eq!(r.rows[0].stats.count, 3);
        assert_eq!(r.scanned, 3);
        assert_eq!(r.matched, 3);
        assert!((r.rows[0].stats.energy.total().nanojoules() - 50.0).abs() < 1e-12);
        assert!((r.rows[0].stats.time.nanos() - 60.0).abs() < 1e-12);
    }

    #[test]
    fn mode_filter_selects_whole_invocations() {
        // The tx-window event itself carries no mode; resolution must
        // attach the invocation's "remote" so the filter keeps it.
        let r = run(
            Query {
                mode: Some("remote".into()),
                kinds: vec!["tx-window".into()],
                ..Query::default()
            },
            &stream(),
        );
        assert_eq!(r.matched, 1);
        assert!((r.rows[0].stats.energy.total().nanojoules() - 40.0).abs() < 1e-12);
    }

    #[test]
    fn group_by_kind_is_deterministic_and_complete() {
        let r = run(
            Query {
                group_by: vec![GroupKey::Kind],
                ..Query::default()
            },
            &stream(),
        );
        let keys: Vec<&str> = r.rows.iter().map(|row| row.key[0].as_str()).collect();
        assert_eq!(keys, ["invocation-end", "invocation-start", "tx-window"]);
        let total: f64 = r
            .rows
            .iter()
            .map(|row| row.stats.energy.total().nanojoules())
            .sum();
        assert!((total - 50.0).abs() < 1e-12);
    }

    #[test]
    fn time_window_filters_inclusively() {
        let r = run(
            Query {
                since_ns: Some(30.0),
                until_ns: Some(30.0),
                ..Query::default()
            },
            &stream(),
        );
        assert_eq!(r.matched, 1);
    }

    #[test]
    fn histogram_rows_carry_cumulative_buckets() {
        let r = run(
            Query {
                histogram: true,
                ..Query::default()
            },
            &stream(),
        );
        let h = r.rows[0].stats.histogram.as_ref().expect("histogram");
        assert_eq!(h.count(), 3);
        let text = r.render_text();
        assert!(text.contains("hist"));
        let doc = r.to_json();
        assert!(doc
            .get("rows")
            .and_then(Json::as_array)
            .and_then(|rows| rows[0].get("histogram"))
            .is_some());
    }

    #[test]
    fn dropped_count_surfaces_in_output() {
        let mut engine = QueryEngine::new(Query::default());
        for e in stream() {
            engine.push(e);
        }
        engine.note_dropped(7);
        let r = engine.finish();
        assert_eq!(r.dropped, 7);
        assert!(r.render_text().contains("truncated (7 events dropped)"));
        assert_eq!(r.to_json().get("dropped").and_then(Json::as_u64), Some(7));
    }
}

//! `jem-lab` — a cross-run experiment archive with regression
//! analytics and self-contained HTML reports.
//!
//! Every other observability layer in this crate looks at *one* run;
//! this module turns N runs into an experiment. It provides
//!
//! * a **content-addressed, file-based archive**: a run's artifacts
//!   (`BENCH_*.json`, `.jtb` traces, `.jts` timelines, `jem-health/v1`
//!   reports, Prometheus metrics) are stored as SHA-256-addressed
//!   blobs under a manifest keyed by a deterministic **run
//!   fingerprint** over (bin, identity args, seed, schema versions).
//!   Re-ingesting the identical run deduplicates the blobs and
//!   appends a new *generation* to the fingerprint's history line;
//! * a **cross-run query engine** ([`query`]): select any timeline
//!   series or any energy-breakdown column (JSON path with `*`
//!   wildcards) across all archived runs, group by fingerprint / bin /
//!   args, and reduce with Welford summaries — per-run summaries are
//!   folded into group summaries with [`Summary::merge`], the same
//!   parallel reduction the sweep harness uses;
//! * a **regression detector** ([`check`]): within each fingerprint
//!   line it applies the strict rel-1e-9 energy gate between
//!   consecutive generations (via [`crate::diff`]) plus a
//!   threshold/changepoint test on the recorded throughput history,
//!   and emits a `jem-lab/v1` report
//!   (`schemas/lab-report.schema.json`);
//! * a **self-contained HTML report** ([`html_report`]): per-run
//!   energy breakdowns, cross-run trend lines, decision-mix tables and
//!   flagged regressions, with inline SVG sparklines rendered by the
//!   same series-resampling logic as the terminal dashboards
//!   ([`crate::tui::svg_sparkline`]). The document references nothing
//!   external — no scripts, no stylesheets, no fonts.
//!
//! Archiving is a **pure observer**: bench bins ingest their artifacts
//! *after* writing them, by reading the already-written files back, so
//! a run executed with `--archive` produces byte-identical outputs to
//! a bare run (test-enforced).
//!
//! [`Summary::merge`]: jem_sim::Summary::merge

use crate::diff::{combine_batch, diff_json, DiffPolicy, DiffReport};
use crate::json::Json;
use crate::timeline::Timeline;
use crate::tui::{fmt_si, svg_sparkline};
use jem_sim::Summary;
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

// ---------------------------------------------------------------
// SHA-256 (the workspace is offline; no crypto crate to lean on)
// ---------------------------------------------------------------

const SHA256_K: [u32; 64] = [
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1, 0x923f82a4, 0xab1c5ed5,
    0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3, 0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174,
    0xe49b69c1, 0xefbe4786, 0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147, 0x06ca6351, 0x14292967,
    0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13, 0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85,
    0xa2bfe8a1, 0xa81a664b, 0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a, 0x5b9cca4f, 0x682e6ff3,
    0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208, 0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2,
];

/// SHA-256 of `bytes` (FIPS 180-4). The archive's content addressing
/// and run fingerprints are built on this.
pub fn sha256(bytes: &[u8]) -> [u8; 32] {
    let mut h: [u32; 8] = [
        0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a, 0x510e527f, 0x9b05688c, 0x1f83d9ab,
        0x5be0cd19,
    ];
    let mut data = bytes.to_vec();
    let bit_len = (bytes.len() as u64).wrapping_mul(8);
    data.push(0x80);
    while data.len() % 64 != 56 {
        data.push(0);
    }
    data.extend_from_slice(&bit_len.to_be_bytes());
    let mut w = [0u32; 64];
    for block in data.chunks_exact(64) {
        for (i, word) in w.iter_mut().take(16).enumerate() {
            *word = u32::from_be_bytes(block[4 * i..4 * i + 4].try_into().expect("4 bytes"));
        }
        for i in 16..64 {
            let s0 = w[i - 15].rotate_right(7) ^ w[i - 15].rotate_right(18) ^ (w[i - 15] >> 3);
            let s1 = w[i - 2].rotate_right(17) ^ w[i - 2].rotate_right(19) ^ (w[i - 2] >> 10);
            w[i] = w[i - 16]
                .wrapping_add(s0)
                .wrapping_add(w[i - 7])
                .wrapping_add(s1);
        }
        let [mut a, mut b, mut c, mut d, mut e, mut f, mut g, mut hh] = h;
        for i in 0..64 {
            let s1 = e.rotate_right(6) ^ e.rotate_right(11) ^ e.rotate_right(25);
            let ch = (e & f) ^ (!e & g);
            let t1 = hh
                .wrapping_add(s1)
                .wrapping_add(ch)
                .wrapping_add(SHA256_K[i])
                .wrapping_add(w[i]);
            let s0 = a.rotate_right(2) ^ a.rotate_right(13) ^ a.rotate_right(22);
            let maj = (a & b) ^ (a & c) ^ (b & c);
            let t2 = s0.wrapping_add(maj);
            hh = g;
            g = f;
            f = e;
            e = d.wrapping_add(t1);
            d = c;
            c = b;
            b = a;
            a = t1.wrapping_add(t2);
        }
        for (slot, v) in h.iter_mut().zip([a, b, c, d, e, f, g, hh]) {
            *slot = slot.wrapping_add(v);
        }
    }
    let mut out = [0u8; 32];
    for (i, word) in h.iter().enumerate() {
        out[4 * i..4 * i + 4].copy_from_slice(&word.to_be_bytes());
    }
    out
}

/// Lowercase hex of [`sha256`].
pub fn sha256_hex(bytes: &[u8]) -> String {
    sha256(bytes).iter().map(|b| format!("{b:02x}")).collect()
}

// ---------------------------------------------------------------
// Run identity
// ---------------------------------------------------------------

/// The artifact kinds the archive understands, with the schema id
/// each one is validated/compared under. Part of the fingerprint, so
/// a schema revision starts a fresh history line instead of diffing
/// incompatible documents against each other.
pub fn schema_versions() -> Vec<(&'static str, &'static str)> {
    vec![
        ("bench", "bench-json/v1"),
        ("bench-history", "bench-history/v1"),
        ("trace", "jem-trace/v1"),
        ("timeline", "jem-timeline/v1"),
        ("health", "jem-health/v1"),
        ("metrics", "prometheus-text/v0"),
    ]
}

/// Flags (with one value) that select *where outputs go* rather than
/// *what the run computes*; stripped from the identity args so the
/// same configuration archived under different file names lands on
/// the same fingerprint line.
const OUTPUT_FLAGS: [&str; 11] = [
    "--trace",
    "--timeline",
    "--json-out",
    "--health-out",
    "--metrics-out",
    "--archive",
    "--serve",
    "--ckpt",
    "--ckpt-every",
    "--resume",
    "--flush-every",
];

/// Reduce argv (without the program name) to the arguments that
/// define the run's identity: output destinations, checkpointing and
/// live-serving flags are dropped (all are observers or byte-framing
/// knobs — the computed results are identical with or without them),
/// everything else is kept in order.
pub fn identity_args(args: &[String]) -> Vec<String> {
    let mut out = Vec::new();
    let mut i = 0;
    while i < args.len() {
        if OUTPUT_FLAGS.contains(&args[i].as_str()) {
            i += 2;
            continue;
        }
        out.push(args[i].clone());
        i += 1;
    }
    out
}

/// The declared identity of one archived run.
#[derive(Debug, Clone, PartialEq)]
pub struct RunMeta {
    /// The bench binary that produced the artifacts.
    pub bin: String,
    /// Identity arguments (see [`identity_args`]).
    pub args: Vec<String>,
    /// The seed, when one was given explicitly (`--seed N`).
    pub seed: Option<u64>,
    /// Artifact-kind → schema-id table the run was recorded under.
    pub schemas: Vec<(String, String)>,
}

impl RunMeta {
    /// Build the metadata for a bench bin's argv: `bin` from the
    /// program path's file stem, identity args, and the parsed seed.
    pub fn from_argv(argv: &[String]) -> RunMeta {
        let bin = argv
            .first()
            .map(|p| {
                Path::new(p)
                    .file_stem()
                    .map_or_else(|| p.clone(), |s| s.to_string_lossy().into_owned())
            })
            .unwrap_or_else(|| "unknown".to_string());
        let rest = argv.get(1..).unwrap_or_default();
        let seed = rest
            .iter()
            .position(|a| a == "--seed")
            .and_then(|i| rest.get(i + 1))
            .and_then(|v| v.parse().ok());
        RunMeta {
            bin,
            args: identity_args(rest),
            seed,
            schemas: schema_versions()
                .into_iter()
                .map(|(k, v)| (k.to_string(), v.to_string()))
                .collect(),
        }
    }

    /// Canonical JSON rendering the fingerprint hashes.
    fn canonical(&self) -> Json {
        let mut schemas = Json::object();
        for (k, v) in &self.schemas {
            schemas = schemas.with(k.as_str(), v.as_str());
        }
        let mut doc = Json::object()
            .with("bin", self.bin.as_str())
            .with(
                "args",
                Json::Arr(self.args.iter().map(|a| Json::Str(a.clone())).collect()),
            )
            .with("schemas", schemas);
        doc = match self.seed {
            Some(s) => doc.with("seed", s),
            None => doc.with("seed", Json::Null),
        };
        doc
    }

    /// The deterministic run fingerprint: the first 16 hex digits of
    /// the SHA-256 of the canonical (bin, args, seed, schema-versions)
    /// rendering. Everything that defines the run's configuration is
    /// in; everything that only names output files is out.
    pub fn fingerprint(&self) -> String {
        sha256_hex(self.canonical().render().as_bytes())[..16].to_string()
    }
}

// ---------------------------------------------------------------
// Archive
// ---------------------------------------------------------------

/// One stored artifact: its kind, original file name, content hash
/// and size.
#[derive(Debug, Clone)]
pub struct ArtifactRef {
    /// Artifact kind (`bench`, `trace`, `timeline`, `health`,
    /// `metrics`, `bench-history`).
    pub kind: String,
    /// The original file name (not path) at ingest time.
    pub name: String,
    /// SHA-256 of the content; also the blob address.
    pub sha256: String,
    /// Content length in bytes.
    pub bytes: u64,
}

/// One archived run: a manifest generation on a fingerprint line.
#[derive(Debug, Clone)]
pub struct RunRecord {
    /// Short id unique to this (fingerprint, generation, content).
    pub run_id: String,
    /// The fingerprint line this run belongs to.
    pub fingerprint: String,
    /// Zero-based generation index within the line (ingest order).
    pub gen: u64,
    /// Declared identity.
    pub meta: RunMeta,
    /// Stored artifacts.
    pub artifacts: Vec<ArtifactRef>,
}

impl RunRecord {
    /// The first artifact of `kind`, if the run stored one.
    pub fn artifact(&self, kind: &str) -> Option<&ArtifactRef> {
        self.artifacts.iter().find(|a| a.kind == kind)
    }

    /// Short human label (`bin@fingerprint/gen`).
    pub fn label(&self) -> String {
        format!("{}@{}/{}", self.meta.bin, self.fingerprint, self.gen)
    }
}

/// Marker document at the archive root.
const ARCHIVE_MARKER: &str = "jem-lab.json";
/// Archive format id inside the marker.
const ARCHIVE_SCHEMA: &str = "jem-lab-archive/v1";
/// Manifest schema id.
const MANIFEST_SCHEMA: &str = "jem-lab-manifest/v1";

/// The content-addressed, file-based experiment archive.
///
/// Layout under the root directory:
///
/// ```text
/// jem-lab.json                      archive marker + format version
/// objects/<hh>/<sha256>             content-addressed artifact blobs
/// runs/<fingerprint>/<gen>/manifest.json
/// ```
///
/// Blobs are deduplicated by content, so archiving an identical-seed
/// rerun costs one manifest. All writes go through
/// [`crate::write_atomic`] (temp + fsync + rename), so a crashed
/// ingest never leaves a half-written manifest behind.
#[derive(Debug, Clone)]
pub struct Archive {
    root: PathBuf,
}

impl Archive {
    /// Open an existing archive or initialize a new one at `root`.
    ///
    /// # Errors
    /// When the directory exists but is not a jem-lab archive, or
    /// cannot be created.
    pub fn open_or_create(root: &str) -> Result<Archive, String> {
        let rootp = PathBuf::from(root);
        let marker = rootp.join(ARCHIVE_MARKER);
        if marker.exists() {
            let text = std::fs::read_to_string(&marker)
                .map_err(|e| format!("cannot read {}: {e}", marker.display()))?;
            let doc =
                Json::parse(&text).map_err(|e| format!("corrupt {}: {e}", marker.display()))?;
            if doc.get("schema").and_then(Json::as_str) != Some(ARCHIVE_SCHEMA) {
                return Err(format!(
                    "{} is not a {ARCHIVE_SCHEMA} archive",
                    rootp.display()
                ));
            }
            return Ok(Archive { root: rootp });
        }
        let empty_dir = std::fs::read_dir(&rootp).is_ok_and(|mut d| d.next().is_none());
        if rootp.exists() && !empty_dir {
            return Err(format!(
                "{} exists, is not empty, and has no {ARCHIVE_MARKER} marker — \
                 refusing to treat it as an archive",
                rootp.display()
            ));
        }
        std::fs::create_dir_all(rootp.join("objects")).map_err(|e| e.to_string())?;
        std::fs::create_dir_all(rootp.join("runs")).map_err(|e| e.to_string())?;
        let doc = Json::object()
            .with("schema", ARCHIVE_SCHEMA)
            .with("version", 1u64);
        crate::write_atomic(
            marker.to_str().ok_or("non-UTF-8 archive path")?,
            format!("{}\n", doc.render_pretty()).as_bytes(),
        )
        .map_err(|e| e.to_string())?;
        Ok(Archive { root: rootp })
    }

    /// The archive root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    fn blob_path(&self, hash: &str) -> PathBuf {
        self.root.join("objects").join(&hash[..2]).join(hash)
    }

    fn write_blob(&self, bytes: &[u8]) -> Result<String, String> {
        let hash = sha256_hex(bytes);
        let path = self.blob_path(&hash);
        if !path.exists() {
            std::fs::create_dir_all(path.parent().expect("objects/hh"))
                .map_err(|e| format!("cannot create blob directory for {hash}: {e}"))?;
            crate::write_atomic(path.to_str().ok_or("non-UTF-8 blob path")?, bytes)
                .map_err(|e| format!("cannot write blob {hash}: {e}"))?;
        }
        Ok(hash)
    }

    /// Ingest one run from in-memory artifacts `(kind, name, bytes)`.
    /// Appends a new generation to `meta`'s fingerprint line and
    /// returns the stored record.
    ///
    /// # Errors
    /// On I/O failures or an unknown artifact kind.
    pub fn ingest_bytes(
        &self,
        meta: &RunMeta,
        artifacts: &[(String, String, Vec<u8>)],
    ) -> Result<RunRecord, String> {
        let known: Vec<&str> = schema_versions().iter().map(|(k, _)| *k).collect();
        for (kind, name, _) in artifacts {
            if !known.contains(&kind.as_str()) {
                return Err(format!(
                    "unknown artifact kind '{kind}' for {name} (known: {})",
                    known.join(", ")
                ));
            }
        }
        let fingerprint = meta.fingerprint();
        let line_dir = self.root.join("runs").join(&fingerprint);
        std::fs::create_dir_all(&line_dir).map_err(|e| e.to_string())?;
        let gen = next_gen(&line_dir)?;

        let mut refs = Vec::with_capacity(artifacts.len());
        for (kind, name, bytes) in artifacts {
            let hash = self.write_blob(bytes)?;
            refs.push(ArtifactRef {
                kind: kind.clone(),
                name: name.clone(),
                sha256: hash,
                bytes: bytes.len() as u64,
            });
        }

        let mut id_input = format!("{fingerprint}/{gen}");
        for a in &refs {
            id_input.push('/');
            id_input.push_str(&a.sha256);
        }
        let run_id = sha256_hex(id_input.as_bytes())[..16].to_string();

        let record = RunRecord {
            run_id,
            fingerprint: fingerprint.clone(),
            gen,
            meta: meta.clone(),
            artifacts: refs,
        };
        let gen_dir = line_dir.join(format!("{gen:04}"));
        std::fs::create_dir_all(&gen_dir).map_err(|e| e.to_string())?;
        let manifest = gen_dir.join("manifest.json");
        crate::write_atomic(
            manifest.to_str().ok_or("non-UTF-8 manifest path")?,
            format!("{}\n", manifest_to_json(&record).render_pretty()).as_bytes(),
        )
        .map_err(|e| format!("cannot write manifest: {e}"))?;
        Ok(record)
    }

    /// Ingest one run from files on disk: `(kind, path)` pairs. The
    /// stored artifact name is the path's file name.
    ///
    /// # Errors
    /// When any file cannot be read, plus everything
    /// [`Archive::ingest_bytes`] can report.
    pub fn ingest_files(
        &self,
        meta: &RunMeta,
        files: &[(String, String)],
    ) -> Result<RunRecord, String> {
        let mut artifacts = Vec::with_capacity(files.len());
        for (kind, path) in files {
            let bytes =
                std::fs::read(path).map_err(|e| format!("cannot read artifact {path}: {e}"))?;
            let name = Path::new(path)
                .file_name()
                .map_or_else(|| path.clone(), |n| n.to_string_lossy().into_owned());
            artifacts.push((kind.clone(), name, bytes));
        }
        self.ingest_bytes(meta, &artifacts)
    }

    /// All archived runs, sorted by (bin, fingerprint, generation).
    ///
    /// # Errors
    /// On the first corrupt or mismatching manifest: a manifest whose
    /// stored fingerprint disagrees with the fingerprint recomputed
    /// from its own metadata, or one filed under a different line's
    /// directory (a collision or a tamper), is rejected rather than
    /// silently compared against the wrong history.
    pub fn runs(&self) -> Result<Vec<RunRecord>, String> {
        let mut out = Vec::new();
        for finding in self.scan() {
            out.push(finding?);
        }
        out.sort_by(|a, b| {
            (&a.meta.bin, &a.fingerprint, a.gen).cmp(&(&b.meta.bin, &b.fingerprint, b.gen))
        });
        Ok(out)
    }

    fn scan(&self) -> Vec<Result<RunRecord, String>> {
        let runs_dir = self.root.join("runs");
        let mut lines: Vec<PathBuf> = match std::fs::read_dir(&runs_dir) {
            Ok(d) => d.filter_map(|e| e.ok().map(|e| e.path())).collect(),
            Err(e) => return vec![Err(format!("cannot list {}: {e}", runs_dir.display()))],
        };
        lines.sort();
        let mut out = Vec::new();
        for line in lines.iter().filter(|p| p.is_dir()) {
            let mut gens: Vec<PathBuf> = match std::fs::read_dir(line) {
                Ok(d) => d.filter_map(|e| e.ok().map(|e| e.path())).collect(),
                Err(e) => {
                    out.push(Err(format!("cannot list {}: {e}", line.display())));
                    continue;
                }
            };
            gens.sort();
            for gen_dir in gens.iter().filter(|p| p.is_dir()) {
                out.push(load_manifest(line, gen_dir));
            }
        }
        out
    }

    /// Read one stored artifact back, verifying its content hash.
    ///
    /// # Errors
    /// When the blob is missing or its bytes no longer hash to the
    /// recorded address (bit rot, truncation, tampering).
    pub fn read_artifact(&self, artifact: &ArtifactRef) -> Result<Vec<u8>, String> {
        let path = self.blob_path(&artifact.sha256);
        let bytes =
            std::fs::read(&path).map_err(|e| format!("missing blob {} ({e})", artifact.sha256))?;
        let hash = sha256_hex(&bytes);
        if hash != artifact.sha256 {
            return Err(format!(
                "blob {} is corrupt: content hashes to {hash}",
                artifact.sha256
            ));
        }
        Ok(bytes)
    }

    /// Full integrity sweep: every manifest must round-trip its
    /// fingerprint and every referenced blob must hash to its
    /// address. Returns the list of findings (empty ⇒ archive OK).
    ///
    /// # Errors
    /// Only when the archive directory itself cannot be listed.
    pub fn verify(&self) -> Result<Vec<String>, String> {
        let mut findings = Vec::new();
        for run in self.scan() {
            match run {
                Err(e) => findings.push(e),
                Ok(run) => {
                    for artifact in &run.artifacts {
                        if let Err(e) = self.read_artifact(artifact) {
                            findings.push(format!("{}: {e}", run.label()));
                        }
                    }
                }
            }
        }
        Ok(findings)
    }
}

fn next_gen(line_dir: &Path) -> Result<u64, String> {
    let mut max: Option<u64> = None;
    for entry in std::fs::read_dir(line_dir).map_err(|e| e.to_string())? {
        let entry = entry.map_err(|e| e.to_string())?;
        if let Ok(n) = entry.file_name().to_string_lossy().parse::<u64>() {
            max = Some(max.map_or(n, |m| m.max(n)));
        }
    }
    Ok(max.map_or(0, |m| m + 1))
}

fn manifest_to_json(record: &RunRecord) -> Json {
    let mut schemas = Json::object();
    for (k, v) in &record.meta.schemas {
        schemas = schemas.with(k.as_str(), v.as_str());
    }
    let artifacts: Vec<Json> = record
        .artifacts
        .iter()
        .map(|a| {
            Json::object()
                .with("kind", a.kind.as_str())
                .with("name", a.name.as_str())
                .with("sha256", a.sha256.as_str())
                .with("bytes", a.bytes)
        })
        .collect();
    let mut doc = Json::object()
        .with("schema", MANIFEST_SCHEMA)
        .with("run_id", record.run_id.as_str())
        .with("fingerprint", record.fingerprint.as_str())
        .with("gen", record.gen)
        .with("bin", record.meta.bin.as_str())
        .with(
            "args",
            Json::Arr(
                record
                    .meta
                    .args
                    .iter()
                    .map(|a| Json::Str(a.clone()))
                    .collect(),
            ),
        );
    doc = match record.meta.seed {
        Some(s) => doc.with("seed", s),
        None => doc.with("seed", Json::Null),
    };
    doc.with("schemas", schemas)
        .with("artifacts", Json::Arr(artifacts))
}

fn load_manifest(line_dir: &Path, gen_dir: &Path) -> Result<RunRecord, String> {
    let path = gen_dir.join("manifest.json");
    let text = std::fs::read_to_string(&path)
        .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    let doc = Json::parse(&text).map_err(|e| format!("{}: {e}", path.display()))?;
    let ctx = path.display().to_string();
    if doc.get("schema").and_then(Json::as_str) != Some(MANIFEST_SCHEMA) {
        return Err(format!("{ctx}: not a {MANIFEST_SCHEMA} manifest"));
    }
    let str_field = |key: &str| -> Result<String, String> {
        doc.get(key)
            .and_then(Json::as_str)
            .map(str::to_string)
            .ok_or_else(|| format!("{ctx}: missing '{key}'"))
    };
    let run_id = str_field("run_id")?;
    let fingerprint = str_field("fingerprint")?;
    let bin = str_field("bin")?;
    let gen = doc
        .get("gen")
        .and_then(Json::as_u64)
        .ok_or_else(|| format!("{ctx}: missing 'gen'"))?;
    let args: Vec<String> = doc
        .get("args")
        .and_then(Json::as_array)
        .map(|a| {
            a.iter()
                .filter_map(Json::as_str)
                .map(str::to_string)
                .collect()
        })
        .ok_or_else(|| format!("{ctx}: missing 'args'"))?;
    let seed = doc.get("seed").and_then(Json::as_u64);
    let schemas: Vec<(String, String)> = doc
        .get("schemas")
        .and_then(Json::as_object)
        .map(|members| {
            members
                .iter()
                .filter_map(|(k, v)| v.as_str().map(|v| (k.clone(), v.to_string())))
                .collect()
        })
        .ok_or_else(|| format!("{ctx}: missing 'schemas'"))?;
    let mut artifacts = Vec::new();
    for a in doc
        .get("artifacts")
        .and_then(Json::as_array)
        .ok_or_else(|| format!("{ctx}: missing 'artifacts'"))?
    {
        artifacts.push(ArtifactRef {
            kind: a
                .get("kind")
                .and_then(Json::as_str)
                .ok_or_else(|| format!("{ctx}: artifact missing 'kind'"))?
                .to_string(),
            name: a
                .get("name")
                .and_then(Json::as_str)
                .ok_or_else(|| format!("{ctx}: artifact missing 'name'"))?
                .to_string(),
            sha256: a
                .get("sha256")
                .and_then(Json::as_str)
                .ok_or_else(|| format!("{ctx}: artifact missing 'sha256'"))?
                .to_string(),
            bytes: a.get("bytes").and_then(Json::as_u64).unwrap_or(0),
        });
    }
    let meta = RunMeta {
        bin,
        args,
        seed,
        schemas,
    };
    // Fingerprint integrity: the stored fingerprint, the fingerprint
    // recomputed from the stored metadata, and the directory the
    // manifest lives under must all agree. A disagreement means the
    // manifest was tampered with, mis-filed, or collided — comparing
    // it against the line's history would corrupt the analytics, so
    // it is rejected outright.
    let recomputed = meta.fingerprint();
    if recomputed != fingerprint {
        return Err(format!(
            "{ctx}: fingerprint mismatch — manifest says {fingerprint}, \
             metadata hashes to {recomputed}"
        ));
    }
    let dir_name = line_dir
        .file_name()
        .map(|n| n.to_string_lossy().into_owned())
        .unwrap_or_default();
    if dir_name != fingerprint {
        return Err(format!(
            "{ctx}: filed under line '{dir_name}' but fingerprints as '{fingerprint}'"
        ));
    }
    let dir_gen: Option<u64> = gen_dir
        .file_name()
        .and_then(|n| n.to_string_lossy().parse().ok());
    if dir_gen != Some(gen) {
        return Err(format!(
            "{ctx}: generation directory disagrees with manifest gen {gen}"
        ));
    }
    Ok(RunRecord {
        run_id,
        fingerprint,
        gen,
        meta,
        artifacts,
    })
}

// ---------------------------------------------------------------
// Cross-run query engine
// ---------------------------------------------------------------

/// What to select from each archived run.
#[derive(Debug, Clone)]
pub enum LabSelector {
    /// A `.jts` timeline series by name; the observation per segment
    /// is its window-end value.
    Series(String),
    /// A `/`-separated JSON path into the run's `bench` /
    /// `bench-history` document. `*` matches every array element or
    /// object member at that level; all numeric leaves at or under
    /// the selected nodes are collected.
    Column(String),
}

/// How runs are grouped before the Welford reduction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LabGroupBy {
    /// One group per fingerprint line (the default): reruns and
    /// generations of the same configuration pool together.
    Fingerprint,
    /// One group per bench binary, pooling every configuration of it.
    Bin,
    /// One group per (bin, identity-args) pair, rendered textually —
    /// like [`LabGroupBy::Fingerprint`] but with a readable key.
    Args,
}

/// A cross-run selection.
#[derive(Debug, Clone)]
pub struct LabQuery {
    /// What to extract from each run.
    pub selector: LabSelector,
    /// Optional sim-time window in sim-nanoseconds (series mode).
    pub window: Option<(f64, f64)>,
    /// Grouping key.
    pub group_by: LabGroupBy,
}

/// One run's contribution to a group.
#[derive(Debug, Clone)]
pub struct RunValues {
    /// `bin@fingerprint/gen` label.
    pub label: String,
    /// The raw observations extracted from this run.
    pub values: Vec<f64>,
    /// Welford summary of this run's observations.
    pub summary: Summary,
}

/// One query group: per-run values plus the merged summary.
#[derive(Debug, Clone)]
pub struct GroupResult {
    /// The group key.
    pub key: String,
    /// Per-run observations, in run order.
    pub runs: Vec<RunValues>,
    /// The group-level summary: per-run summaries folded together
    /// with [`Summary::merge`] (merge ≡ concatenation, so this equals
    /// summarizing all observations at once).
    pub summary: Summary,
}

impl GroupResult {
    /// Render one group as JSON for the CLI's `--json` output.
    pub fn to_json(&self) -> Json {
        let runs: Vec<Json> = self
            .runs
            .iter()
            .map(|r| {
                Json::object()
                    .with("run", r.label.as_str())
                    .with("n", r.summary.count())
                    .with("mean", r.summary.mean())
                    .with(
                        "values",
                        Json::Arr(r.values.iter().map(|&v| Json::Num(v)).collect()),
                    )
            })
            .collect();
        Json::object()
            .with("key", self.key.as_str())
            .with("runs", runs.len() as u64)
            .with("n", self.summary.count())
            .with("mean", self.summary.mean())
            .with("stddev", self.summary.stddev())
            .with("min", self.summary.min())
            .with("max", self.summary.max())
            .with("per_run", Json::Arr(runs))
    }
}

fn group_key(run: &RunRecord, group_by: LabGroupBy) -> String {
    match group_by {
        LabGroupBy::Fingerprint => format!("{}@{}", run.meta.bin, run.fingerprint),
        LabGroupBy::Bin => run.meta.bin.clone(),
        LabGroupBy::Args => {
            if run.meta.args.is_empty() {
                run.meta.bin.clone()
            } else {
                format!("{} {}", run.meta.bin, run.meta.args.join(" "))
            }
        }
    }
}

/// Select numeric leaves by path. `*` fans out over every member at
/// that level; reaching a non-leaf collects every numeric leaf below.
pub fn select_path(doc: &Json, path: &str) -> Vec<f64> {
    fn leaves(node: &Json, out: &mut Vec<f64>) {
        match node {
            Json::Num(n) => out.push(*n),
            Json::Arr(items) => items.iter().for_each(|i| leaves(i, out)),
            Json::Obj(members) => members.iter().for_each(|(_, v)| leaves(v, out)),
            _ => {}
        }
    }
    fn walk(node: &Json, segments: &[&str], out: &mut Vec<f64>) {
        let Some((head, rest)) = segments.split_first() else {
            leaves(node, out);
            return;
        };
        match node {
            Json::Arr(items) => {
                if *head == "*" {
                    items.iter().for_each(|i| walk(i, rest, out));
                } else if let Ok(idx) = head.parse::<usize>() {
                    if let Some(item) = items.get(idx) {
                        walk(item, rest, out);
                    }
                }
            }
            Json::Obj(members) => {
                if *head == "*" {
                    members.iter().for_each(|(_, v)| walk(v, rest, out));
                } else if let Some(v) = node.get(head) {
                    walk(v, rest, out);
                }
            }
            _ => {}
        }
    }
    let segments: Vec<&str> = path.split('/').filter(|s| !s.is_empty()).collect();
    let mut out = Vec::new();
    walk(doc, &segments, &mut out);
    out
}

fn run_observations(
    archive: &Archive,
    run: &RunRecord,
    query: &LabQuery,
) -> Result<Option<Vec<f64>>, String> {
    match &query.selector {
        LabSelector::Series(name) => {
            let Some(artifact) = run.artifact("timeline") else {
                return Ok(None);
            };
            let bytes = archive.read_artifact(artifact)?;
            let tl = Timeline::read(&bytes).map_err(|e| format!("{}: {e}", run.label()))?;
            let Some(idx) = tl.series_index(name) else {
                return Err(format!(
                    "{}: timeline has no series '{name}' (available: {})",
                    run.label(),
                    tl.series.join(", ")
                ));
            };
            let mut vals = Vec::with_capacity(tl.segments.len());
            for seg in &tl.segments {
                if let Some((a, _)) = query.window {
                    if seg.end_t < a {
                        continue;
                    }
                }
                let end = query.window.map_or(seg.end_t, |(_, b)| b.min(seg.end_t));
                vals.push(seg.value_at(idx, end));
            }
            Ok(Some(vals))
        }
        LabSelector::Column(path) => {
            let Some(artifact) = run
                .artifact("bench")
                .or_else(|| run.artifact("bench-history"))
            else {
                return Ok(None);
            };
            let bytes = archive.read_artifact(artifact)?;
            let text = String::from_utf8(bytes)
                .map_err(|_| format!("{}: bench artifact is not UTF-8", run.label()))?;
            let doc = Json::parse(&text).map_err(|e| format!("{}: {e}", run.label()))?;
            Ok(Some(select_path(&doc, path)))
        }
    }
}

/// Run a cross-run query over every archived run, grouping and
/// reducing with Welford summaries. Runs lacking the selected
/// artifact kind are skipped; a query that matches nothing anywhere
/// is an error (it is almost always a typo'd series or path).
///
/// # Errors
/// On archive corruption, unknown series names, or an empty match.
pub fn query(archive: &Archive, query: &LabQuery) -> Result<Vec<GroupResult>, String> {
    let runs = archive.runs()?;
    let mut groups: BTreeMap<String, GroupResult> = BTreeMap::new();
    let mut matched = false;
    for run in &runs {
        let Some(values) = run_observations(archive, run, query)? else {
            continue;
        };
        matched = matched || !values.is_empty();
        let summary = Summary::of(&values);
        let key = group_key(run, query.group_by);
        let group = groups.entry(key.clone()).or_insert_with(|| GroupResult {
            key,
            runs: Vec::new(),
            summary: Summary::new(),
        });
        // The ISSUE-mandated reduction: per-run Welford summaries
        // folded into the group with Chan's merge.
        group.summary.merge(&summary);
        group.runs.push(RunValues {
            label: run.label(),
            values,
            summary,
        });
    }
    if !matched {
        return Err(match &query.selector {
            LabSelector::Series(s) => format!("no archived run matched series '{s}'"),
            LabSelector::Column(p) => format!("no archived run matched column path '{p}'"),
        });
    }
    Ok(groups.into_values().collect())
}

// ---------------------------------------------------------------
// Regression detector
// ---------------------------------------------------------------

/// Detector thresholds.
#[derive(Debug, Clone)]
pub struct CheckConfig {
    /// Strict relative tolerance on deterministic (energy) figures
    /// between consecutive generations of a line. Default `1e-9` —
    /// the same gate `bench-history` applies to committed baselines.
    pub rel_tol: f64,
    /// Tolerance for wall-clock-noisy keys inside the structural diff
    /// before they fail it (they are separately covered by the
    /// throughput tests). Default `0.5`.
    pub noisy_rel_tol: f64,
    /// Relative drop in recorded throughput that raises a flag, for
    /// both the latest-vs-median threshold test and the changepoint
    /// split test. Default `0.5`.
    pub throughput_threshold: f64,
}

impl Default for CheckConfig {
    fn default() -> Self {
        CheckConfig {
            rel_tol: 1e-9,
            noisy_rel_tol: 0.5,
            throughput_threshold: 0.5,
        }
    }
}

/// One raised regression flag.
#[derive(Debug, Clone)]
pub struct LabFlag {
    /// The fingerprint line the flag belongs to.
    pub fingerprint: String,
    /// The line's bench binary.
    pub bin: String,
    /// Flag family: `energy-regression`, `throughput-threshold`,
    /// `throughput-changepoint`, or `health-regression`.
    pub kind: String,
    /// Earlier generation of the offending comparison.
    pub from_gen: u64,
    /// Later generation of the offending comparison.
    pub to_gen: u64,
    /// Locus (diff path, or the throughput series name).
    pub path: String,
    /// Human-readable description.
    pub detail: String,
}

/// Per-line history summary inside a [`LabReport`].
#[derive(Debug, Clone)]
pub struct LabLine {
    /// The line's fingerprint.
    pub fingerprint: String,
    /// The line's bench binary.
    pub bin: String,
    /// Identity args of the line.
    pub args: Vec<String>,
    /// Generations present, in order.
    pub gens: Vec<u64>,
    /// Recorded throughput history (`sim_instructions_per_sec` from
    /// `bench-history` artifacts), one entry per generation that
    /// carried one.
    pub throughput: Vec<f64>,
    /// Combined first-vs-rest diff document (`jem-diff/v1` with a
    /// `batch` table — the same shape `jem-diff --batch` emits).
    pub diff: Json,
}

/// The full detector outcome over an archive.
#[derive(Debug, Clone, Default)]
pub struct LabReport {
    /// Per-line histories.
    pub lines: Vec<LabLine>,
    /// Raised flags, in line order.
    pub flags: Vec<LabFlag>,
}

impl LabReport {
    /// Whether any regression was flagged.
    pub fn flagged(&self) -> bool {
        !self.flags.is_empty()
    }

    /// The machine-readable `jem-lab/v1` document
    /// (`schemas/lab-report.schema.json`).
    pub fn to_json(&self) -> Json {
        let lines: Vec<Json> = self
            .lines
            .iter()
            .map(|l| {
                Json::object()
                    .with("fingerprint", l.fingerprint.as_str())
                    .with("bin", l.bin.as_str())
                    .with(
                        "args",
                        Json::Arr(l.args.iter().map(|a| Json::Str(a.clone())).collect()),
                    )
                    .with(
                        "gens",
                        Json::Arr(l.gens.iter().map(|&g| Json::Num(g as f64)).collect()),
                    )
                    .with(
                        "throughput",
                        Json::Arr(l.throughput.iter().map(|&v| Json::Num(v)).collect()),
                    )
                    .with(
                        "flags",
                        self.flags
                            .iter()
                            .filter(|f| f.fingerprint == l.fingerprint)
                            .count() as u64,
                    )
                    .with("diff", l.diff.clone())
            })
            .collect();
        let flags: Vec<Json> = self
            .flags
            .iter()
            .map(|f| {
                Json::object()
                    .with("fingerprint", f.fingerprint.as_str())
                    .with("bin", f.bin.as_str())
                    .with("kind", f.kind.as_str())
                    .with("from_gen", f.from_gen)
                    .with("to_gen", f.to_gen)
                    .with("path", f.path.as_str())
                    .with("detail", f.detail.as_str())
            })
            .collect();
        Json::object()
            .with("schema", "jem-lab/v1")
            .with("lines", Json::Arr(lines))
            .with("flags", Json::Arr(flags))
            .with("flagged", self.flagged())
    }

    /// Human-readable summary, one line per history line and flag.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        for l in &self.lines {
            out.push_str(&format!(
                "line {}@{}: {} generation(s){}\n",
                l.bin,
                l.fingerprint,
                l.gens.len(),
                if l.throughput.is_empty() {
                    String::new()
                } else {
                    format!(
                        ", throughput history [{}]",
                        l.throughput
                            .iter()
                            .map(|v| fmt_si(*v))
                            .collect::<Vec<_>>()
                            .join(", ")
                    )
                }
            ));
        }
        if self.flags.is_empty() {
            out.push_str("no regressions flagged\n");
        } else {
            for f in &self.flags {
                out.push_str(&format!(
                    "FLAG [{}] {}@{} gen {}->{} {}: {}\n",
                    f.kind, f.bin, f.fingerprint, f.from_gen, f.to_gen, f.path, f.detail
                ));
            }
        }
        out
    }
}

fn parse_doc(archive: &Archive, run: &RunRecord, kind: &str) -> Result<Option<Json>, String> {
    let Some(artifact) = run.artifact(kind) else {
        return Ok(None);
    };
    let bytes = archive.read_artifact(artifact)?;
    let text = String::from_utf8(bytes)
        .map_err(|_| format!("{}: {kind} artifact is not UTF-8", run.label()))?;
    Json::parse(&text)
        .map(Some)
        .map_err(|e| format!("{}: {kind}: {e}", run.label()))
}

/// The deterministically-comparable part of a stored document.
/// `bench-history` baselines carry wall-clock `throughput` arrays and
/// toolchain `environment` metadata alongside their `results`; only
/// the results are bit-stable across reruns, so only they face the
/// strict gate (throughput gets its own threshold/changepoint tests).
fn comparable(kind: &str, doc: Json) -> Json {
    if kind == "bench-history" {
        match doc.get("results") {
            Some(results) => results.clone(),
            None => doc,
        }
    } else {
        doc
    }
}

/// Run the regression detector over every fingerprint line of the
/// archive. Deterministic: the same archive contents always produce
/// the same report, and a line of identical-content generations
/// raises zero flags by construction (every test compares observed
/// values that are equal).
///
/// # Errors
/// On archive corruption or unparseable stored documents.
pub fn check(archive: &Archive, cfg: &CheckConfig) -> Result<LabReport, String> {
    let runs = archive.runs()?;
    let mut by_line: BTreeMap<String, Vec<&RunRecord>> = BTreeMap::new();
    for run in &runs {
        by_line
            .entry(run.fingerprint.clone())
            .or_default()
            .push(run);
    }
    let policy = DiffPolicy::perf_gate(cfg.rel_tol, cfg.noisy_rel_tol);
    let mut report = LabReport::default();
    for (fingerprint, line) in &by_line {
        // runs() sorts by gen within a line already; rely on it.
        let bin = line[0].meta.bin.clone();
        let mut flags = Vec::new();

        // Strict energy gate between consecutive generations, per
        // comparable document kind.
        for pair in line.windows(2) {
            let (prev, next) = (pair[0], pair[1]);
            for kind in ["bench", "bench-history"] {
                let (Some(a), Some(b)) = (
                    parse_doc(archive, prev, kind)?,
                    parse_doc(archive, next, kind)?,
                ) else {
                    continue;
                };
                let (a, b) = (comparable(kind, a), comparable(kind, b));
                let mut diff = DiffReport::default();
                diff_json(&a, &b, &policy, &mut diff);
                for entry in diff
                    .entries
                    .iter()
                    .filter(|e| e.kind == crate::DiffKind::Changed)
                {
                    flags.push(LabFlag {
                        fingerprint: fingerprint.clone(),
                        bin: bin.clone(),
                        kind: "energy-regression".to_string(),
                        from_gen: prev.gen,
                        to_gen: next.gen,
                        path: format!("{kind}/{}", entry.path),
                        detail: entry.detail.clone(),
                    });
                }
            }
            // Health drift: a line whose previous generation was
            // alert-free must not start alerting.
            if let (Some(a), Some(b)) = (
                parse_doc(archive, prev, "health")?,
                parse_doc(archive, next, "health")?,
            ) {
                let alerts = |d: &Json| d.get("total_alerts").and_then(Json::as_u64).unwrap_or(0);
                if alerts(&a) == 0 && alerts(&b) > 0 {
                    flags.push(LabFlag {
                        fingerprint: fingerprint.clone(),
                        bin: bin.clone(),
                        kind: "health-regression".to_string(),
                        from_gen: prev.gen,
                        to_gen: next.gen,
                        path: "health/total_alerts".to_string(),
                        detail: format!("0 alerts -> {} alerts", alerts(&b)),
                    });
                }
            }
        }

        // Throughput history tests over the line's recorded
        // instructions-per-second figures.
        let mut throughput: Vec<(u64, f64)> = Vec::new();
        for run in line {
            if let Some(doc) = parse_doc(archive, run, "bench-history")? {
                if let Some(ips) = doc
                    .get("throughput")
                    .and_then(|t| t.get("sim_instructions_per_sec"))
                    .and_then(Json::as_f64)
                {
                    throughput.push((run.gen, ips));
                }
            }
        }
        let series: Vec<f64> = throughput.iter().map(|(_, v)| *v).collect();
        if series.len() >= 2 {
            // Threshold test: the latest sample against the median of
            // everything before it.
            let mut prior: Vec<f64> = series[..series.len() - 1].to_vec();
            prior.sort_by(|a, b| a.partial_cmp(b).expect("finite throughput"));
            let med = prior[prior.len() / 2];
            let last = *series.last().expect("len >= 2");
            if med > 0.0 {
                let rel = (last - med) / med;
                if rel < -cfg.throughput_threshold {
                    flags.push(LabFlag {
                        fingerprint: fingerprint.clone(),
                        bin: bin.clone(),
                        kind: "throughput-threshold".to_string(),
                        from_gen: throughput[throughput.len() - 2].0,
                        to_gen: throughput[throughput.len() - 1].0,
                        path: "throughput/sim_instructions_per_sec".to_string(),
                        detail: format!(
                            "latest {} vs prior median {} ({:+.1}%)",
                            fmt_si(last),
                            fmt_si(med),
                            rel * 100.0
                        ),
                    });
                }
            }
        }
        if series.len() >= 4 {
            // Changepoint test: the split maximizing the mean drop.
            let mean = |xs: &[f64]| xs.iter().sum::<f64>() / xs.len() as f64;
            let mut worst: Option<(usize, f64)> = None;
            for k in 1..series.len() {
                let left = mean(&series[..k]);
                let right = mean(&series[k..]);
                if left > 0.0 {
                    let rel = (right - left) / left;
                    if worst.is_none_or(|(_, w)| rel < w) {
                        worst = Some((k, rel));
                    }
                }
            }
            if let Some((k, rel)) = worst {
                if rel < -cfg.throughput_threshold {
                    flags.push(LabFlag {
                        fingerprint: fingerprint.clone(),
                        bin: bin.clone(),
                        kind: "throughput-changepoint".to_string(),
                        from_gen: throughput[k - 1].0,
                        to_gen: throughput[k].0,
                        path: "throughput/sim_instructions_per_sec".to_string(),
                        detail: format!(
                            "mean dropped {:.1}% at generation {} (changepoint split)",
                            rel * 100.0,
                            throughput[k].0
                        ),
                    });
                }
            }
        }

        // The line's combined first-vs-rest diff document, in the
        // `jem-diff --batch` shape (jem-lab's compare path and the
        // batch CLI share `combine_batch`).
        let base_kind = ["bench", "bench-history"]
            .into_iter()
            .find(|k| line[0].artifact(k).is_some());
        let diff_doc = match base_kind {
            Some(kind) if line.len() >= 2 => {
                let base = comparable(
                    kind,
                    parse_doc(archive, line[0], kind)?.expect("artifact checked"),
                );
                let mut parts = Vec::new();
                for run in &line[1..] {
                    if let Some(doc) = parse_doc(archive, run, kind)? {
                        let mut diff = DiffReport::default();
                        diff_json(&base, &comparable(kind, doc), &policy, &mut diff);
                        parts.push((run.label(), diff));
                    }
                }
                combine_batch(&line[0].label(), &parts)
            }
            _ => combine_batch(&line[0].label(), &[]),
        };

        report.lines.push(LabLine {
            fingerprint: fingerprint.clone(),
            bin,
            args: line[0].meta.args.clone(),
            gens: line.iter().map(|r| r.gen).collect(),
            throughput: series,
            diff: diff_doc,
        });
        report.flags.extend(flags);
    }
    Ok(report)
}

// ---------------------------------------------------------------
// Self-contained HTML report
// ---------------------------------------------------------------

/// Stable component color palette for the breakdown bars (cycled).
const PALETTE: [&str; 8] = [
    "#4e79a7", "#f28e2b", "#e15759", "#76b7b2", "#59a14f", "#edc948", "#b07aa1", "#9c755f",
];

fn html_escape(s: &str) -> String {
    s.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
        .replace('"', "&quot;")
}

/// Collect `(path, value)` for every numeric leaf named `key`.
fn named_leaves(doc: &Json, key: &str) -> Vec<(String, f64)> {
    fn walk(node: &Json, key: &str, path: &str, out: &mut Vec<(String, f64)>) {
        match node {
            Json::Obj(members) => {
                for (k, v) in members {
                    let child = if path.is_empty() {
                        k.clone()
                    } else {
                        format!("{path}/{k}")
                    };
                    if k == key {
                        if let Some(n) = v.as_f64() {
                            out.push((child.clone(), n));
                        }
                    }
                    walk(v, key, &child, out);
                }
            }
            Json::Arr(items) => {
                for (i, v) in items.iter().enumerate() {
                    walk(v, key, &format!("{path}/{i}"), out);
                }
            }
            _ => {}
        }
    }
    let mut out = Vec::new();
    walk(doc, key, "", &mut out);
    out
}

/// Collect `(path, object)` for every object-valued member named
/// `key` (e.g. `breakdown_nj`, `stats`).
fn named_objects<'a>(doc: &'a Json, key: &str) -> Vec<(String, &'a Json)> {
    fn walk<'a>(node: &'a Json, key: &str, path: &str, out: &mut Vec<(String, &'a Json)>) {
        match node {
            Json::Obj(members) => {
                for (k, v) in members {
                    let child = if path.is_empty() {
                        k.clone()
                    } else {
                        format!("{path}/{k}")
                    };
                    if k == key && matches!(v, Json::Obj(_)) {
                        out.push((child.clone(), v));
                    }
                    walk(v, key, &child, out);
                }
            }
            Json::Arr(items) => {
                for (i, v) in items.iter().enumerate() {
                    walk(v, key, &format!("{path}/{i}"), out);
                }
            }
            _ => {}
        }
    }
    let mut out = Vec::new();
    walk(doc, key, "", &mut out);
    out
}

/// A horizontal stacked bar over the breakdown's components
/// (excluding the `total` member), scaled to the row's total.
fn breakdown_bar(breakdown: &Json, width: u32, height: u32) -> String {
    let Some(members) = breakdown.as_object() else {
        return String::new();
    };
    let parts: Vec<(&str, f64)> = members
        .iter()
        .filter(|(k, _)| k != "total")
        .filter_map(|(k, v)| v.as_f64().map(|n| (k.as_str(), n)))
        .collect();
    let total: f64 = parts.iter().map(|(_, v)| v).sum();
    if total <= 0.0 {
        return String::new();
    }
    let mut rects = String::new();
    let mut x = 0.0;
    for (i, (name, v)) in parts.iter().enumerate() {
        let w = f64::from(width) * v / total;
        rects.push_str(&format!(
            "<rect x=\"{x:.2}\" y=\"0\" width=\"{w:.2}\" height=\"{height}\" \
             fill=\"{}\"><title>{}: {} nJ</title></rect>",
            PALETTE[i % PALETTE.len()],
            html_escape(name),
            fmt_si(*v)
        ));
        x += w;
    }
    format!(
        "<svg viewBox=\"0 0 {width} {height}\" width=\"{width}\" height=\"{height}\" \
         xmlns=\"http://www.w3.org/2000/svg\">{rects}</svg>"
    )
}

fn decision_mix_rows(stats: &Json) -> Option<String> {
    let remote = stats.get("remote").and_then(Json::as_u64)?;
    let interpreted = stats.get("interpreted").and_then(Json::as_u64)?;
    let local: Vec<u64> = stats
        .get("local")
        .and_then(Json::as_array)
        .map(|a| a.iter().filter_map(Json::as_u64).collect())
        .unwrap_or_default();
    let mut cells = format!("<td>{interpreted}</td><td>{remote}</td>");
    for (i, l) in local.iter().enumerate() {
        cells.push_str(&format!("<td>L{}: {l}</td>", i + 1));
    }
    Some(cells)
}

/// Render the archive (plus a detector report over it) as one
/// self-contained static HTML document: no scripts, no external
/// resources, inline SVG only. Deterministic for identical archive
/// contents.
///
/// # Errors
/// On archive corruption or unparseable stored documents.
pub fn html_report(archive: &Archive, report: &LabReport) -> Result<String, String> {
    let runs = archive.runs()?;
    let mut html = String::from(
        "<!doctype html>\n<html lang=\"en\">\n<head>\n<meta charset=\"utf-8\">\n\
         <title>jem-lab report</title>\n<style>\n\
         body{font:14px/1.45 system-ui,sans-serif;margin:2rem auto;max-width:72rem;\
         padding:0 1rem;color:#1a1a2e;}\n\
         h1,h2,h3{font-weight:600;}\nh2{margin-top:2.2rem;border-bottom:1px solid #ddd;}\n\
         table{border-collapse:collapse;margin:0.6rem 0;}\n\
         th,td{border:1px solid #ddd;padding:0.25rem 0.55rem;text-align:left;\
         font-variant-numeric:tabular-nums;}\nth{background:#f4f4f8;}\n\
         .flag{background:#fde8e8;}\n.ok{color:#2f7d32;}\n.bad{color:#b3261e;font-weight:600;}\n\
         code{background:#f4f4f8;padding:0 0.25rem;border-radius:3px;}\n\
         .muted{color:#667;}\n</style>\n</head>\n<body>\n<h1>jem-lab report</h1>\n",
    );
    html.push_str(&format!(
        "<p>{} run(s) across {} line(s); detector: {}</p>\n",
        runs.len(),
        report.lines.len(),
        if report.flagged() {
            format!(
                "<span class=\"bad\">{} regression flag(s)</span>",
                report.flags.len()
            )
        } else {
            "<span class=\"ok\">no regressions flagged</span>".to_string()
        }
    ));

    // Flags first: the reason anyone opens this page.
    html.push_str("<h2>Flagged regressions</h2>\n");
    if report.flags.is_empty() {
        html.push_str("<p class=\"ok\">none</p>\n");
    } else {
        html.push_str(
            "<table>\n<tr><th>kind</th><th>line</th><th>gens</th><th>path</th>\
             <th>detail</th></tr>\n",
        );
        for f in &report.flags {
            html.push_str(&format!(
                "<tr class=\"flag\"><td>{}</td><td>{}@{}</td><td>{}&rarr;{}</td>\
                 <td><code>{}</code></td><td>{}</td></tr>\n",
                html_escape(&f.kind),
                html_escape(&f.bin),
                html_escape(&f.fingerprint),
                f.from_gen,
                f.to_gen,
                html_escape(&f.path),
                html_escape(&f.detail)
            ));
        }
        html.push_str("</table>\n");
    }

    // Cross-run trends per line.
    html.push_str("<h2>History lines</h2>\n");
    for line in &report.lines {
        let line_runs: Vec<&RunRecord> = runs
            .iter()
            .filter(|r| r.fingerprint == line.fingerprint)
            .collect();
        html.push_str(&format!(
            "<h3><code>{}</code> @ <code>{}</code></h3>\n<p class=\"muted\">args: \
             <code>{}</code> &middot; {} generation(s)</p>\n",
            html_escape(&line.bin),
            html_escape(&line.fingerprint),
            html_escape(&if line.args.is_empty() {
                "(defaults)".to_string()
            } else {
                line.args.join(" ")
            }),
            line.gens.len()
        ));
        // Trend: total energy per generation (sum of every
        // total_energy_nj leaf in the run's bench document).
        let mut energy_trend = Vec::new();
        for run in &line_runs {
            if let Some(doc) =
                parse_doc(archive, run, "bench")?.or(parse_doc(archive, run, "bench-history")?)
            {
                let total: f64 = named_leaves(&doc, "total_energy_nj")
                    .iter()
                    .map(|(_, v)| v)
                    .sum();
                energy_trend.push(total);
            }
        }
        if energy_trend.len() >= 2 {
            html.push_str(&format!(
                "<p>total energy per generation {} <span class=\"muted\">[{} .. {}] nJ\
                 </span></p>\n",
                svg_sparkline(&energy_trend, 220, 30, 64, "#4e79a7"),
                fmt_si(energy_trend.iter().cloned().fold(f64::INFINITY, f64::min)),
                fmt_si(
                    energy_trend
                        .iter()
                        .cloned()
                        .fold(f64::NEG_INFINITY, f64::max)
                ),
            ));
        }
        if line.throughput.len() >= 2 {
            html.push_str(&format!(
                "<p>throughput per generation {} <span class=\"muted\">[{} .. {}] \
                 sim-instr/s</span></p>\n",
                svg_sparkline(&line.throughput, 220, 30, 64, "#59a14f"),
                fmt_si(
                    line.throughput
                        .iter()
                        .cloned()
                        .fold(f64::INFINITY, f64::min)
                ),
                fmt_si(
                    line.throughput
                        .iter()
                        .cloned()
                        .fold(f64::NEG_INFINITY, f64::max)
                ),
            ));
        }
        let diff_changes = line.diff.get("changes").and_then(Json::as_u64).unwrap_or(0);
        if line.gens.len() >= 2 {
            html.push_str(&format!(
                "<p class=\"muted\">first-vs-rest diff: {} changed entr{}</p>\n",
                diff_changes,
                if diff_changes == 1 { "y" } else { "ies" }
            ));
        }
    }

    // Per-run detail.
    html.push_str("<h2>Runs</h2>\n");
    for run in &runs {
        html.push_str(&format!(
            "<h3><code>{}</code> <span class=\"muted\">run {}</span></h3>\n",
            html_escape(&run.label()),
            html_escape(&run.run_id)
        ));
        html.push_str(
            "<table>\n<tr><th>artifact</th><th>kind</th><th>bytes</th>\
                       <th>sha256</th></tr>\n",
        );
        for a in &run.artifacts {
            html.push_str(&format!(
                "<tr><td>{}</td><td>{}</td><td>{}</td><td><code>{}</code></td></tr>\n",
                html_escape(&a.name),
                html_escape(&a.kind),
                a.bytes,
                html_escape(&a.sha256[..16])
            ));
        }
        html.push_str("</table>\n");

        if let Some(doc) = parse_doc(archive, run, "bench")? {
            // Energy breakdowns with stacked component bars.
            let breakdowns = named_objects(&doc, "breakdown_nj");
            if !breakdowns.is_empty() {
                html.push_str(
                    "<table>\n<tr><th>result</th><th>total (nJ)</th>\
                     <th>components</th></tr>\n",
                );
                for (path, bd) in breakdowns.iter().take(16) {
                    let total = bd.get("total").and_then(Json::as_f64).unwrap_or(0.0);
                    html.push_str(&format!(
                        "<tr><td><code>{}</code></td><td>{}</td><td>{}</td></tr>\n",
                        html_escape(path),
                        fmt_si(total),
                        breakdown_bar(bd, 260, 14)
                    ));
                }
                if breakdowns.len() > 16 {
                    html.push_str(&format!(
                        "<tr><td class=\"muted\" colspan=\"3\">&hellip; and {} more</td>\
                         </tr>\n",
                        breakdowns.len() - 16
                    ));
                }
                html.push_str("</table>\n");
            }
            // Decision mix from the embedded run stats.
            let stats = named_objects(&doc, "stats");
            let mix: Vec<(String, String)> = stats
                .iter()
                .filter_map(|(p, s)| decision_mix_rows(s).map(|row| (p.clone(), row)))
                .collect();
            if !mix.is_empty() {
                html.push_str(
                    "<table>\n<tr><th>result</th><th>interpreted</th><th>remote</th>\
                     <th colspan=\"3\">local</th></tr>\n",
                );
                for (path, cells) in mix.iter().take(16) {
                    html.push_str(&format!(
                        "<tr><td><code>{}</code></td>{cells}</tr>\n",
                        html_escape(path)
                    ));
                }
                html.push_str("</table>\n");
            }
        }

        // Timeline sparklines from the archived .jts, rendered by the
        // same resampling logic as the terminal dashboards.
        if let Some(artifact) = run.artifact("timeline") {
            let bytes = archive.read_artifact(artifact)?;
            let tl = Timeline::read(&bytes).map_err(|e| format!("{}: {e}", run.label()))?;
            html.push_str("<table>\n<tr><th>series</th><th>sparkline</th><th>end</th></tr>\n");
            for name in [
                "energy.core.cum_nj",
                "energy.radio-tx.cum_nj",
                "predictor.err_rel",
            ] {
                let Some(idx) = tl.series_index(name) else {
                    continue;
                };
                let vals: Vec<f64> = tl
                    .segments
                    .iter()
                    .flat_map(|seg| seg.cols[idx].iter().copied())
                    .collect();
                let end = tl
                    .segments
                    .last()
                    .map_or(0.0, |seg| seg.value_at(idx, seg.end_t));
                html.push_str(&format!(
                    "<tr><td><code>{}</code></td><td>{}</td><td>{}</td></tr>\n",
                    html_escape(name),
                    svg_sparkline(&vals, 300, 26, 100, "#b07aa1"),
                    fmt_si(end)
                ));
            }
            html.push_str("</table>\n");
        }
    }
    html.push_str("</body>\n</html>\n");
    Ok(html)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sha256_known_vectors() {
        assert_eq!(
            sha256_hex(b""),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
        );
        assert_eq!(
            sha256_hex(b"abc"),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
        );
        // Multi-block message (> 64 bytes).
        assert_eq!(
            sha256_hex(b"abcdefghbcdefghicdefghijdefghijkefghijklfghijklmghijklmnhijklmnoijklmnopjklmnopqklmnopqrlmnopqrsmnopqrstnopqrstu"),
            "cf5b16a778af8380036ce59e7b0492370b249b11e8f07a51afac45037afee9d1"
        );
    }

    #[test]
    fn identity_args_strip_output_flags() {
        let argv: Vec<String> = [
            "--runs",
            "40",
            "--trace",
            "a.jtb",
            "--seed",
            "7",
            "--json-out",
            "x.json",
            "--monitor",
            "--archive",
            "lab",
            "--slow-interp",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        assert_eq!(
            identity_args(&argv),
            vec!["--runs", "40", "--seed", "7", "--monitor", "--slow-interp"]
        );
    }

    #[test]
    fn fingerprint_depends_on_identity_only() {
        let argv = |extra: &[&str]| -> Vec<String> {
            let mut v = vec!["target/release/faults".to_string()];
            v.extend(extra.iter().map(|s| s.to_string()));
            v
        };
        let base = RunMeta::from_argv(&argv(&["--runs", "40", "--seed", "7"]));
        let renamed = RunMeta::from_argv(&argv(&[
            "--runs",
            "40",
            "--seed",
            "7",
            "--json-out",
            "other.json",
        ]));
        assert_eq!(base.fingerprint(), renamed.fingerprint());
        assert_eq!(base.seed, Some(7));
        let reseeded = RunMeta::from_argv(&argv(&["--runs", "40", "--seed", "8"]));
        assert_ne!(base.fingerprint(), reseeded.fingerprint());
        let other_bin = RunMeta {
            bin: "fig6".to_string(),
            ..base.clone()
        };
        assert_ne!(base.fingerprint(), other_bin.fingerprint());
    }

    #[test]
    fn select_path_wildcards_and_leaf_collection() {
        let doc = Json::parse(
            r#"{"points":[{"aa":{"breakdown_nj":{"core":10.0,"dram":2.0,"total":12.0}},
                 "loss":0.0},
                {"aa":{"breakdown_nj":{"core":20.0,"dram":3.0,"total":23.0}},
                 "loss":0.5}]}"#,
        )
        .unwrap();
        assert_eq!(
            select_path(&doc, "points/*/aa/breakdown_nj/core"),
            vec![10.0, 20.0]
        );
        assert_eq!(
            select_path(&doc, "points/1/aa/breakdown_nj/dram"),
            vec![3.0]
        );
        // Selecting a subtree collects all numeric leaves under it.
        assert_eq!(
            select_path(&doc, "points/0/aa/breakdown_nj"),
            vec![10.0, 2.0, 12.0]
        );
        assert!(select_path(&doc, "points/*/missing").is_empty());
    }
}

//! Trace-stream profiling: per-method / per-mode / per-component
//! energy and sim-time attribution, with flamegraph export.
//!
//! A trace is an energy-conservation ledger (every event carries the
//! [`EnergyBreakdown`] delta charged since the previous event — see
//! [`crate::trace`]). This module *consumes* that ledger: it folds an
//! event stream into a stack-structured [`TraceProfile`] whose cells
//! answer "where did the joules go?" at three altitudes:
//!
//! * **method** — the potential method of the enclosing invocation
//!   (`invocation-start` carries its qualified label);
//! * **mode** — how that invocation executed (`interpret`, `remote`,
//!   `local/L1..L3`), resolved from its `invocation-end`;
//! * **phase frames** — the call structure within the invocation:
//!   decision evaluation, compilations (with radio windows of a code
//!   download nested *inside* the compile frame), remote tx/rx
//!   windows, power-down naps, retry backoffs, fallbacks, and the
//!   final execute span.
//!
//! Every event's delta is attributed to exactly one stack, so the
//! profile telescopes: the sum over all cells equals the sum of the
//! deltas equals (within float round-off of the telescoped ledger)
//! the run's `EnergyBreakdown`. [`TraceProfile::reconcile`] checks
//! this, and the `jem-profile` binary enforces it on every export.
//!
//! Exports: top-N hot tables ([`TraceProfile::render_method_table`],
//! [`TraceProfile::render_hot_frames`]) and collapsed-stack text
//! ([`TraceProfile::collapsed`]) that `inferno-flamegraph`,
//! speedscope, and `flamegraph.pl` all ingest directly — one line per
//! stack, `frame;frame;frame weight`, energy- or time-weighted.

use crate::json::Json;
use crate::trace::{breakdown_json, TraceEvent, TraceEventKind};
use jem_energy::{Component, EnergyBreakdown, SimTime};
use std::collections::{BTreeMap, VecDeque};

/// Method label used when a shard never saw an `invocation-start`
/// (e.g. a ring sink that dropped the head of the stream).
pub const UNKNOWN_METHOD: &str = "(unknown-method)";
/// Mode label used when an invocation's `invocation-end` is missing
/// (truncated stream).
pub const UNKNOWN_MODE: &str = "(truncated)";

/// Aggregated weight of one profile cell (a unique frame stack).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct CellStats {
    /// Energy attributed to this stack, per component.
    pub energy: EnergyBreakdown,
    /// Sim-time attributed to this stack.
    pub time: SimTime,
    /// Trace events attributed to this stack.
    pub events: u64,
}

impl CellStats {
    fn absorb(&mut self, delta: EnergyBreakdown, dt: SimTime) {
        self.energy += delta;
        self.time += dt;
        self.events += 1;
    }

    /// Fold another cell into this one (used for prefix roll-ups).
    pub fn merge(&mut self, other: &CellStats) {
        self.energy += other.energy;
        self.time += other.time;
        self.events += other.events;
    }
}

/// Which weight a collapsed-stack export carries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CollapseWeight {
    /// Total energy in nanojoules (rounded to integer counts).
    EnergyNanojoules,
    /// Sim-time in nanoseconds (rounded to integer counts).
    TimeNanos,
}

/// A folded trace: leaf cells keyed by frame stack
/// `[method, mode, phase…]`, plus stream-level totals.
#[derive(Debug, Clone, Default)]
pub struct TraceProfile {
    cells: BTreeMap<Vec<String>, CellStats>,
    total: EnergyBreakdown,
    total_time: SimTime,
    invocations: u64,
    shards: usize,
    events: u64,
}

/// One row of the per-method × per-mode table.
#[derive(Debug, Clone)]
pub struct MethodModeRow {
    /// Qualified method label.
    pub method: String,
    /// Execution-mode label.
    pub mode: String,
    /// Aggregated weight over every phase of that pair.
    pub stats: CellStats,
}

impl TraceProfile {
    /// Fold a (possibly multi-shard) event stream into a profile.
    /// Shard boundaries are detected wherever the `seq` counter
    /// restarts; each shard carries its own sim-time origin. This is
    /// the batch face of [`ProfileFolder`], which streams.
    pub fn fold(events: &[TraceEvent]) -> TraceProfile {
        let mut folder = ProfileFolder::new();
        for ev in events {
            folder.push(ev.clone());
        }
        folder.finish()
    }

    fn absorb_resolved(&mut self, r: &ResolvedEvent) {
        self.total += r.event.delta;
        self.total_time += r.dt;
        self.events += 1;
        if matches!(r.event.kind, TraceEventKind::InvocationStart { .. }) {
            self.invocations += 1;
        }
        let mut stack = Vec::with_capacity(r.frames.len() + 2);
        stack.push(r.method.clone());
        stack.push(r.mode.clone());
        stack.extend(r.frames.iter().cloned());
        self.cells
            .entry(stack)
            .or_default()
            .absorb(r.event.delta, r.dt);
    }

    /// Leaf cells: `(stack, stats)` in deterministic (lexicographic)
    /// order.
    pub fn cells(&self) -> impl Iterator<Item = (&[String], &CellStats)> {
        self.cells.iter().map(|(k, v)| (k.as_slice(), v))
    }

    /// Total energy over the whole stream (the telescoped ledger).
    pub fn total(&self) -> EnergyBreakdown {
        self.total
    }

    /// Total sim-time over the whole stream (summed per shard).
    pub fn total_time(&self) -> SimTime {
        self.total_time
    }

    /// Top-level invocations seen.
    pub fn invocations(&self) -> u64 {
        self.invocations
    }

    /// Shards detected in the stream.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// Events folded.
    pub fn events(&self) -> u64 {
        self.events
    }

    /// Roll leaf cells up into every stack prefix: the returned map
    /// holds, for each prefix, the *total* weight of its subtree
    /// (a frame's *self* weight is its own leaf cell, if any).
    pub fn rollup(&self) -> BTreeMap<Vec<String>, CellStats> {
        let mut out: BTreeMap<Vec<String>, CellStats> = BTreeMap::new();
        for (stack, stats) in &self.cells {
            for depth in 1..=stack.len() {
                out.entry(stack[..depth].to_vec()).or_default().merge(stats);
            }
        }
        out
    }

    /// Per-method × per-mode rows, hottest (by total energy) first;
    /// ties break lexicographically so the table is deterministic.
    pub fn method_mode_rows(&self) -> Vec<MethodModeRow> {
        let mut agg: BTreeMap<(String, String), CellStats> = BTreeMap::new();
        for (stack, stats) in &self.cells {
            let method = stack.first().cloned().unwrap_or_default();
            let mode = stack.get(1).cloned().unwrap_or_default();
            agg.entry((method, mode)).or_default().merge(stats);
        }
        let mut rows: Vec<MethodModeRow> = agg
            .into_iter()
            .map(|((method, mode), stats)| MethodModeRow {
                method,
                mode,
                stats,
            })
            .collect();
        rows.sort_by(|a, b| {
            b.stats
                .energy
                .total()
                .nanojoules()
                .partial_cmp(&a.stats.energy.total().nanojoules())
                .expect("finite energies")
                .then_with(|| (&a.method, &a.mode).cmp(&(&b.method, &b.mode)))
        });
        rows
    }

    /// Collapsed-stack text (one `frame;frame;… weight` line per leaf
    /// cell, lexicographically ordered) — the format `inferno`,
    /// speedscope and `flamegraph.pl` consume. Weights are rounded to
    /// integers; zero-weight lines are dropped.
    pub fn collapsed(&self, weight: CollapseWeight) -> String {
        let mut out = String::new();
        for (stack, stats) in &self.cells {
            let w = match weight {
                CollapseWeight::EnergyNanojoules => stats.energy.total().nanojoules(),
                CollapseWeight::TimeNanos => stats.time.nanos(),
            }
            .round();
            if w <= 0.0 {
                continue;
            }
            out.push_str(&stack.join(";"));
            out.push(' ');
            out.push_str(&format!("{w:.0}"));
            out.push('\n');
        }
        out
    }

    /// Check the profile's column sums against an externally known
    /// breakdown (the run's `EnergyBreakdown`, or a trace document's
    /// `otherData.total_energy`), component by component, within
    /// `rel_tol` relative tolerance.
    ///
    /// # Errors
    /// A message naming the first component whose attributed sum
    /// disagrees.
    pub fn reconcile(&self, expected: &EnergyBreakdown, rel_tol: f64) -> Result<(), String> {
        // Column sums over the *cells* (not the running total), so a
        // lost delta in attribution is caught, not papered over.
        let mut summed = EnergyBreakdown::new();
        for stats in self.cells.values() {
            summed += stats.energy;
        }
        for c in Component::ALL {
            let got = summed[c].nanojoules();
            let want = expected[c].nanojoules();
            let tol = rel_tol * want.abs().max(1.0);
            if (got - want).abs() > tol {
                return Err(format!(
                    "profile does not reconcile: component '{}' sums to {got} nJ, expected {want} nJ (tol {tol})",
                    c.name()
                ));
            }
        }
        Ok(())
    }

    /// Fixed-width per-method × per-mode table, hottest first,
    /// truncated to `top` rows; column sums reconcile with the run's
    /// breakdown.
    pub fn render_method_table(&self, top: usize) -> String {
        let rows = self.method_mode_rows();
        let mut lines = Vec::new();
        lines.push(format!(
            "{:<34} {:>12} {:>12} {:>12} {:>12} {:>12} {:>12} {:>13} {:>8}",
            "method / mode",
            "core uJ",
            "dram uJ",
            "leak uJ",
            "tx uJ",
            "rx uJ",
            "total uJ",
            "time ms",
            "events"
        ));
        let shown = rows.iter().take(top);
        for row in shown {
            let e = &row.stats.energy;
            lines.push(format!(
                "{:<34} {:>12.3} {:>12.3} {:>12.3} {:>12.3} {:>12.3} {:>12.3} {:>13.4} {:>8}",
                format!("{} {}", row.method, row.mode),
                e[Component::Core].microjoules(),
                e[Component::Dram].microjoules(),
                e[Component::Leakage].microjoules(),
                e[Component::RadioTx].microjoules(),
                e[Component::RadioRx].microjoules(),
                e.total().microjoules(),
                row.stats.time.millis(),
                row.stats.events,
            ));
        }
        if rows.len() > top {
            lines.push(format!("… and {} more rows", rows.len() - top));
        }
        lines.push(format!(
            "{:<34} {:>12.3} {:>12.3} {:>12.3} {:>12.3} {:>12.3} {:>12.3} {:>13.4} {:>8}",
            "TOTAL",
            self.total[Component::Core].microjoules(),
            self.total[Component::Dram].microjoules(),
            self.total[Component::Leakage].microjoules(),
            self.total[Component::RadioTx].microjoules(),
            self.total[Component::RadioRx].microjoules(),
            self.total.total().microjoules(),
            self.total_time.millis(),
            self.events,
        ));
        lines.join("\n")
    }

    /// Self/total hot-frame table over every stack prefix, hottest by
    /// total energy first, truncated to `top` rows.
    pub fn render_hot_frames(&self, top: usize) -> String {
        let rollup = self.rollup();
        let mut entries: Vec<(&Vec<String>, &CellStats)> = rollup.iter().collect();
        entries.sort_by(|a, b| {
            b.1.energy
                .total()
                .nanojoules()
                .partial_cmp(&a.1.energy.total().nanojoules())
                .expect("finite energies")
                .then_with(|| a.0.cmp(b.0))
        });
        let mut lines = Vec::new();
        lines.push(format!(
            "{:<56} {:>12} {:>12} {:>13}",
            "frame stack", "self uJ", "total uJ", "time ms"
        ));
        for (stack, total_stats) in entries.into_iter().take(top) {
            let self_stats = self.cells.get(stack).copied().unwrap_or_default();
            lines.push(format!(
                "{:<56} {:>12.3} {:>12.3} {:>13.4}",
                stack.join(";"),
                self_stats.energy.total().microjoules(),
                total_stats.energy.total().microjoules(),
                total_stats.time.millis(),
            ));
        }
        lines.join("\n")
    }

    /// Machine-readable profile document.
    pub fn to_json(&self) -> Json {
        let cells: Vec<Json> = self
            .cells
            .iter()
            .map(|(stack, stats)| {
                Json::object()
                    .with(
                        "stack",
                        Json::Arr(stack.iter().map(|f| Json::Str(f.clone())).collect()),
                    )
                    .with("energy_nj", breakdown_json(&stats.energy))
                    .with("time_ns", stats.time.nanos())
                    .with("events", stats.events)
            })
            .collect();
        let rows: Vec<Json> = self
            .method_mode_rows()
            .into_iter()
            .map(|row| {
                Json::object()
                    .with("method", row.method.as_str())
                    .with("mode", row.mode.as_str())
                    .with("energy_nj", breakdown_json(&row.stats.energy))
                    .with("time_ns", row.stats.time.nanos())
                    .with("events", row.stats.events)
            })
            .collect();
        Json::object()
            .with("schema", "jem-profile/v1")
            .with("shards", self.shards)
            .with("invocations", self.invocations)
            .with("events", self.events)
            .with("total_energy_nj", breakdown_json(&self.total))
            .with("total_time_ns", self.total_time.nanos())
            .with("methods", Json::Arr(rows))
            .with("cells", Json::Arr(cells))
    }
}

fn frames(open: &[String], leaf: &str) -> Vec<String> {
    let mut s = Vec::with_capacity(open.len() + 1);
    s.extend(open.iter().cloned());
    s.push(leaf.to_string());
    s
}

fn compile_frame(level: &str, source: &str) -> String {
    format!("compile-{level}-{source}")
}

/// An event with the invocation-level context that is only knowable
/// once the whole invocation has been seen: the enclosing method, the
/// retroactively resolved execution mode, the phase-frame suffix, the
/// per-shard time delta, and the shard ordinal.
#[derive(Debug, Clone)]
pub struct ResolvedEvent {
    /// The raw trace event.
    pub event: TraceEvent,
    /// 0-based shard ordinal in the stream.
    pub shard: usize,
    /// Qualified method of the enclosing invocation
    /// ([`UNKNOWN_METHOD`] if the stream head was dropped).
    pub method: String,
    /// Execution mode from the invocation's `invocation-end`
    /// ([`UNKNOWN_MODE`] if the stream was truncated mid-invocation).
    pub mode: String,
    /// Sim-time elapsed since the previous event of the same shard.
    pub dt: SimTime,
    /// Phase-frame suffix — the profile stack below `[method, mode]`.
    pub frames: Vec<String>,
}

impl ResolvedEvent {
    /// The full profile stack `[method, mode, frames…]`.
    pub fn stack(&self) -> Vec<String> {
        let mut s = Vec::with_capacity(self.frames.len() + 2);
        s.push(self.method.clone());
        s.push(self.mode.clone());
        s.extend(self.frames.iter().cloned());
        s
    }
}

/// The streaming core shared by the profiler and `jem-query`: buffers
/// one invocation at a time (the mode is only revealed by its
/// `invocation-end`), detects shard restarts on the `seq` counter, and
/// yields [`ResolvedEvent`]s in input order. Memory is O(one
/// invocation), never O(run).
#[derive(Debug, Default)]
pub struct InvocationResolver {
    started: bool,
    shard: usize,
    prev_seq: u64,
    prev_at: SimTime,
    pending: Vec<(TraceEvent, Vec<String>, SimTime)>,
    method: Option<String>,
    open: Vec<String>,
    out: VecDeque<ResolvedEvent>,
}

impl InvocationResolver {
    /// A fresh resolver.
    pub fn new() -> InvocationResolver {
        InvocationResolver::default()
    }

    /// Feed the next event of the stream. Resolved events become
    /// available from [`InvocationResolver::next_resolved`] as soon as
    /// their invocation completes.
    pub fn push(&mut self, ev: TraceEvent) {
        if self.started && ev.seq <= self.prev_seq {
            // seq restarted: a new shard begins. Anything pending
            // belongs to an invocation the old shard never finished.
            self.flush(UNKNOWN_MODE);
            self.shard += 1;
            self.prev_at = SimTime::ZERO;
            self.method = None;
            self.open.clear();
        }
        self.started = true;
        self.prev_seq = ev.seq;
        let dt = ev.at - self.prev_at;
        self.prev_at = ev.at;
        let mut finished_mode: Option<String> = None;
        let suffix: Vec<String> = match &ev.kind {
            TraceEventKind::InvocationStart { method: m, .. } => {
                self.method = Some(m.clone());
                vec!["start".to_string()]
            }
            TraceEventKind::DecisionEvaluated { .. } => frames(&self.open, "decision"),
            TraceEventKind::CompileStart { level, source } => {
                // The pre-compile residue is tiny; charging it to
                // the compile frame keeps "one event, one stack".
                let frame = compile_frame(level, source);
                let s = frames(&self.open, &frame);
                self.open.push(frame);
                s
            }
            TraceEventKind::CompileEnd { .. } => {
                let s = self.open.clone();
                self.open.pop();
                if s.is_empty() {
                    // Unmatched end (truncated head): own frame.
                    vec!["compile-end".to_string()]
                } else {
                    s
                }
            }
            TraceEventKind::InvocationEnd { mode, .. } => {
                finished_mode = Some(mode.clone());
                vec!["execute".to_string()]
            }
            // Windowed and point events are leaves named by kind,
            // nested under any open compile frame (a download's
            // radio windows belong to the compile).
            other => frames(&self.open, other.name()),
        };
        self.pending.push((ev, suffix, dt));
        if let Some(mode) = finished_mode {
            self.flush(&mode);
            self.open.clear();
        }
    }

    fn flush(&mut self, mode: &str) {
        let method = self.method.as_deref().unwrap_or(UNKNOWN_METHOD);
        for (event, frames, dt) in self.pending.drain(..) {
            self.out.push_back(ResolvedEvent {
                event,
                shard: self.shard,
                method: method.to_string(),
                mode: mode.to_string(),
                dt,
                frames,
            });
        }
    }

    /// Declare the stream over: any buffered tail (an invocation whose
    /// end was never seen) resolves under [`UNKNOWN_MODE`].
    pub fn finish(&mut self) {
        if !self.pending.is_empty() {
            self.flush(UNKNOWN_MODE);
        }
    }

    /// The next resolved event, if one is ready.
    pub fn next_resolved(&mut self) -> Option<ResolvedEvent> {
        self.out.pop_front()
    }

    /// Shards seen so far (0 before the first event).
    pub fn shards_seen(&self) -> usize {
        if self.started {
            self.shard + 1
        } else {
            0
        }
    }
}

/// Streaming profile construction: push events as they arrive (from a
/// [`crate::wire::JtbStream`], a live sink, …), then [`finish`] into a
/// [`TraceProfile`]. Equivalent to [`TraceProfile::fold`] by
/// construction — both run on [`InvocationResolver`] — but in O(one
/// invocation + cells) memory instead of O(run).
///
/// [`finish`]: ProfileFolder::finish
#[derive(Debug, Default)]
pub struct ProfileFolder {
    resolver: InvocationResolver,
    profile: TraceProfile,
}

impl ProfileFolder {
    /// A fresh folder.
    pub fn new() -> ProfileFolder {
        ProfileFolder::default()
    }

    /// Feed the next event of the stream.
    pub fn push(&mut self, ev: TraceEvent) {
        self.resolver.push(ev);
        self.absorb();
    }

    fn absorb(&mut self) {
        while let Some(r) = self.resolver.next_resolved() {
            self.profile.absorb_resolved(&r);
        }
    }

    /// Complete the profile (flushes any truncated tail invocation).
    pub fn finish(mut self) -> TraceProfile {
        self.resolver.finish();
        self.absorb();
        self.profile.shards = self.resolver.shards_seen();
        self.profile
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jem_energy::Energy;

    fn delta(c: Component, nj: f64) -> EnergyBreakdown {
        let mut b = EnergyBreakdown::new();
        b.charge(c, Energy::from_nanojoules(nj));
        b
    }

    fn ev(seq: u64, at_ns: f64, d: EnergyBreakdown, kind: TraceEventKind) -> TraceEvent {
        TraceEvent {
            seq,
            invocation: 1,
            ordinal: seq,
            at: SimTime::from_nanos(at_ns),
            delta: d,
            kind,
        }
    }

    /// A hand-built two-invocation stream: an AA invocation that
    /// downloads L2 code (radio windows inside the compile frame) and
    /// runs natively, then a remote invocation with a retry.
    fn synthetic_stream() -> Vec<TraceEvent> {
        let start = |seq, at| {
            ev(
                seq,
                at,
                delta(Component::Core, 1.0),
                TraceEventKind::InvocationStart {
                    strategy: "AA".into(),
                    method: "fe::Main.integrate".into(),
                    size: 64,
                    true_class: "C3".into(),
                    chosen_class: "C3".into(),
                },
            )
        };
        vec![
            start(0, 10.0),
            ev(
                1,
                20.0,
                delta(Component::Core, 5.0),
                TraceEventKind::DecisionEvaluated {
                    k: 1,
                    s_bar: 64.0,
                    pa_bar_w: 0.4,
                    interpret_nj: 900.0,
                    remote_nj: 700.0,
                    local_nj: [400.0, 300.0, 350.0],
                    chosen: "local/L2".into(),
                    remote_allowed: true,
                },
            ),
            ev(
                2,
                30.0,
                delta(Component::Core, 2.0),
                TraceEventKind::CompileStart {
                    level: "L2".into(),
                    source: "download".into(),
                },
            ),
            ev(
                3,
                50.0,
                delta(Component::RadioTx, 40.0),
                TraceEventKind::TxWindow {
                    bytes: 64,
                    airtime: SimTime::from_nanos(20.0),
                    retransmit: false,
                },
            ),
            ev(
                4,
                90.0,
                delta(Component::RadioRx, 60.0),
                TraceEventKind::RxWindow {
                    bytes: 512,
                    airtime: SimTime::from_nanos(40.0),
                },
            ),
            ev(
                5,
                100.0,
                delta(Component::Core, 3.0),
                TraceEventKind::CompileEnd {
                    level: "L2".into(),
                    source: "download".into(),
                    ok: true,
                },
            ),
            ev(
                6,
                200.0,
                delta(Component::Core, 250.0),
                TraceEventKind::InvocationEnd {
                    mode: "local/L2".into(),
                    energy: Energy::from_nanojoules(361.0),
                    time: SimTime::from_nanos(190.0),
                    instructions: 1_000,
                },
            ),
            // Second invocation: remote with a backoff retry.
            start(7, 210.0),
            ev(
                8,
                240.0,
                delta(Component::RadioTx, 30.0),
                TraceEventKind::TxWindow {
                    bytes: 64,
                    airtime: SimTime::from_nanos(30.0),
                    retransmit: false,
                },
            ),
            ev(
                9,
                300.0,
                delta(Component::Leakage, 6.0),
                TraceEventKind::RetryAttempt {
                    attempt: 1,
                    backoff: SimTime::from_nanos(60.0),
                },
            ),
            ev(
                10,
                340.0,
                delta(Component::RadioTx, 45.0),
                TraceEventKind::TxWindow {
                    bytes: 64,
                    airtime: SimTime::from_nanos(30.0),
                    retransmit: true,
                },
            ),
            ev(
                11,
                400.0,
                delta(Component::RadioRx, 25.0),
                TraceEventKind::RxWindow {
                    bytes: 16,
                    airtime: SimTime::from_nanos(20.0),
                },
            ),
            ev(
                12,
                410.0,
                delta(Component::Core, 4.0),
                TraceEventKind::InvocationEnd {
                    mode: "remote".into(),
                    energy: Energy::from_nanojoules(110.0),
                    time: SimTime::from_nanos(200.0),
                    instructions: 2_000,
                },
            ),
        ]
    }

    #[test]
    fn download_windows_nest_inside_compile_frame() {
        let p = TraceProfile::fold(&synthetic_stream());
        let tx_in_compile: Vec<String> = [
            "fe::Main.integrate",
            "local/L2",
            "compile-L2-download",
            "tx-window",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        let cell = p.cells.get(&tx_in_compile).expect("nested tx cell");
        assert_eq!(cell.energy[Component::RadioTx].nanojoules(), 40.0);
        // The remote invocation's tx windows are NOT under a compile.
        let tx_remote: Vec<String> = ["fe::Main.integrate", "remote", "tx-window"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let cell = p.cells.get(&tx_remote).expect("remote tx cell");
        assert_eq!(cell.energy[Component::RadioTx].nanojoules(), 75.0);
        assert_eq!(cell.events, 2);
    }

    #[test]
    fn profile_telescopes_to_stream_totals() {
        let events = synthetic_stream();
        let p = TraceProfile::fold(&events);
        let mut expected = EnergyBreakdown::new();
        for e in &events {
            expected += e.delta;
        }
        p.reconcile(&expected, 0.0).expect("exact reconciliation");
        assert_eq!(p.invocations(), 2);
        assert_eq!(p.shards(), 1);
        assert_eq!(p.events(), events.len() as u64);
        assert!((p.total_time().nanos() - 410.0).abs() < 1e-12);
        // A perturbed expectation is rejected.
        let mut wrong = expected;
        wrong.charge(Component::Core, Energy::from_nanojoules(5000.0));
        assert!(p.reconcile(&wrong, 1e-9).is_err());
    }

    #[test]
    fn rollup_totals_cover_leaf_self_weights() {
        let p = TraceProfile::fold(&synthetic_stream());
        let rollup = p.rollup();
        let method_total = rollup
            .get(&vec!["fe::Main.integrate".to_string()])
            .expect("method prefix");
        assert!(
            (method_total.energy.total().nanojoules() - p.total().total().nanojoules()).abs()
                < 1e-9
        );
        let compile_total = rollup
            .get(
                &["fe::Main.integrate", "local/L2", "compile-L2-download"]
                    .iter()
                    .map(|s| s.to_string())
                    .collect::<Vec<_>>(),
            )
            .expect("compile prefix");
        // Self (2 start + 3 end) + nested tx 40 + rx 60.
        assert_eq!(compile_total.energy.total().nanojoules(), 105.0);
    }

    #[test]
    fn collapsed_stack_golden() {
        let p = TraceProfile::fold(&synthetic_stream());
        let expected = "\
fe::Main.integrate;local/L2;compile-L2-download 5
fe::Main.integrate;local/L2;compile-L2-download;rx-window 60
fe::Main.integrate;local/L2;compile-L2-download;tx-window 40
fe::Main.integrate;local/L2;decision 5
fe::Main.integrate;local/L2;execute 250
fe::Main.integrate;local/L2;start 1
fe::Main.integrate;remote;execute 4
fe::Main.integrate;remote;retry-attempt 6
fe::Main.integrate;remote;rx-window 25
fe::Main.integrate;remote;start 1
fe::Main.integrate;remote;tx-window 75
";
        assert_eq!(p.collapsed(CollapseWeight::EnergyNanojoules), expected);
        let time_weighted = p.collapsed(CollapseWeight::TimeNanos);
        assert!(time_weighted.contains("fe::Main.integrate;local/L2;execute 100"));
    }

    #[test]
    fn truncated_stream_flushes_under_unknown_mode() {
        let mut events = synthetic_stream();
        events.truncate(10); // cut inside the second invocation
        let p = TraceProfile::fold(&events);
        let mut expected = EnergyBreakdown::new();
        for e in &events {
            expected += e.delta;
        }
        p.reconcile(&expected, 0.0).expect("still conserves");
        assert!(p
            .cells()
            .any(|(stack, _)| stack.get(1).map(String::as_str) == Some(UNKNOWN_MODE)));
    }

    #[test]
    fn multi_shard_streams_fold_per_shard() {
        let mut events = synthetic_stream();
        let second = synthetic_stream();
        events.extend(second);
        let p = TraceProfile::fold(&events);
        assert_eq!(p.shards(), 2);
        assert_eq!(p.invocations(), 4);
        // Time telescopes per shard: 410 + 410.
        assert!((p.total_time().nanos() - 820.0).abs() < 1e-12);
    }

    #[test]
    fn method_mode_rows_are_hottest_first_and_sum_to_total() {
        let p = TraceProfile::fold(&synthetic_stream());
        let rows = p.method_mode_rows();
        assert_eq!(rows.len(), 2);
        assert!(rows[0].stats.energy.total() >= rows[1].stats.energy.total());
        let sum: f64 = rows
            .iter()
            .map(|r| r.stats.energy.total().nanojoules())
            .sum();
        assert!((sum - p.total().total().nanojoules()).abs() < 1e-9);
        let table = p.render_method_table(10);
        assert!(table.contains("TOTAL"));
        assert!(p.render_hot_frames(5).contains("frame stack"));
    }

    #[test]
    fn profile_json_is_parseable_and_complete() {
        let p = TraceProfile::fold(&synthetic_stream());
        let doc = p.to_json();
        let back = Json::parse(&doc.render_pretty()).expect("parses");
        assert_eq!(
            back.get("schema").and_then(Json::as_str),
            Some("jem-profile/v1")
        );
        assert_eq!(back.get("invocations").and_then(Json::as_u64), Some(2));
        assert_eq!(
            back.get("cells")
                .and_then(Json::as_array)
                .map(<[Json]>::len),
            Some(p.cells.len())
        );
    }
}

//! Compare two runs' exported artifacts — or one baseline against a
//! whole batch of candidates.
//!
//! ```text
//! jem-diff <a.json> <b.json> [options]
//! jem-diff --batch <baseline> <candidate>... [options]
//!   --rel-tol <x>        relative tolerance for strict numbers (default 0)
//!   --noisy-rel-tol <x>  tolerance for noisy keys before failing (default 0.5)
//!   --noisy <marker>     extra key substring treated as noisy (repeatable)
//!   --ignore <marker>    key substring skipped entirely (repeatable)
//!   --json-out <path>    write the machine-readable diff report
//! ```
//!
//! Inputs must be artifacts from this workspace: trace files — binary
//! `.jtb` (sniffed by magic) or Chrome-trace JSON (detected by its
//! `traceEvents` member), compared semantically in either format and
//! across formats (per-method × per-mode energy deltas, adaptive
//! decision flips with the recorded candidate energies, event-kind
//! count deltas) — or any other JSON document (`--json-out` results,
//! metrics, profiles — compared structurally).
//!
//! `--batch` compares the baseline against each candidate in turn and
//! emits one combined `jem-diff/v1` report with a `batch` table
//! (per-candidate outcomes) instead of requiring N separate
//! invocations. The `jem-lab` regression detector's per-line compare
//! path emits the same combined shape.
//!
//! Exit status: 0 when no failing difference was found (notes inside
//! the noisy tolerance are fine), 1 when the runs differ (any
//! candidate, in batch mode), 2 on usage errors. Diffing an artifact
//! against itself is empty by construction; CI leans on that for the
//! determinism gate.

use jem_obs::diff::{combine_batch, diff_json, diff_traces, DiffPolicy, DiffReport};
use jem_obs::json::Json;
use jem_obs::trace::{events_from_chrome_trace, TraceEvent};
use jem_obs::wire::{is_jtb, load_jtb_bytes};
use std::process::ExitCode;

/// One parsed input: a trace (either format, reduced to events) or an
/// arbitrary JSON artifact.
enum Input {
    Trace(Vec<TraceEvent>),
    Doc(Json),
}

const USAGE: &str = "usage: jem-diff <a.json> <b.json> [--rel-tol <x>] [--noisy-rel-tol <x>] \
                     [--noisy <marker>]... [--ignore <marker>]... [--json-out <path>]\n\
                     \u{20}      jem-diff --batch <baseline> <candidate>... [same options]";

fn load_input(path: &str) -> Result<Input, String> {
    let bytes = std::fs::read(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    if is_jtb(&bytes) {
        return load_jtb_bytes(&bytes)
            .map(|l| Input::Trace(l.events()))
            .map_err(|e| format!("{path}: {e}"));
    }
    let text = String::from_utf8(bytes)
        .map_err(|_| format!("{path}: input is neither .jtb (bad magic) nor UTF-8 JSON"))?;
    let doc = Json::parse(&text).map_err(|e| format!("{path}: {e}"))?;
    if doc.get("traceEvents").is_some() {
        events_from_chrome_trace(&doc)
            .map(Input::Trace)
            .map_err(|e| format!("{path}: {e}"))
    } else {
        Ok(Input::Doc(doc))
    }
}

fn compare(a: &Input, b: &Input, policy: &DiffPolicy) -> Result<DiffReport, String> {
    match (a, b) {
        (Input::Trace(ea), Input::Trace(eb)) => Ok(diff_traces(ea, eb, policy)),
        (Input::Doc(da), Input::Doc(db)) => {
            let mut r = DiffReport::default();
            diff_json(da, db, policy, &mut r);
            Ok(r)
        }
        _ => Err("cannot compare a trace against a non-trace document".to_string()),
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut paths: Vec<String> = Vec::new();
    let mut policy = DiffPolicy::default();
    let mut json_out = None;
    let mut batch = false;
    let mut i = 0;
    while i < args.len() {
        let take = |i: usize| -> Option<String> { args.get(i + 1).cloned() };
        match args[i].as_str() {
            "--rel-tol" => {
                let Some(v) = take(i).and_then(|v| v.parse().ok()) else {
                    eprintln!("jem-diff: --rel-tol needs a number");
                    return ExitCode::from(2);
                };
                policy.rel_tol = v;
                policy.abs_tol = 1e-9;
                i += 2;
            }
            "--noisy-rel-tol" => {
                let Some(v) = take(i).and_then(|v| v.parse().ok()) else {
                    eprintln!("jem-diff: --noisy-rel-tol needs a number");
                    return ExitCode::from(2);
                };
                policy.noisy_rel_tol = v;
                i += 2;
            }
            "--noisy" => {
                let Some(v) = take(i) else {
                    eprintln!("jem-diff: --noisy needs a key marker");
                    return ExitCode::from(2);
                };
                policy.noisy_markers.push(v);
                i += 2;
            }
            "--ignore" => {
                let Some(v) = take(i) else {
                    eprintln!("jem-diff: --ignore needs a key marker");
                    return ExitCode::from(2);
                };
                policy.ignore_markers.push(v);
                i += 2;
            }
            "--json-out" => {
                let Some(v) = take(i) else {
                    eprintln!("jem-diff: --json-out needs a path");
                    return ExitCode::from(2);
                };
                json_out = Some(v);
                i += 2;
            }
            "--batch" => {
                batch = true;
                i += 1;
            }
            "--help" | "-h" => {
                eprintln!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => {
                if other.starts_with("--") {
                    eprintln!("jem-diff: unknown option '{other}'");
                    return ExitCode::from(2);
                }
                paths.push(other.to_string());
                i += 1;
            }
        }
    }

    if batch {
        if paths.len() < 2 {
            eprintln!("jem-diff: --batch needs a baseline and at least one candidate");
            eprintln!("{USAGE}");
            return ExitCode::from(2);
        }
        let baseline = match load_input(&paths[0]) {
            Ok(input) => input,
            Err(e) => {
                eprintln!("jem-diff: {e}");
                return ExitCode::FAILURE;
            }
        };
        let mut parts = Vec::with_capacity(paths.len() - 1);
        let mut any_changed = false;
        for path in &paths[1..] {
            let candidate = match load_input(path) {
                Ok(input) => input,
                Err(e) => {
                    eprintln!("jem-diff: {e}");
                    return ExitCode::FAILURE;
                }
            };
            let report = match compare(&baseline, &candidate, &policy) {
                Ok(r) => r,
                Err(e) => {
                    eprintln!("jem-diff: {e} ({} vs {path})", paths[0]);
                    return ExitCode::from(2);
                }
            };
            any_changed = any_changed || report.has_changes();
            println!(
                "{path}: {}",
                if report.has_changes() {
                    "CHANGED"
                } else if report.is_empty() {
                    "identical"
                } else {
                    "notes only"
                }
            );
            print!("{}", report.render_text());
            parts.push((path.clone(), report));
        }
        if let Some(out) = json_out {
            let doc = combine_batch(&paths[0], &parts);
            if let Err(e) = jem_obs::write_atomic(&out, doc.render_pretty().as_bytes()) {
                eprintln!("jem-diff: cannot write {out}: {e}");
                return ExitCode::FAILURE;
            }
        }
        return if any_changed {
            ExitCode::FAILURE
        } else {
            ExitCode::SUCCESS
        };
    }

    if paths.len() != 2 {
        eprintln!("{USAGE}");
        return ExitCode::from(2);
    }
    let (a_input, b_input) = match (load_input(&paths[0]), load_input(&paths[1])) {
        (Ok(a), Ok(b)) => (a, b),
        (Err(e), _) | (_, Err(e)) => {
            eprintln!("jem-diff: {e}");
            return ExitCode::FAILURE;
        }
    };
    let report = match compare(&a_input, &b_input, &policy) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("jem-diff: {e} ({} vs {})", paths[0], paths[1]);
            return ExitCode::from(2);
        }
    };

    print!("{}", report.render_text());
    if let Some(path) = json_out {
        let doc = report
            .to_json()
            .with("a", paths[0].as_str())
            .with("b", paths[1].as_str());
        if let Err(e) = jem_obs::write_atomic(&path, doc.render_pretty().as_bytes()) {
            eprintln!("jem-diff: cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
    }
    if report.has_changes() {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

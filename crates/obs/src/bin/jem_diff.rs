//! Compare two runs' exported artifacts.
//!
//! ```text
//! jem-diff <a.json> <b.json> [options]
//!   --rel-tol <x>        relative tolerance for strict numbers (default 0)
//!   --noisy-rel-tol <x>  tolerance for noisy keys before failing (default 0.5)
//!   --noisy <marker>     extra key substring treated as noisy (repeatable)
//!   --ignore <marker>    key substring skipped entirely (repeatable)
//!   --json-out <path>    write the machine-readable diff report
//! ```
//!
//! Both inputs must be JSON artifacts from this workspace: trace
//! documents (detected by their `traceEvents` member, compared
//! semantically — per-method × per-mode energy deltas, adaptive
//! decision flips with the recorded candidate energies, event-kind
//! count deltas) or any other document (`--json-out` results, metrics,
//! profiles — compared structurally).
//!
//! Exit status: 0 when no failing difference was found (notes inside
//! the noisy tolerance are fine), 1 when the runs differ, 2 on usage
//! errors. Diffing an artifact against itself is empty by
//! construction; CI leans on that for the determinism gate.

use jem_obs::diff::{diff_json, diff_traces, DiffPolicy, DiffReport};
use jem_obs::json::Json;
use jem_obs::trace::events_from_chrome_trace;
use std::process::ExitCode;

const USAGE: &str = "usage: jem-diff <a.json> <b.json> [--rel-tol <x>] [--noisy-rel-tol <x>] \
                     [--noisy <marker>]... [--ignore <marker>]... [--json-out <path>]";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut paths: Vec<String> = Vec::new();
    let mut policy = DiffPolicy::default();
    let mut json_out = None;
    let mut i = 0;
    while i < args.len() {
        let take = |i: usize| -> Option<String> { args.get(i + 1).cloned() };
        match args[i].as_str() {
            "--rel-tol" => {
                let Some(v) = take(i).and_then(|v| v.parse().ok()) else {
                    eprintln!("jem-diff: --rel-tol needs a number");
                    return ExitCode::from(2);
                };
                policy.rel_tol = v;
                policy.abs_tol = 1e-9;
                i += 2;
            }
            "--noisy-rel-tol" => {
                let Some(v) = take(i).and_then(|v| v.parse().ok()) else {
                    eprintln!("jem-diff: --noisy-rel-tol needs a number");
                    return ExitCode::from(2);
                };
                policy.noisy_rel_tol = v;
                i += 2;
            }
            "--noisy" => {
                let Some(v) = take(i) else {
                    eprintln!("jem-diff: --noisy needs a key marker");
                    return ExitCode::from(2);
                };
                policy.noisy_markers.push(v);
                i += 2;
            }
            "--ignore" => {
                let Some(v) = take(i) else {
                    eprintln!("jem-diff: --ignore needs a key marker");
                    return ExitCode::from(2);
                };
                policy.ignore_markers.push(v);
                i += 2;
            }
            "--json-out" => {
                let Some(v) = take(i) else {
                    eprintln!("jem-diff: --json-out needs a path");
                    return ExitCode::from(2);
                };
                json_out = Some(v);
                i += 2;
            }
            "--help" | "-h" => {
                eprintln!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => {
                if other.starts_with("--") {
                    eprintln!("jem-diff: unknown option '{other}'");
                    return ExitCode::from(2);
                }
                paths.push(other.to_string());
                i += 1;
            }
        }
    }
    if paths.len() != 2 {
        eprintln!("{USAGE}");
        return ExitCode::from(2);
    }

    let mut docs = Vec::with_capacity(2);
    for path in &paths {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("jem-diff: cannot read {path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        match Json::parse(&text) {
            Ok(d) => docs.push(d),
            Err(e) => {
                eprintln!("jem-diff: {path}: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    let (a, b) = (&docs[0], &docs[1]);

    let is_trace = |d: &Json| d.get("traceEvents").is_some();
    let report = if is_trace(a) && is_trace(b) {
        let ea = match events_from_chrome_trace(a) {
            Ok(ev) => ev,
            Err(e) => {
                eprintln!("jem-diff: {}: {e}", paths[0]);
                return ExitCode::FAILURE;
            }
        };
        let eb = match events_from_chrome_trace(b) {
            Ok(ev) => ev,
            Err(e) => {
                eprintln!("jem-diff: {}: {e}", paths[1]);
                return ExitCode::FAILURE;
            }
        };
        diff_traces(&ea, &eb, &policy)
    } else {
        let mut r = DiffReport::default();
        diff_json(a, b, &policy, &mut r);
        r
    };

    print!("{}", report.render_text());
    if let Some(path) = json_out {
        let doc = report
            .to_json()
            .with("a", paths[0].as_str())
            .with("b", paths[1].as_str());
        if let Err(e) = std::fs::write(&path, doc.render_pretty()) {
            eprintln!("jem-diff: cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
    }
    if report.has_changes() {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

//! Compare two runs' exported artifacts.
//!
//! ```text
//! jem-diff <a.json> <b.json> [options]
//!   --rel-tol <x>        relative tolerance for strict numbers (default 0)
//!   --noisy-rel-tol <x>  tolerance for noisy keys before failing (default 0.5)
//!   --noisy <marker>     extra key substring treated as noisy (repeatable)
//!   --ignore <marker>    key substring skipped entirely (repeatable)
//!   --json-out <path>    write the machine-readable diff report
//! ```
//!
//! Both inputs must be artifacts from this workspace: trace files —
//! binary `.jtb` (sniffed by magic) or Chrome-trace JSON (detected by
//! its `traceEvents` member), compared semantically in either format
//! and across formats (per-method × per-mode energy deltas, adaptive
//! decision flips with the recorded candidate energies, event-kind
//! count deltas) — or any other JSON document (`--json-out` results,
//! metrics, profiles — compared structurally).
//!
//! Exit status: 0 when no failing difference was found (notes inside
//! the noisy tolerance are fine), 1 when the runs differ, 2 on usage
//! errors. Diffing an artifact against itself is empty by
//! construction; CI leans on that for the determinism gate.

use jem_obs::diff::{diff_json, diff_traces, DiffPolicy, DiffReport};
use jem_obs::json::Json;
use jem_obs::trace::{events_from_chrome_trace, TraceEvent};
use jem_obs::wire::{is_jtb, load_jtb_bytes};
use std::process::ExitCode;

/// One parsed input: a trace (either format, reduced to events) or an
/// arbitrary JSON artifact.
enum Input {
    Trace(Vec<TraceEvent>),
    Doc(Json),
}

const USAGE: &str = "usage: jem-diff <a.json> <b.json> [--rel-tol <x>] [--noisy-rel-tol <x>] \
                     [--noisy <marker>]... [--ignore <marker>]... [--json-out <path>]";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut paths: Vec<String> = Vec::new();
    let mut policy = DiffPolicy::default();
    let mut json_out = None;
    let mut i = 0;
    while i < args.len() {
        let take = |i: usize| -> Option<String> { args.get(i + 1).cloned() };
        match args[i].as_str() {
            "--rel-tol" => {
                let Some(v) = take(i).and_then(|v| v.parse().ok()) else {
                    eprintln!("jem-diff: --rel-tol needs a number");
                    return ExitCode::from(2);
                };
                policy.rel_tol = v;
                policy.abs_tol = 1e-9;
                i += 2;
            }
            "--noisy-rel-tol" => {
                let Some(v) = take(i).and_then(|v| v.parse().ok()) else {
                    eprintln!("jem-diff: --noisy-rel-tol needs a number");
                    return ExitCode::from(2);
                };
                policy.noisy_rel_tol = v;
                i += 2;
            }
            "--noisy" => {
                let Some(v) = take(i) else {
                    eprintln!("jem-diff: --noisy needs a key marker");
                    return ExitCode::from(2);
                };
                policy.noisy_markers.push(v);
                i += 2;
            }
            "--ignore" => {
                let Some(v) = take(i) else {
                    eprintln!("jem-diff: --ignore needs a key marker");
                    return ExitCode::from(2);
                };
                policy.ignore_markers.push(v);
                i += 2;
            }
            "--json-out" => {
                let Some(v) = take(i) else {
                    eprintln!("jem-diff: --json-out needs a path");
                    return ExitCode::from(2);
                };
                json_out = Some(v);
                i += 2;
            }
            "--help" | "-h" => {
                eprintln!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => {
                if other.starts_with("--") {
                    eprintln!("jem-diff: unknown option '{other}'");
                    return ExitCode::from(2);
                }
                paths.push(other.to_string());
                i += 1;
            }
        }
    }
    if paths.len() != 2 {
        eprintln!("{USAGE}");
        return ExitCode::from(2);
    }

    let mut inputs = Vec::with_capacity(2);
    for path in &paths {
        let bytes = match std::fs::read(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("jem-diff: cannot read {path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        if is_jtb(&bytes) {
            match load_jtb_bytes(&bytes) {
                Ok(l) => inputs.push(Input::Trace(l.events())),
                Err(e) => {
                    eprintln!("jem-diff: {path}: {e}");
                    return ExitCode::FAILURE;
                }
            }
            continue;
        }
        let text = match String::from_utf8(bytes) {
            Ok(t) => t,
            Err(_) => {
                eprintln!("jem-diff: {path}: input is neither .jtb (bad magic) nor UTF-8 JSON");
                return ExitCode::FAILURE;
            }
        };
        let doc = match Json::parse(&text) {
            Ok(d) => d,
            Err(e) => {
                eprintln!("jem-diff: {path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        if doc.get("traceEvents").is_some() {
            match events_from_chrome_trace(&doc) {
                Ok(ev) => inputs.push(Input::Trace(ev)),
                Err(e) => {
                    eprintln!("jem-diff: {path}: {e}");
                    return ExitCode::FAILURE;
                }
            }
        } else {
            inputs.push(Input::Doc(doc));
        }
    }
    let b_input = inputs.pop().expect("two inputs");
    let a_input = inputs.pop().expect("two inputs");

    let report = match (&a_input, &b_input) {
        (Input::Trace(ea), Input::Trace(eb)) => diff_traces(ea, eb, &policy),
        (Input::Doc(a), Input::Doc(b)) => {
            let mut r = DiffReport::default();
            diff_json(a, b, &policy, &mut r);
            r
        }
        _ => {
            eprintln!(
                "jem-diff: cannot compare a trace against a non-trace document \
                 ({} vs {})",
                paths[0], paths[1]
            );
            return ExitCode::from(2);
        }
    };

    print!("{}", report.render_text());
    if let Some(path) = json_out {
        let doc = report
            .to_json()
            .with("a", paths[0].as_str())
            .with("b", paths[1].as_str());
        if let Err(e) = jem_obs::write_atomic(&path, doc.render_pretty().as_bytes()) {
            eprintln!("jem-diff: cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
    }
    if report.has_changes() {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

//! Inspect, export, and compare `.jts` sim-time-series timelines.
//!
//! ```text
//! jem-timeline <timeline.jts> [options]
//!   --series <name>     restrict output to this series (repeatable;
//!                       default: all series)
//!   --window a:b        keep samples with sim-time in [a, b] sim-ms
//!   --csv               CSV export (segment,t_ns,<series…>) to stdout
//!   --json              jem-timeline/v1 JSON document to stdout
//!   --sparkline         one unicode sparkline per selected series
//!   --overlay <b.jts>   A/B comparison: window-end values and deltas
//!                       per series against a second timeline
//!   --out <path>        write --csv/--json output to a file
//!                       (atomically) instead of stdout
//!   --schema <path>     with --json: validate the document against
//!                       this JSON Schema before printing
//!   --follow            tail a growing `.jts` (a live run started
//!                       with `--flush-every`): stream each decoded
//!                       sample as a CSV row, exit when the footer
//!                       lands
//!   --live              with --sparkline: refresh-loop dashboard over
//!                       the followed file (shares the `jem-top`
//!                       renderer); exits when the run completes
//!   --refresh <ms>      wall-clock refresh/poll cadence for
//!                       --follow/--live (default 500)
//!   --frames <n>        with --live: stop after n redraws (CI hook)
//! ```
//!
//! Without an export flag, prints a human summary (cadence, segments,
//! samples, per-series window-end values). All output is
//! deterministic: the same `.jts` input yields byte-identical output,
//! so CI can diff exports across runs. Values are printed with Rust's
//! shortest-roundtrip float formatting — re-parsing a CSV or JSON
//! export recovers the sampled values bit-for-bit.
//!
//! Label-coded series (`channel.*`, `breaker.state`) export their
//! label *ids* in CSV (plottable), and both id and label text in JSON
//! via the document's `labels` table.
//!
//! The `jem-timeline/v1` JSON document is validated in CI against
//! `schemas/timeline.schema.json`; per segment it carries parallel
//! arrays: `times` plus `values` (one inner array per selected series,
//! in `series` order).
//!
//! Exit status: 0 on success, 1 on errors, 2 on usage errors.

use jem_obs::json::Json;
use jem_obs::timeline::{series_is_label, series_names};
use jem_obs::tui::{spark_row, BOLD, CLEAR_HOME, RESET};
use jem_obs::wire::FollowStatus;
use jem_obs::{write_atomic, JtsReader, Timeline};
use std::process::ExitCode;

const USAGE: &str = "usage: jem-timeline <timeline.jts> [--series <name>]... [--window a:b] \
                     [--csv | --json | --sparkline [--live] | --overlay <b.jts> | --follow] \
                     [--out <path>] [--schema <schema.json>] [--refresh <ms>] [--frames <n>]";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut path = None;
    let mut series: Vec<String> = Vec::new();
    let mut window: Option<(f64, f64)> = None;
    let mut csv = false;
    let mut json = false;
    let mut sparkline = false;
    let mut overlay: Option<String> = None;
    let mut out: Option<String> = None;
    let mut schema: Option<String> = None;
    let mut follow = false;
    let mut live = false;
    let mut refresh_ms: u64 = 500;
    let mut frames: Option<usize> = None;
    let mut i = 0;
    while i < args.len() {
        let take = |i: usize| -> Option<String> { args.get(i + 1).cloned() };
        match args[i].as_str() {
            "--series" => {
                let Some(v) = take(i) else {
                    eprintln!("jem-timeline: --series needs a series name");
                    return ExitCode::from(2);
                };
                series.push(v);
                i += 2;
            }
            "--window" => {
                let parsed = take(i).and_then(|v| {
                    let (a, b) = v.split_once(':')?;
                    let a: f64 = a.parse().ok()?;
                    let b: f64 = b.parse().ok()?;
                    (a.is_finite() && b.is_finite() && a <= b).then_some((a, b))
                });
                let Some(w) = parsed else {
                    eprintln!("jem-timeline: --window needs a:b in sim-ms with a <= b");
                    return ExitCode::from(2);
                };
                window = Some(w);
                i += 2;
            }
            "--overlay" => {
                let Some(v) = take(i) else {
                    eprintln!("jem-timeline: --overlay needs a .jts path");
                    return ExitCode::from(2);
                };
                overlay = Some(v);
                i += 2;
            }
            "--schema" => {
                let Some(v) = take(i) else {
                    eprintln!("jem-timeline: --schema needs a path");
                    return ExitCode::from(2);
                };
                schema = Some(v);
                i += 2;
            }
            "--out" => {
                let Some(v) = take(i) else {
                    eprintln!("jem-timeline: --out needs a path");
                    return ExitCode::from(2);
                };
                out = Some(v);
                i += 2;
            }
            "--csv" => {
                csv = true;
                i += 1;
            }
            "--json" => {
                json = true;
                i += 1;
            }
            "--sparkline" => {
                sparkline = true;
                i += 1;
            }
            "--follow" => {
                follow = true;
                i += 1;
            }
            "--live" => {
                live = true;
                i += 1;
            }
            "--refresh" => {
                let Some(v) = take(i).and_then(|v| v.parse().ok()) else {
                    eprintln!("jem-timeline: --refresh needs a wall-clock millisecond count");
                    return ExitCode::from(2);
                };
                refresh_ms = v;
                i += 2;
            }
            "--frames" => {
                let Some(v) = take(i).and_then(|v| v.parse().ok()) else {
                    eprintln!("jem-timeline: --frames needs an integer");
                    return ExitCode::from(2);
                };
                frames = Some(v);
                i += 2;
            }
            "--help" | "-h" => {
                eprintln!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => {
                if other.starts_with("--") {
                    eprintln!("jem-timeline: unknown option '{other}'");
                    return ExitCode::from(2);
                }
                if path.is_some() {
                    eprintln!("jem-timeline: unexpected argument '{other}'");
                    return ExitCode::from(2);
                }
                path = Some(other.to_string());
                i += 1;
            }
        }
    }
    let Some(path) = path else {
        eprintln!("{USAGE}");
        return ExitCode::from(2);
    };
    if csv as u8 + json as u8 + sparkline as u8 + overlay.is_some() as u8 + follow as u8 > 1 {
        eprintln!(
            "jem-timeline: --csv, --json, --sparkline, --overlay and --follow \
             are mutually exclusive"
        );
        return ExitCode::from(2);
    }
    if live && !sparkline {
        eprintln!("jem-timeline: --live requires --sparkline");
        return ExitCode::from(2);
    }
    if (follow || live) && out.is_some() {
        eprintln!("jem-timeline: --follow/--live stream to stdout; --out does not apply");
        return ExitCode::from(2);
    }

    // The follow modes resolve series against the static v1 catalogue
    // (the follower checks the file header carries exactly that).
    if follow || live {
        let catalogue = series_names();
        let selected: Vec<usize> = if series.is_empty() {
            (0..catalogue.len()).collect()
        } else {
            let mut idxs = Vec::with_capacity(series.len());
            for name in &series {
                match catalogue.iter().position(|s| s == name) {
                    Some(idx) => idxs.push(idx),
                    None => {
                        eprintln!("jem-timeline: unknown series '{name}'; available:");
                        for s in &catalogue {
                            eprintln!("  {s}");
                        }
                        return ExitCode::from(2);
                    }
                }
            }
            idxs
        };
        let win_ns = window.map(|(a, b)| (a * 1e6, b * 1e6));
        return if live {
            live_sparklines(&path, &catalogue, &selected, win_ns, refresh_ms, frames)
        } else {
            follow_stream(&path, &catalogue, &selected, win_ns, refresh_ms)
        };
    }

    let tl = match load(&path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("jem-timeline: {path}: {e}");
            return ExitCode::FAILURE;
        }
    };

    // Resolve the selected series to column indices (default: all).
    let selected: Vec<usize> = if series.is_empty() {
        (0..tl.series.len()).collect()
    } else {
        let mut idxs = Vec::with_capacity(series.len());
        for name in &series {
            match tl.series_index(name) {
                Some(idx) => idxs.push(idx),
                None => {
                    eprintln!("jem-timeline: unknown series '{name}'; available:");
                    for s in &tl.series {
                        eprintln!("  {s}");
                    }
                    return ExitCode::from(2);
                }
            }
        }
        idxs
    };
    // --window is in sim-ms for human ergonomics; samples are sim-ns.
    let win_ns = window.map(|(a, b)| (a * 1e6, b * 1e6));
    let in_window = |t: f64| win_ns.is_none_or(|(a, b)| t >= a && t <= b);

    if let Some(b_path) = overlay {
        let other = match load(&b_path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("jem-timeline: {b_path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        return render_overlay(&tl, &path, &other, &b_path, &selected, win_ns);
    }

    let rendered = if csv {
        render_csv(&tl, &selected, &in_window)
    } else if json {
        let doc = tl.export_json(&selected, in_window);
        if let Some(schema_path) = &schema {
            if let Err(e) = check_schema(&doc, schema_path) {
                eprintln!("jem-timeline: {e}");
                return ExitCode::FAILURE;
            }
            eprintln!("jem-timeline: output validates against {schema_path}");
        }
        format!("{}\n", doc.render_pretty())
    } else if sparkline {
        render_sparklines(&tl, &selected, &in_window)
    } else {
        render_summary(&tl, &path, &selected, win_ns)
    };
    match out {
        Some(out) => {
            if let Err(e) = write_atomic(&out, rendered.as_bytes()) {
                eprintln!("jem-timeline: cannot write {out}: {e}");
                return ExitCode::FAILURE;
            }
            eprintln!("wrote {out}");
        }
        None => print!("{rendered}"),
    }
    ExitCode::SUCCESS
}

fn load(path: &str) -> Result<Timeline, String> {
    let bytes = std::fs::read(path).map_err(|e| e.to_string())?;
    Timeline::read(&bytes)
}

/// Validate the rendered document against a JSON Schema (the CI gate
/// for `schemas/timeline.schema.json`).
fn check_schema(doc: &Json, schema_path: &str) -> Result<(), String> {
    let text = std::fs::read_to_string(schema_path)
        .map_err(|e| format!("cannot read schema {schema_path}: {e}"))?;
    let schema = Json::parse(&text).map_err(|e| format!("schema {schema_path}: {e}"))?;
    let errors = jem_obs::schema::validate(doc, &schema);
    if errors.is_empty() {
        Ok(())
    } else {
        Err(format!(
            "output fails schema validation: {}",
            errors.join("; ")
        ))
    }
}

/// CSV export: one row per kept sample, label series as numeric ids.
fn render_csv(tl: &Timeline, selected: &[usize], in_window: &dyn Fn(f64) -> bool) -> String {
    let mut out = String::from("segment,t_ns");
    for &idx in selected {
        out.push(',');
        out.push_str(&tl.series[idx]);
    }
    out.push('\n');
    for (si, seg) in tl.segments.iter().enumerate() {
        for (row, t) in seg.times.iter().enumerate() {
            if !in_window(*t) {
                continue;
            }
            out.push_str(&format!("{si},{t}"));
            for &idx in selected {
                out.push_str(&format!(",{}", seg.cols[idx][row]));
            }
            out.push('\n');
        }
    }
    out
}

/// One sparkline per series over the concatenated in-window samples
/// (row format shared with `jem-top` via [`jem_obs::tui`]).
fn render_sparklines(tl: &Timeline, selected: &[usize], in_window: &dyn Fn(f64) -> bool) -> String {
    let mut out = String::new();
    let width = tl.series.iter().map(String::len).max().unwrap_or(0);
    for &idx in selected {
        let vals: Vec<f64> = tl
            .segments
            .iter()
            .flat_map(|seg| {
                seg.times
                    .iter()
                    .zip(&seg.cols[idx])
                    .filter(|(t, _)| in_window(**t))
                    .map(|(_, v)| *v)
            })
            .collect();
        out.push_str(&spark_row(&tl.series[idx], width, &vals));
        out.push('\n');
    }
    out
}

/// Per-series sample buffer capped for unbounded live runs; sparkline
/// resampling keeps the visual shape when old samples roll off.
const LIVE_KEEP: usize = 8192;

/// Drain every decodable sample out of a follower. Returns `Ok(true)`
/// once the footer landed (the run is complete), `Ok(false)` when the
/// reader caught up with a still-growing file.
fn drain(
    follower: &mut jem_obs::JtsFollower,
    mut sink: impl FnMut(jem_obs::JtsSample),
) -> Result<bool, String> {
    loop {
        match follower.poll()? {
            FollowStatus::Events(samples) => {
                for s in samples {
                    sink(s);
                }
            }
            FollowStatus::Idle => return Ok(false),
            FollowStatus::End => return Ok(true),
        }
    }
}

/// `--follow`: stream each decoded sample as a CSV row as the writer
/// flushes them; exit when the footer lands.
fn follow_stream(
    path: &str,
    catalogue: &[String],
    selected: &[usize],
    win_ns: Option<(f64, f64)>,
    refresh_ms: u64,
) -> ExitCode {
    let mut follower = match JtsReader::follow(path) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("jem-timeline: {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let mut header = String::from("segment,t_ns");
    for &idx in selected {
        header.push(',');
        header.push_str(&catalogue[idx]);
    }
    println!("{header}");
    loop {
        let done = drain(&mut follower, |s| {
            if win_ns.is_some_and(|(a, b)| s.t < a || s.t > b) {
                return;
            }
            let mut row = format!("{},{}", s.segment, s.t);
            for &idx in selected {
                row.push_str(&format!(",{}", s.vals[idx]));
            }
            println!("{row}");
        });
        match done {
            Ok(true) => return ExitCode::SUCCESS,
            Ok(false) => std::thread::sleep(std::time::Duration::from_millis(refresh_ms)),
            Err(e) => {
                eprintln!("jem-timeline: {path}: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
}

/// `--sparkline --live`: refresh-loop dashboard over a followed
/// `.jts`, one [`spark_row`] per selected series (the `jem-top` row
/// renderer). Redraws every `refresh_ms` until the run completes or
/// `--frames` is exhausted.
fn live_sparklines(
    path: &str,
    catalogue: &[String],
    selected: &[usize],
    win_ns: Option<(f64, f64)>,
    refresh_ms: u64,
    frames: Option<usize>,
) -> ExitCode {
    let mut follower = match JtsReader::follow(path) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("jem-timeline: {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let width = selected
        .iter()
        .map(|&idx| catalogue[idx].len())
        .max()
        .unwrap_or(0);
    let mut data: Vec<Vec<f64>> = vec![Vec::new(); selected.len()];
    let mut drawn = 0usize;
    loop {
        let done = drain(&mut follower, |s| {
            if win_ns.is_some_and(|(a, b)| s.t < a || s.t > b) {
                return;
            }
            for (slot, &idx) in selected.iter().enumerate() {
                let buf = &mut data[slot];
                buf.push(s.vals[idx]);
                if buf.len() > LIVE_KEEP {
                    buf.drain(..buf.len() - LIVE_KEEP);
                }
            }
        });
        let done = match done {
            Ok(d) => d,
            Err(e) => {
                eprintln!("jem-timeline: {path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        let mut frame = String::from(CLEAR_HOME);
        frame.push_str(&format!(
            "{BOLD}jem-timeline --live{RESET}  {path}  segments={} samples={}{}\n",
            follower.segments(),
            follower.samples(),
            if done { "  (complete)" } else { "" }
        ));
        for (slot, &idx) in selected.iter().enumerate() {
            frame.push_str(&spark_row(&catalogue[idx], width, &data[slot]));
            frame.push('\n');
        }
        print!("{frame}");
        use std::io::Write as _;
        let _ = std::io::stdout().flush();
        drawn += 1;
        if done || frames.is_some_and(|n| drawn >= n) {
            return ExitCode::SUCCESS;
        }
        std::thread::sleep(std::time::Duration::from_millis(refresh_ms));
    }
}

/// Human summary: file shape plus per-series window-end values.
fn render_summary(
    tl: &Timeline,
    path: &str,
    selected: &[usize],
    win_ns: Option<(f64, f64)>,
) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{path}: {} segments, {} samples, {} series, cadence {} sim-ns\n",
        tl.segments.len(),
        tl.samples(),
        tl.series.len(),
        tl.sample_every_ns
    ));
    if let Some((a, b)) = win_ns {
        out.push_str(&format!("window: [{a}, {b}] sim-ns\n"));
    }
    let width = tl.series.iter().map(String::len).max().unwrap_or(0);
    for (si, seg) in tl.segments.iter().enumerate() {
        let end = win_ns.map_or(seg.end_t, |(_, b)| b.min(seg.end_t));
        out.push_str(&format!("segment {si} (end {} sim-ns):\n", seg.end_t));
        for &idx in selected {
            let v = seg.value_at(idx, end);
            if series_is_label(idx) {
                let label = tl.labels.get(v as usize).map_or("?", String::as_str);
                out.push_str(&format!("  {:<width$}  {label}\n", tl.series[idx]));
            } else {
                out.push_str(&format!("  {:<width$}  {v}\n", tl.series[idx]));
            }
        }
    }
    out
}

/// A/B comparison: window-end value per series from each file, with
/// the B−A delta for numeric series.
fn render_overlay(
    a: &Timeline,
    a_path: &str,
    b: &Timeline,
    b_path: &str,
    selected: &[usize],
    win_ns: Option<(f64, f64)>,
) -> ExitCode {
    let end_of = |tl: &Timeline, seg: usize| -> f64 {
        let end = tl.segments[seg].end_t;
        win_ns.map_or(end, |(_, w)| w.min(end))
    };
    let segs = a.segments.len().min(b.segments.len());
    if a.segments.len() != b.segments.len() {
        println!(
            "note: segment count differs (A={}, B={}); comparing the first {segs}",
            a.segments.len(),
            b.segments.len()
        );
    }
    let width = a.series.iter().map(String::len).max().unwrap_or(0);
    for seg in 0..segs {
        println!("segment {seg}: A={a_path} B={b_path}");
        for &idx in selected {
            let name = &a.series[idx];
            // Match by name, not index, so overlays survive future
            // series reordering between file versions.
            let Some(b_idx) = b.series_index(name) else {
                println!("  {name:<width$}  (missing in B)");
                continue;
            };
            let va = a.segments[seg].value_at(idx, end_of(a, seg));
            let vb = b.segments[seg].value_at(b_idx, end_of(b, seg));
            if series_is_label(idx) {
                let la = a.labels.get(va as usize).map_or("?", String::as_str);
                let lb = b.labels.get(vb as usize).map_or("?", String::as_str);
                let marker = if la == lb { "" } else { "  *" };
                println!("  {name:<width$}  A={la} B={lb}{marker}");
            } else {
                println!("  {name:<width$}  A={va} B={vb} delta={}", vb - va);
            }
        }
    }
    ExitCode::SUCCESS
}

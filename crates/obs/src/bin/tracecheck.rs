//! Validate an exported trace file.
//!
//! ```text
//! tracecheck <trace.jtb | trace.json | -> [--schema schemas/trace.schema.json] [--summary]
//! ```
//!
//! Accepts all three exported formats, sniffed by magic regardless of
//! extension: the compact binary `.jtb` trace, the `.jts` sim-time
//! timeline sidecar, and the Chrome `trace_event` JSON document. `-`
//! reads from stdin (for piping straight out of a bench bin).
//!
//! A `.jts` input is fully decoded and checked for monotone sim-time,
//! samples within segment bounds, monotone counter series, and the
//! bit-exact rate-integral-vs-footer reconciliation; the other flags
//! do not apply to timelines. Trace inputs check, in order:
//! 1. the input decodes — JSON parse for Chrome traces; header, block,
//!    footer and trailer integrity for `.jtb`;
//! 2. (with `--schema`, JSON inputs only) it validates against the
//!    given JSON Schema;
//! 3. its events decode back into `TraceEvent` records;
//! 4. the energy-conservation ledger holds: the per-event
//!    `EnergyBreakdown` deltas sum to the declared total
//!    (`otherData.total_energy` for JSON, the block-index partial sums
//!    for `.jtb`). A truncated trace (dropped events) cannot balance,
//!    so the check is skipped there and the truncation reported
//!    instead.
//!
//! With `--summary`, prints recorded/dropped event counts, per-kind
//! counts and the per-component delta totals after the checks, so CI
//! logs show *what* was validated, not just that something was.
//!
//! With `--reencode <out>`, re-exports the validated trace in the
//! format the output extension selects (`.jtb` binary, anything else
//! Chrome JSON). Both loaders normalize into the same shard structure,
//! so re-encoding a `.jtb` and the equivalent JSON export of the same
//! run yields byte-identical files — CI uses this as the
//! JSON↔binary round-trip equivalence check.
//!
//! With `--salvage <out.jtb>`, a crash-torn `.jtb` (no footer/trailer
//! — the writer was SIGKILLed mid-stream) is cut back to its last
//! invocation-aligned block boundary and written out as a complete,
//! first-class trace carrying an explicit `recovered` marker; the
//! salvaged file is then validated like any other input. A file that
//! is already complete is copied through unchanged. All outputs are
//! written atomically (temp file + rename).
//!
//! With `--follow`, validate-the-prefix mode for a run still in
//! flight (`.jtb` or `.jts`, sniffed by magic): every complete record
//! currently in the file is decoded and checked, a torn tail — the
//! block the writer is mid-way through — parks cleanly instead of
//! failing, and the exit status is 0 whether the file is complete or
//! still growing. Only real corruption exits non-zero.
//!
//! Exits non-zero with a diagnostic on the first failure; prints a
//! one-line summary on success. CI runs this against every trace the
//! smoke job produces.

use jem_energy::EnergyBreakdown;
use jem_obs::json::Json;
use jem_obs::schema::validate;
use jem_obs::timeline::is_jts;
use jem_obs::wire::{
    is_jtb, jtb_bytes, load_chrome_doc, load_jtb_bytes, salvage_jtb, FollowStatus, JtbIndex,
    JtbStream,
};
use jem_obs::{chrome_trace_sharded, write_atomic, JtsReader, TraceShard};
use std::collections::BTreeMap;
use std::io::Read;
use std::process::ExitCode;

const USAGE: &str = "usage: tracecheck <trace.jtb | timeline.jts | trace.json | -> \
     [--schema <schema.json>] [--summary] [--reencode <out.jtb|out.json>] \
     [--salvage <out.jtb>] [--follow]";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut trace_path = None;
    let mut schema_path = None;
    let mut reencode_path = None;
    let mut salvage_path = None;
    let mut summary = false;
    let mut follow = false;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--salvage" => {
                if i + 1 >= args.len() {
                    eprintln!("tracecheck: --salvage needs a path");
                    return ExitCode::from(2);
                }
                salvage_path = Some(args[i + 1].clone());
                i += 2;
            }
            "--schema" => {
                if i + 1 >= args.len() {
                    eprintln!("tracecheck: --schema needs a path");
                    return ExitCode::from(2);
                }
                schema_path = Some(args[i + 1].clone());
                i += 2;
            }
            "--reencode" => {
                if i + 1 >= args.len() {
                    eprintln!("tracecheck: --reencode needs a path");
                    return ExitCode::from(2);
                }
                reencode_path = Some(args[i + 1].clone());
                i += 2;
            }
            "--summary" => {
                summary = true;
                i += 1;
            }
            "--follow" => {
                follow = true;
                i += 1;
            }
            "--help" | "-h" => {
                eprintln!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => {
                if trace_path.is_some() {
                    eprintln!("tracecheck: unexpected argument '{other}'");
                    return ExitCode::from(2);
                }
                trace_path = Some(other.to_string());
                i += 1;
            }
        }
    }
    let Some(trace_path) = trace_path else {
        eprintln!("{USAGE}");
        return ExitCode::from(2);
    };

    if follow {
        if schema_path.is_some() || reencode_path.is_some() || salvage_path.is_some() {
            eprintln!("tracecheck: --follow cannot be combined with --schema/--reencode/--salvage");
            return ExitCode::from(2);
        }
        if trace_path == "-" {
            eprintln!("tracecheck: --follow needs a file path, not stdin");
            return ExitCode::from(2);
        }
        return follow_validate(&trace_path);
    }

    let mut bytes = match read_input(&trace_path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("tracecheck: cannot read {trace_path}: {e}");
            return ExitCode::FAILURE;
        }
    };

    if is_jts(&bytes) {
        if schema_path.is_some() || reencode_path.is_some() || salvage_path.is_some() {
            eprintln!("tracecheck: --schema/--reencode/--salvage do not apply to .jts timelines");
            return ExitCode::from(2);
        }
        return match jem_obs::validate_jts(&bytes) {
            Ok(s) => {
                println!(
                    "tracecheck: {trace_path}: OK (jts, {} segments, {} samples, \
                     {} series, cadence {} sim-ns, rate integrals reconcile bit-exactly)",
                    s.segments, s.samples, s.series, s.sample_every_ns
                );
                if summary {
                    println!("  segments:             {}", s.segments);
                    println!("  samples:              {}", s.samples);
                    println!("  series:               {}", s.series);
                    println!("  sample cadence:       {} sim-ns", s.sample_every_ns);
                }
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("tracecheck: {trace_path}: {e}");
                ExitCode::FAILURE
            }
        };
    }

    if let Some(out) = &salvage_path {
        // Cut a crash-torn stream back to its last invocation-aligned
        // boundary, then validate the salvaged bytes below like any
        // other input.
        let (salvaged, report) = match salvage_jtb(&bytes) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("tracecheck: {trace_path}: salvage failed: {e}");
                return ExitCode::FAILURE;
            }
        };
        if let Err(e) = write_atomic(out, &salvaged) {
            eprintln!("tracecheck: cannot write {out}: {e}");
            return ExitCode::FAILURE;
        }
        if report.already_complete {
            println!(
                "tracecheck: {trace_path}: already complete ({} events), copied to {out}",
                report.kept_events
            );
        } else {
            println!(
                "tracecheck: {trace_path}: salvaged {} events in {} blocks to {out} \
                 (dropped {} bytes, {} decoded events past the last invocation boundary)",
                report.kept_events, report.kept_blocks, report.dropped_bytes, report.dropped_events
            );
        }
        bytes = salvaged;
    }

    let (loaded, declared, format) = if is_jtb(&bytes) {
        if schema_path.is_some() {
            // The JSON Schema describes the Chrome-trace document; the
            // binary format carries its own integrity checks instead.
            println!("tracecheck: {trace_path}: binary .jtb input, schema check skipped");
        }
        let loaded = match load_jtb_bytes(&bytes) {
            Ok(l) => l,
            Err(e) => {
                eprintln!("tracecheck: {trace_path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        let index = match JtbIndex::read(&bytes) {
            Ok(ix) => ix,
            Err(e) => {
                eprintln!("tracecheck: {trace_path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        (loaded, Some(index.total_energy()), "jtb")
    } else {
        let text = match std::str::from_utf8(&bytes) {
            Ok(t) => t,
            Err(_) => {
                eprintln!(
                    "tracecheck: {trace_path}: input is neither .jtb (bad magic) nor UTF-8 JSON"
                );
                return ExitCode::FAILURE;
            }
        };
        let doc = match Json::parse(text) {
            Ok(d) => d,
            Err(e) => {
                eprintln!("tracecheck: {trace_path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        if let Some(schema_path) = &schema_path {
            let schema_text = match std::fs::read_to_string(schema_path) {
                Ok(t) => t,
                Err(e) => {
                    eprintln!("tracecheck: cannot read schema {schema_path}: {e}");
                    return ExitCode::FAILURE;
                }
            };
            let schema = match Json::parse(&schema_text) {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("tracecheck: schema {schema_path}: {e}");
                    return ExitCode::FAILURE;
                }
            };
            let errors = validate(&doc, &schema);
            if !errors.is_empty() {
                eprintln!("tracecheck: {trace_path} fails schema validation:");
                for e in errors.iter().take(20) {
                    eprintln!("  {e}");
                }
                if errors.len() > 20 {
                    eprintln!("  … and {} more", errors.len() - 20);
                }
                return ExitCode::FAILURE;
            }
        }
        let mut loaded = match load_chrome_doc(&doc) {
            Ok(l) => l,
            Err(e) => {
                eprintln!("tracecheck: {trace_path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        let declared = loaded.declared_total.take();
        (loaded, declared, "json")
    };

    if let Some(note) = loaded.recovered {
        println!(
            "tracecheck: {trace_path}: crash-recovered trace — salvage dropped {} bytes \
             ({} decoded events) past the last invocation boundary; the kept prefix is \
             complete and invocation-aligned",
            note.dropped_bytes, note.dropped_events
        );
    }

    let mut sum = EnergyBreakdown::new();
    let mut recorded = 0u64;
    for shard in &loaded.shards {
        for ev in &shard.events {
            sum += ev.delta;
            recorded += 1;
        }
    }
    let total = sum.total().nanojoules();
    if loaded.dropped > 0 {
        // Evicted events take their deltas with them — the ledger
        // cannot balance, and pretending otherwise would hide the gap.
        println!(
            "tracecheck: {trace_path}: OK ({format}, {recorded} events, \
             conservation skipped: trace truncated, {} events dropped)",
            loaded.dropped
        );
    } else {
        let Some(declared) = declared else {
            eprintln!("tracecheck: {trace_path}: missing declared total energy");
            return ExitCode::FAILURE;
        };
        let declared = declared.total().nanojoules();
        let tolerance = 1e-6 * declared.abs().max(1.0);
        if (total - declared).abs() > tolerance {
            eprintln!(
                "tracecheck: {trace_path}: energy conservation violated: \
                 sum of deltas {total} nJ != declared total {declared} nJ"
            );
            return ExitCode::FAILURE;
        }
        println!(
            "tracecheck: {trace_path}: OK ({format}, {recorded} events, {total:.1} nJ conserved)"
        );
    }
    if summary {
        println!("  recorded events:      {recorded}");
        println!("  dropped events:       {}", loaded.dropped);
        println!("  shards:               {}", loaded.shards.len());
        match loaded.recovered {
            Some(n) => println!(
                "  recovered:            yes ({} bytes / {} events cut at salvage)",
                n.dropped_bytes, n.dropped_events
            ),
            None => println!("  recovered:            no"),
        }
        let mut counts: BTreeMap<&'static str, u64> = BTreeMap::new();
        for shard in &loaded.shards {
            for ev in &shard.events {
                *counts.entry(ev.kind.name()).or_insert(0) += 1;
            }
        }
        println!("  event kinds:");
        for (kind, n) in counts {
            println!("    {kind:<20} {n}");
        }
        println!("  delta totals:");
        for (c, e) in sum.iter() {
            println!("    {:<20} {:.1} nJ", c.name(), e.nanojoules());
        }
        println!("    {:<20} {:.1} nJ", "total", sum.total().nanojoules());
    }
    if let Some(out) = reencode_path {
        // Re-attach the stream-level truncation count so the re-export
        // declares it (both exporters sum per-shard counts).
        let mut shards: Vec<TraceShard> = loaded.shards.clone();
        if let Some(first) = shards.first_mut() {
            first.dropped = loaded.dropped;
        }
        let bytes = if out.ends_with(".jtb") {
            jtb_bytes(&shards)
        } else {
            format!("{}\n", chrome_trace_sharded(&shards).render()).into_bytes()
        };
        if let Err(e) = write_atomic(&out, &bytes) {
            eprintln!("tracecheck: cannot write {out}: {e}");
            return ExitCode::FAILURE;
        }
        println!("tracecheck: re-encoded {trace_path} -> {out}");
    }
    ExitCode::SUCCESS
}

/// `--follow`: validate every complete record currently in a growing
/// `.jtb` or `.jts` file (sniffed by magic). A torn tail — the record
/// the writer is mid-way through — is expected and parks cleanly;
/// only real corruption fails. Exit 0 whether the file is complete or
/// still growing, so scripts can poll a live run.
fn follow_validate(trace_path: &str) -> ExitCode {
    let head = {
        let mut f = match std::fs::File::open(trace_path) {
            Ok(f) => f,
            Err(e) => {
                eprintln!("tracecheck: cannot read {trace_path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        let mut head = [0u8; 4];
        match f.read(&mut head) {
            Ok(n) => head[..n].to_vec(),
            Err(e) => {
                eprintln!("tracecheck: cannot read {trace_path}: {e}");
                return ExitCode::FAILURE;
            }
        }
    };
    if head.len() < 4 {
        // Not even a magic yet: a writer that just created the file.
        println!("tracecheck: {trace_path}: OK prefix (0 records, header still being written)");
        return ExitCode::SUCCESS;
    }
    if is_jts(&head) {
        let mut follower = match JtsReader::follow(trace_path) {
            Ok(f) => f,
            Err(e) => {
                eprintln!("tracecheck: {trace_path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        let complete = loop {
            match follower.poll() {
                Ok(FollowStatus::Events(_)) => {}
                Ok(FollowStatus::Idle) => break false,
                Ok(FollowStatus::End) => break true,
                Err(e) => {
                    eprintln!("tracecheck: {trace_path}: {e}");
                    return ExitCode::FAILURE;
                }
            }
        };
        println!(
            "tracecheck: {trace_path}: OK prefix (jts, {} segments, {} samples, {})",
            follower.segments(),
            follower.samples(),
            if complete {
                "complete"
            } else {
                "still growing"
            }
        );
        return ExitCode::SUCCESS;
    }
    if !is_jtb(&head) {
        eprintln!("tracecheck: {trace_path}: --follow needs a .jtb or .jts input (bad magic)");
        return ExitCode::FAILURE;
    }
    let mut follower = match JtbStream::follow(trace_path) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("tracecheck: {trace_path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let complete = loop {
        match follower.poll() {
            Ok(FollowStatus::Events(_)) => {}
            Ok(FollowStatus::Idle) => break false,
            Ok(FollowStatus::End) => break true,
            Err(e) => {
                eprintln!("tracecheck: {trace_path}: {e}");
                return ExitCode::FAILURE;
            }
        }
    };
    println!(
        "tracecheck: {trace_path}: OK prefix (jtb, {} events, {} dropped, {})",
        follower.events_read(),
        follower.dropped(),
        if complete {
            "complete"
        } else {
            "still growing"
        }
    );
    ExitCode::SUCCESS
}

/// Read the trace bytes from a file, or stdin when the path is `-`.
fn read_input(path: &str) -> std::io::Result<Vec<u8>> {
    if path == "-" {
        let mut buf = Vec::new();
        std::io::stdin().read_to_end(&mut buf)?;
        Ok(buf)
    } else {
        std::fs::read(path)
    }
}

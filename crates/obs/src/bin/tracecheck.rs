//! Validate an exported trace file.
//!
//! ```text
//! tracecheck <trace.json | -> [--schema schemas/trace.schema.json] [--summary]
//! ```
//!
//! `-` reads the trace document from stdin (for piping straight out
//! of a bench bin). Checks, in order:
//! 1. the input parses as JSON;
//! 2. (with `--schema`) it validates against the given JSON Schema;
//! 3. its events decode back into `TraceEvent` records;
//! 4. the energy-conservation ledger holds: the per-event
//!    `EnergyBreakdown` deltas sum to the total embedded in
//!    `otherData.total_energy`.
//!
//! With `--summary`, prints per-event-kind counts and the per-component
//! delta totals after the checks, so CI logs show *what* was validated,
//! not just that something was.
//!
//! Exits non-zero with a diagnostic on the first failure; prints a
//! one-line summary on success. CI runs this against every trace the
//! smoke job produces.

use jem_energy::EnergyBreakdown;
use jem_obs::json::Json;
use jem_obs::schema::validate;
use jem_obs::trace::events_from_chrome_trace;
use std::collections::BTreeMap;
use std::io::Read;
use std::process::ExitCode;

const USAGE: &str = "usage: tracecheck <trace.json | -> [--schema <schema.json>] [--summary]";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut trace_path = None;
    let mut schema_path = None;
    let mut summary = false;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--schema" => {
                if i + 1 >= args.len() {
                    eprintln!("tracecheck: --schema needs a path");
                    return ExitCode::from(2);
                }
                schema_path = Some(args[i + 1].clone());
                i += 2;
            }
            "--summary" => {
                summary = true;
                i += 1;
            }
            "--help" | "-h" => {
                eprintln!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => {
                if trace_path.is_some() {
                    eprintln!("tracecheck: unexpected argument '{other}'");
                    return ExitCode::from(2);
                }
                trace_path = Some(other.to_string());
                i += 1;
            }
        }
    }
    let Some(trace_path) = trace_path else {
        eprintln!("{USAGE}");
        return ExitCode::from(2);
    };

    let text = match read_input(&trace_path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("tracecheck: cannot read {trace_path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let doc = match Json::parse(&text) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("tracecheck: {trace_path}: {e}");
            return ExitCode::FAILURE;
        }
    };

    if let Some(schema_path) = schema_path {
        let schema_text = match std::fs::read_to_string(&schema_path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("tracecheck: cannot read schema {schema_path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        let schema = match Json::parse(&schema_text) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("tracecheck: schema {schema_path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        let errors = validate(&doc, &schema);
        if !errors.is_empty() {
            eprintln!("tracecheck: {trace_path} fails schema validation:");
            for e in errors.iter().take(20) {
                eprintln!("  {e}");
            }
            if errors.len() > 20 {
                eprintln!("  … and {} more", errors.len() - 20);
            }
            return ExitCode::FAILURE;
        }
    }

    let events = match events_from_chrome_trace(&doc) {
        Ok(ev) => ev,
        Err(e) => {
            eprintln!("tracecheck: {trace_path}: {e}");
            return ExitCode::FAILURE;
        }
    };

    let mut sum = EnergyBreakdown::new();
    for ev in &events {
        sum += ev.delta;
    }
    let declared = doc
        .get("otherData")
        .and_then(|o| o.get("total_energy"))
        .and_then(|t| t.get("total"))
        .and_then(Json::as_f64);
    let Some(declared) = declared else {
        eprintln!("tracecheck: {trace_path}: missing otherData.total_energy.total");
        return ExitCode::FAILURE;
    };
    let total = sum.total().nanojoules();
    let tolerance = 1e-6 * declared.abs().max(1.0);
    if (total - declared).abs() > tolerance {
        eprintln!(
            "tracecheck: {trace_path}: energy conservation violated: \
             sum of deltas {total} nJ != declared total {declared} nJ"
        );
        return ExitCode::FAILURE;
    }

    println!(
        "tracecheck: {trace_path}: OK ({} events, {:.1} nJ conserved)",
        events.len(),
        total
    );
    if summary {
        let mut counts: BTreeMap<&'static str, u64> = BTreeMap::new();
        for ev in &events {
            *counts.entry(ev.kind.name()).or_insert(0) += 1;
        }
        println!("  event kinds:");
        for (kind, n) in counts {
            println!("    {kind:<20} {n}");
        }
        println!("  delta totals:");
        for (c, e) in sum.iter() {
            println!("    {:<20} {:.1} nJ", c.name(), e.nanojoules());
        }
        println!("    {:<20} {:.1} nJ", "total", sum.total().nanojoules());
    }
    ExitCode::SUCCESS
}

/// Read the trace document from a file, or stdin when the path is `-`.
fn read_input(path: &str) -> std::io::Result<String> {
    if path == "-" {
        let mut buf = String::new();
        std::io::stdin().read_to_string(&mut buf)?;
        Ok(buf)
    } else {
        std::fs::read_to_string(path)
    }
}

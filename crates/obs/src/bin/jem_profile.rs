//! Fold an exported trace into an energy/time profile.
//!
//! ```text
//! jem-profile <trace.jtb | trace.json | -> [options]
//!   --collapsed <out.folded>    write energy-weighted collapsed stacks
//!   --collapsed-time <out>      write time-weighted collapsed stacks
//!   --json-out <out.json>       write the machine-readable profile
//!   --top <n>                   rows in the printed tables (default 20)
//!   --no-reconcile              skip the conservation check
//! ```
//!
//! The input is either the compact binary `.jtb` trace (sniffed by
//! magic, regardless of extension) or the Chrome-trace document the
//! bench bins emit with `--trace` (`-` reads stdin). The profiler
//! attributes every event's energy delta to a `[method, mode, phase…]`
//! stack; by construction the profile's column sums telescope to the
//! trace's declared total energy (`otherData.total_energy` for JSON,
//! the block-index partial sums for `.jtb`), and the run fails
//! (exit 1) if they do not — a profile that cannot reconcile is a bug,
//! not a report. A truncated trace (dropped events) can never
//! reconcile, so it fails the same way unless `--no-reconcile` opts
//! into a partial profile.
//!
//! The collapsed-stack outputs are one `frame;frame;… weight` line per
//! stack — the format `inferno-flamegraph`, speedscope and
//! `flamegraph.pl` consume directly; weights are integer nanojoules
//! (or nanoseconds for `--collapsed-time`).

use jem_obs::profile::{CollapseWeight, TraceProfile};
use jem_obs::wire::{is_jtb, load_trace_bytes, JtbIndex};
use jem_obs::write_atomic;
use std::io::Read;
use std::process::ExitCode;

const USAGE: &str = "usage: jem-profile <trace.jtb | trace.json | -> [--collapsed <out>] \
                     [--collapsed-time <out>] [--json-out <out>] [--top <n>] [--no-reconcile]";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut trace_path = None;
    let mut collapsed = None;
    let mut collapsed_time = None;
    let mut json_out = None;
    let mut top = 20usize;
    let mut reconcile = true;
    let mut i = 0;
    while i < args.len() {
        let take = |i: usize| -> Option<String> { args.get(i + 1).cloned() };
        match args[i].as_str() {
            "--collapsed" => {
                let Some(v) = take(i) else {
                    eprintln!("jem-profile: --collapsed needs a path");
                    return ExitCode::from(2);
                };
                collapsed = Some(v);
                i += 2;
            }
            "--collapsed-time" => {
                let Some(v) = take(i) else {
                    eprintln!("jem-profile: --collapsed-time needs a path");
                    return ExitCode::from(2);
                };
                collapsed_time = Some(v);
                i += 2;
            }
            "--json-out" => {
                let Some(v) = take(i) else {
                    eprintln!("jem-profile: --json-out needs a path");
                    return ExitCode::from(2);
                };
                json_out = Some(v);
                i += 2;
            }
            "--top" => {
                let parsed = take(i).and_then(|v| v.parse().ok());
                let Some(v) = parsed else {
                    eprintln!("jem-profile: --top needs an integer");
                    return ExitCode::from(2);
                };
                top = v;
                i += 2;
            }
            "--no-reconcile" => {
                reconcile = false;
                i += 1;
            }
            "--help" | "-h" => {
                eprintln!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => {
                if trace_path.is_some() {
                    eprintln!("jem-profile: unexpected argument '{other}'");
                    return ExitCode::from(2);
                }
                trace_path = Some(other.to_string());
                i += 1;
            }
        }
    }
    let Some(trace_path) = trace_path else {
        eprintln!("{USAGE}");
        return ExitCode::from(2);
    };

    let bytes = match read_input(&trace_path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("jem-profile: cannot read {trace_path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let loaded = match load_trace_bytes(&bytes) {
        Ok(l) => l,
        Err(e) => {
            eprintln!("jem-profile: {trace_path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    if let Some(note) = loaded.recovered {
        eprintln!(
            "jem-profile: {trace_path}: crash-recovered trace (salvage cut {} bytes / \
             {} events); the kept prefix is invocation-aligned and profiles normally",
            note.dropped_bytes, note.dropped_events
        );
    }
    let events = loaded.events();
    let profile = TraceProfile::fold(&events);

    // The profile must account for exactly the energy the trace
    // declares — the ledger property that makes the tables trustable.
    if reconcile {
        if loaded.dropped > 0 {
            eprintln!(
                "jem-profile: {trace_path}: trace truncated ({} events dropped) — \
                 the profile cannot reconcile; use --no-reconcile for a partial profile",
                loaded.dropped
            );
            return ExitCode::FAILURE;
        }
        let declared = if is_jtb(&bytes) {
            match JtbIndex::read(&bytes) {
                Ok(ix) => Some(ix.total_energy()),
                Err(e) => {
                    eprintln!("jem-profile: {trace_path}: {e}");
                    return ExitCode::FAILURE;
                }
            }
        } else {
            loaded.declared_total
        };
        match declared {
            Some(expected) => {
                if let Err(e) = profile.reconcile(&expected, 1e-6) {
                    eprintln!("jem-profile: {trace_path}: {e}");
                    return ExitCode::FAILURE;
                }
            }
            None => {
                eprintln!(
                    "jem-profile: {trace_path}: missing otherData.total_energy \
                     (use --no-reconcile for partial traces)"
                );
                return ExitCode::FAILURE;
            }
        }
    }

    println!(
        "jem-profile: {trace_path}: {} events, {} invocations, {} shard(s), {:.3} uJ, {:.4} ms sim-time",
        profile.events(),
        profile.invocations(),
        profile.shards(),
        profile.total().total().microjoules(),
        profile.total_time().millis(),
    );
    println!();
    println!("Per-method x per-mode energy (hottest first):");
    println!("{}", profile.render_method_table(top));
    println!();
    println!("Hot frames (self/total):");
    println!("{}", profile.render_hot_frames(top));

    if let Some(path) = collapsed {
        if let Err(e) = write_atomic(
            &path,
            profile
                .collapsed(CollapseWeight::EnergyNanojoules)
                .as_bytes(),
        ) {
            eprintln!("jem-profile: cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
        println!("wrote energy-weighted collapsed stacks to {path}");
    }
    if let Some(path) = collapsed_time {
        if let Err(e) = write_atomic(
            &path,
            profile.collapsed(CollapseWeight::TimeNanos).as_bytes(),
        ) {
            eprintln!("jem-profile: cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
        println!("wrote time-weighted collapsed stacks to {path}");
    }
    if let Some(path) = json_out {
        if let Err(e) = write_atomic(&path, profile.to_json().render_pretty().as_bytes()) {
            eprintln!("jem-profile: cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
        println!("wrote profile JSON to {path}");
    }
    ExitCode::SUCCESS
}

/// Read the trace bytes from a file, or stdin when the path is `-`.
fn read_input(path: &str) -> std::io::Result<Vec<u8>> {
    if path == "-" {
        let mut buf = Vec::new();
        std::io::stdin().read_to_end(&mut buf)?;
        Ok(buf)
    } else {
        std::fs::read(path)
    }
}

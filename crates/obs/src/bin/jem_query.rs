//! Query a trace without materializing the run.
//!
//! ```text
//! jem-query <trace.jtb | trace.json | -> [options]
//!   --kind <name>         keep only this event kind (repeatable)
//!   --method <substr>     keep invocations whose method contains this
//!   --mode <substr>       keep invocations whose resolved mode contains this
//!   --shard <substr>      keep shards whose name contains this
//!   --since <ns>          keep events at sim-time >= ns (inclusive)
//!   --until <ns>          keep events at sim-time <= ns (inclusive)
//!   --group-by <k,k,…>    group by kind|method|mode|shard (comma list)
//!   --hist                per-group histogram of per-event energy deltas
//!   --top <n>             hot-frame mode: print the n hottest profile
//!                         frames instead (predicates are ignored)
//!   --json                machine-readable output (jem-query/v1)
//! ```
//!
//! Accepts both trace formats — the compact binary `.jtb` (sniffed by
//! magic and processed block-by-block in O(block) memory) and the
//! Chrome-trace JSON document (`-` reads stdin). Method and mode
//! predicates apply to the *resolved* invocation context: a `tx-window`
//! event matches `--mode remote` because its enclosing invocation
//! executed remotely, exactly as the profiler attributes it. With
//! `--group-by method,mode` and no predicates, the aggregates reconcile
//! bit-exactly with `jem-profile`'s table — same fold, same order.
//!
//! Truncated inputs (dropped events) are processed but loudly flagged;
//! exit status is 0 on success, 1 on errors, 2 on usage errors.

use jem_obs::profile::ProfileFolder;
use jem_obs::query::{GroupKey, Query, QueryEngine};
use jem_obs::wire::{is_jtb, load_trace_bytes, JtbStream};
use std::io::{BufReader, Read};
use std::process::ExitCode;

const USAGE: &str = "usage: jem-query <trace.jtb | trace.json | -> [--kind <name>]... \
                     [--method <s>] [--mode <s>] [--shard <s>] [--since <ns>] [--until <ns>] \
                     [--group-by <k,k,…>] [--hist] [--top <n>] [--json]";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut trace_path = None;
    let mut query = Query::default();
    let mut top: Option<usize> = None;
    let mut json = false;
    let mut i = 0;
    while i < args.len() {
        let take = |i: usize| -> Option<String> { args.get(i + 1).cloned() };
        match args[i].as_str() {
            "--kind" => {
                let Some(v) = take(i) else {
                    eprintln!("jem-query: --kind needs an event-kind name");
                    return ExitCode::from(2);
                };
                query.kinds.push(v);
                i += 2;
            }
            "--method" => {
                let Some(v) = take(i) else {
                    eprintln!("jem-query: --method needs a substring");
                    return ExitCode::from(2);
                };
                query.method = Some(v);
                i += 2;
            }
            "--mode" => {
                let Some(v) = take(i) else {
                    eprintln!("jem-query: --mode needs a substring");
                    return ExitCode::from(2);
                };
                query.mode = Some(v);
                i += 2;
            }
            "--shard" => {
                let Some(v) = take(i) else {
                    eprintln!("jem-query: --shard needs a substring");
                    return ExitCode::from(2);
                };
                query.shard = Some(v);
                i += 2;
            }
            "--since" => {
                let Some(v) = take(i).and_then(|v| v.parse().ok()) else {
                    eprintln!("jem-query: --since needs a number (ns)");
                    return ExitCode::from(2);
                };
                query.since_ns = Some(v);
                i += 2;
            }
            "--until" => {
                let Some(v) = take(i).and_then(|v| v.parse().ok()) else {
                    eprintln!("jem-query: --until needs a number (ns)");
                    return ExitCode::from(2);
                };
                query.until_ns = Some(v);
                i += 2;
            }
            "--group-by" => {
                let Some(v) = take(i) else {
                    eprintln!("jem-query: --group-by needs a comma list of keys");
                    return ExitCode::from(2);
                };
                for part in v.split(',').filter(|p| !p.is_empty()) {
                    match GroupKey::parse(part) {
                        Ok(k) => query.group_by.push(k),
                        Err(e) => {
                            eprintln!("jem-query: {e}");
                            return ExitCode::from(2);
                        }
                    }
                }
                i += 2;
            }
            "--hist" => {
                query.histogram = true;
                i += 1;
            }
            "--top" => {
                let Some(v) = take(i).and_then(|v| v.parse().ok()) else {
                    eprintln!("jem-query: --top needs an integer");
                    return ExitCode::from(2);
                };
                top = Some(v);
                i += 2;
            }
            "--json" => {
                json = true;
                i += 1;
            }
            "--help" | "-h" => {
                eprintln!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => {
                if other.starts_with("--") {
                    eprintln!("jem-query: unknown option '{other}'");
                    return ExitCode::from(2);
                }
                if trace_path.is_some() {
                    eprintln!("jem-query: unexpected argument '{other}'");
                    return ExitCode::from(2);
                }
                trace_path = Some(other.to_string());
                i += 1;
            }
        }
    }
    let Some(trace_path) = trace_path else {
        eprintln!("{USAGE}");
        return ExitCode::from(2);
    };

    if let Some(top) = top {
        return hot_frames(&trace_path, top);
    }

    let mut engine = QueryEngine::new(query);

    // A .jtb *file* streams block-by-block in O(block) memory; stdin
    // and JSON inputs are read whole (JSON has no streaming decode).
    if trace_path != "-" && sniff_file_is_jtb(&trace_path) {
        let file = match std::fs::File::open(&trace_path) {
            Ok(f) => f,
            Err(e) => {
                eprintln!("jem-query: cannot read {trace_path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        let mut stream = match JtbStream::new(BufReader::new(file)) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("jem-query: {trace_path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        loop {
            match stream.next_event() {
                Ok(Some((shard_idx, ev))) => {
                    if let Some(name) = stream.shard_names().get(shard_idx) {
                        let name = name.clone();
                        engine.name_shard(shard_idx, &name);
                    }
                    engine.push(ev);
                }
                Ok(None) => break,
                Err(e) => {
                    eprintln!("jem-query: {trace_path}: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
        engine.note_dropped(stream.dropped());
        if let Some(note) = stream.recovered() {
            eprintln!(
                "jem-query: {trace_path}: crash-recovered trace (salvage cut {} bytes / \
                 {} events); queries run over the invocation-aligned prefix",
                note.dropped_bytes, note.dropped_events
            );
        }
    } else {
        let loaded = match read_input(&trace_path).and_then(|b| load_trace_bytes(&b)) {
            Ok(l) => l,
            Err(e) => {
                eprintln!("jem-query: {trace_path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        if let Some(note) = loaded.recovered {
            eprintln!(
                "jem-query: {trace_path}: crash-recovered trace (salvage cut {} bytes / \
                 {} events); queries run over the invocation-aligned prefix",
                note.dropped_bytes, note.dropped_events
            );
        }
        for (idx, shard) in loaded.shards.iter().enumerate() {
            engine.name_shard(idx, &shard.name);
        }
        engine.note_dropped(loaded.dropped);
        for shard in loaded.shards {
            for ev in shard.events {
                engine.push(ev);
            }
        }
    }

    let result = engine.finish();
    if json {
        println!("{}", result.to_json().render_pretty());
    } else {
        println!("{}", result.render_text());
    }
    ExitCode::SUCCESS
}

/// `--top` mode: fold the whole trace into a profile and print the
/// hottest frames (self/total energy), like `jem-profile` but without
/// the reconcile gate.
fn hot_frames(trace_path: &str, top: usize) -> ExitCode {
    let loaded = match read_input(trace_path).and_then(|b| load_trace_bytes(&b)) {
        Ok(l) => l,
        Err(e) => {
            eprintln!("jem-query: {trace_path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let dropped = loaded.dropped;
    let mut folder = ProfileFolder::new();
    for shard in loaded.shards {
        for ev in shard.events {
            folder.push(ev);
        }
    }
    let profile = folder.finish();
    println!("Hot frames (self/total):");
    println!("{}", profile.render_hot_frames(top));
    if dropped > 0 {
        println!("WARNING: trace truncated ({dropped} events dropped)");
    }
    ExitCode::SUCCESS
}

/// Whether the file starts with the `.jtb` magic (without reading the
/// rest — the streaming path re-opens it).
fn sniff_file_is_jtb(path: &str) -> bool {
    let Ok(mut f) = std::fs::File::open(path) else {
        return false;
    };
    let mut head = [0u8; 4];
    if f.read_exact(&mut head).is_err() {
        return false;
    }
    is_jtb(&head)
}

/// Read the trace bytes from a file, or stdin when the path is `-`.
fn read_input(path: &str) -> Result<Vec<u8>, String> {
    if path == "-" {
        let mut buf = Vec::new();
        std::io::stdin()
            .read_to_end(&mut buf)
            .map_err(|e| format!("cannot read stdin: {e}"))?;
        Ok(buf)
    } else {
        std::fs::read(path).map_err(|e| e.to_string())
    }
}

//! Query a trace without materializing the run.
//!
//! ```text
//! jem-query <trace.jtb | trace.json | -> [options]
//!   --kind <name>         keep only this event kind (repeatable)
//!   --method <substr>     keep invocations whose method contains this
//!   --mode <substr>       keep invocations whose resolved mode contains this
//!   --shard <substr>      keep shards whose name contains this
//!   --since <ns>          keep events at sim-time >= ns (inclusive)
//!   --until <ns>          keep events at sim-time <= ns (inclusive)
//!   --group-by <k,k,…>    group by kind|method|mode|shard (comma list)
//!   --hist                per-group histogram of per-event energy deltas
//!   --top <n>             hot-frame mode: print the n hottest profile
//!                         frames instead (predicates are ignored)
//!   --series <name>       timeline mode: windowed aggregation of one
//!                         series from a `.jts` timeline (only
//!                         `--since`/`--until`/`--json` apply)
//!   --follow              tail a growing `.jtb` file (a live run
//!                         started with `--flush-every`): keep polling
//!                         for appended events and print the query
//!                         result once the writer lands the footer
//!   --json                machine-readable output (jem-query/v1)
//! ```
//!
//! With `--series`, the input must be a `.jts` timeline sidecar (from
//! `--timeline`). Per segment the engine reports the sampled value at
//! the window end, the delta across the window, and min/max of the
//! in-window samples; label-coded series report the label at the
//! window end plus the distinct labels seen. Windows anchored at 0
//! over cumulative `energy.<c>.trace_nj` series reconcile *bit-exactly*
//! with summing the same component's deltas from the run's `.jtb`
//! trace over the same window — both are the identical sequence of
//! f64 additions.
//!
//! Accepts both trace formats — the compact binary `.jtb` (sniffed by
//! magic and processed block-by-block in O(block) memory) and the
//! Chrome-trace JSON document (`-` reads stdin). Method and mode
//! predicates apply to the *resolved* invocation context: a `tx-window`
//! event matches `--mode remote` because its enclosing invocation
//! executed remotely, exactly as the profiler attributes it. With
//! `--group-by method,mode` and no predicates, the aggregates reconcile
//! bit-exactly with `jem-profile`'s table — same fold, same order.
//!
//! Truncated inputs (dropped events) are processed but loudly flagged;
//! exit status is 0 on success, 1 on errors, 2 on usage errors.

use jem_obs::json::Json;
use jem_obs::profile::ProfileFolder;
use jem_obs::query::{GroupKey, Query, QueryEngine};
use jem_obs::timeline::series_is_label;
use jem_obs::wire::{is_jtb, load_trace_bytes, FollowStatus, JtbStream};
use jem_obs::Timeline;
use std::io::{BufReader, Read};
use std::process::ExitCode;

const USAGE: &str = "usage: jem-query <trace.jtb | timeline.jts | trace.json | -> \
                     [--kind <name>]... \
                     [--method <s>] [--mode <s>] [--shard <s>] [--since <ns>] [--until <ns>] \
                     [--group-by <k,k,…>] [--hist] [--top <n>] [--series <name>] \
                     [--follow] [--json]";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut trace_path = None;
    let mut query = Query::default();
    let mut top: Option<usize> = None;
    let mut series: Option<String> = None;
    let mut follow = false;
    let mut json = false;
    let mut i = 0;
    while i < args.len() {
        let take = |i: usize| -> Option<String> { args.get(i + 1).cloned() };
        match args[i].as_str() {
            "--kind" => {
                let Some(v) = take(i) else {
                    eprintln!("jem-query: --kind needs an event-kind name");
                    return ExitCode::from(2);
                };
                query.kinds.push(v);
                i += 2;
            }
            "--method" => {
                let Some(v) = take(i) else {
                    eprintln!("jem-query: --method needs a substring");
                    return ExitCode::from(2);
                };
                query.method = Some(v);
                i += 2;
            }
            "--mode" => {
                let Some(v) = take(i) else {
                    eprintln!("jem-query: --mode needs a substring");
                    return ExitCode::from(2);
                };
                query.mode = Some(v);
                i += 2;
            }
            "--shard" => {
                let Some(v) = take(i) else {
                    eprintln!("jem-query: --shard needs a substring");
                    return ExitCode::from(2);
                };
                query.shard = Some(v);
                i += 2;
            }
            "--since" => {
                let Some(v) = take(i).and_then(|v| v.parse().ok()) else {
                    eprintln!("jem-query: --since needs a number (ns)");
                    return ExitCode::from(2);
                };
                query.since_ns = Some(v);
                i += 2;
            }
            "--until" => {
                let Some(v) = take(i).and_then(|v| v.parse().ok()) else {
                    eprintln!("jem-query: --until needs a number (ns)");
                    return ExitCode::from(2);
                };
                query.until_ns = Some(v);
                i += 2;
            }
            "--group-by" => {
                let Some(v) = take(i) else {
                    eprintln!("jem-query: --group-by needs a comma list of keys");
                    return ExitCode::from(2);
                };
                for part in v.split(',').filter(|p| !p.is_empty()) {
                    match GroupKey::parse(part) {
                        Ok(k) => query.group_by.push(k),
                        Err(e) => {
                            eprintln!("jem-query: {e}");
                            return ExitCode::from(2);
                        }
                    }
                }
                i += 2;
            }
            "--hist" => {
                query.histogram = true;
                i += 1;
            }
            "--top" => {
                let Some(v) = take(i).and_then(|v| v.parse().ok()) else {
                    eprintln!("jem-query: --top needs an integer");
                    return ExitCode::from(2);
                };
                top = Some(v);
                i += 2;
            }
            "--series" => {
                let Some(v) = take(i) else {
                    eprintln!("jem-query: --series needs a series name");
                    return ExitCode::from(2);
                };
                series = Some(v);
                i += 2;
            }
            "--follow" => {
                follow = true;
                i += 1;
            }
            "--json" => {
                json = true;
                i += 1;
            }
            "--help" | "-h" => {
                eprintln!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => {
                if other.starts_with("--") {
                    eprintln!("jem-query: unknown option '{other}'");
                    return ExitCode::from(2);
                }
                if trace_path.is_some() {
                    eprintln!("jem-query: unexpected argument '{other}'");
                    return ExitCode::from(2);
                }
                trace_path = Some(other.to_string());
                i += 1;
            }
        }
    }
    let Some(trace_path) = trace_path else {
        eprintln!("{USAGE}");
        return ExitCode::from(2);
    };

    if follow {
        if series.is_some() || top.is_some() {
            eprintln!("jem-query: --follow cannot be combined with --series or --top");
            return ExitCode::from(2);
        }
        if trace_path == "-" {
            eprintln!("jem-query: --follow needs a file path, not stdin");
            return ExitCode::from(2);
        }
        return follow_query(&trace_path, query, json);
    }

    if let Some(name) = series {
        return series_window(&trace_path, &name, query.since_ns, query.until_ns, json);
    }

    if let Some(top) = top {
        return hot_frames(&trace_path, top);
    }

    let mut engine = QueryEngine::new(query);

    // A .jtb *file* streams block-by-block in O(block) memory; stdin
    // and JSON inputs are read whole (JSON has no streaming decode).
    if trace_path != "-" && sniff_file_is_jtb(&trace_path) {
        let file = match std::fs::File::open(&trace_path) {
            Ok(f) => f,
            Err(e) => {
                eprintln!("jem-query: cannot read {trace_path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        let mut stream = match JtbStream::new(BufReader::new(file)) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("jem-query: {trace_path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        loop {
            match stream.next_event() {
                Ok(Some((shard_idx, ev))) => {
                    if let Some(name) = stream.shard_names().get(shard_idx) {
                        let name = name.clone();
                        engine.name_shard(shard_idx, &name);
                    }
                    engine.push(ev);
                }
                Ok(None) => break,
                Err(e) => {
                    eprintln!("jem-query: {trace_path}: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
        engine.note_dropped(stream.dropped());
        if let Some(note) = stream.recovered() {
            eprintln!(
                "jem-query: {trace_path}: crash-recovered trace (salvage cut {} bytes / \
                 {} events); queries run over the invocation-aligned prefix",
                note.dropped_bytes, note.dropped_events
            );
        }
    } else {
        let loaded = match read_input(&trace_path).and_then(|b| load_trace_bytes(&b)) {
            Ok(l) => l,
            Err(e) => {
                eprintln!("jem-query: {trace_path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        if let Some(note) = loaded.recovered {
            eprintln!(
                "jem-query: {trace_path}: crash-recovered trace (salvage cut {} bytes / \
                 {} events); queries run over the invocation-aligned prefix",
                note.dropped_bytes, note.dropped_events
            );
        }
        for (idx, shard) in loaded.shards.iter().enumerate() {
            engine.name_shard(idx, &shard.name);
        }
        engine.note_dropped(loaded.dropped);
        for shard in loaded.shards {
            for ev in shard.events {
                engine.push(ev);
            }
        }
    }

    let result = engine.finish();
    if json {
        println!("{}", result.to_json().render_pretty());
    } else {
        println!("{}", result.render_text());
    }
    ExitCode::SUCCESS
}

/// `--follow` mode: tail a growing `.jtb` file, feeding appended
/// events into the engine as the writer flushes them, and print the
/// query result once the footer lands. Torn tails (a block the writer
/// is mid-way through) park the follower until more bytes arrive;
/// real corruption still fails loudly.
fn follow_query(trace_path: &str, query: Query, json: bool) -> ExitCode {
    let mut engine = QueryEngine::new(query);
    let mut follower = match JtbStream::follow(trace_path) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("jem-query: {trace_path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    loop {
        match follower.poll() {
            Ok(FollowStatus::Events(events)) => {
                for (shard_idx, ev) in events {
                    if let Some(name) = follower.shard_names().get(shard_idx) {
                        let name = name.clone();
                        engine.name_shard(shard_idx, &name);
                    }
                    engine.push(ev);
                }
            }
            Ok(FollowStatus::Idle) => std::thread::sleep(std::time::Duration::from_millis(100)),
            Ok(FollowStatus::End) => break,
            Err(e) => {
                eprintln!("jem-query: {trace_path}: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    engine.note_dropped(follower.dropped());
    let result = engine.finish();
    if json {
        println!("{}", result.to_json().render_pretty());
    } else {
        println!("{}", result.render_text());
    }
    ExitCode::SUCCESS
}

/// `--series` mode: windowed aggregation of one timeline series.
///
/// The window is `[since, until]` sim-ns (defaults: segment start /
/// segment end). Value-at-window-end is the last sample at or before
/// `until`; the window delta subtracts the last sample at or before
/// `since`, so a window anchored at 0 returns the plain cumulative
/// value — bit-exact against a sequential `.jtb` sum for the
/// `energy.<c>.trace_nj` family.
fn series_window(
    trace_path: &str,
    name: &str,
    since: Option<f64>,
    until: Option<f64>,
    json: bool,
) -> ExitCode {
    let bytes = match read_input(trace_path) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("jem-query: cannot read {trace_path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let tl = match Timeline::read(&bytes) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("jem-query: {trace_path}: {e} (--series needs a .jts timeline)");
            return ExitCode::FAILURE;
        }
    };
    let Some(idx) = tl.series_index(name) else {
        eprintln!("jem-query: unknown series '{name}'; available:");
        for s in &tl.series {
            eprintln!("  {s}");
        }
        return ExitCode::from(2);
    };
    let a = since;
    let b = until;
    let is_label = series_is_label(idx);
    let label_of = |v: f64| -> String {
        tl.labels
            .get(v as usize)
            .cloned()
            .unwrap_or_else(|| format!("#{v}"))
    };

    let mut seg_rows = Vec::new();
    let mut total_delta = 0.0f64;
    for (si, seg) in tl.segments.iter().enumerate() {
        let lo = a.unwrap_or(f64::NEG_INFINITY);
        let hi = b.unwrap_or(seg.end_t);
        let end_val = seg.value_at(idx, hi);
        let start_val = match a {
            Some(a) => seg.value_at(idx, a),
            None => 0.0,
        };
        let in_window: Vec<f64> = seg
            .times
            .iter()
            .zip(&seg.cols[idx])
            .filter(|(t, _)| **t >= lo && **t <= hi)
            .map(|(_, v)| *v)
            .collect();
        let samples = in_window.len();
        if is_label {
            let mut seen: Vec<String> = Vec::new();
            for v in &in_window {
                let l = label_of(*v);
                if !seen.contains(&l) {
                    seen.push(l);
                }
            }
            seg_rows.push((
                si,
                samples,
                Json::object()
                    .with("segment", si as u64)
                    .with("samples", samples as u64)
                    .with("value_at_end", label_of(end_val))
                    .with(
                        "labels_seen",
                        Json::Arr(seen.iter().map(|l| Json::from(l.as_str())).collect()),
                    ),
                format!(
                    "segment {si}: samples={samples} value@end={} labels-seen=[{}]",
                    label_of(end_val),
                    seen.join(", ")
                ),
            ));
        } else {
            let delta = end_val - start_val;
            total_delta += delta;
            let min = in_window.iter().cloned().fold(f64::INFINITY, f64::min);
            let max = in_window.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            let mut obj = Json::object()
                .with("segment", si as u64)
                .with("samples", samples as u64)
                .with("value_at_end", end_val)
                .with("delta", delta);
            let mut line =
                format!("segment {si}: samples={samples} value@end={end_val} delta={delta}");
            if samples > 0 {
                obj = obj.with("min", min).with("max", max);
                line.push_str(&format!(" min={min} max={max}"));
            }
            seg_rows.push((si, samples, obj, line));
        }
    }

    if json {
        let mut doc = Json::object()
            .with("format", "jem-query/v1")
            .with("series", name)
            .with("sample_every_ns", tl.sample_every_ns);
        if let Some(a) = since {
            doc = doc.with("since_ns", a);
        }
        if let Some(b) = until {
            doc = doc.with("until_ns", b);
        }
        doc = doc.with(
            "segments",
            Json::Arr(seg_rows.into_iter().map(|(_, _, obj, _)| obj).collect()),
        );
        if !is_label {
            doc = doc.with("total_delta", total_delta);
        }
        println!("{}", doc.render_pretty());
    } else {
        let window = match (since, until) {
            (Some(a), Some(b)) => format!("[{a}, {b}] sim-ns"),
            (Some(a), None) => format!("[{a}, end] sim-ns"),
            (None, Some(b)) => format!("[start, {b}] sim-ns"),
            (None, None) => "[start, end]".to_string(),
        };
        println!("series {name} over {window}");
        for (_, _, _, line) in &seg_rows {
            println!("{line}");
        }
        if !is_label {
            println!("total delta: {total_delta}");
        }
    }
    ExitCode::SUCCESS
}

/// `--top` mode: fold the whole trace into a profile and print the
/// hottest frames (self/total energy), like `jem-profile` but without
/// the reconcile gate.
fn hot_frames(trace_path: &str, top: usize) -> ExitCode {
    let loaded = match read_input(trace_path).and_then(|b| load_trace_bytes(&b)) {
        Ok(l) => l,
        Err(e) => {
            eprintln!("jem-query: {trace_path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let dropped = loaded.dropped;
    let mut folder = ProfileFolder::new();
    for shard in loaded.shards {
        for ev in shard.events {
            folder.push(ev);
        }
    }
    let profile = folder.finish();
    println!("Hot frames (self/total):");
    println!("{}", profile.render_hot_frames(top));
    if dropped > 0 {
        println!("WARNING: trace truncated ({dropped} events dropped)");
    }
    ExitCode::SUCCESS
}

/// Whether the file starts with the `.jtb` magic (without reading the
/// rest — the streaming path re-opens it).
fn sniff_file_is_jtb(path: &str) -> bool {
    let Ok(mut f) = std::fs::File::open(path) else {
        return false;
    };
    let mut head = [0u8; 4];
    if f.read_exact(&mut head).is_err() {
        return false;
    }
    is_jtb(&head)
}

/// Read the trace bytes from a file, or stdin when the path is `-`.
fn read_input(path: &str) -> Result<Vec<u8>, String> {
    if path == "-" {
        let mut buf = Vec::new();
        std::io::stdin()
            .read_to_end(&mut buf)
            .map_err(|e| format!("cannot read stdin: {e}"))?;
        Ok(buf)
    } else {
        std::fs::read(path).map_err(|e| e.to_string())
    }
}

//! The experiment-archive CLI over [`jem_obs::lab`].
//!
//! ```text
//! jem-lab ingest <archive> --bin <name> [--run-args "<args>"] <kind>=<path>...
//! jem-lab ls <archive>
//! jem-lab query <archive> (--series <name> | --column <path>)
//!               [--window a:b] [--group-by fingerprint|bin|args] [--json]
//! jem-lab check <archive> [--rel-tol <x>] [--noisy-rel-tol <x>]
//!               [--throughput-threshold <x>] [--json-out <path>]
//!               [--schema <schema.json>]
//! jem-lab report <archive> --out <report.html> [--json-out <path>]
//!               [--schema <schema.json>]
//! jem-lab verify <archive>
//! ```
//!
//! * `ingest` stores a run's artifact files (`bench=BENCH_x.json
//!   trace=x.jtb timeline=x.jts health=x.json metrics=x.prom
//!   bench-history=baseline.json`) under the fingerprint derived from
//!   `--bin` and `--run-args` (output-path flags are stripped; the
//!   seed is parsed from `--seed` within the run args). Bench bins do
//!   this automatically when run with `--archive <dir>`.
//! * `query` selects a timeline series (window-end value per segment)
//!   or a JSON column path (with `*` wildcards) across every archived
//!   run, grouped and reduced with Welford summaries. `--window` is in
//!   sim-ms, like `jem-timeline`.
//! * `check` runs the regression detector (strict rel-1e-9 energy gate
//!   between consecutive generations of each fingerprint line,
//!   throughput threshold + changepoint tests over the line's
//!   history) and writes a `jem-lab/v1` report. `--schema` validates
//!   the emitted document against `schemas/lab-report.schema.json`
//!   before writing (the CI self-check).
//! * `report` renders the self-contained static HTML report (inline
//!   SVG only, no external resources).
//! * `verify` recomputes every manifest fingerprint and blob hash.
//!
//! Exit status: 0 on success (for `check`: no regressions; for
//! `verify`: archive intact), 1 when regressions were flagged / the
//! archive is damaged / an operation failed, 2 on usage errors.

use jem_obs::json::Json;
use jem_obs::lab::{
    check, html_report, query, Archive, CheckConfig, LabGroupBy, LabQuery, LabSelector, RunMeta,
};
use jem_obs::tui::fmt_si;
use std::process::ExitCode;

const USAGE: &str = "usage: jem-lab <ingest|ls|query|check|report|verify> <archive> [options]\n\
  ingest <archive> --bin <name> [--run-args \"<args>\"] <kind>=<path>...\n\
  ls     <archive>\n\
  query  <archive> (--series <name> | --column <path>) [--window a:b] \
[--group-by fingerprint|bin|args] [--json]\n\
  check  <archive> [--rel-tol <x>] [--noisy-rel-tol <x>] [--throughput-threshold <x>] \
[--json-out <path>] [--schema <schema.json>]\n\
  report <archive> --out <report.html> [--json-out <path>] [--schema <schema.json>]\n\
  verify <archive>";

fn usage_err(msg: &str) -> ExitCode {
    eprintln!("jem-lab: {msg}");
    eprintln!("{USAGE}");
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else {
        return usage_err("missing command");
    };
    let Some(root) = args.get(1) else {
        return usage_err("missing archive directory");
    };
    let rest = &args[2..];
    match cmd.as_str() {
        "ingest" => cmd_ingest(root, rest),
        "ls" => cmd_ls(root),
        "query" => cmd_query(root, rest),
        "check" => cmd_check(root, rest),
        "report" => cmd_report(root, rest),
        "verify" => cmd_verify(root),
        "--help" | "-h" => {
            eprintln!("{USAGE}");
            ExitCode::SUCCESS
        }
        other => usage_err(&format!("unknown command '{other}'")),
    }
}

fn open(root: &str) -> Result<Archive, ExitCode> {
    Archive::open_or_create(root).map_err(|e| {
        eprintln!("jem-lab: {e}");
        ExitCode::FAILURE
    })
}

fn cmd_ingest(root: &str, rest: &[String]) -> ExitCode {
    let mut bin = None;
    let mut run_args: Vec<String> = Vec::new();
    let mut files: Vec<(String, String)> = Vec::new();
    let mut i = 0;
    while i < rest.len() {
        match rest[i].as_str() {
            "--bin" => {
                let Some(v) = rest.get(i + 1) else {
                    return usage_err("--bin needs a name");
                };
                bin = Some(v.clone());
                i += 2;
            }
            "--run-args" => {
                let Some(v) = rest.get(i + 1) else {
                    return usage_err("--run-args needs a string");
                };
                run_args = v.split_whitespace().map(str::to_string).collect();
                i += 2;
            }
            other => {
                let Some((kind, path)) = other.split_once('=') else {
                    return usage_err(&format!(
                        "expected <kind>=<path>, got '{other}' \
                         (kinds: bench, bench-history, trace, timeline, health, metrics)"
                    ));
                };
                files.push((kind.to_string(), path.to_string()));
                i += 1;
            }
        }
    }
    let Some(bin) = bin else {
        return usage_err("ingest needs --bin");
    };
    if files.is_empty() {
        return usage_err("ingest needs at least one <kind>=<path> artifact");
    }
    let mut argv = vec![bin];
    argv.extend(run_args);
    let meta = RunMeta::from_argv(&argv);
    let archive = match open(root) {
        Ok(a) => a,
        Err(code) => return code,
    };
    match archive.ingest_files(&meta, &files) {
        Ok(record) => {
            println!(
                "ingested {} ({} artifact(s), run {})",
                record.label(),
                record.artifacts.len(),
                record.run_id
            );
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("jem-lab: {e}");
            ExitCode::FAILURE
        }
    }
}

fn cmd_ls(root: &str) -> ExitCode {
    let archive = match open(root) {
        Ok(a) => a,
        Err(code) => return code,
    };
    match archive.runs() {
        Ok(runs) => {
            for run in &runs {
                println!(
                    "{}  seed={}  artifacts=[{}]  args=[{}]",
                    run.label(),
                    run.meta
                        .seed
                        .map_or_else(|| "-".to_string(), |s| s.to_string()),
                    run.artifacts
                        .iter()
                        .map(|a| a.kind.as_str())
                        .collect::<Vec<_>>()
                        .join(","),
                    run.meta.args.join(" ")
                );
            }
            println!("{} run(s)", runs.len());
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("jem-lab: {e}");
            ExitCode::FAILURE
        }
    }
}

fn cmd_query(root: &str, rest: &[String]) -> ExitCode {
    let mut selector = None;
    let mut window = None;
    let mut group_by = LabGroupBy::Fingerprint;
    let mut json = false;
    let mut i = 0;
    while i < rest.len() {
        match rest[i].as_str() {
            "--series" => {
                let Some(v) = rest.get(i + 1) else {
                    return usage_err("--series needs a name");
                };
                selector = Some(LabSelector::Series(v.clone()));
                i += 2;
            }
            "--column" => {
                let Some(v) = rest.get(i + 1) else {
                    return usage_err("--column needs a path");
                };
                selector = Some(LabSelector::Column(v.clone()));
                i += 2;
            }
            "--window" => {
                // Sim-ms for human ergonomics, like jem-timeline.
                let parsed = rest.get(i + 1).and_then(|v| {
                    let (a, b) = v.split_once(':')?;
                    let (a, b): (f64, f64) = (a.parse().ok()?, b.parse().ok()?);
                    (a <= b).then_some((a * 1e6, b * 1e6))
                });
                let Some(w) = parsed else {
                    return usage_err("--window needs a:b in sim-ms with a <= b");
                };
                window = Some(w);
                i += 2;
            }
            "--group-by" => {
                group_by = match rest.get(i + 1).map(String::as_str) {
                    Some("fingerprint") => LabGroupBy::Fingerprint,
                    Some("bin") => LabGroupBy::Bin,
                    Some("args") => LabGroupBy::Args,
                    _ => return usage_err("--group-by needs fingerprint|bin|args"),
                };
                i += 2;
            }
            "--json" => {
                json = true;
                i += 1;
            }
            other => return usage_err(&format!("unknown query option '{other}'")),
        }
    }
    let Some(selector) = selector else {
        return usage_err("query needs --series <name> or --column <path>");
    };
    let archive = match open(root) {
        Ok(a) => a,
        Err(code) => return code,
    };
    let spec = LabQuery {
        selector,
        window,
        group_by,
    };
    match query(&archive, &spec) {
        Ok(groups) => {
            if json {
                let doc = Json::object().with(
                    "groups",
                    Json::Arr(groups.iter().map(|g| g.to_json()).collect()),
                );
                println!("{}", doc.render_pretty());
            } else {
                for g in &groups {
                    println!(
                        "{}: n={} mean={} stddev={} min={} max={} ({} run(s))",
                        g.key,
                        g.summary.count(),
                        fmt_si(g.summary.mean()),
                        fmt_si(g.summary.stddev()),
                        fmt_si(g.summary.min()),
                        fmt_si(g.summary.max()),
                        g.runs.len()
                    );
                    for r in &g.runs {
                        println!(
                            "  {}: n={} mean={}",
                            r.label,
                            r.summary.count(),
                            fmt_si(r.summary.mean())
                        );
                    }
                }
            }
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("jem-lab: {e}");
            ExitCode::FAILURE
        }
    }
}

/// Validate a rendered report against a schema file; `Ok` when it
/// conforms.
fn check_schema(doc: &Json, schema_path: &str) -> Result<(), String> {
    let text = std::fs::read_to_string(schema_path)
        .map_err(|e| format!("cannot read schema {schema_path}: {e}"))?;
    let schema = Json::parse(&text).map_err(|e| format!("schema {schema_path}: {e}"))?;
    let errors = jem_obs::schema::validate(doc, &schema);
    if errors.is_empty() {
        return Ok(());
    }
    let mut msg = format!("report fails schema validation against {schema_path}:");
    for e in errors.iter().take(10) {
        msg.push_str(&format!("\n  {e}"));
    }
    if errors.len() > 10 {
        msg.push_str(&format!("\n  … and {} more", errors.len() - 10));
    }
    Err(msg)
}

fn parse_check_args(
    rest: &[String],
) -> Result<(CheckConfig, Option<String>, Option<String>), String> {
    let mut cfg = CheckConfig::default();
    let mut json_out = None;
    let mut schema = None;
    let mut i = 0;
    while i < rest.len() {
        let num = |v: Option<&String>| -> Result<f64, String> {
            v.and_then(|v| v.parse().ok())
                .ok_or_else(|| format!("{} needs a number", rest[i]))
        };
        match rest[i].as_str() {
            "--rel-tol" => {
                cfg.rel_tol = num(rest.get(i + 1))?;
                i += 2;
            }
            "--noisy-rel-tol" => {
                cfg.noisy_rel_tol = num(rest.get(i + 1))?;
                i += 2;
            }
            "--throughput-threshold" => {
                cfg.throughput_threshold = num(rest.get(i + 1))?;
                i += 2;
            }
            "--json-out" => {
                json_out = Some(
                    rest.get(i + 1)
                        .cloned()
                        .ok_or("--json-out needs a path".to_string())?,
                );
                i += 2;
            }
            "--schema" => {
                schema = Some(
                    rest.get(i + 1)
                        .cloned()
                        .ok_or("--schema needs a path".to_string())?,
                );
                i += 2;
            }
            other => return Err(format!("unknown check option '{other}'")),
        }
    }
    Ok((cfg, json_out, schema))
}

fn cmd_check(root: &str, rest: &[String]) -> ExitCode {
    let (cfg, json_out, schema) = match parse_check_args(rest) {
        Ok(v) => v,
        Err(e) => return usage_err(&e),
    };
    let archive = match open(root) {
        Ok(a) => a,
        Err(code) => return code,
    };
    match check(&archive, &cfg) {
        Ok(report) => {
            print!("{}", report.render_text());
            if let Some(schema_path) = &schema {
                if let Err(e) = check_schema(&report.to_json(), schema_path) {
                    eprintln!("jem-lab: {e}");
                    return ExitCode::FAILURE;
                }
                eprintln!("jem-lab: report validates against {schema_path}");
            }
            if let Some(path) = json_out {
                if let Err(e) =
                    jem_obs::write_atomic(&path, report.to_json().render_pretty().as_bytes())
                {
                    eprintln!("jem-lab: cannot write {path}: {e}");
                    return ExitCode::FAILURE;
                }
            }
            if report.flagged() {
                ExitCode::FAILURE
            } else {
                ExitCode::SUCCESS
            }
        }
        Err(e) => {
            eprintln!("jem-lab: {e}");
            ExitCode::FAILURE
        }
    }
}

fn cmd_report(root: &str, rest: &[String]) -> ExitCode {
    let mut out = None;
    let mut json_out = None;
    let mut schema = None;
    let mut i = 0;
    while i < rest.len() {
        match rest[i].as_str() {
            "--out" => {
                let Some(v) = rest.get(i + 1) else {
                    return usage_err("--out needs a path");
                };
                out = Some(v.clone());
                i += 2;
            }
            "--json-out" => {
                let Some(v) = rest.get(i + 1) else {
                    return usage_err("--json-out needs a path");
                };
                json_out = Some(v.clone());
                i += 2;
            }
            "--schema" => {
                let Some(v) = rest.get(i + 1) else {
                    return usage_err("--schema needs a path");
                };
                schema = Some(v.clone());
                i += 2;
            }
            other => return usage_err(&format!("unknown report option '{other}'")),
        }
    }
    let Some(out) = out else {
        return usage_err("report needs --out <report.html>");
    };
    let archive = match open(root) {
        Ok(a) => a,
        Err(code) => return code,
    };
    let report = match check(&archive, &CheckConfig::default()) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("jem-lab: {e}");
            return ExitCode::FAILURE;
        }
    };
    if let Some(schema_path) = &schema {
        if let Err(e) = check_schema(&report.to_json(), schema_path) {
            eprintln!("jem-lab: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!("jem-lab: report validates against {schema_path}");
    }
    if let Some(path) = json_out {
        if let Err(e) = jem_obs::write_atomic(&path, report.to_json().render_pretty().as_bytes()) {
            eprintln!("jem-lab: cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
    }
    match html_report(&archive, &report) {
        Ok(html) => {
            if let Err(e) = jem_obs::write_atomic(&out, html.as_bytes()) {
                eprintln!("jem-lab: cannot write {out}: {e}");
                return ExitCode::FAILURE;
            }
            println!(
                "wrote {out} ({} line(s), {} flag(s))",
                report.lines.len(),
                report.flags.len()
            );
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("jem-lab: {e}");
            ExitCode::FAILURE
        }
    }
}

fn cmd_verify(root: &str) -> ExitCode {
    let archive = match open(root) {
        Ok(a) => a,
        Err(code) => return code,
    };
    match archive.verify() {
        Ok(findings) if findings.is_empty() => {
            println!("archive OK");
            ExitCode::SUCCESS
        }
        Ok(findings) => {
            for f in &findings {
                eprintln!("jem-lab: {f}");
            }
            eprintln!("jem-lab: {} integrity finding(s)", findings.len());
            ExitCode::FAILURE
        }
        Err(e) => {
            eprintln!("jem-lab: {e}");
            ExitCode::FAILURE
        }
    }
}

//! A deliberately small JSON-Schema validator.
//!
//! CI validates exported traces against `schemas/trace.schema.json`
//! without any network or external tooling, so this module implements
//! just the keyword subset that schema uses: `type` (string or array;
//! `integer` means a number with an integral value), `properties`,
//! `required`, `items` (single schema), `enum`, `minItems`,
//! `maxItems`, and boolean `additionalProperties`. Unknown keywords
//! are ignored, like real validators do.

use crate::json::Json;

/// Validate `doc` against `schema`, collecting every violation as a
/// `path: message` string (empty vector ⇒ valid).
pub fn validate(doc: &Json, schema: &Json) -> Vec<String> {
    let mut errors = Vec::new();
    check(doc, schema, "$", &mut errors);
    errors
}

fn check(doc: &Json, schema: &Json, path: &str, errors: &mut Vec<String>) {
    if let Some(types) = schema.get("type") {
        let names: Vec<&str> = match types {
            Json::Str(s) => vec![s.as_str()],
            Json::Arr(a) => a.iter().filter_map(Json::as_str).collect(),
            _ => vec![],
        };
        if !names.is_empty() && !names.iter().any(|t| type_matches(doc, t)) {
            errors.push(format!(
                "{path}: expected type {}, got {}",
                names.join("|"),
                doc.type_name()
            ));
            return; // Structural keywords below would only cascade.
        }
    }
    if let Some(Json::Arr(allowed)) = schema.get("enum") {
        let rendered = doc.render();
        if !allowed.iter().any(|v| v.render() == rendered) {
            errors.push(format!("{path}: value {rendered} not in enum"));
        }
    }
    if let Some(Json::Arr(required)) = schema.get("required") {
        for key in required.iter().filter_map(Json::as_str) {
            if doc.get(key).is_none() {
                errors.push(format!("{path}: missing required property '{key}'"));
            }
        }
    }
    if let Some(props) = schema.get("properties").and_then(Json::as_object) {
        if let Some(members) = doc.as_object() {
            for (key, sub) in props {
                if let Some(value) = members.iter().find(|(k, _)| k == key).map(|(_, v)| v) {
                    check(value, sub, &format!("{path}.{key}"), errors);
                }
            }
            if schema.get("additionalProperties").and_then(Json::as_bool) == Some(false) {
                for (key, _) in members {
                    if !props.iter().any(|(k, _)| k == key) {
                        errors.push(format!("{path}: unexpected property '{key}'"));
                    }
                }
            }
        }
    }
    if let Some(items) = doc.as_array() {
        if let Some(min) = schema.get("minItems").and_then(Json::as_u64) {
            if (items.len() as u64) < min {
                errors.push(format!("{path}: fewer than {min} items"));
            }
        }
        if let Some(max) = schema.get("maxItems").and_then(Json::as_u64) {
            if (items.len() as u64) > max {
                errors.push(format!("{path}: more than {max} items"));
            }
        }
        if let Some(item_schema) = schema.get("items") {
            for (i, item) in items.iter().enumerate() {
                check(item, item_schema, &format!("{path}[{i}]"), errors);
            }
        }
    }
}

fn type_matches(doc: &Json, name: &str) -> bool {
    match name {
        "null" => matches!(doc, Json::Null),
        "boolean" => matches!(doc, Json::Bool(_)),
        "number" => matches!(doc, Json::Num(_)),
        "integer" => matches!(doc, Json::Num(n) if n.fract() == 0.0 && n.is_finite()),
        "string" => matches!(doc, Json::Str(_)),
        "array" => matches!(doc, Json::Arr(_)),
        "object" => matches!(doc, Json::Obj(_)),
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(text: &str) -> Json {
        Json::parse(text).unwrap()
    }

    #[test]
    fn accepts_matching_document() {
        let schema = parse(
            r#"{
              "type": "object",
              "required": ["name", "events"],
              "properties": {
                "name": {"type": "string"},
                "events": {
                  "type": "array",
                  "minItems": 1,
                  "items": {
                    "type": "object",
                    "required": ["seq", "kind"],
                    "properties": {
                      "seq": {"type": "integer"},
                      "kind": {"enum": ["tx-window", "rx-window"]}
                    }
                  }
                }
              }
            }"#,
        );
        let doc = parse(r#"{"name":"t","events":[{"seq":0,"kind":"tx-window"}]}"#);
        assert!(validate(&doc, &schema).is_empty());
    }

    #[test]
    fn reports_type_required_and_enum_violations() {
        let schema = parse(
            r#"{
              "type": "object",
              "required": ["seq", "kind"],
              "properties": {
                "seq": {"type": "integer"},
                "kind": {"type": "string", "enum": ["a", "b"]}
              }
            }"#,
        );
        let doc = parse(r#"{"seq": 1.5, "kind": "c"}"#);
        let errors = validate(&doc, &schema);
        assert_eq!(errors.len(), 2, "{errors:?}");
        assert!(errors[0].contains("$.seq"));
        assert!(errors[1].contains("not in enum"));
        let missing = validate(&parse("{}"), &schema);
        assert_eq!(missing.len(), 2);
        assert!(missing[0].contains("missing required property 'seq'"));
    }

    #[test]
    fn additional_properties_false_rejects_unknowns() {
        let schema = parse(
            r#"{"type":"object","properties":{"a":{"type":"number"}},"additionalProperties":false}"#,
        );
        let errors = validate(&parse(r#"{"a":1,"b":2}"#), &schema);
        assert_eq!(errors.len(), 1);
        assert!(errors[0].contains("unexpected property 'b'"));
    }

    #[test]
    fn type_array_allows_alternatives() {
        let schema = parse(r#"{"type":["string","null"]}"#);
        assert!(validate(&parse("null"), &schema).is_empty());
        assert!(validate(&parse("\"x\""), &schema).is_empty());
        assert_eq!(validate(&parse("3"), &schema).len(), 1);
    }
}

//! Crash-safe file output.
//!
//! Every finished artifact the workspace writes — `BENCH_*.json`,
//! reports, baselines, health files, checkpoints — goes through
//! [`write_atomic`]: write to a temporary file in the same directory,
//! fsync it, then rename over the destination. A crash at any point
//! leaves either the old contents or the new contents, never a torn
//! file. (The streaming `.jtb` sink is the deliberate exception: it
//! appends in place so a crash leaves a salvageable prefix — see
//! [`crate::wire::salvage_jtb`].)

use std::io::Write;
use std::path::Path;

/// Atomically replace `path` with `bytes`: temp file in the same
/// directory, `fsync`, rename, then a best-effort fsync of the parent
/// directory so the rename itself is durable.
///
/// # Errors
/// Propagates create/write/sync/rename errors (the temp file is
/// removed on failure, best-effort).
pub fn write_atomic(path: &str, bytes: &[u8]) -> std::io::Result<()> {
    let tmp = format!("{path}.tmp~");
    let res = (|| {
        let mut f = std::fs::File::create(&tmp)?;
        f.write_all(bytes)?;
        f.sync_all()?;
        std::fs::rename(&tmp, path)
    })();
    if res.is_err() {
        let _ = std::fs::remove_file(&tmp);
        return res;
    }
    let dir = Path::new(path)
        .parent()
        .filter(|d| !d.as_os_str().is_empty());
    if let Ok(d) = std::fs::File::open(dir.unwrap_or_else(|| Path::new("."))) {
        let _ = d.sync_all();
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writes_and_replaces() {
        let dir = std::env::temp_dir().join(format!("jem-fsio-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("artifact.json");
        let path = path.to_str().unwrap();
        write_atomic(path, b"first").unwrap();
        assert_eq!(std::fs::read(path).unwrap(), b"first");
        write_atomic(path, b"second").unwrap();
        assert_eq!(std::fs::read(path).unwrap(), b"second");
        assert!(
            !std::path::Path::new(&format!("{path}.tmp~")).exists(),
            "temp file must not survive"
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }
}

//! # jem-obs — sim-time tracing, metrics, and predictor observability
//!
//! The simulator's experiments answer *what* a strategy spent; this
//! crate answers *why*. It provides three layers, all deterministic
//! and all driven purely by simulated time (no wall clock ever appears
//! in an exported artifact):
//!
//! * [`trace`] — structured per-event tracing with [`SimTime`]
//!   timestamps and per-event [`EnergyBreakdown`] deltas, a no-op
//!   default sink (zero overhead, zero RNG impact when disabled), a
//!   bounded ring sink, and a Chrome `trace_event` / Perfetto
//!   compatible exporter,
//! * [`metrics`] — counters, gauges and log-bucketed histograms with
//!   Prometheus text-format and JSON exposition,
//! * [`accuracy`] — predicted-vs-actual energy per chosen mode and
//!   cumulative regret against the post-hoc oracle.
//!
//! Because the workspace's vendored `serde` is a no-op stub, the
//! [`json`] module supplies the deterministic JSON reader/writer that
//! every artifact here flows through; [`schema`] adds the small
//! JSON-Schema validator CI uses to gate exported traces.
//!
//! [`SimTime`]: jem_energy::SimTime
//! [`EnergyBreakdown`]: jem_energy::EnergyBreakdown

#![warn(missing_docs)]

pub mod accuracy;
pub mod json;
pub mod metrics;
pub mod schema;
pub mod trace;

pub use accuracy::AccuracyTracker;
pub use json::{Json, JsonError};
pub use metrics::{Buckets, Histogram, MetricsRegistry};
pub use trace::{
    chrome_trace, events_from_chrome_trace, NullSink, RingSink, TraceEvent, TraceEventKind,
    TraceSink, Tracer,
};

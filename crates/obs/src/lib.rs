//! # jem-obs — sim-time tracing, metrics, and predictor observability
//!
//! The simulator's experiments answer *what* a strategy spent; this
//! crate answers *why*. It provides three layers, all deterministic
//! and all driven purely by simulated time (no wall clock ever appears
//! in an exported artifact):
//!
//! * [`trace`] — structured per-event tracing with [`SimTime`]
//!   timestamps and per-event [`EnergyBreakdown`] deltas, a no-op
//!   default sink (zero overhead, zero RNG impact when disabled), a
//!   bounded ring sink, and a Chrome `trace_event` / Perfetto
//!   compatible exporter,
//! * [`metrics`] — counters, gauges and log-bucketed histograms with
//!   Prometheus text-format and JSON exposition,
//! * [`accuracy`] — predicted-vs-actual energy per chosen mode and
//!   cumulative regret against the post-hoc oracle,
//! * [`profile`] — folds a trace stream into per-method ×
//!   per-execution-mode × per-component energy/sim-time profiles with
//!   flamegraph (collapsed-stack) export, reconciling exactly with the
//!   run's breakdown,
//! * [`diff`] — noise-aware differential comparison of two runs'
//!   traces / metrics / results (decision flips, per-method energy
//!   deltas); a run diffed against itself is provably empty,
//! * [`wire`] — the compact `.jtb` binary trace format: streaming
//!   bounded-memory writer sinks, a block index footer for cheap
//!   skipping, lossless round-trip to/from [`trace::TraceEvent`], and
//!   a format-sniffing loader shared by every CLI,
//! * [`query`] — a streaming filter / project / aggregate engine over
//!   traces (`jem-query`), reconciling bit-exactly with [`profile`],
//! * [`monitor`] — online invariant monitors (energy conservation,
//!   negative deltas, retry storms, breaker flap, predictor regret,
//!   regret trend, energy-rate anomalies) that tee any sink, inject
//!   structured alert events, and emit an end-of-run health report,
//! * [`timeline`] — the `.jts` sim-time-series sidecar: a
//!   deterministic sampler that snapshots derived run state (energy
//!   cumulative/rates, predictor estimates, channel/breaker state,
//!   counters) at a sim-time cadence into a compact columnar format
//!   whose energy-rate integrals reconcile bit-exactly with the run's
//!   final breakdown,
//! * [`serve`] — the live-run exposition layer: a dependency-free
//!   HTTP server over a published [`serve::LiveState`] snapshot
//!   (`/metrics`, `/health`, `/series`, `/events` SSE). Data flows
//!   strictly sim → server; serving a run never perturbs it,
//! * [`tui`] — shared plain-ANSI rendering (unicode sparklines,
//!   refresh-frame helpers) for `jem-top` and `jem-timeline --live`,
//! * [`lab`] — the cross-run experiment archive (`jem-lab`):
//!   content-addressed artifact storage keyed by deterministic run
//!   fingerprints, a cross-run query engine with Welford-summary
//!   grouping, a regression detector (strict energy gate + throughput
//!   changepoint tests) emitting `jem-lab/v1` reports, and a
//!   self-contained static HTML report with inline SVG sparklines.
//!
//! Because the workspace's vendored `serde` is a no-op stub, the
//! [`json`] module supplies the deterministic JSON reader/writer that
//! every artifact here flows through; [`schema`] adds the small
//! JSON-Schema validator CI uses to gate exported traces.
//!
//! [`SimTime`]: jem_energy::SimTime
//! [`EnergyBreakdown`]: jem_energy::EnergyBreakdown

#![warn(missing_docs)]

pub mod accuracy;
pub mod diff;
pub mod fsio;
pub mod json;
pub mod lab;
pub mod metrics;
pub mod monitor;
pub mod profile;
pub mod query;
pub mod schema;
pub mod serve;
pub mod timeline;
pub mod trace;
pub mod tui;
pub mod wire;

pub use accuracy::AccuracyTracker;
pub use diff::{combine_batch, DiffEntry, DiffKind, DiffPolicy, DiffReport};
pub use fsio::write_atomic;
pub use json::{Json, JsonError};
pub use lab::{
    check, html_report, identity_args, query, sha256, sha256_hex, Archive, ArtifactRef,
    CheckConfig, GroupResult, LabFlag, LabGroupBy, LabLine, LabQuery, LabReport, LabSelector,
    RunMeta, RunRecord, RunValues,
};
pub use metrics::{Buckets, Histogram, MetricsRegistry};
pub use monitor::{AlertRecord, HealthReport, Monitor, MonitorConfig, MonitorSink, MonitorTee};
pub use profile::{
    CellStats, CollapseWeight, InvocationResolver, ProfileFolder, ResolvedEvent, TraceProfile,
};
pub use query::{GroupKey, Query, QueryEngine, QueryResult, QueryRow};
pub use serve::{LiveServer, LiveState};
pub use timeline::{
    is_jts, series_names, validate_jts, JtsFollower, JtsReader, JtsSample, JtsSummary, Timeline,
    TimelineSegment, TimelineSink,
};
pub use trace::{
    chrome_trace, chrome_trace_sharded, chrome_trace_truncated, dropped_from_chrome_trace,
    events_from_chrome_trace, split_shards, NullSink, RingSink, TraceEvent, TraceEventKind,
    TraceShard, TraceSink, Tracer, TracerState,
};
pub use wire::{
    is_jtb, jtb_bytes, load_trace_bytes, load_trace_path, salvage_jtb, FileSink, FollowStatus,
    JtbFollower, JtbIndex, JtbStream, JtbWriter, LoadedTrace, RecoveredNote, SalvageReport,
    WriterSink,
};

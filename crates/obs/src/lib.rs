//! # jem-obs — sim-time tracing, metrics, and predictor observability
//!
//! The simulator's experiments answer *what* a strategy spent; this
//! crate answers *why*. It provides three layers, all deterministic
//! and all driven purely by simulated time (no wall clock ever appears
//! in an exported artifact):
//!
//! * [`trace`] — structured per-event tracing with [`SimTime`]
//!   timestamps and per-event [`EnergyBreakdown`] deltas, a no-op
//!   default sink (zero overhead, zero RNG impact when disabled), a
//!   bounded ring sink, and a Chrome `trace_event` / Perfetto
//!   compatible exporter,
//! * [`metrics`] — counters, gauges and log-bucketed histograms with
//!   Prometheus text-format and JSON exposition,
//! * [`accuracy`] — predicted-vs-actual energy per chosen mode and
//!   cumulative regret against the post-hoc oracle,
//! * [`profile`] — folds a trace stream into per-method ×
//!   per-execution-mode × per-component energy/sim-time profiles with
//!   flamegraph (collapsed-stack) export, reconciling exactly with the
//!   run's breakdown,
//! * [`diff`] — noise-aware differential comparison of two runs'
//!   traces / metrics / results (decision flips, per-method energy
//!   deltas); a run diffed against itself is provably empty.
//!
//! Because the workspace's vendored `serde` is a no-op stub, the
//! [`json`] module supplies the deterministic JSON reader/writer that
//! every artifact here flows through; [`schema`] adds the small
//! JSON-Schema validator CI uses to gate exported traces.
//!
//! [`SimTime`]: jem_energy::SimTime
//! [`EnergyBreakdown`]: jem_energy::EnergyBreakdown

#![warn(missing_docs)]

pub mod accuracy;
pub mod diff;
pub mod json;
pub mod metrics;
pub mod profile;
pub mod schema;
pub mod trace;

pub use accuracy::AccuracyTracker;
pub use diff::{DiffEntry, DiffKind, DiffPolicy, DiffReport};
pub use json::{Json, JsonError};
pub use metrics::{Buckets, Histogram, MetricsRegistry};
pub use profile::{CellStats, CollapseWeight, TraceProfile};
pub use trace::{
    chrome_trace, chrome_trace_sharded, events_from_chrome_trace, split_shards, NullSink, RingSink,
    TraceEvent, TraceEventKind, TraceShard, TraceSink, Tracer,
};

//! Sim-time-series telemetry: the deterministic `.jts` timeline layer.
//!
//! A trace answers "what happened"; the timeline answers "what did the
//! run *look like over sim-time*". [`TimelineSink`] observes the same
//! event stream every other sink sees and, at a configurable sim-time
//! cadence (plus a forced sample at every invocation end), snapshots
//! derived run state into a fixed catalogue of named series:
//!
//! * `energy.<component>.cum_nj` — the run's cumulative
//!   [`EnergyBreakdown`], snapshotted from the tracer's exact ledger
//!   (see [`crate::trace::TraceSink::record_with_ledger`]). Energy
//!   *rates* are derived on read as `Δcum/Δt` (nJ/ns ≡ watts), so the
//!   integral of every rate series telescopes to the final cumulative
//!   value: `∫ rate dt = cum(T) − cum(0) = cum(T)`. That makes the
//!   "rate integral reconciles with the final breakdown" invariant a
//!   *bit-exact* equality rather than an epsilon comparison — the
//!   final forced sample IS the machine's cumulative ledger.
//! * `energy.<component>.trace_nj` — sequential prefix sums of the
//!   per-event deltas, in event order. These reconcile bit-exactly
//!   with windowed delta sums over the corresponding `.jtb` trace
//!   (both are the same sequence of f64 additions), which is what
//!   `jem-query --series` exploits.
//! * `predictor.{ei,er,el1,el2,el3}_nj` and `predictor.err_rel` — the
//!   EWMA candidate estimates from the latest decision and the
//!   relative prediction error of the latest *followed* decision.
//! * `channel.true_class` / `channel.chosen_class` / `breaker.state` —
//!   label-coded state series: values are indices into the file's
//!   label table (id 0 is the empty "unknown" label).
//! * `counters.{retries,fallbacks,degraded}`, `instructions`,
//!   `invocations` — monotone run counters.
//!
//! Samples are derived purely from observed events: the sink never
//! touches the simulation, so runs with the timeline on are
//! bit-identical to runs with it off (test-enforced).
//!
//! # The `.jts` format
//!
//! Columnar, append-only, and byte-deterministic:
//!
//! ```text
//! "JTS1" varint(version=1) msf(sample_every_ns)
//! varint(n_series) { varint(len) bytes }*        // series name table
//! records:
//!   0x01                                         // segment start
//!   0x02 varint(len) payload                     // sample block
//! footer (0x03 varint(len) payload):
//!   label table, per-segment sample counts + end time + final
//!   ledger/trace column values (raw f64 bits), total sample count
//! trailer: u64le footer_offset "JTSE"
//! ```
//!
//! A sample block holds up to [`BLOCK_SAMPLES`] samples: a
//! delta-of-delta timestamp column (on the `wire.rs` maybe-scaled
//! integer path, raw-bits fallback) followed by one column per series
//! where each value is either a zigzag varint of the scaled delta
//! against the previous value or an XOR of raw f64 bits — every value
//! round-trips bit-for-bit. A new run streamed through the same sink
//! (detected by a sequence-number restart, exactly like
//! [`crate::trace::split_shards`]) opens a new segment with fresh
//! state.
//!
//! Checkpoint/resume mirrors the `.jtb` writer: `ckpt_state` flushes
//! and fsyncs the prefix, then serializes the writer offset, the
//! per-series carry values, the un-flushed sample buffer, and the full
//! sampler state; [`TimelineSink::resume`] truncates the file to the
//! checkpointed offset and continues, so a resumed timeline is
//! byte-identical to an uninterrupted one.

use crate::trace::{TraceEvent, TraceEventKind, TraceSink};
use crate::wire::{put_msf, put_varint, unzigzag, zigzag, Cur, FollowStatus};
use jem_energy::{Component, EnergyBreakdown};
use std::io::Write;

/// `.jts` leading magic.
pub const JTS_MAGIC: &[u8; 4] = b"JTS1";
/// `.jts` trailing magic (after the footer offset).
const JTS_END_MAGIC: &[u8; 4] = b"JTSE";
/// Timeline writer checkpoint-state magic.
const JSS_MAGIC: &[u8; 4] = b"JSS1";
/// Record tags.
const R_SEGMENT: u8 = 0x01;
const R_SAMPLES: u8 = 0x02;
const R_FOOTER: u8 = 0x03;
/// Samples per encoded block (flush granularity).
pub const BLOCK_SAMPLES: usize = 512;

/// Sniff: does `bytes` look like a `.jts` timeline?
pub fn is_jts(bytes: &[u8]) -> bool {
    bytes.len() >= 4 && &bytes[..4] == JTS_MAGIC
}

// ---------------------------------------------------------------
// Series catalogue
// ---------------------------------------------------------------

pub(crate) const COMPONENTS: usize = 5;
pub(crate) const S_CUM: usize = 0; // + component index
pub(crate) const S_TRACE: usize = S_CUM + COMPONENTS; // + component index
pub(crate) const S_EI: usize = 10;
pub(crate) const S_ER: usize = 11;
pub(crate) const S_EL1: usize = 12;
pub(crate) const S_ERR: usize = 15;
pub(crate) const S_TRUE_CLASS: usize = 16;
pub(crate) const S_CHOSEN_CLASS: usize = 17;
pub(crate) const S_BREAKER: usize = 18;
pub(crate) const S_RETRIES: usize = 19;
pub(crate) const S_FALLBACKS: usize = 20;
pub(crate) const S_DEGRADED: usize = 21;
pub(crate) const S_INSTRUCTIONS: usize = 22;
pub(crate) const S_INVOCATIONS: usize = 23;
/// Number of series every `.jts` file carries (the catalogue is
/// fixed: series identity is positional, names are self-describing).
pub const N_SERIES: usize = 24;

/// The fixed series catalogue, in column order.
pub fn series_names() -> Vec<String> {
    let mut names = Vec::with_capacity(N_SERIES);
    for c in Component::ALL {
        names.push(format!("energy.{}.cum_nj", c.name()));
    }
    for c in Component::ALL {
        names.push(format!("energy.{}.trace_nj", c.name()));
    }
    for n in [
        "predictor.ei_nj",
        "predictor.er_nj",
        "predictor.el1_nj",
        "predictor.el2_nj",
        "predictor.el3_nj",
        "predictor.err_rel",
        "channel.true_class",
        "channel.chosen_class",
        "breaker.state",
        "counters.retries",
        "counters.fallbacks",
        "counters.degraded",
        "instructions",
        "invocations",
    ] {
        names.push(n.to_string());
    }
    debug_assert_eq!(names.len(), N_SERIES);
    names
}

/// Whether column `idx` holds label-table ids rather than quantities.
pub fn series_is_label(idx: usize) -> bool {
    matches!(idx, S_TRUE_CLASS | S_CHOSEN_CLASS | S_BREAKER)
}

// ---------------------------------------------------------------
// Value codec (maybe-scaled delta, XOR raw-bits fallback)
// ---------------------------------------------------------------

/// The `wire.rs` maybe-scaled test: `Some(v * 1000)` when that product
/// is an exactly-invertible integer.
fn scaled(v: f64) -> Option<i64> {
    let s = v * 1000.0;
    if s.is_finite() && s.fract() == 0.0 && s.abs() < 9.0e15 {
        let i = s as i64;
        if (i as f64) == s && (i as f64) / 1000.0 == v {
            return Some(i);
        }
    }
    None
}

fn put_val(out: &mut Vec<u8>, prev: f64, v: f64) {
    if let (Some(p), Some(c)) = (scaled(prev), scaled(v)) {
        put_varint(out, (zigzag(c - p) << 1) | 1);
        return;
    }
    out.push(0x00);
    out.extend_from_slice(&(v.to_bits() ^ prev.to_bits()).to_le_bytes());
}

fn get_val(cur: &mut Cur<'_>, prev: f64) -> Result<f64, String> {
    let tag = cur.varint()?;
    if tag & 1 == 1 {
        let p = scaled(prev).ok_or("jts: scaled delta against unscalable previous value")?;
        let c = p + unzigzag(tag >> 1);
        return Ok(c as f64 / 1000.0);
    }
    if tag != 0 {
        return Err("jts: reserved value tag".into());
    }
    let mut a = [0u8; 8];
    a.copy_from_slice(cur.bytes(8)?);
    Ok(f64::from_bits(u64::from_le_bytes(a) ^ prev.to_bits()))
}

fn put_string(out: &mut Vec<u8>, s: &str) {
    put_varint(out, s.len() as u64);
    out.extend_from_slice(s.as_bytes());
}

fn get_string(cur: &mut Cur<'_>) -> Result<String, String> {
    let len = cur.varint()? as usize;
    if len > 1 << 20 {
        return Err("jts: implausible string length".into());
    }
    String::from_utf8(cur.bytes(len)?.to_vec()).map_err(|_| "jts: invalid utf-8".into())
}

fn put_f64_bits(out: &mut Vec<u8>, v: f64) {
    out.extend_from_slice(&v.to_bits().to_le_bytes());
}

fn get_f64_bits(cur: &mut Cur<'_>) -> Result<f64, String> {
    let mut a = [0u8; 8];
    a.copy_from_slice(cur.bytes(8)?);
    Ok(f64::from_bits(u64::from_le_bytes(a)))
}

// ---------------------------------------------------------------
// Sampler: event stream -> derived state vector
// ---------------------------------------------------------------

/// Derived run state, updated per event and copied out per sample.
#[derive(Clone)]
pub(crate) struct Sampler {
    /// Sample cadence in sim-ns (0 = invocation boundaries only).
    pub(crate) every: f64,
    /// Current value of every series.
    pub(crate) vals: [f64; N_SERIES],
    /// Next scheduled sample time.
    pub(crate) next_t: f64,
    /// Timestamp of the last applied event.
    pub(crate) last_t: f64,
    /// State changed since the last emitted sample.
    pub(crate) dirty: bool,
    /// Last event sequence number (restart detection).
    pub(crate) prev_seq: Option<u64>,
    /// Chosen mode + predicted nJ of the pending decision, for the
    /// prediction-error series (same semantics as the regret monitor).
    pending: Option<(String, f64)>,
    /// Label table for the label-coded series; id 0 is "" (unknown).
    pub(crate) labels: Vec<String>,
}

impl Sampler {
    pub(crate) fn new(every: f64) -> Sampler {
        let mut s = Sampler {
            every,
            vals: [0.0; N_SERIES],
            next_t: every,
            last_t: 0.0,
            dirty: false,
            prev_seq: None,
            pending: None,
            labels: vec![String::new()],
        };
        s.reset();
        s
    }

    /// Reset per-segment state (the label table is file-global).
    pub(crate) fn reset(&mut self) {
        self.vals = [0.0; N_SERIES];
        self.next_t = self.every;
        self.last_t = 0.0;
        self.dirty = false;
        self.prev_seq = None;
        self.pending = None;
        let closed = self.intern("closed");
        self.vals[S_BREAKER] = closed;
    }

    fn intern(&mut self, label: &str) -> f64 {
        if let Some(i) = self.labels.iter().position(|l| l == label) {
            return i as f64;
        }
        self.labels.push(label.to_string());
        (self.labels.len() - 1) as f64
    }

    pub(crate) fn apply(&mut self, ev: &TraceEvent, ledger: Option<&EnergyBreakdown>) {
        self.dirty = true;
        self.last_t = ev.at.nanos();
        for c in Component::ALL {
            self.vals[S_TRACE + c.index()] += ev.delta[c].nanojoules();
        }
        match ledger {
            // The exact cumulative ledger the tracer carries: these
            // snapshots ARE the machine's meters, so the final sample
            // equals the run's breakdown bit-for-bit.
            Some(l) => {
                for c in Component::ALL {
                    self.vals[S_CUM + c.index()] = l[c].nanojoules();
                }
            }
            // Replay paths (stored shards) have no ledger: fall back
            // to the delta prefix sums.
            None => {
                for c in Component::ALL {
                    self.vals[S_CUM + c.index()] = self.vals[S_TRACE + c.index()];
                }
            }
        }
        match &ev.kind {
            TraceEventKind::InvocationStart {
                true_class,
                chosen_class,
                ..
            } => {
                self.vals[S_TRUE_CLASS] = self.intern(true_class);
                self.vals[S_CHOSEN_CLASS] = self.intern(chosen_class);
            }
            TraceEventKind::DecisionEvaluated {
                interpret_nj,
                remote_nj,
                local_nj,
                chosen,
                ..
            } => {
                self.vals[S_EI] = *interpret_nj;
                self.vals[S_ER] = *remote_nj;
                for (i, nj) in local_nj.iter().enumerate() {
                    self.vals[S_EL1 + i] = *nj;
                }
                let predicted = match chosen.as_str() {
                    "interpret" => Some(*interpret_nj),
                    "remote" => Some(*remote_nj),
                    "local/L1" => Some(local_nj[0]),
                    "local/L2" => Some(local_nj[1]),
                    "local/L3" => Some(local_nj[2]),
                    _ => None,
                };
                if let Some(p) = predicted {
                    self.pending = Some((chosen.clone(), p));
                }
            }
            TraceEventKind::RetryAttempt { .. } => self.vals[S_RETRIES] += 1.0,
            TraceEventKind::Fallback { .. } => self.vals[S_FALLBACKS] += 1.0,
            TraceEventKind::Degraded { .. } => self.vals[S_DEGRADED] += 1.0,
            TraceEventKind::BreakerTransition { to, .. } => {
                self.vals[S_BREAKER] = self.intern(to);
            }
            TraceEventKind::InvocationEnd {
                mode,
                energy,
                instructions,
                ..
            } => {
                self.vals[S_INSTRUCTIONS] = *instructions as f64;
                self.vals[S_INVOCATIONS] += 1.0;
                if let Some((chosen, predicted)) = self.pending.take() {
                    if chosen == *mode {
                        let actual = energy.nanojoules();
                        self.vals[S_ERR] = (predicted - actual).abs() / actual.abs().max(1.0);
                    }
                }
            }
            _ => {}
        }
    }
}

// ---------------------------------------------------------------
// Writer sink
// ---------------------------------------------------------------

/// A completed segment's footer entry.
#[derive(Clone)]
struct SegMeta {
    samples: u64,
    end_t: f64,
    final_ledger: [f64; COMPONENTS],
    final_trace: [f64; COMPONENTS],
}

/// Streaming `.jts` writer: a [`TraceSink`] that derives and persists
/// the timeline while never touching the simulation (see module docs).
pub struct TimelineSink {
    path: String,
    out: Option<std::io::BufWriter<std::fs::File>>,
    error: Option<std::io::Error>,
    /// Bytes handed to the writer so far (the checkpoint offset).
    offset: u64,
    sampler: Sampler,
    /// Buffered, not-yet-encoded samples of the open block.
    buf: Vec<(f64, [f64; N_SERIES])>,
    /// Per-series carry: last value written to the flushed stream in
    /// the current segment (0.0 at segment start).
    prev_vals: [f64; N_SERIES],
    /// Flushed sample count of the open segment (`None` = no segment).
    cur_flushed: Option<u64>,
    closed: Vec<SegMeta>,
    /// Invocation-aligned flush cadence (`--flush-every`); `None` (the
    /// default) keeps the output byte-identical to previous releases.
    flush_every_ns: Option<f64>,
    last_flush_t: f64,
}

impl TimelineSink {
    /// Create (truncate) `path` and write the `.jts` header.
    /// `sample_every_ns` is the sampling cadence in sim-nanoseconds;
    /// 0 samples at invocation boundaries only.
    ///
    /// # Errors
    /// File creation or header write errors.
    pub fn create(path: &str, sample_every_ns: f64) -> std::io::Result<TimelineSink> {
        let file = std::fs::File::create(path)?;
        let mut sink = TimelineSink {
            path: path.to_string(),
            out: Some(std::io::BufWriter::new(file)),
            error: None,
            offset: 0,
            sampler: Sampler::new(sample_every_ns),
            buf: Vec::new(),
            prev_vals: [0.0; N_SERIES],
            cur_flushed: None,
            closed: Vec::new(),
            flush_every_ns: None,
            last_flush_t: 0.0,
        };
        let mut header = Vec::new();
        header.extend_from_slice(JTS_MAGIC);
        put_varint(&mut header, 1);
        put_msf(&mut header, sample_every_ns);
        let names = series_names();
        put_varint(&mut header, names.len() as u64);
        for name in &names {
            put_string(&mut header, name);
        }
        sink.write(&header);
        match sink.error.take() {
            Some(e) => Err(e),
            None => Ok(sink),
        }
    }

    /// The destination path.
    pub fn path(&self) -> &str {
        &self.path
    }

    /// The configured sample cadence (sim-ns).
    pub fn sample_every_ns(&self) -> f64 {
        self.sampler.every
    }

    /// Flush the open block and the file whenever an invocation ends
    /// at least `sim_ns` of sim-time after the previous flush — the
    /// `--flush-every` backend. Flushes land right after the forced
    /// invocation-end sample, so followers always see whole
    /// invocations. Blocks are cut early (the byte layout changes) but
    /// the decoded timeline is identical; off by default, keeping
    /// output byte-identical.
    pub fn set_flush_every(&mut self, sim_ns: f64) {
        self.flush_every_ns = Some(sim_ns);
    }

    fn write(&mut self, bytes: &[u8]) {
        if self.error.is_some() {
            return;
        }
        if let Some(out) = self.out.as_mut() {
            match out.write_all(bytes) {
                Ok(()) => self.offset += bytes.len() as u64,
                Err(e) => self.error = Some(e),
            }
        }
    }

    /// Observe one event (with the tracer's exact cumulative ledger
    /// when available). This is the whole sink: derived sampling only,
    /// no simulation state anywhere near it.
    pub fn observe(&mut self, ev: &TraceEvent, ledger: Option<&EnergyBreakdown>) {
        if let Some(prev) = self.sampler.prev_seq {
            if ev.seq <= prev {
                // Sequence restart: a new run is streaming through
                // the same sink (multi-unit sweeps).
                self.end_segment();
            }
        }
        if self.cur_flushed.is_none() {
            self.begin_segment();
        }
        self.sampler.prev_seq = Some(ev.seq);
        let at = ev.at.nanos();
        if self.sampler.every > 0.0 {
            while self.sampler.next_t < at {
                let t = self.sampler.next_t;
                self.push_sample(t);
                self.sampler.next_t += self.sampler.every;
            }
        }
        self.sampler.apply(ev, ledger);
        if matches!(ev.kind, TraceEventKind::InvocationEnd { .. }) {
            self.push_sample(at);
            if self.sampler.every > 0.0 {
                while self.sampler.next_t <= at {
                    self.sampler.next_t += self.sampler.every;
                }
            }
            if let Some(every) = self.flush_every_ns {
                if at >= self.last_flush_t + every {
                    self.last_flush_t = at;
                    self.flush_block();
                    if self.error.is_none() {
                        if let Some(out) = self.out.as_mut() {
                            if let Err(e) = out.flush() {
                                self.error = Some(e);
                            }
                        }
                    }
                }
            }
        }
    }

    fn begin_segment(&mut self) {
        self.sampler.reset();
        self.prev_vals = [0.0; N_SERIES];
        self.cur_flushed = Some(0);
        self.write(&[R_SEGMENT]);
    }

    fn end_segment(&mut self) {
        if self.cur_flushed.is_none() {
            return;
        }
        // Events after the last sample (rare: trailing non-boundary
        // events) would otherwise leave the footer finals ahead of the
        // last sample; force a closing sample so "last sample == footer
        // finals" holds bit-for-bit in every segment.
        if self.sampler.dirty {
            self.push_sample(self.sampler.last_t);
        }
        self.flush_block();
        let samples = self.cur_flushed.unwrap_or(0);
        let mut final_ledger = [0.0; COMPONENTS];
        let mut final_trace = [0.0; COMPONENTS];
        final_ledger.copy_from_slice(&self.sampler.vals[S_CUM..S_CUM + COMPONENTS]);
        final_trace.copy_from_slice(&self.sampler.vals[S_TRACE..S_TRACE + COMPONENTS]);
        self.closed.push(SegMeta {
            samples,
            end_t: self.sampler.last_t,
            final_ledger,
            final_trace,
        });
        self.cur_flushed = None;
    }

    fn push_sample(&mut self, t: f64) {
        self.buf.push((t, self.sampler.vals));
        self.sampler.dirty = false;
        if self.buf.len() >= BLOCK_SAMPLES {
            self.flush_block();
        }
    }

    fn flush_block(&mut self) {
        if self.buf.is_empty() {
            return;
        }
        let mut payload = Vec::with_capacity(self.buf.len() * (N_SERIES + 2));
        put_varint(&mut payload, self.buf.len() as u64);
        // Timestamp column: absolute first, then delta-of-delta on the
        // scaled-integer path.
        put_msf(&mut payload, self.buf[0].0);
        let mut prev_t = self.buf[0].0;
        let mut prev_d: i64 = 0;
        for &(t, _) in &self.buf[1..] {
            if let (Some(a), Some(b)) = (scaled(prev_t), scaled(t)) {
                let d = b - a;
                put_varint(&mut payload, (zigzag(d - prev_d) << 1) | 1);
                prev_d = d;
            } else {
                payload.push(0x00);
                put_f64_bits(&mut payload, t);
                prev_d = 0;
            }
            prev_t = t;
        }
        // Value columns, one per series, delta-chained across blocks.
        for s in 0..N_SERIES {
            let mut prev = self.prev_vals[s];
            for &(_, vals) in &self.buf {
                put_val(&mut payload, prev, vals[s]);
                prev = vals[s];
            }
            self.prev_vals[s] = prev;
        }
        let mut rec = Vec::with_capacity(payload.len() + 8);
        rec.push(R_SAMPLES);
        put_varint(&mut rec, payload.len() as u64);
        rec.extend_from_slice(&payload);
        if let Some(f) = self.cur_flushed.as_mut() {
            *f += self.buf.len() as u64;
        }
        self.buf.clear();
        self.write(&rec);
    }

    /// Finish the stream: close the open segment, write the footer
    /// (label table, per-segment finals) and trailer, flush the file.
    ///
    /// # Errors
    /// Any latched write error or the footer write error.
    pub fn finish(mut self) -> std::io::Result<()> {
        self.end_segment();
        let footer_offset = self.offset;
        let mut payload = Vec::new();
        put_varint(&mut payload, self.sampler.labels.len() as u64);
        for label in &self.sampler.labels {
            put_string(&mut payload, label);
        }
        put_varint(&mut payload, self.closed.len() as u64);
        let mut total = 0u64;
        for seg in &self.closed {
            put_varint(&mut payload, seg.samples);
            put_f64_bits(&mut payload, seg.end_t);
            for v in seg.final_ledger {
                put_f64_bits(&mut payload, v);
            }
            for v in seg.final_trace {
                put_f64_bits(&mut payload, v);
            }
            total += seg.samples;
        }
        put_varint(&mut payload, total);
        let mut rec = vec![R_FOOTER];
        put_varint(&mut rec, payload.len() as u64);
        rec.extend_from_slice(&payload);
        rec.extend_from_slice(&footer_offset.to_le_bytes());
        rec.extend_from_slice(JTS_END_MAGIC);
        self.write(&rec);
        if let Some(e) = self.error.take() {
            return Err(e);
        }
        match self.out.take() {
            Some(mut out) => out.flush(),
            None => Ok(()),
        }
    }

    // -----------------------------------------------------------
    // Checkpoint / resume
    // -----------------------------------------------------------

    /// Serialize the resumable writer state: the flushed-byte offset,
    /// the per-series carries, the buffered (un-flushed) samples, and
    /// the sampler. Call after a successful flush+fsync (see
    /// [`TraceSink::ckpt_state`]).
    fn encode_ckpt(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(JSS_MAGIC);
        out.extend_from_slice(&self.offset.to_le_bytes());
        put_f64_bits(&mut out, self.sampler.every);
        put_varint(&mut out, self.closed.len() as u64);
        for seg in &self.closed {
            put_varint(&mut out, seg.samples);
            put_f64_bits(&mut out, seg.end_t);
            for v in seg.final_ledger {
                put_f64_bits(&mut out, v);
            }
            for v in seg.final_trace {
                put_f64_bits(&mut out, v);
            }
        }
        match self.cur_flushed {
            Some(flushed) => {
                out.push(1);
                put_varint(&mut out, flushed);
            }
            None => out.push(0),
        }
        for v in self.prev_vals {
            put_f64_bits(&mut out, v);
        }
        put_varint(&mut out, self.buf.len() as u64);
        for (t, vals) in &self.buf {
            put_f64_bits(&mut out, *t);
            for v in vals {
                put_f64_bits(&mut out, *v);
            }
        }
        // Sampler.
        put_f64_bits(&mut out, self.sampler.next_t);
        put_f64_bits(&mut out, self.sampler.last_t);
        out.push(self.sampler.dirty as u8);
        match self.sampler.prev_seq {
            Some(seq) => {
                out.push(1);
                put_varint(&mut out, seq);
            }
            None => out.push(0),
        }
        match &self.sampler.pending {
            Some((chosen, predicted)) => {
                out.push(1);
                put_string(&mut out, chosen);
                put_f64_bits(&mut out, *predicted);
            }
            None => out.push(0),
        }
        put_varint(&mut out, self.sampler.labels.len() as u64);
        for label in &self.sampler.labels {
            put_string(&mut out, label);
        }
        for v in self.sampler.vals {
            put_f64_bits(&mut out, v);
        }
        out
    }

    /// Reopen `path` at a checkpointed writer state: the file is
    /// truncated to the state's recorded offset and the sampler,
    /// carries, and buffered samples are restored, so the finished
    /// file is byte-identical to one from an uninterrupted run.
    ///
    /// # Errors
    /// State corruption, or the file being shorter than the
    /// checkpointed offset.
    pub fn resume(path: &str, state: &[u8]) -> Result<TimelineSink, String> {
        use std::io::{Seek, SeekFrom};
        let mut cur = Cur::new(state);
        if cur.bytes(4)? != JSS_MAGIC {
            return Err("jts: checkpoint state has wrong magic".into());
        }
        let mut off = [0u8; 8];
        off.copy_from_slice(cur.bytes(8)?);
        let offset = u64::from_le_bytes(off);
        let every = get_f64_bits(&mut cur)?;
        let n_closed = cur.varint()? as usize;
        if n_closed > 1 << 20 {
            return Err("jts: implausible segment count in checkpoint".into());
        }
        let mut closed = Vec::with_capacity(n_closed);
        for _ in 0..n_closed {
            let samples = cur.varint()?;
            let end_t = get_f64_bits(&mut cur)?;
            let mut final_ledger = [0.0; COMPONENTS];
            let mut final_trace = [0.0; COMPONENTS];
            for v in final_ledger.iter_mut() {
                *v = get_f64_bits(&mut cur)?;
            }
            for v in final_trace.iter_mut() {
                *v = get_f64_bits(&mut cur)?;
            }
            closed.push(SegMeta {
                samples,
                end_t,
                final_ledger,
                final_trace,
            });
        }
        let cur_flushed = match cur.u8()? {
            0 => None,
            1 => Some(cur.varint()?),
            _ => return Err("jts: bad segment-open flag in checkpoint".into()),
        };
        let mut prev_vals = [0.0; N_SERIES];
        for v in prev_vals.iter_mut() {
            *v = get_f64_bits(&mut cur)?;
        }
        let n_buf = cur.varint()? as usize;
        if n_buf > BLOCK_SAMPLES {
            return Err("jts: implausible buffered-sample count in checkpoint".into());
        }
        let mut buf = Vec::with_capacity(n_buf);
        for _ in 0..n_buf {
            let t = get_f64_bits(&mut cur)?;
            let mut vals = [0.0; N_SERIES];
            for v in vals.iter_mut() {
                *v = get_f64_bits(&mut cur)?;
            }
            buf.push((t, vals));
        }
        let mut sampler = Sampler::new(every);
        sampler.next_t = get_f64_bits(&mut cur)?;
        sampler.last_t = get_f64_bits(&mut cur)?;
        sampler.dirty = match cur.u8()? {
            0 => false,
            1 => true,
            _ => return Err("jts: bad dirty flag in checkpoint".into()),
        };
        sampler.prev_seq = match cur.u8()? {
            0 => None,
            1 => Some(cur.varint()?),
            _ => return Err("jts: bad prev-seq flag in checkpoint".into()),
        };
        sampler.pending = match cur.u8()? {
            0 => None,
            1 => {
                let chosen = get_string(&mut cur)?;
                let predicted = get_f64_bits(&mut cur)?;
                Some((chosen, predicted))
            }
            _ => return Err("jts: bad pending flag in checkpoint".into()),
        };
        let n_labels = cur.varint()? as usize;
        if n_labels > 1 << 20 {
            return Err("jts: implausible label count in checkpoint".into());
        }
        let mut labels = Vec::with_capacity(n_labels);
        for _ in 0..n_labels {
            labels.push(get_string(&mut cur)?);
        }
        sampler.labels = labels;
        for v in sampler.vals.iter_mut() {
            *v = get_f64_bits(&mut cur)?;
        }
        if cur.remaining() != 0 {
            return Err("jts: trailing bytes in checkpoint state".into());
        }

        let mut file = std::fs::OpenOptions::new()
            .read(true)
            .write(true)
            .open(path)
            .map_err(|e| format!("jts: cannot reopen {path}: {e}"))?;
        let len = file
            .metadata()
            .map_err(|e| format!("jts: cannot stat {path}: {e}"))?
            .len();
        if len < offset {
            return Err(format!(
                "jts: {path} is shorter ({len} bytes) than its checkpointed offset {offset}"
            ));
        }
        file.set_len(offset)
            .map_err(|e| format!("jts: cannot truncate {path}: {e}"))?;
        file.seek(SeekFrom::End(0))
            .map_err(|e| format!("jts: cannot seek {path}: {e}"))?;
        Ok(TimelineSink {
            path: path.to_string(),
            out: Some(std::io::BufWriter::new(file)),
            error: None,
            offset,
            sampler,
            buf,
            prev_vals,
            cur_flushed,
            closed,
            flush_every_ns: None,
            last_flush_t: 0.0,
        })
    }
}

impl TraceSink for TimelineSink {
    fn enabled(&self) -> bool {
        true
    }

    fn record(&mut self, event: TraceEvent) {
        self.observe(&event, None);
    }

    fn record_with_ledger(&mut self, event: TraceEvent, ledger: &EnergyBreakdown) {
        self.observe(&event, Some(ledger));
    }

    fn ckpt_state(&mut self) -> Option<Vec<u8>> {
        if self.error.is_some() {
            return None;
        }
        if let Some(out) = self.out.as_mut() {
            // The checkpoint claims every byte below `offset` is in
            // the file; make that durable before the state escapes.
            if let Err(e) = out.flush().and_then(|()| out.get_ref().sync_data()) {
                self.error = Some(e);
                return None;
            }
        }
        Some(self.encode_ckpt())
    }
}

// ---------------------------------------------------------------
// Reader
// ---------------------------------------------------------------

/// One decoded segment (one run streamed through the sink).
pub struct TimelineSegment {
    /// Sample timestamps (sim-ns, non-decreasing).
    pub times: Vec<f64>,
    /// One column per series, each `times.len()` long.
    pub cols: Vec<Vec<f64>>,
    /// Sim-time of the segment's last event.
    pub end_t: f64,
    /// Footer copy of the final ledger-cumulative column values (nJ,
    /// [`Component::ALL`] order).
    pub final_ledger: [f64; 5],
    /// Footer copy of the final delta-prefix-sum column values.
    pub final_trace: [f64; 5],
}

impl TimelineSegment {
    /// `∫ rate dt` over `[0, end]` for the component's derived
    /// energy-rate series. The rate series is the difference quotient
    /// of the cumulative column, so the integral telescopes to the
    /// final cumulative sample — an exact value, not a quadrature
    /// estimate, which is what makes the conservation check bit-exact.
    pub fn rate_integral_nj(&self, component: Component) -> f64 {
        self.cols[S_CUM + component.index()]
            .last()
            .copied()
            .unwrap_or(0.0)
    }

    /// The derived energy-rate series for a component: `(t, watts)`
    /// per sample interval (nJ/ns ≡ W), anchored at `t = 0`.
    pub fn rate_series_w(&self, component: Component) -> Vec<(f64, f64)> {
        let cum = &self.cols[S_CUM + component.index()];
        let mut out = Vec::with_capacity(cum.len());
        let (mut pt, mut pv) = (0.0, 0.0);
        for (i, &v) in cum.iter().enumerate() {
            let t = self.times[i];
            let dt = t - pt;
            out.push((t, if dt > 0.0 { (v - pv) / dt } else { 0.0 }));
            (pt, pv) = (t, v);
        }
        out
    }

    /// Value of series `idx` at the last sample with `time <= t`
    /// (0.0 before the first sample — every column starts from zero
    /// state). For prefix-sum columns this is the windowed `[0, t]`
    /// aggregate.
    pub fn value_at(&self, idx: usize, t: f64) -> f64 {
        let n = self.times.partition_point(|&st| st <= t);
        if n == 0 {
            0.0
        } else {
            self.cols[idx][n - 1]
        }
    }
}

/// A fully-decoded `.jts` timeline.
pub struct Timeline {
    /// Sampling cadence (sim-ns; 0 = boundaries only).
    pub sample_every_ns: f64,
    /// Series names, column order.
    pub series: Vec<String>,
    /// Label table for label-coded series.
    pub labels: Vec<String>,
    /// Decoded segments in stream order.
    pub segments: Vec<TimelineSegment>,
}

impl Timeline {
    /// Decode a `.jts` byte stream (header, records, footer, trailer),
    /// cross-checking record structure against the footer.
    ///
    /// # Errors
    /// Corrupt or truncated input.
    pub fn read(bytes: &[u8]) -> Result<Timeline, String> {
        if !is_jts(bytes) {
            return Err("jts: missing JTS1 magic".into());
        }
        if bytes.len() < 16 {
            return Err("jts: truncated file".into());
        }
        let tail = &bytes[bytes.len() - 12..];
        if &tail[8..] != JTS_END_MAGIC {
            return Err("jts: missing JTSE trailer (torn file?)".into());
        }
        let mut off = [0u8; 8];
        off.copy_from_slice(&tail[..8]);
        let footer_offset = u64::from_le_bytes(off) as usize;
        if footer_offset + 12 > bytes.len() {
            return Err("jts: footer offset out of range".into());
        }

        // Header.
        let mut cur = Cur::new(&bytes[4..footer_offset]);
        let version = cur.varint()?;
        if version != 1 {
            return Err(format!("jts: unsupported version {version}"));
        }
        let sample_every_ns = cur.msf()?;
        let n_series = cur.varint()? as usize;
        if n_series != N_SERIES {
            return Err(format!(
                "jts: file has {n_series} series, this build expects {N_SERIES}"
            ));
        }
        let mut series = Vec::with_capacity(n_series);
        for _ in 0..n_series {
            series.push(get_string(&mut cur)?);
        }

        // Footer (label table + segment metas).
        let mut fcur = Cur::new(&bytes[footer_offset..bytes.len() - 12]);
        if fcur.u8()? != R_FOOTER {
            return Err("jts: footer offset does not point at a footer record".into());
        }
        let flen = fcur.varint()? as usize;
        if flen != fcur.remaining() {
            return Err("jts: footer length mismatch".into());
        }
        let n_labels = fcur.varint()? as usize;
        if n_labels > 1 << 20 {
            return Err("jts: implausible label count".into());
        }
        let mut labels = Vec::with_capacity(n_labels);
        for _ in 0..n_labels {
            labels.push(get_string(&mut fcur)?);
        }
        let n_segments = fcur.varint()? as usize;
        if n_segments > 1 << 20 {
            return Err("jts: implausible segment count".into());
        }
        let mut metas = Vec::with_capacity(n_segments);
        for _ in 0..n_segments {
            let samples = fcur.varint()?;
            let end_t = get_f64_bits(&mut fcur)?;
            let mut final_ledger = [0.0; COMPONENTS];
            let mut final_trace = [0.0; COMPONENTS];
            for v in final_ledger.iter_mut() {
                *v = get_f64_bits(&mut fcur)?;
            }
            for v in final_trace.iter_mut() {
                *v = get_f64_bits(&mut fcur)?;
            }
            metas.push(SegMeta {
                samples,
                end_t,
                final_ledger,
                final_trace,
            });
        }
        let declared_total = fcur.varint()?;
        if fcur.remaining() != 0 {
            return Err("jts: trailing bytes in footer".into());
        }

        // Records.
        let mut segments: Vec<TimelineSegment> = Vec::new();
        let mut prev_vals = [0.0; N_SERIES];
        while cur.remaining() > 0 {
            match cur.u8()? {
                R_SEGMENT => {
                    segments.push(TimelineSegment {
                        times: Vec::new(),
                        cols: vec![Vec::new(); N_SERIES],
                        end_t: 0.0,
                        final_ledger: [0.0; COMPONENTS],
                        final_trace: [0.0; COMPONENTS],
                    });
                    prev_vals = [0.0; N_SERIES];
                }
                R_SAMPLES => {
                    let len = cur.varint()? as usize;
                    let mut bcur = Cur::new(cur.bytes(len)?);
                    let seg = segments
                        .last_mut()
                        .ok_or("jts: sample block before any segment record")?;
                    let n = bcur.varint()? as usize;
                    if n == 0 || n > BLOCK_SAMPLES {
                        return Err(format!("jts: implausible block sample count {n}"));
                    }
                    let mut t = bcur.msf()?;
                    seg.times.push(t);
                    let mut prev_d: i64 = 0;
                    for _ in 1..n {
                        let tag = bcur.varint()?;
                        if tag & 1 == 1 {
                            let a = scaled(t)
                                .ok_or("jts: scaled timestamp delta against raw previous")?;
                            let d = prev_d + unzigzag(tag >> 1);
                            t = (a + d) as f64 / 1000.0;
                            prev_d = d;
                        } else if tag == 0 {
                            t = get_f64_bits(&mut bcur)?;
                            prev_d = 0;
                        } else {
                            return Err("jts: reserved timestamp tag".into());
                        }
                        seg.times.push(t);
                    }
                    for (s, prev) in prev_vals.iter_mut().enumerate() {
                        for _ in 0..n {
                            let v = get_val(&mut bcur, *prev)?;
                            seg.cols[s].push(v);
                            *prev = v;
                        }
                    }
                    if bcur.remaining() != 0 {
                        return Err("jts: trailing bytes in sample block".into());
                    }
                }
                other => return Err(format!("jts: unknown record tag {other}")),
            }
        }

        // Footer cross-checks.
        if segments.len() != metas.len() {
            return Err(format!(
                "jts: {} segment records but footer declares {}",
                segments.len(),
                metas.len()
            ));
        }
        let mut total = 0u64;
        for (seg, meta) in segments.iter_mut().zip(&metas) {
            if seg.times.len() as u64 != meta.samples {
                return Err(format!(
                    "jts: segment holds {} samples but footer declares {}",
                    seg.times.len(),
                    meta.samples
                ));
            }
            total += meta.samples;
            seg.end_t = meta.end_t;
            seg.final_ledger = meta.final_ledger;
            seg.final_trace = meta.final_trace;
        }
        if total != declared_total {
            return Err(format!(
                "jts: {total} decoded samples but footer declares {declared_total}"
            ));
        }
        Ok(Timeline {
            sample_every_ns,
            series,
            labels,
            segments,
        })
    }

    /// Column index of a series by name.
    pub fn series_index(&self, name: &str) -> Option<usize> {
        self.series.iter().position(|s| s == name)
    }

    /// Total sample count across segments.
    pub fn samples(&self) -> usize {
        self.segments.iter().map(|s| s.times.len()).sum()
    }

    /// Render the `jem-timeline/v1` JSON export (the document
    /// `schemas/timeline.schema.json` pins): `selected` names the
    /// column indices to export, `keep` filters samples by sim-time.
    /// Per segment the document carries parallel arrays — `times_ns`
    /// plus `values`, one inner array per selected series in `series`
    /// order — so it stays within the workspace's JSON-Schema
    /// validator subset (no name-keyed maps of varying keys).
    pub fn export_json(&self, selected: &[usize], keep: impl Fn(f64) -> bool) -> crate::Json {
        use crate::Json;
        let series: Vec<Json> = selected
            .iter()
            .map(|&idx| Json::from(self.series[idx].as_str()))
            .collect();
        let labels: Vec<Json> = self.labels.iter().map(|l| Json::from(l.as_str())).collect();
        let mut segments = Vec::with_capacity(self.segments.len());
        for seg in &self.segments {
            let rows: Vec<usize> = (0..seg.times.len())
                .filter(|&row| keep(seg.times[row]))
                .collect();
            let times: Vec<Json> = rows.iter().map(|&row| Json::from(seg.times[row])).collect();
            let values: Vec<Json> = selected
                .iter()
                .map(|&idx| {
                    Json::Arr(
                        rows.iter()
                            .map(|&row| Json::from(seg.cols[idx][row]))
                            .collect(),
                    )
                })
                .collect();
            segments.push(
                Json::object()
                    .with("end_t_ns", seg.end_t)
                    .with("times_ns", Json::Arr(times))
                    .with("values", Json::Arr(values)),
            );
        }
        Json::object()
            .with("format", "jem-timeline/v1")
            .with("sample_every_ns", self.sample_every_ns)
            .with("series", Json::Arr(series))
            .with("labels", Json::Arr(labels))
            .with("segments", Json::Arr(segments))
    }
}

// ---------------------------------------------------------------
// Follow-mode reader
// ---------------------------------------------------------------

/// One decoded live sample from a followed `.jts` file.
#[derive(Debug, Clone, PartialEq)]
pub struct JtsSample {
    /// Zero-based segment index the sample belongs to.
    pub segment: usize,
    /// Sim-time of the sample (ns).
    pub t: f64,
    /// All [`N_SERIES`] column values at the sample.
    pub vals: [f64; N_SERIES],
}

/// Tail a growing `.jts` file: decodes complete sample blocks as they
/// land, treats torn tails as [`FollowStatus::Idle`], and carries the
/// per-series delta chain across polls so the concatenation of polled
/// samples converges to exactly the [`Timeline::read`] full-file
/// decode once the writer finishes. Labels live only in the footer,
/// so [`JtsFollower::labels`] is empty until the file completes —
/// live consumers show `label#N` for label-coded series meanwhile.
pub struct JtsFollower {
    file: std::fs::File,
    file_pos: u64,
    buf: Vec<u8>,
    /// Absolute file offset of `buf[0]`.
    buf_offset: u64,
    header_done: bool,
    sample_every_ns: f64,
    series: Vec<String>,
    /// Per-segment decoded sample counts (`len()` = segments so far).
    seg_samples: Vec<u64>,
    prev_vals: [f64; N_SERIES],
    labels: Vec<String>,
    done: bool,
}

impl JtsFollower {
    /// Open `path` for tailing. The file must exist but may be empty
    /// or torn mid-record.
    ///
    /// # Errors
    /// Only filesystem errors; nothing is decoded yet.
    pub fn open(path: &str) -> Result<JtsFollower, String> {
        let file =
            std::fs::File::open(path).map_err(|e| format!("jts: cannot open {path}: {e}"))?;
        Ok(JtsFollower {
            file,
            file_pos: 0,
            buf: Vec::new(),
            buf_offset: 0,
            header_done: false,
            sample_every_ns: 0.0,
            series: Vec::new(),
            seg_samples: Vec::new(),
            prev_vals: [0.0; N_SERIES],
            labels: Vec::new(),
            done: false,
        })
    }

    /// Read newly-appended bytes and decode every complete record.
    ///
    /// # Errors
    /// Real corruption only; short data is [`FollowStatus::Idle`].
    pub fn poll(&mut self) -> Result<FollowStatus<JtsSample>, String> {
        use std::io::{Read as _, Seek, SeekFrom};
        if self.done {
            return Ok(FollowStatus::End);
        }
        self.file
            .seek(SeekFrom::Start(self.file_pos))
            .map_err(|e| format!("jts: seek failed: {e}"))?;
        let mut fresh = Vec::new();
        self.file
            .read_to_end(&mut fresh)
            .map_err(|e| format!("jts: read failed: {e}"))?;
        self.file_pos += fresh.len() as u64;
        self.buf.extend_from_slice(&fresh);

        let mut out = Vec::new();
        let mut committed = 0usize;
        loop {
            match self.parse_one(committed, &mut out) {
                Ok(Some(next)) => {
                    committed = next;
                    if self.done {
                        break;
                    }
                }
                Ok(None) => break,
                Err(e) if crate::wire::is_torn_tail(&e) => break,
                Err(e) => return Err(e),
            }
        }
        self.buf.drain(..committed);
        self.buf_offset += committed as u64;
        if !out.is_empty() {
            Ok(FollowStatus::Events(out))
        } else if self.done {
            Ok(FollowStatus::End)
        } else {
            Ok(FollowStatus::Idle)
        }
    }

    /// Parse one header/record at `from`, appending samples to `out`;
    /// `None` when the buffer is exhausted. State mutations only
    /// happen once the whole record parsed, so a torn-tail abort
    /// leaves the follower consistent.
    fn parse_one(
        &mut self,
        from: usize,
        out: &mut Vec<JtsSample>,
    ) -> Result<Option<usize>, String> {
        let data = &self.buf[from..];
        if data.is_empty() {
            return Ok(None);
        }
        let mut cur = Cur::new(data);
        if !self.header_done {
            if cur.bytes(4)? != JTS_MAGIC {
                return Err("jts: missing JTS1 magic".into());
            }
            let version = cur.varint()?;
            if version != 1 {
                return Err(format!("jts: unsupported version {version}"));
            }
            let sample_every_ns = cur.msf()?;
            let n_series = cur.varint()? as usize;
            if n_series != N_SERIES {
                return Err(format!(
                    "jts: file has {n_series} series, this build expects {N_SERIES}"
                ));
            }
            let mut series = Vec::with_capacity(n_series);
            for _ in 0..n_series {
                series.push(get_string(&mut cur)?);
            }
            self.sample_every_ns = sample_every_ns;
            self.series = series;
            self.header_done = true;
            return Ok(Some(from + cur.pos()));
        }
        let record_offset = self.buf_offset + from as u64;
        match cur.u8()? {
            R_SEGMENT => {
                self.seg_samples.push(0);
                self.prev_vals = [0.0; N_SERIES];
            }
            R_SAMPLES => {
                let len = cur.varint()? as usize;
                let mut bcur = Cur::new(cur.bytes(len)?);
                if self.seg_samples.is_empty() {
                    return Err("jts: sample block before any segment record".into());
                }
                let segment = self.seg_samples.len() - 1;
                let n = bcur.varint()? as usize;
                if n == 0 || n > BLOCK_SAMPLES {
                    return Err(format!("jts: implausible block sample count {n}"));
                }
                // Decode the whole block before touching carries, so a
                // mid-block corruption error doesn't half-commit.
                let mut times = Vec::with_capacity(n);
                let mut t = bcur.msf()?;
                times.push(t);
                let mut prev_d: i64 = 0;
                for _ in 1..n {
                    let tag = bcur.varint()?;
                    if tag & 1 == 1 {
                        let a =
                            scaled(t).ok_or("jts: scaled timestamp delta against raw previous")?;
                        let d = prev_d + unzigzag(tag >> 1);
                        t = (a + d) as f64 / 1000.0;
                        prev_d = d;
                    } else if tag == 0 {
                        t = get_f64_bits(&mut bcur)?;
                        prev_d = 0;
                    } else {
                        return Err("jts: reserved timestamp tag".into());
                    }
                    times.push(t);
                }
                let mut cols: Vec<Vec<f64>> = std::iter::repeat_with(|| Vec::with_capacity(n))
                    .take(N_SERIES)
                    .collect();
                let mut prev_vals = self.prev_vals;
                for (s, prev) in prev_vals.iter_mut().enumerate() {
                    for _ in 0..n {
                        let v = get_val(&mut bcur, *prev)?;
                        cols[s].push(v);
                        *prev = v;
                    }
                }
                if bcur.remaining() != 0 {
                    return Err("jts: trailing bytes in sample block".into());
                }
                self.prev_vals = prev_vals;
                *self.seg_samples.last_mut().expect("non-empty") += n as u64;
                for (row, &t) in times.iter().enumerate() {
                    let mut vals = [0.0; N_SERIES];
                    for (s, col) in cols.iter().enumerate() {
                        vals[s] = col[row];
                    }
                    out.push(JtsSample { segment, t, vals });
                }
            }
            R_FOOTER => {
                let flen = cur.varint()? as usize;
                let mut fcur = Cur::new(cur.bytes(flen)?);
                let n_labels = fcur.varint()? as usize;
                if n_labels > 1 << 20 {
                    return Err("jts: implausible label count".into());
                }
                let mut labels = Vec::with_capacity(n_labels);
                for _ in 0..n_labels {
                    labels.push(get_string(&mut fcur)?);
                }
                let n_segments = fcur.varint()? as usize;
                if n_segments != self.seg_samples.len() {
                    return Err(format!(
                        "jts: {} segment records but footer declares {n_segments}",
                        self.seg_samples.len()
                    ));
                }
                let mut total = 0u64;
                for &decoded in &self.seg_samples {
                    let samples = fcur.varint()?;
                    let _end_t = get_f64_bits(&mut fcur)?;
                    for _ in 0..2 * COMPONENTS {
                        get_f64_bits(&mut fcur)?;
                    }
                    if samples != decoded {
                        return Err(format!(
                            "jts: segment holds {decoded} samples but footer declares {samples}"
                        ));
                    }
                    total += samples;
                }
                let declared_total = fcur.varint()?;
                if fcur.remaining() != 0 {
                    return Err("jts: trailing bytes in footer".into());
                }
                if total != declared_total {
                    return Err(format!(
                        "jts: {total} decoded samples but footer declares {declared_total}"
                    ));
                }
                let trailer = cur.bytes(12)?;
                let mut off = [0u8; 8];
                off.copy_from_slice(&trailer[..8]);
                if u64::from_le_bytes(off) != record_offset || &trailer[8..] != JTS_END_MAGIC {
                    return Err("jts: bad trailer (truncated or corrupt file)".into());
                }
                self.labels = labels;
                self.done = true;
            }
            other => return Err(format!("jts: unknown record tag {other}")),
        }
        Ok(Some(from + cur.pos()))
    }

    /// Sampling cadence (sim-ns); 0 until the header has arrived.
    pub fn sample_every_ns(&self) -> f64 {
        self.sample_every_ns
    }

    /// Series names (empty until the header has arrived).
    pub fn series(&self) -> &[String] {
        &self.series
    }

    /// Segments seen so far.
    pub fn segments(&self) -> usize {
        self.seg_samples.len()
    }

    /// Samples decoded so far across all segments.
    pub fn samples(&self) -> u64 {
        self.seg_samples.iter().sum()
    }

    /// Label table — only populated after [`FollowStatus::End`]
    /// (labels are written with the footer).
    pub fn labels(&self) -> &[String] {
        &self.labels
    }
}

/// Reader-role alias for [`Timeline`], so follow mode reads as
/// `JtsReader::follow(path)` next to `JtbStream::follow(path)`.
pub type JtsReader = Timeline;

impl Timeline {
    /// Open `path` in follow (tail) mode.
    ///
    /// # Errors
    /// Filesystem errors opening the path.
    pub fn follow(path: &str) -> Result<JtsFollower, String> {
        JtsFollower::open(path)
    }
}

/// Validation summary for a `.jts` file (the `tracecheck` contract).
pub struct JtsSummary {
    /// Segments in the file.
    pub segments: usize,
    /// Total samples across segments.
    pub samples: usize,
    /// Series count (always [`N_SERIES`] for version 1).
    pub series: usize,
    /// Sampling cadence (sim-ns).
    pub sample_every_ns: f64,
}

/// Fully validate a `.jts` byte stream: decode everything, require
/// non-decreasing sim-time per segment, and require the rate-series
/// integral of every energy column to equal the footer finals
/// *bit-for-bit* (the integral telescopes to the last cumulative
/// sample, so any mismatch means the stream and footer disagree).
///
/// # Errors
/// Describes the first violated invariant.
pub fn validate_jts(bytes: &[u8]) -> Result<JtsSummary, String> {
    let tl = Timeline::read(bytes)?;
    for (i, seg) in tl.segments.iter().enumerate() {
        for w in seg.times.windows(2) {
            if w[1] < w[0] {
                return Err(format!(
                    "jts: segment {i} sim-time goes backwards ({} -> {})",
                    w[0], w[1]
                ));
            }
        }
        if let Some(&last_t) = seg.times.last() {
            if last_t > seg.end_t {
                return Err(format!(
                    "jts: segment {i} samples past its declared end time"
                ));
            }
        }
        for c in Component::ALL {
            let integral = seg.rate_integral_nj(c);
            let want = seg.final_ledger[c.index()];
            if integral.to_bits() != want.to_bits() {
                return Err(format!(
                    "jts: segment {i} {} rate integral {integral} != footer final {want} \
                     (bit-exact check)",
                    c.name()
                ));
            }
            let trace_last = seg.cols[S_TRACE + c.index()].last().copied().unwrap_or(0.0);
            let trace_want = seg.final_trace[c.index()];
            if trace_last.to_bits() != trace_want.to_bits() {
                return Err(format!(
                    "jts: segment {i} {} trace prefix {trace_last} != footer final {trace_want}",
                    c.name()
                ));
            }
        }
        for idx in [S_RETRIES, S_FALLBACKS, S_DEGRADED, S_INVOCATIONS] {
            let col = &seg.cols[idx];
            for w in col.windows(2) {
                if w[1] < w[0] {
                    return Err(format!(
                        "jts: segment {i} counter series '{}' decreases",
                        tl.series[idx]
                    ));
                }
            }
        }
    }
    Ok(JtsSummary {
        segments: tl.segments.len(),
        samples: tl.samples(),
        series: tl.series.len(),
        sample_every_ns: tl.sample_every_ns,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use jem_energy::{Energy, SimTime};

    fn delta(c: Component, nj: f64) -> EnergyBreakdown {
        let mut b = EnergyBreakdown::new();
        b.charge(c, Energy::from_nanojoules(nj));
        b
    }

    fn ev(seq: u64, at: f64, d: EnergyBreakdown, kind: TraceEventKind) -> TraceEvent {
        TraceEvent {
            seq,
            invocation: 1 + seq / 4,
            ordinal: seq % 4,
            at: SimTime::from_nanos(at),
            delta: d,
            kind,
        }
    }

    fn end(seq: u64, at: f64, nj: f64) -> TraceEvent {
        ev(
            seq,
            at,
            delta(Component::Core, nj),
            TraceEventKind::InvocationEnd {
                mode: "interpret".into(),
                energy: Energy::from_nanojoules(nj),
                time: SimTime::from_nanos(10.0),
                instructions: 100 * seq,
            },
        )
    }

    fn drive(sink: &mut TimelineSink, events: &[TraceEvent]) {
        let mut ledger = EnergyBreakdown::new();
        for e in events {
            ledger += e.delta;
            sink.observe(e, Some(&ledger));
        }
    }

    fn synthetic_events(n: u64) -> Vec<TraceEvent> {
        let mut out = Vec::new();
        for i in 0..n {
            let base = i * 4;
            out.push(ev(
                base,
                (base * 25) as f64,
                delta(Component::Dram, 0.125 * i as f64),
                TraceEventKind::InvocationStart {
                    strategy: "AA".into(),
                    method: "t::m".into(),
                    size: 32,
                    true_class: "C2".into(),
                    chosen_class: "C3".into(),
                },
            ));
            out.push(ev(
                base + 1,
                (base * 25 + 10) as f64,
                delta(Component::Leakage, 0.5),
                TraceEventKind::DecisionEvaluated {
                    k: i,
                    s_bar: 31.5,
                    pa_bar_w: 0.1,
                    interpret_nj: 100.0 + i as f64,
                    remote_nj: 90.0,
                    local_nj: [80.0, 70.0, 60.0 + 0.001 * i as f64],
                    chosen: "interpret".into(),
                    remote_allowed: true,
                },
            ));
            if i % 3 == 0 {
                out.push(ev(
                    base + 2,
                    (base * 25 + 20) as f64,
                    delta(Component::RadioTx, 7.25),
                    TraceEventKind::RetryAttempt {
                        attempt: 1,
                        backoff: SimTime::from_nanos(5.0),
                    },
                ));
            }
            out.push(end(base + 3, (base * 25 + 90) as f64, 105.0 + i as f64));
        }
        out
    }

    #[test]
    fn round_trip_is_bit_exact() {
        let dir = std::env::temp_dir().join("jts-roundtrip-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.jts");
        let path = path.to_str().unwrap();
        let events = synthetic_events(40);
        let mut sink = TimelineSink::create(path, 100.0).unwrap();
        drive(&mut sink, &events);
        sink.finish().unwrap();
        let bytes = std::fs::read(path).unwrap();
        assert!(is_jts(&bytes));
        let tl = Timeline::read(&bytes).unwrap();
        assert_eq!(tl.series, series_names());
        assert_eq!(tl.segments.len(), 1);
        let seg = &tl.segments[0];
        // Bit-exact reconstruction of the sampled state: replay the
        // sampler in-memory and compare every sample.
        let mut sampler = Sampler::new(100.0);
        sampler.reset();
        let mut ledger = EnergyBreakdown::new();
        let mut want: Vec<(f64, [f64; N_SERIES])> = Vec::new();
        for e in &events {
            ledger += e.delta;
            let at = e.at.nanos();
            while sampler.next_t < at {
                want.push((sampler.next_t, sampler.vals));
                sampler.next_t += 100.0;
            }
            sampler.apply(e, Some(&ledger));
            if matches!(e.kind, TraceEventKind::InvocationEnd { .. }) {
                want.push((at, sampler.vals));
                while sampler.next_t <= at {
                    sampler.next_t += 100.0;
                }
            }
        }
        assert_eq!(seg.times.len(), want.len());
        for (i, (t, vals)) in want.iter().enumerate() {
            assert_eq!(seg.times[i].to_bits(), t.to_bits(), "time {i}");
            for (s, v) in vals.iter().enumerate() {
                assert_eq!(
                    seg.cols[s][i].to_bits(),
                    v.to_bits(),
                    "sample {i} series {}",
                    tl.series[s]
                );
            }
        }
        validate_jts(&bytes).unwrap();
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn rate_integral_telescopes_to_final_ledger() {
        let dir = std::env::temp_dir().join("jts-integral-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.jts");
        let path = path.to_str().unwrap();
        let events = synthetic_events(25);
        let mut ledger = EnergyBreakdown::new();
        let mut sink = TimelineSink::create(path, 1000.0).unwrap();
        for e in &events {
            ledger += e.delta;
            sink.observe(e, Some(&ledger));
        }
        sink.finish().unwrap();
        let tl = Timeline::read(&std::fs::read(path).unwrap()).unwrap();
        let seg = &tl.segments[0];
        for c in Component::ALL {
            assert_eq!(
                seg.rate_integral_nj(c).to_bits(),
                ledger[c].nanojoules().to_bits(),
                "{} integral vs ledger",
                c.name()
            );
        }
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn seq_restart_opens_new_segment() {
        let dir = std::env::temp_dir().join("jts-segment-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.jts");
        let path = path.to_str().unwrap();
        let events = synthetic_events(6);
        let mut sink = TimelineSink::create(path, 0.0).unwrap();
        drive(&mut sink, &events);
        drive(&mut sink, &events); // seq restarts at 0
        sink.finish().unwrap();
        let bytes = std::fs::read(path).unwrap();
        let tl = Timeline::read(&bytes).unwrap();
        assert_eq!(tl.segments.len(), 2);
        assert_eq!(tl.segments[0].times.len(), tl.segments[1].times.len());
        for c in Component::ALL {
            assert_eq!(
                tl.segments[0].final_ledger[c.index()].to_bits(),
                tl.segments[1].final_ledger[c.index()].to_bits(),
            );
        }
        validate_jts(&bytes).unwrap();
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn ckpt_resume_is_byte_identical() {
        let dir = std::env::temp_dir().join("jts-ckpt-test");
        std::fs::create_dir_all(&dir).unwrap();
        let golden_path = dir.join("golden.jts");
        let golden_path = golden_path.to_str().unwrap();
        let resumed_path = dir.join("resumed.jts");
        let resumed_path = resumed_path.to_str().unwrap();
        let events = synthetic_events(300); // crosses a block boundary
        let mut ledgers = Vec::new();
        let mut ledger = EnergyBreakdown::new();
        for e in &events {
            ledger += e.delta;
            ledgers.push(ledger);
        }

        let mut golden = TimelineSink::create(golden_path, 50.0).unwrap();
        for (e, l) in events.iter().zip(&ledgers) {
            golden.observe(e, Some(l));
        }
        golden.finish().unwrap();

        for cut in [1, events.len() / 3, events.len() / 2, events.len() - 1] {
            let mut sink = TimelineSink::create(resumed_path, 50.0).unwrap();
            for (e, l) in events[..cut].iter().zip(&ledgers) {
                sink.observe(e, Some(l));
            }
            let state = TraceSink::ckpt_state(&mut sink).unwrap();
            // Simulate a crash: garbage lands after the checkpoint.
            drop(sink);
            {
                use std::io::Write as _;
                let mut f = std::fs::OpenOptions::new()
                    .append(true)
                    .open(resumed_path)
                    .unwrap();
                f.write_all(b"torn garbage from the crashed run").unwrap();
            }
            let mut resumed = TimelineSink::resume(resumed_path, &state).unwrap();
            for (e, l) in events[cut..].iter().zip(&ledgers[cut..]) {
                resumed.observe(e, Some(l));
            }
            resumed.finish().unwrap();
            assert_eq!(
                std::fs::read(golden_path).unwrap(),
                std::fs::read(resumed_path).unwrap(),
                "resume at event {cut} diverged"
            );
        }
        std::fs::remove_file(golden_path).ok();
        std::fs::remove_file(resumed_path).ok();
    }

    #[test]
    fn windowed_prefix_matches_sequential_trace_sum() {
        let dir = std::env::temp_dir().join("jts-window-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.jts");
        let path = path.to_str().unwrap();
        let events = synthetic_events(30);
        let mut sink = TimelineSink::create(path, 100.0).unwrap();
        drive(&mut sink, &events);
        sink.finish().unwrap();
        let tl = Timeline::read(&std::fs::read(path).unwrap()).unwrap();
        let seg = &tl.segments[0];
        let idx = tl.series_index("energy.core.trace_nj").unwrap();
        // Scheduled-sample boundaries: [0, T] prefix equals the
        // sequential delta sum over events with at <= T.
        for &t in seg.times.iter().step_by(7) {
            let mut sum = 0.0;
            for e in &events {
                if e.at.nanos() <= t {
                    sum += e.delta[Component::Core].nanojoules();
                }
            }
            assert_eq!(
                seg.value_at(idx, t).to_bits(),
                sum.to_bits(),
                "window [0, {t}]"
            );
        }
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn validation_rejects_corruption() {
        let dir = std::env::temp_dir().join("jts-corrupt-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.jts");
        let path = path.to_str().unwrap();
        let events = synthetic_events(10);
        let mut sink = TimelineSink::create(path, 100.0).unwrap();
        drive(&mut sink, &events);
        sink.finish().unwrap();
        let bytes = std::fs::read(path).unwrap();
        assert!(validate_jts(&bytes).is_ok());
        // Torn tail.
        assert!(Timeline::read(&bytes[..bytes.len() - 6]).is_err());
        // Wrong magic.
        let mut bad = bytes.clone();
        bad[0] = b'X';
        assert!(Timeline::read(&bad).is_err());
        // Flip a byte in the middle of the stream: either decoding
        // fails structurally or the bit-exact footer check trips.
        let mut bad = bytes.clone();
        let mid = bad.len() / 2;
        bad[mid] ^= 0x40;
        assert!(validate_jts(&bad).is_err(), "corruption at byte {mid}");
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn label_series_round_trip() {
        let dir = std::env::temp_dir().join("jts-label-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.jts");
        let path = path.to_str().unwrap();
        let events = synthetic_events(5);
        let mut sink = TimelineSink::create(path, 0.0).unwrap();
        drive(&mut sink, &events);
        sink.finish().unwrap();
        let tl = Timeline::read(&std::fs::read(path).unwrap()).unwrap();
        assert_eq!(tl.labels[0], "");
        let seg = &tl.segments[0];
        let idx = tl.series_index("channel.true_class").unwrap();
        let id = seg.cols[idx].last().copied().unwrap() as usize;
        assert_eq!(tl.labels[id], "C2");
        let idx = tl.series_index("breaker.state").unwrap();
        let id = seg.cols[idx].last().copied().unwrap() as usize;
        assert_eq!(tl.labels[id], "closed");
        std::fs::remove_file(path).ok();
    }
}

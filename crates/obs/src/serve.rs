//! Live run exposition: a dependency-free HTTP server over a
//! published snapshot of the running simulation.
//!
//! The design splits run state in two (the ROADMAP item-4 refactor):
//! the simulation keeps its private mutable state, and *publishes*
//! copies of derived observability state into a shared [`LiveState`].
//! Data flows strictly sim → server; nothing the server does (or any
//! client connected to it) can reach back into the simulation, which
//! is why a run with `--serve` stays bit-identical to one without —
//! the same invariant the tracing/monitoring/timeline layers already
//! hold, and it is test- and CI-enforced the same way.
//!
//! Endpoints (plain HTTP/1.1, one thread per connection, `GET` only):
//!
//! * `/metrics` — the last published Prometheus registry rendering,
//!   plus `jem_live_*` families derived from the event stream
//!   (decision mix, retries, breaker state, predictor error),
//! * `/health` — the live `jem-health/v1` document from an embedded
//!   [`Monitor`] fed with every published event,
//! * `/series?name=..[&window=a:b]` — windowed samples of one
//!   timeline series (same catalogue as `.jts` files; `a:b` in
//!   sim-ms), sampled by an embedded timeline [`Sampler`],
//! * `/events` — a Server-Sent-Events tail of the trace event ring
//!   (`id:` is the publish ordinal, `data:` the event JSON).
//!
//! Memory is bounded: the event ring and per-segment sample buffers
//! cap out and drop the oldest entries (`/series` reports
//! `truncated` when that happened). The server threads are detached;
//! they die with the process.

use crate::json::Json;
use crate::metrics::MetricsRegistry;
use crate::monitor::{Monitor, MonitorConfig};
use crate::timeline::{
    series_is_label, series_names, Sampler, N_SERIES, S_BREAKER, S_ERR, S_RETRIES,
};
use crate::trace::{TraceEvent, TraceEventKind};
use jem_energy::EnergyBreakdown;
use std::collections::{BTreeMap, VecDeque};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

/// Trace events kept for `/events` late joiners.
const EVENT_RING: usize = 1024;
/// Samples kept per segment for `/series` windows.
const SERIES_RING: usize = 8192;
/// Default live sampling cadence when the run has no `--timeline`
/// cadence to inherit: 10 sim-ms.
pub const DEFAULT_LIVE_CADENCE_NS: f64 = 10.0e6;

/// One sampled segment held for `/series` (a bounded mirror of what a
/// `.jts` segment would contain).
struct LiveSegment {
    samples: VecDeque<(f64, [f64; N_SERIES])>,
    truncated: bool,
}

struct LiveInner {
    sampler: Sampler,
    segment_open: bool,
    segments: Vec<LiveSegment>,
    monitor: Monitor,
    decisions: BTreeMap<String, u64>,
    events_seen: u64,
    ring: VecDeque<(u64, String)>,
    next_id: u64,
    metrics_text: Option<String>,
    closed: bool,
}

/// The published snapshot the sim thread writes into and server
/// threads read from. All publish methods take `&self` (internally
/// locked) and copy data in; they never hand references back out.
pub struct LiveState {
    inner: Mutex<LiveInner>,
    cv: Condvar,
}

impl std::fmt::Debug for LiveState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LiveState").finish_non_exhaustive()
    }
}

impl LiveState {
    /// A fresh snapshot store sampling `/series` at `sample_every_ns`
    /// sim-ns (use the run's `--sample-every-ms` cadence when a
    /// timeline is enabled, [`DEFAULT_LIVE_CADENCE_NS`] otherwise).
    pub fn new(sample_every_ns: f64) -> LiveState {
        LiveState {
            inner: Mutex::new(LiveInner {
                sampler: Sampler::new(sample_every_ns),
                segment_open: false,
                segments: Vec::new(),
                monitor: Monitor::new(MonitorConfig::default()),
                decisions: BTreeMap::new(),
                events_seen: 0,
                ring: VecDeque::new(),
                next_id: 0,
                metrics_text: None,
                closed: false,
            }),
            cv: Condvar::new(),
        }
    }

    /// Publish one trace event (with the tracer's cumulative ledger
    /// when available). Updates the embedded sampler, monitor,
    /// decision counters, and the SSE ring. Pure observer: takes the
    /// event by reference and copies what it keeps.
    pub fn publish_event(&self, ev: &TraceEvent, ledger: Option<&EnergyBreakdown>) {
        let mut g = self.inner.lock().unwrap_or_else(|p| p.into_inner());
        let inner = &mut *g;
        if inner.sampler.prev_seq.is_some_and(|prev| ev.seq <= prev) {
            inner.segment_open = false;
        }
        if !inner.segment_open {
            inner.sampler.reset();
            inner.segments.push(LiveSegment {
                samples: VecDeque::new(),
                truncated: false,
            });
            inner.segment_open = true;
        }
        inner.sampler.prev_seq = Some(ev.seq);
        let at = ev.at.nanos();
        if inner.sampler.every > 0.0 {
            while inner.sampler.next_t < at {
                let t = inner.sampler.next_t;
                push_sample(inner, t);
                inner.sampler.next_t += inner.sampler.every;
            }
        }
        inner.sampler.apply(ev, ledger);
        if let TraceEventKind::InvocationEnd { mode, .. } = &ev.kind {
            push_sample(inner, at);
            if inner.sampler.every > 0.0 {
                while inner.sampler.next_t <= at {
                    inner.sampler.next_t += inner.sampler.every;
                }
            }
            *inner.decisions.entry(mode.clone()).or_default() += 1;
        }
        inner.events_seen += 1;
        let alerts = inner.monitor.observe(ev);
        push_ring(inner, ev.to_json().render());
        for (i, alert) in alerts.iter().enumerate() {
            // Synthesize the same alert event a MonitorTee would
            // inject, so SSE consumers see alerts inline even when
            // `--monitor` is off.
            let alert_ev = TraceEvent {
                seq: ev.seq + 1 + i as u64,
                invocation: ev.invocation,
                ordinal: ev.ordinal.saturating_add(1),
                at: ev.at,
                delta: EnergyBreakdown::new(),
                kind: TraceEventKind::Alert {
                    monitor: alert.monitor.clone(),
                    severity: alert.severity.clone(),
                    message: alert.message.clone(),
                },
            };
            push_ring(inner, alert_ev.to_json().render());
        }
        drop(g);
        self.cv.notify_all();
    }

    /// Publish the current Prometheus registry rendering (bench bins
    /// call this after filling per-point metrics).
    pub fn publish_metrics(&self, registry: &MetricsRegistry) {
        let mut g = self.inner.lock().unwrap_or_else(|p| p.into_inner());
        g.metrics_text = Some(registry.render_prometheus());
        drop(g);
        self.cv.notify_all();
    }

    /// Mark the run complete: `/events` streams terminate after
    /// draining and `/health` is final.
    pub fn publish_done(&self) {
        let mut g = self.inner.lock().unwrap_or_else(|p| p.into_inner());
        g.closed = true;
        drop(g);
        self.cv.notify_all();
    }

    /// The live `jem-health/v1` document.
    pub fn health_json(&self) -> String {
        let g = self.inner.lock().unwrap_or_else(|p| p.into_inner());
        format!("{}\n", g.monitor.report().to_json().render_pretty())
    }

    /// The `/metrics` exposition: last published registry text plus
    /// the event-derived `jem_live_*` families.
    pub fn metrics_text(&self) -> String {
        let g = self.inner.lock().unwrap_or_else(|p| p.into_inner());
        let mut out = g.metrics_text.clone().unwrap_or_default();
        if !out.is_empty() && !out.ends_with('\n') {
            out.push('\n');
        }
        out.push_str("# TYPE jem_live_events_total counter\n");
        out.push_str(&format!("jem_live_events_total {}\n", g.events_seen));
        let report = g.monitor.report();
        out.push_str("# TYPE jem_live_invocations_total counter\n");
        out.push_str(&format!(
            "jem_live_invocations_total {}\n",
            report.invocations
        ));
        out.push_str("# TYPE jem_live_alerts_total counter\n");
        out.push_str(&format!("jem_live_alerts_total {}\n", report.total_alerts));
        out.push_str("# TYPE jem_live_decisions_total counter\n");
        for (mode, n) in &g.decisions {
            out.push_str(&format!(
                "jem_live_decisions_total{{mode=\"{mode}\"}} {n}\n"
            ));
        }
        out.push_str("# TYPE jem_live_err_rel gauge\n");
        out.push_str(&format!("jem_live_err_rel {}\n", g.sampler.vals[S_ERR]));
        out.push_str("# TYPE jem_live_retries_total counter\n");
        out.push_str(&format!(
            "jem_live_retries_total {}\n",
            g.sampler.vals[S_RETRIES]
        ));
        let breaker = g
            .sampler
            .labels
            .get(g.sampler.vals[S_BREAKER] as usize)
            .cloned()
            .unwrap_or_default();
        out.push_str("# TYPE jem_live_breaker_state gauge\n");
        out.push_str(&format!(
            "jem_live_breaker_state{{state=\"{breaker}\"}} 1\n"
        ));
        out.push_str("# TYPE jem_live_run_complete gauge\n");
        out.push_str(&format!("jem_live_run_complete {}\n", g.closed as u64));
        out
    }

    /// The `/series` document for `name`, optionally windowed to
    /// `[a, b]` sim-ns.
    ///
    /// # Errors
    /// Unknown series name (the message lists the catalogue).
    pub fn series_json(&self, name: &str, window_ns: Option<(f64, f64)>) -> Result<String, String> {
        let names = series_names();
        let Some(idx) = names.iter().position(|n| n == name) else {
            return Err(format!(
                "unknown series '{name}'; available: {}",
                names.join(", ")
            ));
        };
        let g = self.inner.lock().unwrap_or_else(|p| p.into_inner());
        let keep = |t: f64| window_ns.is_none_or(|(a, b)| t >= a && t <= b);
        let mut segments = Vec::with_capacity(g.segments.len());
        let mut end_value = 0.0f64;
        for (si, seg) in g.segments.iter().enumerate() {
            let mut times = Vec::new();
            let mut values = Vec::new();
            for &(t, vals) in &seg.samples {
                if !keep(t) {
                    continue;
                }
                times.push(Json::from(t));
                values.push(Json::from(vals[idx]));
                end_value = vals[idx];
            }
            segments.push(
                Json::object()
                    .with("segment", si as u64)
                    .with("truncated", seg.truncated)
                    .with("times_ns", Json::Arr(times))
                    .with("values", Json::Arr(values)),
            );
        }
        let mut doc = Json::object()
            .with("format", "jem-series/v1")
            .with("name", name)
            .with("sample_every_ns", g.sampler.every)
            .with("complete", g.closed)
            .with("segments", Json::Arr(segments))
            .with("end_value", end_value);
        if series_is_label(idx) {
            let labels: Vec<Json> = g
                .sampler
                .labels
                .iter()
                .map(|l| Json::from(l.as_str()))
                .collect();
            doc = doc.with("labels", Json::Arr(labels)).with(
                "end_label",
                g.sampler
                    .labels
                    .get(end_value as usize)
                    .cloned()
                    .unwrap_or_default(),
            );
        }
        if let Some((a, b)) = window_ns {
            doc = doc.with("window_ns", Json::Arr(vec![Json::from(a), Json::from(b)]));
        }
        Ok(format!("{}\n", doc.render_pretty()))
    }

    /// Events in the ring with id ≥ `from`, plus whether the run is
    /// closed (used by the SSE pump).
    fn events_since(&self, from: u64) -> (Vec<(u64, String)>, bool) {
        let g = self.inner.lock().unwrap_or_else(|p| p.into_inner());
        let out = g
            .ring
            .iter()
            .filter(|(id, _)| *id >= from)
            .cloned()
            .collect();
        (out, g.closed)
    }

    /// Block until the ring advances past `seen` or the run closes,
    /// with a timeout so disconnected clients get noticed.
    fn wait_for_events(&self, seen: u64, timeout: Duration) {
        let g = self.inner.lock().unwrap_or_else(|p| p.into_inner());
        if g.next_id > seen || g.closed {
            return;
        }
        let _ = self
            .cv
            .wait_timeout(g, timeout)
            .map(|(g, _)| drop(g))
            .map_err(|p| drop(p.into_inner()));
    }
}

fn push_sample(inner: &mut LiveInner, t: f64) {
    let seg = inner.segments.last_mut().expect("segment opened above");
    seg.samples.push_back((t, inner.sampler.vals));
    if seg.samples.len() > SERIES_RING {
        seg.samples.pop_front();
        seg.truncated = true;
    }
    inner.sampler.dirty = false;
}

fn push_ring(inner: &mut LiveInner, json: String) {
    let id = inner.next_id;
    inner.next_id += 1;
    inner.ring.push_back((id, json));
    if inner.ring.len() > EVENT_RING {
        inner.ring.pop_front();
    }
}

// ---------------------------------------------------------------
// HTTP server
// ---------------------------------------------------------------

/// The embedded HTTP server: an accept loop on a background thread,
/// one detached handler thread per connection.
pub struct LiveServer {
    state: Arc<LiveState>,
    addr: SocketAddr,
}

impl LiveServer {
    /// Bind `addr` (e.g. `127.0.0.1:9900`; port 0 picks a free port)
    /// and start serving `state`.
    ///
    /// # Errors
    /// Bind failures.
    pub fn start(addr: &str, state: Arc<LiveState>) -> Result<LiveServer, String> {
        let listener =
            TcpListener::bind(addr).map_err(|e| format!("serve: cannot bind {addr}: {e}"))?;
        let local = listener
            .local_addr()
            .map_err(|e| format!("serve: no local addr: {e}"))?;
        let accept_state = Arc::clone(&state);
        std::thread::Builder::new()
            .name("jem-serve-accept".into())
            .spawn(move || {
                for conn in listener.incoming() {
                    let Ok(stream) = conn else { continue };
                    let state = Arc::clone(&accept_state);
                    let _ = std::thread::Builder::new()
                        .name("jem-serve-conn".into())
                        .spawn(move || handle_connection(stream, &state));
                }
            })
            .map_err(|e| format!("serve: cannot spawn accept thread: {e}"))?;
        Ok(LiveServer { state, addr: local })
    }

    /// The bound address (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The state this server exposes.
    pub fn state(&self) -> &Arc<LiveState> {
        &self.state
    }
}

/// Read the request head (we only care about the request line) and
/// dispatch. Everything is `Connection: close`.
fn handle_connection(mut stream: TcpStream, state: &LiveState) {
    let _ = stream.set_read_timeout(Some(Duration::from_secs(5)));
    let mut head = Vec::new();
    let mut chunk = [0u8; 1024];
    while !head.windows(4).any(|w| w == b"\r\n\r\n") {
        match stream.read(&mut chunk) {
            Ok(0) => break,
            Ok(n) => head.extend_from_slice(&chunk[..n]),
            Err(_) => return,
        }
        if head.len() > 16 * 1024 {
            return;
        }
    }
    let line = match std::str::from_utf8(&head) {
        Ok(t) => t.lines().next().unwrap_or("").to_string(),
        Err(_) => return,
    };
    let mut parts = line.split_whitespace();
    let method = parts.next().unwrap_or("");
    let target = parts.next().unwrap_or("/");
    if method != "GET" {
        respond(
            &mut stream,
            405,
            "Method Not Allowed",
            "text/plain",
            "only GET is supported\n",
        );
        return;
    }
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p, q),
        None => (target, ""),
    };
    match path {
        "/" => respond(
            &mut stream,
            200,
            "OK",
            "text/plain; charset=utf-8",
            "jem live observability\n\n\
             /metrics                    Prometheus exposition\n\
             /health                     jem-health/v1 JSON\n\
             /series?name=..&window=a:b  one timeline series (window in sim-ms)\n\
             /events                     SSE tail of trace events\n",
        ),
        "/metrics" => {
            let body = state.metrics_text();
            respond(
                &mut stream,
                200,
                "OK",
                "text/plain; version=0.0.4; charset=utf-8",
                &body,
            );
        }
        "/health" => {
            let body = state.health_json();
            respond(&mut stream, 200, "OK", "application/json", &body);
        }
        "/series" => {
            let mut name = None;
            let mut window = None;
            let mut bad = None;
            for pair in query.split('&').filter(|p| !p.is_empty()) {
                let (k, v) = pair.split_once('=').unwrap_or((pair, ""));
                match k {
                    "name" => name = Some(v.to_string()),
                    "window" => match parse_window_ms(v) {
                        Some(w) => window = Some(w),
                        None => bad = Some("window must be a:b in sim-ms with a <= b"),
                    },
                    _ => bad = Some("unknown query parameter"),
                }
            }
            if let Some(msg) = bad {
                respond(
                    &mut stream,
                    400,
                    "Bad Request",
                    "text/plain",
                    &format!("{msg}\n"),
                );
                return;
            }
            let Some(name) = name else {
                respond(
                    &mut stream,
                    400,
                    "Bad Request",
                    "text/plain",
                    "missing ?name=<series>\n",
                );
                return;
            };
            match state.series_json(&name, window) {
                Ok(body) => respond(&mut stream, 200, "OK", "application/json", &body),
                Err(e) => respond(
                    &mut stream,
                    400,
                    "Bad Request",
                    "text/plain",
                    &format!("{e}\n"),
                ),
            }
        }
        "/events" => serve_events(&mut stream, state),
        _ => respond(&mut stream, 404, "Not Found", "text/plain", "not found\n"),
    }
}

/// `a:b` in sim-ms → `(a, b)` in sim-ns.
fn parse_window_ms(v: &str) -> Option<(f64, f64)> {
    let (a, b) = v.split_once(':')?;
    let a: f64 = a.parse().ok()?;
    let b: f64 = b.parse().ok()?;
    (a.is_finite() && b.is_finite() && a <= b).then_some((a * 1e6, b * 1e6))
}

fn respond(stream: &mut TcpStream, code: u16, reason: &str, content_type: &str, body: &str) {
    let head = format!(
        "HTTP/1.1 {code} {reason}\r\nContent-Type: {content_type}\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    let _ = stream
        .write_all(head.as_bytes())
        .and_then(|()| stream.write_all(body.as_bytes()));
}

/// SSE pump: replay the ring, then stream new events until the run
/// closes or the client disconnects.
fn serve_events(stream: &mut TcpStream, state: &LiveState) {
    let head = "HTTP/1.1 200 OK\r\nContent-Type: text/event-stream\r\n\
                Cache-Control: no-cache\r\nConnection: close\r\n\r\n";
    if stream.write_all(head.as_bytes()).is_err() {
        return;
    }
    let mut next = 0u64;
    loop {
        let (events, closed) = state.events_since(next);
        for (id, json) in &events {
            let frame = format!("id: {id}\ndata: {json}\n\n");
            if stream.write_all(frame.as_bytes()).is_err() {
                return;
            }
            next = id + 1;
        }
        if stream.flush().is_err() {
            return;
        }
        if closed && events.is_empty() {
            let _ = stream.write_all(b"event: end\ndata: {}\n\n");
            return;
        }
        if events.is_empty() {
            state.wait_for_events(next, Duration::from_millis(250));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jem_energy::{Component, Energy, SimTime};
    use std::io::BufRead;

    fn ev(seq: u64, invocation: u64, ordinal: u64, at: f64, kind: TraceEventKind) -> TraceEvent {
        let mut delta = EnergyBreakdown::new();
        delta.charge(Component::Core, Energy::from_nanojoules(5.0));
        TraceEvent {
            seq,
            invocation,
            ordinal,
            at: SimTime::from_nanos(at),
            delta,
            kind,
        }
    }

    fn feed(state: &LiveState) {
        let mut ledger = EnergyBreakdown::new();
        for i in 0..4u64 {
            let t0 = 1.0e6 * i as f64;
            ledger.charge(Component::Core, Energy::from_nanojoules(5.0));
            state.publish_event(
                &ev(
                    3 * i,
                    i + 1,
                    0,
                    t0,
                    TraceEventKind::InvocationStart {
                        strategy: "ics".into(),
                        method: "m".into(),
                        size: 100,
                        true_class: "good".into(),
                        chosen_class: "good".into(),
                    },
                ),
                Some(&ledger),
            );
            ledger.charge(Component::Core, Energy::from_nanojoules(5.0));
            state.publish_event(
                &ev(
                    3 * i + 1,
                    i + 1,
                    1,
                    t0 + 0.4e6,
                    TraceEventKind::InvocationEnd {
                        mode: "interpret".into(),
                        // Conservation: deltas after InvocationStart
                        // (just this event's 5 nJ) must sum to this.
                        energy: Energy::from_nanojoules(5.0),
                        time: SimTime::from_nanos(0.4e6),
                        instructions: 1000,
                    },
                ),
                Some(&ledger),
            );
        }
    }

    #[test]
    fn metrics_text_carries_live_families() {
        let state = LiveState::new(DEFAULT_LIVE_CADENCE_NS);
        feed(&state);
        let text = state.metrics_text();
        assert!(text.contains("jem_live_events_total 8"));
        assert!(text.contains("jem_live_decisions_total{mode=\"interpret\"} 4"));
        assert!(text.contains("jem_live_breaker_state{state=\"closed\"} 1"));
        let mut reg = MetricsRegistry::new();
        reg.inc("jem_points_total");
        state.publish_metrics(&reg);
        assert!(state.metrics_text().contains("jem_points_total"));
    }

    #[test]
    fn health_json_is_live_and_alert_free_on_clean_stream() {
        let state = LiveState::new(DEFAULT_LIVE_CADENCE_NS);
        feed(&state);
        let doc = Json::parse(&state.health_json()).expect("valid json");
        assert_eq!(
            doc.get("schema").and_then(Json::as_str),
            Some("jem-health/v1")
        );
        assert_eq!(doc.get("total_alerts").and_then(Json::as_f64), Some(0.0));
        assert_eq!(doc.get("invocations").and_then(Json::as_f64), Some(4.0));
    }

    #[test]
    fn series_json_windows_and_rejects_unknown() {
        let state = LiveState::new(DEFAULT_LIVE_CADENCE_NS);
        feed(&state);
        assert!(state.series_json("nope", None).is_err());
        let doc =
            Json::parse(&state.series_json("energy.core.cum_nj", None).unwrap()).expect("json");
        assert_eq!(
            doc.get("format").and_then(Json::as_str),
            Some("jem-series/v1")
        );
        let end = doc.get("end_value").and_then(Json::as_f64).unwrap();
        assert_eq!(end, 40.0);
        // Window [0, 1] sim-ms keeps only the first invocation's
        // boundary sample.
        let windowed = state
            .series_json("energy.core.cum_nj", Some((0.0, 1.0e6)))
            .unwrap();
        let doc = Json::parse(&windowed).expect("json");
        assert_eq!(doc.get("end_value").and_then(Json::as_f64), Some(10.0));
    }

    #[test]
    fn http_endpoints_round_trip_over_tcp() {
        let state = Arc::new(LiveState::new(DEFAULT_LIVE_CADENCE_NS));
        feed(&state);
        let server = LiveServer::start("127.0.0.1:0", Arc::clone(&state)).expect("bind");
        let get = |path: &str| -> String {
            let mut s = TcpStream::connect(server.addr()).expect("connect");
            write!(s, "GET {path} HTTP/1.1\r\nHost: x\r\n\r\n").expect("write");
            let mut out = String::new();
            s.read_to_string(&mut out).expect("read");
            out
        };
        let metrics = get("/metrics");
        assert!(metrics.starts_with("HTTP/1.1 200 OK"));
        assert!(metrics.contains("jem_live_events_total"));
        let health = get("/health");
        assert!(health.contains("jem-health/v1"));
        let series = get("/series?name=energy.core.cum_nj&window=0:10");
        assert!(series.contains("jem-series/v1"));
        assert!(get("/series?name=bogus").starts_with("HTTP/1.1 400"));
        assert!(get("/nope").starts_with("HTTP/1.1 404"));
    }

    #[test]
    fn sse_streams_ring_then_end_marker() {
        let state = Arc::new(LiveState::new(DEFAULT_LIVE_CADENCE_NS));
        feed(&state);
        state.publish_done();
        let server = LiveServer::start("127.0.0.1:0", Arc::clone(&state)).expect("bind");
        let mut s = TcpStream::connect(server.addr()).expect("connect");
        write!(s, "GET /events HTTP/1.1\r\nHost: x\r\n\r\n").expect("write");
        let mut reader = std::io::BufReader::new(s);
        let mut data_lines = 0;
        let mut saw_end = false;
        let mut line = String::new();
        while reader.read_line(&mut line).unwrap_or(0) > 0 {
            if line.starts_with("data: {\"seq\"") {
                data_lines += 1;
            }
            if line.starts_with("event: end") {
                saw_end = true;
            }
            line.clear();
        }
        assert_eq!(data_lines, 8);
        assert!(saw_end);
    }
}

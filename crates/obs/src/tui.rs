//! Minimal plain-ANSI terminal rendering helpers shared by the
//! `jem-top` live dashboard and `jem-timeline --sparkline` (including
//! its `--live` refresh mode).
//!
//! Everything here is pure string formatting: no terminal probing, no
//! raw mode, no external crates. Callers print the returned strings
//! and, for refresh-loop UIs, prefix each frame with [`CLEAR_HOME`].

/// The 8-step unicode block ramp used for sparklines.
pub const SPARK: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];

/// Sparklines are resampled down to at most this many cells.
pub const SPARK_WIDTH: usize = 64;

/// ANSI: move the cursor home and clear to end of screen. Clearing
/// forward (rather than `2J`) repaints in place without flicker.
pub const CLEAR_HOME: &str = "\x1b[H\x1b[J";

/// ANSI bold on/off wrappers for headings.
pub const BOLD: &str = "\x1b[1m";
/// Reset all ANSI attributes.
pub const RESET: &str = "\x1b[0m";

/// Resample `vals` down to at most `cells` values by keeping the last
/// sample of each equal-count chunk, so the final cell is always the
/// final sample. This is the shared series-rendering core behind the
/// unicode sparklines here and the SVG sparklines in the `jem-lab`
/// HTML report ([`svg_sparkline`]).
pub fn resample(vals: &[f64], cells: usize) -> Vec<f64> {
    if vals.is_empty() || cells == 0 {
        return Vec::new();
    }
    let cells = vals.len().min(cells);
    let mut picked = Vec::with_capacity(cells);
    for c in 0..cells {
        let end = ((c + 1) * vals.len()).div_ceil(cells);
        picked.push(vals[end - 1]);
    }
    picked
}

/// Resample to at most [`SPARK_WIDTH`] cells (last sample per cell)
/// and map each value onto the 8-step block ramp.
pub fn sparkline(vals: &[f64]) -> String {
    sparkline_width(vals, SPARK_WIDTH)
}

/// [`sparkline`] with an explicit cell budget.
pub fn sparkline_width(vals: &[f64], width: usize) -> String {
    let picked = resample(vals, width);
    if picked.is_empty() {
        return "(no samples)".to_string();
    }
    let lo = picked.iter().cloned().fold(f64::INFINITY, f64::min);
    let hi = picked.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let span = hi - lo;
    picked
        .iter()
        .map(|v| {
            let step = if span > 0.0 {
                (((v - lo) / span) * 7.0).round() as usize
            } else {
                0
            };
            SPARK[step.min(7)]
        })
        .collect()
}

/// The same series rendering as [`sparkline`], generalized to an
/// inline SVG `<polyline>` for the self-contained `jem-lab` HTML
/// report: resample to at most `cells`, normalize into a `w`×`h`
/// viewBox (y inverted so larger values plot higher), stroke with
/// `stroke`. Flat or single-sample series draw a midline. The output
/// is deterministic (fixed two-decimal coordinates) and references
/// nothing external.
pub fn svg_sparkline(vals: &[f64], w: u32, h: u32, cells: usize, stroke: &str) -> String {
    let picked = resample(vals, cells);
    if picked.is_empty() {
        return format!(
            "<svg viewBox=\"0 0 {w} {h}\" width=\"{w}\" height=\"{h}\" \
             xmlns=\"http://www.w3.org/2000/svg\"></svg>"
        );
    }
    let lo = picked.iter().cloned().fold(f64::INFINITY, f64::min);
    let hi = picked.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let span = hi - lo;
    let n = picked.len();
    let mut points = String::new();
    for (i, v) in picked.iter().enumerate() {
        let x = if n == 1 {
            f64::from(w) / 2.0
        } else {
            f64::from(w) * i as f64 / (n - 1) as f64
        };
        // 1px padding keeps extreme samples from clipping at the edge.
        let y = if span > 0.0 {
            1.0 + (f64::from(h) - 2.0) * (1.0 - (v - lo) / span)
        } else {
            f64::from(h) / 2.0
        };
        if i > 0 {
            points.push(' ');
        }
        points.push_str(&format!("{x:.2},{y:.2}"));
    }
    format!(
        "<svg viewBox=\"0 0 {w} {h}\" width=\"{w}\" height=\"{h}\" \
         xmlns=\"http://www.w3.org/2000/svg\" role=\"img\">\
         <polyline fill=\"none\" stroke=\"{stroke}\" stroke-width=\"1.5\" \
         points=\"{points}\"/></svg>"
    )
}

/// One aligned dashboard row: `name  ▁▂▃…  [lo .. hi]`, with the name
/// padded to `name_width`. The shared row format for per-series
/// sparkline panels.
pub fn spark_row(name: &str, name_width: usize, vals: &[f64]) -> String {
    let line = sparkline(vals);
    let (lo, hi) = match (
        vals.iter().cloned().reduce(f64::min),
        vals.iter().cloned().reduce(f64::max),
    ) {
        (Some(lo), Some(hi)) => (lo, hi),
        _ => (0.0, 0.0),
    };
    format!("{name:<name_width$}  {line}  [{lo} .. {hi}]")
}

/// Engineering-style short float: 4 significant digits with an SI
/// scale suffix (k/M/G), stable across locales. Used where dashboard
/// columns must stay narrow.
pub fn fmt_si(v: f64) -> String {
    let a = v.abs();
    if !v.is_finite() {
        return format!("{v}");
    }
    let (scaled, suffix) = if a >= 1e9 {
        (v / 1e9, "G")
    } else if a >= 1e6 {
        (v / 1e6, "M")
    } else if a >= 1e3 {
        (v / 1e3, "k")
    } else {
        (v, "")
    };
    if suffix.is_empty() && (a < 1000.0 && a.fract() == 0.0) {
        format!("{v}")
    } else {
        format!("{scaled:.3}{suffix}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sparkline_empty_and_flat() {
        assert_eq!(sparkline(&[]), "(no samples)");
        assert_eq!(sparkline(&[2.0, 2.0, 2.0]), "▁▁▁");
    }

    #[test]
    fn sparkline_monotone_ramp_hits_extremes() {
        let vals: Vec<f64> = (0..8).map(|i| i as f64).collect();
        let line = sparkline(&vals);
        assert_eq!(line.chars().count(), 8);
        assert_eq!(line.chars().next(), Some('▁'));
        assert_eq!(line.chars().last(), Some('█'));
    }

    #[test]
    fn sparkline_resamples_to_width() {
        let vals: Vec<f64> = (0..1000).map(|i| i as f64).collect();
        let line = sparkline(&vals);
        assert_eq!(line.chars().count(), SPARK_WIDTH);
        // Last cell is always the final sample (the maximum here).
        assert_eq!(line.chars().last(), Some('█'));
    }

    #[test]
    fn spark_row_aligns_names() {
        let row = spark_row("ei", 10, &[1.0, 2.0]);
        assert!(row.starts_with("ei          "));
        assert!(row.ends_with("[1 .. 2]"));
    }

    #[test]
    fn svg_sparkline_is_deterministic_and_self_contained() {
        let vals: Vec<f64> = (0..300).map(|i| (i as f64).sin()).collect();
        let a = svg_sparkline(&vals, 160, 28, 64, "#345");
        let b = svg_sparkline(&vals, 160, 28, 64, "#345");
        assert_eq!(a, b);
        assert!(a.starts_with("<svg"));
        assert!(a.contains("<polyline"));
        // 64 cells -> 64 coordinate pairs.
        assert_eq!(a.split(',').count(), 65);
        // Empty and flat inputs still render valid SVG.
        assert!(svg_sparkline(&[], 160, 28, 64, "#345").starts_with("<svg"));
        let flat = svg_sparkline(&[3.0, 3.0], 160, 28, 64, "#345");
        assert!(flat.contains("14.00"), "flat series plots the midline");
    }

    #[test]
    fn resample_keeps_last_sample() {
        let vals: Vec<f64> = (0..10).map(f64::from).collect();
        assert_eq!(resample(&vals, 4), vec![2.0, 4.0, 7.0, 9.0]);
        assert_eq!(resample(&vals, 100), vals);
        assert!(resample(&[], 4).is_empty());
        assert!(resample(&vals, 0).is_empty());
    }

    #[test]
    fn fmt_si_scales() {
        assert_eq!(fmt_si(12.0), "12");
        assert_eq!(fmt_si(1234.5), "1.234k");
        assert_eq!(fmt_si(2_500_000.0), "2.500M");
        assert_eq!(fmt_si(7.25e9), "7.250G");
    }
}

//! Predictor-accuracy and regret accounting.
//!
//! The adaptive strategies choose a mode from *estimated* energies
//! (EI/ER/EL1..EL3 built on EWMA-predicted size and channel power).
//! This module records, per invocation, the energy the chosen
//! candidate predicted against the energy the client actually spent,
//! plus the post-hoc oracle cost — what the cheapest mode would have
//! cost knowing the true size and channel class. The gap between
//! actual and oracle, summed over a run, is the strategy's
//! **cumulative regret**; the per-mode error distributions show *which*
//! estimator is wrong and by how much.

use crate::json::Json;
use crate::metrics::{Buckets, Histogram, MetricsRegistry};
use jem_energy::Energy;
use std::collections::BTreeMap;

/// Per-mode accumulated prediction error.
#[derive(Debug, Clone)]
pub struct ModeAccuracy {
    /// Invocations that chose this mode.
    pub n: u64,
    /// Sum of predicted per-invocation energies (nJ).
    pub predicted_nj: f64,
    /// Sum of actual per-invocation energies (nJ).
    pub actual_nj: f64,
    /// Sum of |predicted − actual| (nJ).
    pub abs_err_nj: f64,
    /// Sum of signed relative errors (predicted − actual)/actual.
    pub rel_err: f64,
    /// Histogram of |relative error| in percent.
    pub err_hist: Histogram,
}

impl ModeAccuracy {
    fn new() -> ModeAccuracy {
        ModeAccuracy {
            n: 0,
            predicted_nj: 0.0,
            actual_nj: 0.0,
            abs_err_nj: 0.0,
            rel_err: 0.0,
            err_hist: Histogram::new(&error_buckets()),
        }
    }

    /// Mean |relative error| in percent.
    pub fn mean_abs_rel_err_pct(&self) -> f64 {
        self.err_hist.mean()
    }

    /// Mean signed relative error in percent (positive ⇒ estimator
    /// pessimistic, negative ⇒ optimistic).
    pub fn mean_rel_err_pct(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            100.0 * self.rel_err / self.n as f64
        }
    }
}

/// Buckets for |relative error| percent: 0.1 % … ~200 %.
pub fn error_buckets() -> Buckets {
    Buckets::log(0.1, 2.0, 12)
}

/// Accumulates prediction accuracy and oracle regret over a run.
#[derive(Debug, Clone, Default)]
pub struct AccuracyTracker {
    modes: BTreeMap<String, ModeAccuracy>,
    actual_nj: f64,
    oracle_nj: f64,
    invocations: u64,
    oracle_matches: u64,
}

impl AccuracyTracker {
    /// An empty tracker.
    pub fn new() -> AccuracyTracker {
        AccuracyTracker::default()
    }

    /// Record one invocation.
    ///
    /// `predicted` is the chosen candidate's estimated per-invocation
    /// energy at decision time; `actual` the measured client energy;
    /// `oracle` / `oracle_mode` the post-hoc cheapest candidate
    /// evaluated with the true size and channel class.
    pub fn record(
        &mut self,
        mode: &str,
        predicted: Energy,
        actual: Energy,
        oracle: Energy,
        oracle_mode: &str,
    ) {
        let m = self
            .modes
            .entry(mode.to_string())
            .or_insert_with(ModeAccuracy::new);
        m.n += 1;
        m.predicted_nj += predicted.nanojoules();
        m.actual_nj += actual.nanojoules();
        m.abs_err_nj += (predicted - actual).nanojoules().abs();
        if actual.nanojoules() > 0.0 {
            let rel = (predicted - actual).nanojoules() / actual.nanojoules();
            m.rel_err += rel;
            m.err_hist.observe(100.0 * rel.abs());
        }
        self.actual_nj += actual.nanojoules();
        self.oracle_nj += oracle.nanojoules();
        self.invocations += 1;
        if mode == oracle_mode {
            self.oracle_matches += 1;
        }
    }

    /// Fold another tracker's samples into this one (for aggregating
    /// parallel sweep shards).
    pub fn merge(&mut self, other: &AccuracyTracker) {
        for (mode, m) in &other.modes {
            let e = self
                .modes
                .entry(mode.clone())
                .or_insert_with(ModeAccuracy::new);
            e.n += m.n;
            e.predicted_nj += m.predicted_nj;
            e.actual_nj += m.actual_nj;
            e.abs_err_nj += m.abs_err_nj;
            e.rel_err += m.rel_err;
            e.err_hist.merge(&m.err_hist);
        }
        self.actual_nj += other.actual_nj;
        self.oracle_nj += other.oracle_nj;
        self.invocations += other.invocations;
        self.oracle_matches += other.oracle_matches;
    }

    /// Recorded invocations.
    pub fn invocations(&self) -> u64 {
        self.invocations
    }

    /// Cumulative regret: total actual energy minus total oracle
    /// energy.
    pub fn regret(&self) -> Energy {
        Energy::from_nanojoules(self.actual_nj - self.oracle_nj)
    }

    /// Mean regret per invocation.
    pub fn regret_per_invocation(&self) -> Energy {
        if self.invocations == 0 {
            Energy::ZERO
        } else {
            self.regret() / self.invocations as f64
        }
    }

    /// Fraction of invocations whose chosen mode matched the oracle.
    pub fn oracle_agreement(&self) -> f64 {
        if self.invocations == 0 {
            0.0
        } else {
            self.oracle_matches as f64 / self.invocations as f64
        }
    }

    /// Per-mode accuracy, sorted by mode label.
    pub fn modes(&self) -> impl Iterator<Item = (&str, &ModeAccuracy)> {
        self.modes.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Rows for a `fig_regret`-style table: one per mode plus a totals
    /// row. Columns: mode, n, mean predicted (nJ), mean actual (nJ),
    /// signed error %, |error| %.
    pub fn table_rows(&self) -> Vec<Vec<String>> {
        let mut rows = Vec::new();
        for (mode, m) in &self.modes {
            let n = m.n.max(1) as f64;
            rows.push(vec![
                mode.clone(),
                m.n.to_string(),
                format!("{:.1}", m.predicted_nj / n),
                format!("{:.1}", m.actual_nj / n),
                format!("{:+.2}%", m.mean_rel_err_pct()),
                format!("{:.2}%", m.mean_abs_rel_err_pct()),
            ]);
        }
        rows.push(vec![
            "TOTAL".to_string(),
            self.invocations.to_string(),
            String::new(),
            format!(
                "{:.1}",
                if self.invocations == 0 {
                    0.0
                } else {
                    self.actual_nj / self.invocations as f64
                }
            ),
            format!("regret {}", self.regret()),
            format!("oracle-match {:.1}%", 100.0 * self.oracle_agreement()),
        ]);
        rows
    }

    /// Header matching [`AccuracyTracker::table_rows`].
    pub fn table_header() -> Vec<String> {
        ["mode", "n", "pred nJ", "actual nJ", "bias", "|err|"]
            .iter()
            .map(|s| s.to_string())
            .collect()
    }

    /// Machine-readable summary for `BENCH_*.json`.
    pub fn to_json(&self) -> Json {
        let mut modes = Vec::new();
        for (mode, m) in &self.modes {
            modes.push(
                Json::object()
                    .with("mode", mode.as_str())
                    .with("n", m.n)
                    .with("predicted_nj", m.predicted_nj)
                    .with("actual_nj", m.actual_nj)
                    .with("abs_err_nj", m.abs_err_nj)
                    .with("mean_rel_err_pct", m.mean_rel_err_pct())
                    .with("mean_abs_rel_err_pct", m.mean_abs_rel_err_pct()),
            );
        }
        Json::object()
            .with("invocations", self.invocations)
            .with("actual_nj", self.actual_nj)
            .with("oracle_nj", self.oracle_nj)
            .with("regret_nj", self.regret().nanojoules())
            .with(
                "regret_per_invocation_nj",
                self.regret_per_invocation().nanojoules(),
            )
            .with("oracle_agreement", self.oracle_agreement())
            .with("modes", Json::Arr(modes))
    }

    /// Publish the tracker into a [`MetricsRegistry`] (per-mode error
    /// histograms, regret gauges, agreement gauge).
    pub fn fill_metrics(&self, registry: &mut MetricsRegistry) {
        registry.set_help(
            "predictor_abs_rel_error_pct",
            "Absolute relative error of the chosen candidate's energy estimate, percent.",
        );
        for (mode, m) in &self.modes {
            let labels = vec![("mode", mode.clone())];
            registry.add("predictor_samples_total", &labels, m.n);
            // Re-observe through the registry histogram by merging the
            // already-bucketed counts is not expressible; expose the
            // summary moments as gauges and the per-mode mean error.
            registry.set_gauge(
                "predictor_mean_abs_rel_error_pct",
                &labels,
                m.mean_abs_rel_err_pct(),
            );
            registry.set_gauge(
                "predictor_mean_rel_error_pct",
                &labels,
                m.mean_rel_err_pct(),
            );
        }
        registry.set_help(
            "regret_total_nj",
            "Cumulative regret vs. the post-hoc oracle, nJ.",
        );
        registry.set_gauge("regret_total_nj", &[], self.regret().nanojoules());
        registry.set_gauge(
            "regret_per_invocation_nj",
            &[],
            self.regret_per_invocation().nanojoules(),
        );
        registry.set_gauge("oracle_agreement", &[], self.oracle_agreement());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn nj(v: f64) -> Energy {
        Energy::from_nanojoules(v)
    }

    #[test]
    fn regret_and_agreement() {
        let mut t = AccuracyTracker::new();
        t.record("remote", nj(100.0), nj(120.0), nj(110.0), "remote");
        t.record("remote", nj(100.0), nj(90.0), nj(80.0), "local/L2");
        t.record("interpret", nj(500.0), nj(500.0), nj(500.0), "interpret");
        assert_eq!(t.invocations(), 3);
        // (120-110) + (90-80) + 0
        assert!((t.regret().nanojoules() - 20.0).abs() < 1e-9);
        assert!((t.oracle_agreement() - 2.0 / 3.0).abs() < 1e-12);
        let remote = t.modes().find(|(m, _)| *m == "remote").unwrap().1;
        assert_eq!(remote.n, 2);
        // rel errs: (100-120)/120 = -1/6, (100-90)/90 = +1/9
        assert!((remote.mean_rel_err_pct() - 100.0 * (-1.0 / 6.0 + 1.0 / 9.0) / 2.0).abs() < 1e-9);
    }

    #[test]
    fn merge_equals_concatenation() {
        let samples = [
            ("remote", 100.0, 110.0, 105.0, "remote"),
            ("interpret", 900.0, 880.0, 700.0, "remote"),
            ("local/L3", 50.0, 55.0, 50.0, "local/L3"),
            ("remote", 120.0, 100.0, 95.0, "local/L1"),
        ];
        let mut whole = AccuracyTracker::new();
        let mut a = AccuracyTracker::new();
        let mut b = AccuracyTracker::new();
        for (i, (m, p, act, o, om)) in samples.iter().enumerate() {
            whole.record(m, nj(*p), nj(*act), nj(*o), om);
            if i % 2 == 0 { &mut a } else { &mut b }.record(m, nj(*p), nj(*act), nj(*o), om);
        }
        a.merge(&b);
        assert_eq!(a.to_json().render(), whole.to_json().render());
    }

    #[test]
    fn table_has_total_row() {
        let mut t = AccuracyTracker::new();
        t.record("remote", nj(10.0), nj(12.0), nj(12.0), "remote");
        let rows = t.table_rows();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[1][0], "TOTAL");
        assert_eq!(AccuracyTracker::table_header().len(), rows[0].len());
    }

    #[test]
    fn fill_metrics_exposes_regret() {
        let mut t = AccuracyTracker::new();
        t.record("remote", nj(10.0), nj(12.0), nj(11.0), "remote");
        let mut r = MetricsRegistry::new();
        t.fill_metrics(&mut r);
        let text = r.render_prometheus();
        assert!(text.contains("regret_total_nj 1"));
        assert!(text.contains("predictor_samples_total{mode=\"remote\"} 1"));
    }
}

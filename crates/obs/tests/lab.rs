//! Integration tests for the `jem_obs::lab` experiment archive and
//! regression detector: bit-identical artifact round-trips, manifest
//! fingerprint integrity, detector determinism (zero flags on
//! identical-content generations, property-tested across seeds), the
//! flag families on seeded changes, Welford grouping in the query
//! engine, and the self-contained HTML report.

use jem_obs::{
    check, html_report, query, sha256_hex, Archive, CheckConfig, Json, LabGroupBy, LabQuery,
    LabSelector, RunMeta,
};
use jem_sim::Summary;

fn scratch(name: &str) -> String {
    let dir = std::env::temp_dir().join(format!("jem-lab-test-{}-{name}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    dir.to_str().unwrap().to_string()
}

fn meta_for(bin: &str, seed: u64) -> RunMeta {
    RunMeta::from_argv(&[
        format!("target/release/{bin}"),
        "--runs".to_string(),
        "40".to_string(),
        "--seed".to_string(),
        seed.to_string(),
    ])
}

/// A tiny deterministic LCG so "property across seeds" does not need
/// an RNG dependency.
fn lcg(seed: u64) -> impl FnMut() -> f64 {
    let mut state = seed
        .wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407);
    move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (state >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// A seed-derived `BENCH_*.json`-shaped document with bit-precise
/// energy figures.
fn bench_doc(seed: u64, scale: f64) -> Vec<u8> {
    let mut rng = lcg(seed);
    let rows: Vec<Json> = (0..4)
        .map(|i| {
            Json::object()
                .with("workload", format!("w{i}").as_str())
                .with("total_energy_nj", (1.0e9 + rng() * 1.0e8) * scale)
                .with("avg_power_mw", 120.0 + rng() * 10.0)
        })
        .collect();
    let doc = Json::object()
        .with("schema", "jem-bench/v1")
        .with("seed", seed)
        .with("results", Json::Arr(rows));
    format!("{}\n", doc.render_pretty()).into_bytes()
}

/// A `bench-history`-style baseline: deterministic `results`, plus
/// wall-clock figures and toolchain metadata that legitimately drift
/// between reruns and must stay outside the strict gate.
fn history_doc(seed: u64, wall_jitter: f64, ips: f64, rustc: &str) -> Vec<u8> {
    let mut rng = lcg(seed ^ 0x9e3779b97f4a7c15);
    let rows: Vec<Json> = (0..3)
        .map(|i| {
            Json::object()
                .with("name", format!("case{i}").as_str())
                .with("energy_nj", 2.0e9 + rng() * 1.0e8)
        })
        .collect();
    let doc = Json::object()
        .with("schema", "jem-bench-history/v1")
        .with(
            "environment",
            Json::object()
                .with("rustc", rustc)
                .with("git_revision", "deadbeef"),
        )
        .with("results", Json::Arr(rows))
        .with(
            "throughput",
            Json::object().with("sim_instructions_per_sec", ips).with(
                "wall_secs",
                Json::Arr(vec![
                    Json::Num(1.0 + wall_jitter),
                    Json::Num(1.1 + wall_jitter * 0.7),
                ]),
            ),
        );
    format!("{}\n", doc.render_pretty()).into_bytes()
}

fn health_doc(alerts: u64) -> Vec<u8> {
    let doc = Json::object()
        .with("schema", "jem-health/v1")
        .with("total_alerts", alerts);
    format!("{}\n", doc.render_pretty()).into_bytes()
}

// ---------------------------------------------------------------
// Archive round-trip
// ---------------------------------------------------------------

#[test]
fn round_trip_is_bit_identical_and_blobs_dedup() {
    let root = scratch("roundtrip");
    let archive = Archive::open_or_create(&root).unwrap();
    let meta = meta_for("bench-faults", 1234);
    let bytes = bench_doc(1234, 1.0);

    let rec = archive
        .ingest_bytes(
            &meta,
            &[(
                "bench".to_string(),
                "BENCH_faults.json".to_string(),
                bytes.clone(),
            )],
        )
        .unwrap();
    assert_eq!(rec.gen, 0);
    assert_eq!(rec.fingerprint, meta.fingerprint());

    // The stored artifact reads back byte-for-byte: every energy
    // figure survives archiving bit-exactly.
    let art = rec.artifact("bench").expect("bench artifact stored");
    assert_eq!(art.sha256, sha256_hex(&bytes));
    assert_eq!(archive.read_artifact(art).unwrap(), bytes);

    // An identical rerun appends a generation but stores no new blob.
    let count_blobs = || {
        walkdir(&std::path::Path::new(&root).join("objects"))
            .into_iter()
            .filter(|p| p.is_file())
            .count()
    };
    let before = count_blobs();
    let rec2 = archive
        .ingest_bytes(
            &meta,
            &[(
                "bench".to_string(),
                "BENCH_faults.json".to_string(),
                bytes.clone(),
            )],
        )
        .unwrap();
    assert_eq!(rec2.gen, 1);
    assert_eq!(count_blobs(), before, "identical content must dedup");
    assert_eq!(archive.verify().unwrap(), Vec::<String>::new());
}

fn walkdir(dir: &std::path::Path) -> Vec<std::path::PathBuf> {
    let mut out = Vec::new();
    let Ok(entries) = std::fs::read_dir(dir) else {
        return out;
    };
    for entry in entries.flatten() {
        let p = entry.path();
        if p.is_dir() {
            out.extend(walkdir(&p));
        } else {
            out.push(p);
        }
    }
    out
}

#[test]
fn open_refuses_unmarked_nonempty_dir() {
    let root = scratch("unmarked");
    std::fs::write(format!("{root}/stray.txt"), b"not an archive").unwrap();
    let err = Archive::open_or_create(&root).unwrap_err();
    assert!(err.contains("refusing"), "got: {err}");

    // A marked archive reopens fine.
    let root2 = scratch("marked");
    Archive::open_or_create(&root2).unwrap();
    Archive::open_or_create(&root2).unwrap();
}

// ---------------------------------------------------------------
// Fingerprint integrity
// ---------------------------------------------------------------

#[test]
fn tampered_manifest_metadata_is_rejected() {
    let root = scratch("tamper");
    let archive = Archive::open_or_create(&root).unwrap();
    let meta = meta_for("bench-faults", 7);
    let rec = archive
        .ingest_bytes(
            &meta,
            &[(
                "bench".to_string(),
                "BENCH_faults.json".to_string(),
                bench_doc(7, 1.0),
            )],
        )
        .unwrap();

    // Rewrite the manifest's bin: the stored fingerprint no longer
    // matches the fingerprint recomputed from the manifest's own
    // metadata, so the scan must reject it instead of comparing the
    // run against the wrong history.
    let manifest = format!(
        "{root}/runs/{}/{:04}/manifest.json",
        rec.fingerprint, rec.gen
    );
    let text = std::fs::read_to_string(&manifest).unwrap();
    std::fs::write(&manifest, text.replace("bench-faults", "bench-fig6")).unwrap();
    let err = archive.runs().unwrap_err();
    assert!(err.contains("fingerprint"), "got: {err}");
}

#[test]
fn manifest_filed_under_wrong_line_is_rejected() {
    let root = scratch("misfiled");
    let archive = Archive::open_or_create(&root).unwrap();
    let meta = meta_for("bench-faults", 7);
    let rec = archive
        .ingest_bytes(
            &meta,
            &[(
                "bench".to_string(),
                "BENCH_faults.json".to_string(),
                bench_doc(7, 1.0),
            )],
        )
        .unwrap();

    // Copy the generation under a directory named for a different
    // fingerprint: a hash collision or a mis-filed manifest must not
    // silently join another line's history.
    let bogus_line = format!("{root}/runs/{}", "0".repeat(16));
    std::fs::create_dir_all(format!("{bogus_line}/0000")).unwrap();
    let manifest = format!(
        "{root}/runs/{}/{:04}/manifest.json",
        rec.fingerprint, rec.gen
    );
    std::fs::copy(&manifest, format!("{bogus_line}/0000/manifest.json")).unwrap();
    let err = archive.runs().unwrap_err();
    assert!(err.contains("filed under"), "got: {err}");
}

// ---------------------------------------------------------------
// Detector: determinism and zero flags on identical content
// ---------------------------------------------------------------

#[test]
fn identical_generations_raise_zero_flags_across_seeds() {
    // Property over seeds: a line whose generations carry identical
    // deterministic results — with wall-clock throughput jitter and a
    // different toolchain string, which reruns legitimately have —
    // never raises a flag, and the detector output is a pure function
    // of archive contents.
    let root = scratch("zeroflags");
    let archive = Archive::open_or_create(&root).unwrap();
    let seeds = [1u64, 7, 42, 1234, 99991];
    for &seed in &seeds {
        let meta = meta_for("bench-faults", seed);
        for (jitter, rustc) in [(0.0, "rustc 1.99.0"), (0.037, "rustc 2.00.1")] {
            archive
                .ingest_bytes(
                    &meta,
                    &[
                        (
                            "bench".to_string(),
                            "BENCH_faults.json".to_string(),
                            bench_doc(seed, 1.0),
                        ),
                        (
                            "bench-history".to_string(),
                            "BENCH_faults_history.json".to_string(),
                            history_doc(seed, jitter, 5.0e7 * (1.0 + jitter), rustc),
                        ),
                        (
                            "health".to_string(),
                            "health.json".to_string(),
                            health_doc(0),
                        ),
                    ],
                )
                .unwrap();
        }
    }

    let report = check(&archive, &CheckConfig::default()).unwrap();
    assert_eq!(report.lines.len(), seeds.len());
    assert!(
        !report.flagged(),
        "identical-content generations must raise zero flags, got: {}",
        report.render_text()
    );
    for line in &report.lines {
        assert_eq!(line.gens, vec![0, 1]);
    }

    // Determinism: a second pass renders the identical document.
    let again = check(&archive, &CheckConfig::default()).unwrap();
    assert_eq!(
        report.to_json().render_pretty(),
        again.to_json().render_pretty()
    );
}

// ---------------------------------------------------------------
// Detector: seeded changes are flagged
// ---------------------------------------------------------------

#[test]
fn energy_change_between_generations_is_flagged() {
    let root = scratch("energyflag");
    let archive = Archive::open_or_create(&root).unwrap();
    let meta = meta_for("bench-faults", 42);
    for scale in [1.0, 1.01] {
        archive
            .ingest_bytes(
                &meta,
                &[(
                    "bench".to_string(),
                    "BENCH_faults.json".to_string(),
                    bench_doc(42, scale),
                )],
            )
            .unwrap();
    }
    let report = check(&archive, &CheckConfig::default()).unwrap();
    assert!(report.flagged());
    let flag = &report.flags[0];
    assert_eq!(flag.kind, "energy-regression");
    assert_eq!((flag.from_gen, flag.to_gen), (0, 1));
    assert!(flag.path.starts_with("bench/"), "got path {}", flag.path);
}

#[test]
fn throughput_collapse_is_flagged_by_threshold_and_changepoint() {
    let root = scratch("tpflag");
    let archive = Archive::open_or_create(&root).unwrap();
    let meta = meta_for("bench-fig6", 9);
    for ips in [1.0e8, 1.01e8, 0.99e8, 4.0e7] {
        archive
            .ingest_bytes(
                &meta,
                &[(
                    "bench-history".to_string(),
                    "BENCH_fig6_history.json".to_string(),
                    history_doc(9, 0.0, ips, "rustc 1.99.0"),
                )],
            )
            .unwrap();
    }
    let report = check(&archive, &CheckConfig::default()).unwrap();
    let kinds: Vec<&str> = report.flags.iter().map(|f| f.kind.as_str()).collect();
    assert!(kinds.contains(&"throughput-threshold"), "got {kinds:?}");
    assert!(kinds.contains(&"throughput-changepoint"), "got {kinds:?}");
    // The deterministic results were identical throughout: the noisy
    // wall-clock figures must not have tripped the strict gate.
    assert!(!kinds.contains(&"energy-regression"), "got {kinds:?}");
}

#[test]
fn new_health_alerts_are_flagged() {
    let root = scratch("healthflag");
    let archive = Archive::open_or_create(&root).unwrap();
    let meta = meta_for("bench-faults", 3);
    for alerts in [0u64, 2] {
        archive
            .ingest_bytes(
                &meta,
                &[(
                    "health".to_string(),
                    "health.json".to_string(),
                    health_doc(alerts),
                )],
            )
            .unwrap();
    }
    let report = check(&archive, &CheckConfig::default()).unwrap();
    assert_eq!(report.flags.len(), 1);
    assert_eq!(report.flags[0].kind, "health-regression");
    assert!(report.flags[0].detail.contains("2 alerts"));
}

// ---------------------------------------------------------------
// Query engine
// ---------------------------------------------------------------

#[test]
fn column_query_merges_per_run_summaries_exactly() {
    let root = scratch("query");
    let archive = Archive::open_or_create(&root).unwrap();
    let meta = meta_for("bench-faults", 11);
    let mut all = Vec::new();
    for scale in [1.0, 1.25, 0.8] {
        let bytes = bench_doc(11, scale);
        let doc = Json::parse(std::str::from_utf8(&bytes).unwrap()).unwrap();
        all.extend(jem_obs::lab::select_path(&doc, "results/*/total_energy_nj"));
        archive
            .ingest_bytes(
                &meta,
                &[("bench".to_string(), "BENCH_faults.json".to_string(), bytes)],
            )
            .unwrap();
    }

    let groups = query(
        &archive,
        &LabQuery {
            selector: LabSelector::Column("results/*/total_energy_nj".to_string()),
            window: None,
            group_by: LabGroupBy::Fingerprint,
        },
    )
    .unwrap();
    assert_eq!(groups.len(), 1);
    let group = &groups[0];
    assert_eq!(group.runs.len(), 3);
    assert_eq!(group.summary.count(), all.len() as u64);

    // merge ≡ concatenation: the folded group summary equals one
    // Welford pass over every observation at once.
    let direct = Summary::of(&all);
    assert!((group.summary.mean() - direct.mean()).abs() <= 1e-9 * direct.mean().abs());
    assert!((group.summary.stddev() - direct.stddev()).abs() <= 1e-6 * direct.stddev().abs());
    assert_eq!(group.summary.min(), direct.min());
    assert_eq!(group.summary.max(), direct.max());
}

#[test]
fn query_with_no_match_is_an_error() {
    let root = scratch("nomatch");
    let archive = Archive::open_or_create(&root).unwrap();
    let meta = meta_for("bench-faults", 5);
    archive
        .ingest_bytes(
            &meta,
            &[(
                "bench".to_string(),
                "BENCH_faults.json".to_string(),
                bench_doc(5, 1.0),
            )],
        )
        .unwrap();
    let err = query(
        &archive,
        &LabQuery {
            selector: LabSelector::Column("no/such/path".to_string()),
            window: None,
            group_by: LabGroupBy::Bin,
        },
    )
    .unwrap_err();
    assert!(err.contains("no/such/path"), "got: {err}");
}

// ---------------------------------------------------------------
// HTML report
// ---------------------------------------------------------------

#[test]
fn html_report_is_self_contained() {
    let root = scratch("html");
    let archive = Archive::open_or_create(&root).unwrap();
    let meta = meta_for("bench-faults", 21);
    for scale in [1.0, 1.0, 1.5] {
        archive
            .ingest_bytes(
                &meta,
                &[(
                    "bench".to_string(),
                    "BENCH_<faults>.json".to_string(),
                    bench_doc(21, scale),
                )],
            )
            .unwrap();
    }
    let report = check(&archive, &CheckConfig::default()).unwrap();
    assert!(report.flagged());
    let html = html_report(&archive, &report).unwrap();

    assert!(html.starts_with("<!doctype html>"));
    assert!(html.contains("<svg"), "trend sparklines must be inline SVG");
    assert!(html.contains("energy-regression"));
    // Self-contained: no external scripts, stylesheets or images —
    // the only URLs allowed are SVG namespace declarations.
    assert!(!html.contains("<script"));
    assert!(!html.contains("<link"));
    assert!(!html.contains("src="));
    for (i, _) in html.match_indices("http") {
        assert!(
            html[i..].starts_with("http://www.w3.org/"),
            "unexpected external reference near byte {i}"
        );
    }
    // Artifact names render escaped.
    assert!(html.contains("BENCH_&lt;faults&gt;.json"));
    assert!(!html.contains("BENCH_<faults>"));
}

//! Follow-mode reader properties: a `JtbFollower`/`JtsFollower` over
//! ANY byte prefix of a valid file never errors — a torn tail parks as
//! `Idle`, it never misreads partial bytes as corruption — and once
//! the remaining bytes land, the followed fold converges to exactly
//! the full-file decode. This is the contract that lets `jem-query
//! --follow`, `jem-timeline --follow`, `tracecheck --follow` and
//! `jem-top` tail a run that is still being written.

use jem_energy::{Component, Energy, EnergyBreakdown, SimTime};
use jem_obs::timeline::N_SERIES;
use jem_obs::wire::{jtb_bytes, load_jtb_bytes, FollowStatus, JtbStream};
use jem_obs::{JtsReader, Timeline, TimelineSink, TraceEvent, TraceEventKind, TraceShard};
use proptest::prelude::*;
use std::io::Write as _;

/// A per-test scratch path under the system temp dir.
fn scratch(name: &str) -> String {
    let dir = std::env::temp_dir().join(format!("jem-obs-follow-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name).to_str().unwrap().to_string()
}

fn ev(seq: u64, invocation: u64, ordinal: u64, at: f64, kind: TraceEventKind) -> TraceEvent {
    let mut delta = EnergyBreakdown::new();
    delta.charge(Component::Core, Energy::from_nanojoules(5.0));
    delta.charge(Component::Dram, Energy::from_nanojoules(1.0));
    TraceEvent {
        seq,
        invocation,
        ordinal,
        at: SimTime::from_nanos(at),
        delta,
        kind,
    }
}

/// A deterministic synthetic run: `n` invocations of start/end pairs
/// with strictly increasing sim-time (seeded so streams differ).
fn make_events(n: u64, seed: u64) -> Vec<TraceEvent> {
    let mut events = Vec::with_capacity(2 * n as usize);
    for i in 0..n {
        let t0 = 1.0e6 * i as f64 + (seed % 7) as f64 * 1e3;
        events.push(ev(
            2 * i,
            i + 1,
            0,
            t0,
            TraceEventKind::InvocationStart {
                strategy: "ics".into(),
                method: format!("m{}", (i + seed) % 3),
                size: 64 + (i % 5) as u32,
                true_class: "good".into(),
                chosen_class: "good".into(),
            },
        ));
        events.push(ev(
            2 * i + 1,
            i + 1,
            1,
            t0 + 0.4e6,
            TraceEventKind::InvocationEnd {
                mode: if (i + seed).is_multiple_of(2) {
                    "interpret".into()
                } else {
                    "remote".into()
                },
                energy: Energy::from_nanojoules(6.0),
                time: SimTime::from_nanos(0.4e6),
                instructions: 1000 + i,
            },
        ));
    }
    events
}

/// Drive a `JtbFollower` until it parks or finishes, collecting
/// everything it emits. Panics (failing the property) on any error —
/// prefixes of valid files must never read as corruption.
fn drain_jtb(follower: &mut jem_obs::JtbFollower, out: &mut Vec<(usize, TraceEvent)>) -> bool {
    loop {
        match follower
            .poll()
            .expect("prefix of a valid file never errors")
        {
            FollowStatus::Events(evs) => out.extend(evs),
            FollowStatus::Idle => return false,
            FollowStatus::End => return true,
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24 })]

    /// Every byte prefix of a valid `.jtb` parks cleanly, yields only
    /// a prefix of the true event sequence, and after the remaining
    /// bytes land the follower converges to the exact full decode.
    #[test]
    fn jtb_follower_prefix_converges(
        n in 1u64..30,
        seed in 0u64..1000,
        cut_frac in 0.0f64..=1.0,
    ) {
        let shards = vec![TraceShard::new("run", make_events(n, seed))];
        let full = jtb_bytes(&shards);
        let expected = load_jtb_bytes(&full).expect("full file decodes");
        let expected: Vec<(usize, TraceEvent)> = expected
            .shards
            .iter()
            .enumerate()
            .flat_map(|(si, s)| s.events.iter().cloned().map(move |e| (si, e)))
            .collect();

        let cut = ((full.len() as f64) * cut_frac) as usize;
        let path = scratch(&format!("prefix-{n}-{seed}-{cut}.jtb"));
        std::fs::write(&path, &full[..cut]).unwrap();

        let mut follower = JtbStream::follow(&path).expect("open");
        let mut seen = Vec::new();
        let done = drain_jtb(&mut follower, &mut seen);
        // The prefix may or may not contain the footer (cut == len).
        prop_assert_eq!(done, cut == full.len());
        prop_assert!(seen.len() <= expected.len());
        prop_assert_eq!(&seen[..], &expected[..seen.len()]);

        // Land the rest of the file; the follower must finish and the
        // fold must equal the full decode exactly.
        {
            let mut f = std::fs::OpenOptions::new().append(true).open(&path).unwrap();
            f.write_all(&full[cut..]).unwrap();
        }
        let done = drain_jtb(&mut follower, &mut seen);
        prop_assert!(done);
        prop_assert_eq!(&seen[..], &expected[..]);
        prop_assert_eq!(follower.dropped(), 0);
        std::fs::remove_file(&path).ok();
    }

    /// Same property delivered in arbitrary chunkings: however the
    /// bytes arrive, the follower emits the identical event sequence.
    #[test]
    fn jtb_follower_chunked_delivery_is_exact(
        n in 1u64..20,
        seed in 0u64..1000,
        chunk in 1usize..97,
    ) {
        let shards = vec![TraceShard::new("run", make_events(n, seed))];
        let full = jtb_bytes(&shards);
        let expected = load_jtb_bytes(&full).expect("full file decodes");
        let expected: Vec<(usize, TraceEvent)> = expected
            .shards
            .iter()
            .enumerate()
            .flat_map(|(si, s)| s.events.iter().cloned().map(move |e| (si, e)))
            .collect();

        let path = scratch(&format!("chunk-{n}-{seed}-{chunk}.jtb"));
        std::fs::write(&path, [] as [u8; 0]).unwrap();
        let mut follower = JtbStream::follow(&path).expect("open");
        let mut seen = Vec::new();
        let mut done = false;
        for part in full.chunks(chunk) {
            let mut f = std::fs::OpenOptions::new().append(true).open(&path).unwrap();
            f.write_all(part).unwrap();
            drop(f);
            done = drain_jtb(&mut follower, &mut seen);
            // Mid-file the collected events are always a true prefix.
            prop_assert!(seen.len() <= expected.len());
            prop_assert_eq!(&seen[..], &expected[..seen.len()]);
        }
        prop_assert!(done);
        prop_assert_eq!(&seen[..], &expected[..]);
        std::fs::remove_file(&path).ok();
    }

    /// `.jts` followers: every prefix parks cleanly and converges to
    /// the exact sample set `Timeline::read` produces from the full
    /// file — same times, same values, bit-for-bit.
    #[test]
    fn jts_follower_prefix_converges(
        n in 1u64..30,
        seed in 0u64..1000,
        cut_frac in 0.0f64..=1.0,
    ) {
        let events = make_events(n, seed);
        let path = scratch(&format!("tl-{n}-{seed}.jts"));
        let mut sink = TimelineSink::create(&path, 1e6).expect("create");
        for e in &events {
            sink.observe(e, None);
        }
        sink.finish().expect("finish");
        let full = std::fs::read(&path).unwrap();
        let tl = Timeline::read(&full).expect("full file decodes");
        let expected: Vec<(usize, f64, [f64; N_SERIES])> = tl
            .segments
            .iter()
            .enumerate()
            .flat_map(|(si, seg)| {
                seg.times.iter().enumerate().map(move |(row, t)| {
                    let mut vals = [0.0; N_SERIES];
                    for (s, col) in seg.cols.iter().enumerate() {
                        vals[s] = col[row];
                    }
                    (si, *t, vals)
                })
            })
            .collect();

        let cut = ((full.len() as f64) * cut_frac) as usize;
        let follow_path = scratch(&format!("tl-{n}-{seed}-{cut}.follow.jts"));
        std::fs::write(&follow_path, &full[..cut]).unwrap();
        let mut follower = JtsReader::follow(&follow_path).expect("open");
        let mut seen: Vec<(usize, f64, [f64; N_SERIES])> = Vec::new();
        let mut finished = false;
        loop {
            match follower.poll().expect("prefix of a valid file never errors") {
                FollowStatus::Events(samples) => {
                    seen.extend(samples.into_iter().map(|s| (s.segment, s.t, s.vals)));
                }
                FollowStatus::Idle => break,
                FollowStatus::End => {
                    finished = true;
                    break;
                }
            }
        }
        prop_assert_eq!(finished, cut == full.len());
        prop_assert!(seen.len() <= expected.len());
        prop_assert_eq!(&seen[..], &expected[..seen.len()]);

        {
            let mut f = std::fs::OpenOptions::new()
                .append(true)
                .open(&follow_path)
                .unwrap();
            f.write_all(&full[cut..]).unwrap();
        }
        loop {
            match follower.poll().expect("completed file never errors") {
                FollowStatus::Events(samples) => {
                    seen.extend(samples.into_iter().map(|s| (s.segment, s.t, s.vals)));
                }
                FollowStatus::Idle => prop_assert!(false, "complete file must End, not Idle"),
                FollowStatus::End => break,
            }
        }
        prop_assert_eq!(&seen[..], &expected[..]);
        prop_assert_eq!(follower.samples(), expected.len() as u64);
        std::fs::remove_file(&path).ok();
        std::fs::remove_file(&follow_path).ok();
    }
}

//! Runtime and verification error types.

use crate::value::Type;
use std::fmt;

/// Errors raised while executing MJVM code (interpreted or compiled).
#[derive(Debug, Clone, PartialEq)]
pub enum VmError {
    /// Operand had the wrong runtime type.
    TypeMismatch {
        /// What the operation required.
        expected: Type,
        /// What it found.
        got: Type,
    },
    /// Dereferenced `null`.
    NullDeref,
    /// Heap handle out of range.
    BadHandle(u32),
    /// Array index out of range.
    IndexOutOfBounds {
        /// The offending index.
        index: usize,
        /// The array length.
        len: usize,
    },
    /// Integer division or remainder by zero.
    DivByZero,
    /// Array operation on a non-array.
    NotAnArray,
    /// Field operation on a non-object.
    NotAnObject,
    /// Field slot out of range.
    BadField(usize),
    /// Operand stack underflow (unverified code only).
    StackUnderflow,
    /// Local slot out of range (unverified code only).
    BadLocal(u16),
    /// Call target does not exist.
    BadMethod(u32),
    /// Virtual dispatch slot out of range for the receiver's class.
    BadVSlot(u16),
    /// Wrong number of arguments passed to an entry invocation.
    ArityMismatch {
        /// Declared arity.
        expected: usize,
        /// Supplied argument count.
        got: usize,
    },
    /// Execution exceeded the configured step budget (runaway guard).
    StepBudgetExceeded,
    /// Host call-stack depth limit reached (deep recursion guard).
    CallDepthExceeded,
    /// Fell off the end of a method's code.
    FellOffEnd,
    /// Negative array length requested.
    NegativeArrayLength(i32),
}

impl fmt::Display for VmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VmError::TypeMismatch { expected, got } => {
                write!(f, "type mismatch: expected {expected}, got {got}")
            }
            VmError::NullDeref => write!(f, "null dereference"),
            VmError::BadHandle(h) => write!(f, "invalid heap handle {h}"),
            VmError::IndexOutOfBounds { index, len } => {
                write!(f, "index {index} out of bounds (len {len})")
            }
            VmError::DivByZero => write!(f, "integer division by zero"),
            VmError::NotAnArray => write!(f, "array operation on non-array"),
            VmError::NotAnObject => write!(f, "field operation on non-object"),
            VmError::BadField(i) => write!(f, "invalid field slot {i}"),
            VmError::StackUnderflow => write!(f, "operand stack underflow"),
            VmError::BadLocal(i) => write!(f, "invalid local slot {i}"),
            VmError::BadMethod(i) => write!(f, "invalid method id {i}"),
            VmError::BadVSlot(i) => write!(f, "invalid vtable slot {i}"),
            VmError::ArityMismatch { expected, got } => {
                write!(f, "arity mismatch: expected {expected} args, got {got}")
            }
            VmError::StepBudgetExceeded => write!(f, "step budget exceeded"),
            VmError::CallDepthExceeded => write!(f, "call depth exceeded"),
            VmError::FellOffEnd => write!(f, "fell off end of method code"),
            VmError::NegativeArrayLength(n) => write!(f, "negative array length {n}"),
        }
    }
}

impl std::error::Error for VmError {}

/// Errors detected by the class-file verifier.
#[derive(Debug, Clone, PartialEq)]
pub struct VerifyError {
    /// Method that failed verification.
    pub method: String,
    /// Code index of the offending instruction (if localized).
    pub at: Option<usize>,
    /// Human-readable reason.
    pub reason: String,
}

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.at {
            Some(pc) => write!(f, "verify {} @{}: {}", self.method, pc, self.reason),
            None => write!(f, "verify {}: {}", self.method, self.reason),
        }
    }
}

impl std::error::Error for VerifyError {}

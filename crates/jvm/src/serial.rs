//! MJVM object serialization.
//!
//! The paper's remote-execution framework is built on Java object
//! serialization: "we define a partition API that uses Java object
//! serialization for transferring the method ID and its parameters to
//! the server. Object serialization is also used to return the results
//! from the server." (Fig 4.)
//!
//! Our format is a compact tagged byte stream that preserves sharing
//! and cycles in the object graph (like Java's, via back-references).
//! The byte counts it produces drive the radio energy model, and the
//! serialization work itself is charged to whichever machine performs
//! it via [`crate::costs::serialize_mix`].

use crate::heap::{ArrayData, Heap, HeapObj};
use crate::value::{Handle, Value};
use bytes::{Buf, BufMut};
use std::collections::HashMap;
use std::fmt;

const TAG_NULL: u8 = 0;
const TAG_INT: u8 = 1;
const TAG_FLOAT: u8 = 2;
const TAG_BACKREF: u8 = 3;
const TAG_INT_ARR: u8 = 4;
const TAG_FLOAT_ARR: u8 = 5;
const TAG_REF_ARR: u8 = 6;
const TAG_OBJECT: u8 = 7;
/// Compact form for int arrays whose every element fits in `0..=255`
/// (image data): one byte per element, like serializing a Java
/// `byte[]`.
const TAG_INT_ARR_U8: u8 = 8;

/// Errors raised while decoding a serialized stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SerialError {
    /// Stream ended prematurely.
    Truncated,
    /// Unknown tag byte.
    BadTag(u8),
    /// Back-reference to an object not yet defined.
    BadBackref(u32),
}

impl fmt::Display for SerialError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SerialError::Truncated => write!(f, "serialized stream truncated"),
            SerialError::BadTag(t) => write!(f, "unknown serialization tag {t}"),
            SerialError::BadBackref(i) => write!(f, "dangling back-reference {i}"),
        }
    }
}

impl std::error::Error for SerialError {}

/// Serialize a value (and, transitively, the object graph it roots)
/// to bytes. Sharing and cycles are preserved via back-references.
///
/// # Errors
/// [`crate::VmError::BadHandle`] if the value references a handle not
/// present in `heap`.
pub fn serialize(heap: &Heap, root: Value) -> Result<Vec<u8>, crate::VmError> {
    let mut out = Vec::with_capacity(64);
    let mut seen: HashMap<Handle, u32> = HashMap::new();
    write_value(heap, root, &mut out, &mut seen)?;
    Ok(out)
}

/// Serialize a whole argument list (e.g. the parameters of an
/// offloaded invocation) as one stream.
///
/// # Errors
/// See [`serialize`].
pub fn serialize_args(heap: &Heap, args: &[Value]) -> Result<Vec<u8>, crate::VmError> {
    let mut out = Vec::with_capacity(16 + 16 * args.len());
    out.put_u32_le(args.len() as u32);
    let mut seen: HashMap<Handle, u32> = HashMap::new();
    for &a in args {
        write_value(heap, a, &mut out, &mut seen)?;
    }
    Ok(out)
}

fn write_value(
    heap: &Heap,
    v: Value,
    out: &mut Vec<u8>,
    seen: &mut HashMap<Handle, u32>,
) -> Result<(), crate::VmError> {
    match v {
        Value::Null => out.put_u8(TAG_NULL),
        Value::Int(i) => {
            out.put_u8(TAG_INT);
            out.put_i32_le(i);
        }
        Value::Float(f) => {
            out.put_u8(TAG_FLOAT);
            out.put_f64_le(f);
        }
        Value::Ref(h) => {
            if let Some(&id) = seen.get(&h) {
                out.put_u8(TAG_BACKREF);
                out.put_u32_le(id);
                return Ok(());
            }
            let id = seen.len() as u32;
            seen.insert(h, id);
            match heap.get(h)? {
                HeapObj::Array(ArrayData::Int(vals)) => {
                    if vals.iter().all(|&x| (0..=255).contains(&x)) {
                        out.put_u8(TAG_INT_ARR_U8);
                        out.put_u32_le(vals.len() as u32);
                        for &x in vals {
                            out.put_u8(x as u8);
                        }
                    } else {
                        out.put_u8(TAG_INT_ARR);
                        out.put_u32_le(vals.len() as u32);
                        for &x in vals {
                            out.put_i32_le(x);
                        }
                    }
                }
                HeapObj::Array(ArrayData::Float(vals)) => {
                    out.put_u8(TAG_FLOAT_ARR);
                    out.put_u32_le(vals.len() as u32);
                    for &x in vals {
                        out.put_f64_le(x);
                    }
                }
                HeapObj::Array(ArrayData::Ref(vals)) => {
                    out.put_u8(TAG_REF_ARR);
                    out.put_u32_le(vals.len() as u32);
                    let elems = vals.clone();
                    for x in elems {
                        write_value(heap, x, out, seen)?;
                    }
                }
                HeapObj::Object { class, fields } => {
                    out.put_u8(TAG_OBJECT);
                    out.put_u32_le(*class);
                    out.put_u32_le(fields.len() as u32);
                    let fields = fields.clone();
                    for x in fields {
                        write_value(heap, x, out, seen)?;
                    }
                }
            }
        }
    }
    Ok(())
}

/// Decode one value (allocating graph objects into `heap`).
///
/// # Errors
/// [`SerialError`] on malformed input.
pub fn deserialize(heap: &mut Heap, bytes: &[u8]) -> Result<Value, SerialError> {
    let mut buf = bytes;
    let mut table: Vec<Handle> = Vec::new();
    let v = read_value(heap, &mut buf, &mut table)?;
    Ok(v)
}

/// Decode an argument list produced by [`serialize_args`].
///
/// # Errors
/// [`SerialError`] on malformed input.
pub fn deserialize_args(heap: &mut Heap, bytes: &[u8]) -> Result<Vec<Value>, SerialError> {
    let mut buf = bytes;
    if buf.remaining() < 4 {
        return Err(SerialError::Truncated);
    }
    let n = buf.get_u32_le() as usize;
    let mut table: Vec<Handle> = Vec::new();
    let mut args = Vec::with_capacity(n);
    for _ in 0..n {
        args.push(read_value(heap, &mut buf, &mut table)?);
    }
    Ok(args)
}

fn read_value(
    heap: &mut Heap,
    buf: &mut &[u8],
    table: &mut Vec<Handle>,
) -> Result<Value, SerialError> {
    if buf.remaining() < 1 {
        return Err(SerialError::Truncated);
    }
    let tag = buf.get_u8();
    match tag {
        TAG_NULL => Ok(Value::Null),
        TAG_INT => {
            if buf.remaining() < 4 {
                return Err(SerialError::Truncated);
            }
            Ok(Value::Int(buf.get_i32_le()))
        }
        TAG_FLOAT => {
            if buf.remaining() < 8 {
                return Err(SerialError::Truncated);
            }
            Ok(Value::Float(buf.get_f64_le()))
        }
        TAG_BACKREF => {
            if buf.remaining() < 4 {
                return Err(SerialError::Truncated);
            }
            let id = buf.get_u32_le();
            table
                .get(id as usize)
                .map(|&h| Value::Ref(h))
                .ok_or(SerialError::BadBackref(id))
        }
        TAG_INT_ARR => {
            if buf.remaining() < 4 {
                return Err(SerialError::Truncated);
            }
            let len = buf.get_u32_le() as usize;
            if buf.remaining() < 4 * len {
                return Err(SerialError::Truncated);
            }
            let h = heap.alloc_int_array(len);
            table.push(h);
            for i in 0..len {
                let x = buf.get_i32_le();
                heap.array_set(h, i, Value::Int(x)).expect("fresh array");
            }
            Ok(Value::Ref(h))
        }
        TAG_INT_ARR_U8 => {
            if buf.remaining() < 4 {
                return Err(SerialError::Truncated);
            }
            let len = buf.get_u32_le() as usize;
            if buf.remaining() < len {
                return Err(SerialError::Truncated);
            }
            let h = heap.alloc_int_array(len);
            table.push(h);
            for i in 0..len {
                let x = i32::from(buf.get_u8());
                heap.array_set(h, i, Value::Int(x)).expect("fresh array");
            }
            Ok(Value::Ref(h))
        }
        TAG_FLOAT_ARR => {
            if buf.remaining() < 4 {
                return Err(SerialError::Truncated);
            }
            let len = buf.get_u32_le() as usize;
            if buf.remaining() < 8 * len {
                return Err(SerialError::Truncated);
            }
            let h = heap.alloc_float_array(len);
            table.push(h);
            for i in 0..len {
                let x = buf.get_f64_le();
                heap.array_set(h, i, Value::Float(x)).expect("fresh array");
            }
            Ok(Value::Ref(h))
        }
        TAG_REF_ARR => {
            if buf.remaining() < 4 {
                return Err(SerialError::Truncated);
            }
            let len = buf.get_u32_le() as usize;
            let h = heap.alloc_ref_array(len);
            table.push(h);
            for i in 0..len {
                let x = read_value(heap, buf, table)?;
                heap.array_set(h, i, x).expect("fresh array");
            }
            Ok(Value::Ref(h))
        }
        TAG_OBJECT => {
            if buf.remaining() < 8 {
                return Err(SerialError::Truncated);
            }
            let class = buf.get_u32_le();
            let nfields = buf.get_u32_le() as usize;
            // Allocate with placeholder nulls, register for cycles,
            // then fill.
            let h = heap.alloc_object(class, &vec![crate::value::Type::Ref; nfields]);
            table.push(h);
            for i in 0..nfields {
                let x = read_value(heap, buf, table)?;
                heap.field_set(h, i, x).expect("fresh object");
            }
            Ok(Value::Ref(h))
        }
        other => Err(SerialError::BadTag(other)),
    }
}

/// Number of bytes [`serialize`] would produce, without materializing
/// them (used by cost estimators).
pub fn serialized_size(heap: &Heap, root: Value) -> Result<u64, crate::VmError> {
    // Sizes are cheap enough to compute by serializing into a counting
    // sink; object graphs in the benchmarks are modest.
    Ok(serialize(heap, root)?.len() as u64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Type;

    #[test]
    fn scalar_round_trips() {
        let heap = Heap::new();
        let mut h2 = Heap::new();
        for v in [Value::Null, Value::Int(-42), Value::Float(2.5)] {
            let bytes = serialize(&heap, v).unwrap();
            assert_eq!(deserialize(&mut h2, &bytes).unwrap(), v);
        }
    }

    #[test]
    fn int_array_round_trips() {
        let mut heap = Heap::new();
        let a = heap.alloc_int_array(3);
        for (i, x) in [10, -20, 30].iter().enumerate() {
            heap.array_set(a, i, Value::Int(*x)).unwrap();
        }
        let bytes = serialize(&heap, Value::Ref(a)).unwrap();
        let mut h2 = Heap::new();
        let v = deserialize(&mut h2, &bytes).unwrap();
        let b = v.as_ref().unwrap();
        assert_eq!(h2.array_len(b).unwrap(), 3);
        assert_eq!(h2.array_get(b, 1).unwrap(), Value::Int(-20));
    }

    #[test]
    fn nested_graph_round_trips() {
        let mut heap = Heap::new();
        let inner = heap.alloc_float_array(2);
        heap.array_set(inner, 0, Value::Float(1.5)).unwrap();
        heap.array_set(inner, 1, Value::Float(-0.5)).unwrap();
        let outer = heap.alloc_ref_array(2);
        heap.array_set(outer, 0, Value::Ref(inner)).unwrap();
        heap.array_set(outer, 1, Value::Null).unwrap();
        let bytes = serialize(&heap, Value::Ref(outer)).unwrap();
        let mut h2 = Heap::new();
        let v = deserialize(&mut h2, &bytes).unwrap().as_ref().unwrap();
        let i0 = h2.array_get(v, 0).unwrap().as_ref().unwrap();
        assert_eq!(h2.array_get(i0, 0).unwrap(), Value::Float(1.5));
        assert_eq!(h2.array_get(v, 1).unwrap(), Value::Null);
    }

    #[test]
    fn sharing_is_preserved() {
        let mut heap = Heap::new();
        let shared = heap.alloc_int_array(1);
        heap.array_set(shared, 0, Value::Int(7)).unwrap();
        let outer = heap.alloc_ref_array(2);
        heap.array_set(outer, 0, Value::Ref(shared)).unwrap();
        heap.array_set(outer, 1, Value::Ref(shared)).unwrap();
        let bytes = serialize(&heap, Value::Ref(outer)).unwrap();
        let mut h2 = Heap::new();
        let v = deserialize(&mut h2, &bytes).unwrap().as_ref().unwrap();
        let a = h2.array_get(v, 0).unwrap().as_ref().unwrap();
        let b = h2.array_get(v, 1).unwrap().as_ref().unwrap();
        assert_eq!(a, b, "sharing lost");
        // And the back-reference kept the stream small: one array body.
        assert!(bytes.len() < 30, "stream too large: {}", bytes.len());
    }

    #[test]
    fn cycles_round_trip() {
        let mut heap = Heap::new();
        let a = heap.alloc_ref_array(1);
        heap.array_set(a, 0, Value::Ref(a)).unwrap(); // self-cycle
        let bytes = serialize(&heap, Value::Ref(a)).unwrap();
        let mut h2 = Heap::new();
        let v = deserialize(&mut h2, &bytes).unwrap().as_ref().unwrap();
        assert_eq!(h2.array_get(v, 0).unwrap(), Value::Ref(v));
    }

    #[test]
    fn objects_round_trip_with_class() {
        let mut heap = Heap::new();
        let o = heap.alloc_object(9, &[Type::Int, Type::Float, Type::Ref]);
        heap.field_set(o, 0, Value::Int(1)).unwrap();
        heap.field_set(o, 1, Value::Float(2.0)).unwrap();
        let bytes = serialize(&heap, Value::Ref(o)).unwrap();
        let mut h2 = Heap::new();
        let v = deserialize(&mut h2, &bytes).unwrap().as_ref().unwrap();
        assert_eq!(h2.class_of(v).unwrap(), 9);
        assert_eq!(h2.field_get(v, 0).unwrap(), Value::Int(1));
        assert_eq!(h2.field_get(v, 1).unwrap(), Value::Float(2.0));
        assert_eq!(h2.field_get(v, 2).unwrap(), Value::Null);
    }

    #[test]
    fn args_round_trip() {
        let mut heap = Heap::new();
        let a = heap.alloc_int_array(2);
        heap.array_set(a, 0, Value::Int(5)).unwrap();
        let bytes = serialize_args(&heap, &[Value::Int(3), Value::Ref(a), Value::Null]).unwrap();
        let mut h2 = Heap::new();
        let args = deserialize_args(&mut h2, &bytes).unwrap();
        assert_eq!(args.len(), 3);
        assert_eq!(args[0], Value::Int(3));
        assert_eq!(args[2], Value::Null);
        let b = args[1].as_ref().unwrap();
        assert_eq!(h2.array_get(b, 0).unwrap(), Value::Int(5));
    }

    #[test]
    fn byte_range_arrays_use_compact_encoding() {
        let mut heap = Heap::new();
        let img = heap.alloc_int_array(100);
        for i in 0..100 {
            heap.array_set(img, i, Value::Int((i % 256) as i32))
                .unwrap();
        }
        let bytes = serialize(&heap, Value::Ref(img)).unwrap();
        // tag + len + 100 bytes.
        assert_eq!(bytes.len(), 1 + 4 + 100);
        let mut h2 = Heap::new();
        let v = deserialize(&mut h2, &bytes).unwrap().as_ref().unwrap();
        for i in 0..100 {
            assert_eq!(h2.array_get(v, i).unwrap(), Value::Int((i % 256) as i32));
        }
        // One out-of-range element forces the wide encoding.
        heap.array_set(img, 0, Value::Int(-1)).unwrap();
        let wide = serialize(&heap, Value::Ref(img)).unwrap();
        assert_eq!(wide.len(), 1 + 4 + 400);
        let mut h3 = Heap::new();
        let v = deserialize(&mut h3, &wide).unwrap().as_ref().unwrap();
        assert_eq!(h3.array_get(v, 0).unwrap(), Value::Int(-1));
    }

    #[test]
    fn size_scales_with_payload() {
        let mut heap = Heap::new();
        let small = heap.alloc_int_array(10);
        let large = heap.alloc_int_array(1000);
        let s = serialized_size(&heap, Value::Ref(small)).unwrap();
        let l = serialized_size(&heap, Value::Ref(large)).unwrap();
        assert!(l > 90 * s / 10, "expected ~100x: {s} vs {l}");
        // Fresh arrays are all-zero, hence compactly encodable.
        assert_eq!(s, 1 + 4 + 10);
    }

    #[test]
    fn truncated_and_garbage_rejected() {
        let mut h = Heap::new();
        assert_eq!(deserialize(&mut h, &[]), Err(SerialError::Truncated));
        assert_eq!(
            deserialize(&mut h, &[TAG_INT, 1]),
            Err(SerialError::Truncated)
        );
        assert_eq!(deserialize(&mut h, &[99]), Err(SerialError::BadTag(99)));
        assert_eq!(
            deserialize(&mut h, &[TAG_BACKREF, 0, 0, 0, 0]),
            Err(SerialError::BadBackref(0))
        );
    }
}

//! Native code emission.
//!
//! Turns optimized NIR into a [`NativeCode`] object: for every NIR
//! instruction, a short sequence of *micro-instructions* (target
//! machine instructions with Fig 1 classes) plus spill traffic for
//! registers that did not fit the physical register file. The micro
//! sequences determine both the execution cost (each is one machine
//! event, with I-cache pressure from the method's code footprint) and
//! the code size — which in turn is what remote compilation pays to
//! download.

use crate::bytecode::MethodId;
use crate::nir::{NFunc, NInst, VReg};
use crate::regalloc::{allocate, Allocation, PHYS_REGS};
use jem_energy::InstrClass;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Memory behaviour of one micro-instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum MicroMem {
    /// Register-only.
    None,
    /// Frame access (spill slot); address derived from the frame base.
    Frame,
    /// Heap access; address computed at run time from the operands.
    Heap,
}

/// One emitted machine instruction.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Micro {
    /// Fig 1 instruction class.
    pub class: InstrClass,
    /// Memory behaviour.
    pub mem: MicroMem,
}

const fn m(class: InstrClass) -> Micro {
    Micro {
        class,
        mem: MicroMem::None,
    }
}

const fn mframe(class: InstrClass) -> Micro {
    Micro {
        class,
        mem: MicroMem::Frame,
    }
}

const fn mheap(class: InstrClass) -> Micro {
    Micro {
        class,
        mem: MicroMem::Heap,
    }
}

/// JIT compilation level (the paper's Local1/Local2/Local3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum OptLevel {
    /// Plain translation, no optimization.
    L1,
    /// CSE + LICM + strength reduction + redundancy elimination.
    L2,
    /// L2 + method inlining.
    L3,
}

impl OptLevel {
    /// All levels, ascending.
    pub const ALL: [OptLevel; 3] = [OptLevel::L1, OptLevel::L2, OptLevel::L3];

    /// Paper-style name.
    pub const fn name(self) -> &'static str {
        match self {
            OptLevel::L1 => "Local1",
            OptLevel::L2 => "Local2",
            OptLevel::L3 => "Local3",
        }
    }

    /// Zero-based index.
    pub const fn index(self) -> usize {
        match self {
            OptLevel::L1 => 0,
            OptLevel::L2 => 1,
            OptLevel::L3 => 2,
        }
    }
}

impl std::fmt::Display for OptLevel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.name())
    }
}

/// An executable native-code object for one method.
#[derive(Debug, Clone)]
pub struct NativeCode {
    /// The method this code implements.
    pub method: MethodId,
    /// Optimization level it was compiled at.
    pub level: OptLevel,
    /// The (optimized) NIR the executor interprets.
    pub func: NFunc,
    /// Spill slots for registers that did not fit [`PHYS_REGS`].
    pub spill_slots: HashMap<VReg, u32>,
    /// Per block, per instruction: emitted micro sequence.
    pub micros: Vec<Vec<Vec<Micro>>>,
    /// Per block, per instruction: cumulative micro offset (for
    /// I-cache addressing).
    pub offsets: Vec<Vec<u32>>,
    /// Emitted code size in bytes (4 bytes per micro, like SPARC).
    pub code_bytes: u32,
}

impl NativeCode {
    /// Total emitted machine instructions.
    pub fn micro_count(&self) -> u32 {
        self.code_bytes / 4
    }
}

/// Emission result: the code object and the work spent producing it.
#[derive(Debug, Clone)]
pub struct EmitResult {
    /// The code object.
    pub code: NativeCode,
    /// Work units (regalloc + emission).
    pub work_units: u64,
}

/// Emit `func` at `level`.
pub fn emit(func: NFunc, level: OptLevel) -> EmitResult {
    let alloc: Allocation = allocate(&func, PHYS_REGS);
    let mut work_units = alloc.work_units;

    let mut micros: Vec<Vec<Vec<Micro>>> = Vec::with_capacity(func.blocks.len());
    let mut offsets: Vec<Vec<u32>> = Vec::with_capacity(func.blocks.len());
    let mut cursor: u32 = 0;

    for block in &func.blocks {
        let mut bm = Vec::with_capacity(block.insts.len());
        let mut bo = Vec::with_capacity(block.insts.len());
        for inst in &block.insts {
            work_units += 4; // instruction selection
            let mut seq: Vec<Micro> = Vec::with_capacity(4);
            // Reload spilled operands from the frame.
            for u in inst.uses() {
                if alloc.is_spilled(u) {
                    seq.push(mframe(InstrClass::Load));
                    work_units += 1;
                }
            }
            seq.extend_from_slice(&core_micros(inst));
            // Store a spilled definition back to the frame.
            if let Some(d) = inst.def() {
                if alloc.is_spilled(d) {
                    seq.push(mframe(InstrClass::Store));
                    work_units += 1;
                }
            }
            bo.push(cursor);
            cursor += seq.len() as u32;
            bm.push(seq);
        }
        micros.push(bm);
        offsets.push(bo);
    }

    let code = NativeCode {
        method: func.method,
        level,
        code_bytes: cursor * 4,
        spill_slots: alloc.spill_slots,
        micros,
        offsets,
        func,
    };
    EmitResult { code, work_units }
}

/// The core (non-spill) micro sequence of one NIR instruction.
fn core_micros(inst: &NInst) -> Vec<Micro> {
    use InstrClass::*;
    match inst {
        NInst::IConst { .. } | NInst::NullConst { .. } | NInst::Mov { .. } => vec![m(AluSimple)],
        NInst::FConst { .. } => vec![m(AluSimple), m(AluSimple)], // 64-bit imm
        NInst::IBinOp { op, .. } => {
            if op.is_complex() {
                vec![m(AluComplex)]
            } else {
                vec![m(AluSimple)]
            }
        }
        NInst::IShlImm { .. } | NInst::INegOp { .. } => vec![m(AluSimple)],
        NInst::ICmpOp { .. } => vec![m(AluSimple), m(AluSimple)],
        NInst::FBinOp { .. } | NInst::FNegOp { .. } => vec![m(AluComplex)],
        NInst::FCmpOp { .. } => vec![m(AluComplex), m(AluSimple)],
        NInst::I2FOp { .. } | NInst::F2IOp { .. } => vec![m(AluComplex)],
        // Allocation: a runtime call (zeroing charged per byte by the
        // executor, matching the interpreter's accounting).
        NInst::NewArr { .. } | NInst::NewObj { .. } => vec![m(AluSimple), m(Branch)],
        // Array access: address arithmetic + bounds check + the access.
        NInst::ALoadOp { .. } => {
            vec![m(AluSimple), m(AluSimple), m(Branch), mheap(Load)]
        }
        NInst::AStoreOp { .. } => {
            vec![m(AluSimple), m(AluSimple), m(Branch), mheap(Store)]
        }
        NInst::ArrLenOp { .. } => vec![mheap(Load)],
        NInst::GetFieldOp { .. } => vec![mheap(Load)],
        NInst::PutFieldOp { .. } => vec![mheap(Store)],
        // Calls: argument staging is modeled by the callee's
        // `arg_copy_mix`; the call itself is register saves + jump.
        NInst::CallOp { .. } => vec![m(AluSimple), m(Branch)],
        // Virtual dispatch additionally loads the vtable entry.
        NInst::CallVirtOp { .. } => vec![mheap(Load), m(AluSimple), m(Branch)],
        NInst::Jmp { .. } => vec![m(Branch)],
        NInst::BrCond { .. } => vec![m(AluSimple), m(Branch)],
        NInst::Ret { .. } => vec![m(Branch)],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dsl::*;
    use crate::lower::lower;
    use crate::verify::verify_program;

    fn emit_fn(body: Vec<crate::dsl::Stmt>) -> NativeCode {
        let mut mb = ModuleBuilder::new();
        mb.func("f", vec![("n", DType::Int)], Some(DType::Int), body);
        let p = mb.compile().unwrap();
        verify_program(&p).unwrap();
        let id = p.find_method(MODULE_CLASS, "f").unwrap();
        emit(lower(&p, id).func, OptLevel::L1).code
    }

    #[test]
    fn emits_nonempty_code() {
        let code = emit_fn(vec![ret(var("n").add(iconst(1)))]);
        assert!(code.code_bytes > 0);
        assert_eq!(code.code_bytes % 4, 0);
        assert_eq!(code.micros.len(), code.func.blocks.len());
    }

    #[test]
    fn offsets_are_cumulative_and_within_bounds() {
        let code = emit_fn(vec![
            let_("a", new_arr(DType::Int, var("n"))),
            for_(
                "i",
                iconst(0),
                var("n"),
                vec![set_index(var("a"), var("i"), var("i"))],
            ),
            ret(var("a").index(iconst(0))),
        ]);
        let mut prev_end = 0u32;
        for (b, block) in code.offsets.iter().enumerate() {
            for (i, &off) in block.iter().enumerate() {
                assert_eq!(off, prev_end, "offset mismatch at {b}/{i}");
                prev_end = off + code.micros[b][i].len() as u32;
            }
        }
        assert_eq!(prev_end * 4, code.code_bytes);
    }

    #[test]
    fn native_add_is_one_instruction() {
        // The point of compilation: iadd is 1 micro vs ~10 interpreted
        // events.
        let micros = core_micros(&NInst::IBinOp {
            op: crate::bytecode::IBin::Add,
            d: VReg(0),
            a: VReg(0),
            b: VReg(0),
        });
        assert_eq!(micros.len(), 1);
        assert_eq!(micros[0].class, InstrClass::AluSimple);
    }

    #[test]
    fn heap_micros_marked() {
        let micros = core_micros(&NInst::ALoadOp {
            d: VReg(0),
            arr: VReg(0),
            idx: VReg(0),
            ty: crate::value::Type::Int,
        });
        assert_eq!(
            micros.iter().filter(|mi| mi.mem == MicroMem::Heap).count(),
            1
        );
    }

    #[test]
    fn spilled_registers_add_frame_traffic() {
        // Build a function with enormous register pressure via many
        // live locals.
        let mut body = Vec::new();
        for i in 0..30 {
            body.push(let_(&format!("v{i}"), var("n").add(iconst(i))));
        }
        // Sum them all so they stay live.
        let mut acc = var("v0");
        for i in 1..30 {
            acc = acc.add(var(&format!("v{i}")));
        }
        body.push(ret(acc));
        let code = emit_fn(body);
        let frame_micros: usize = code
            .micros
            .iter()
            .flatten()
            .flatten()
            .filter(|mi| mi.mem == MicroMem::Frame)
            .count();
        assert!(
            frame_micros > 0,
            "expected spill traffic with 30 live values"
        );
    }

    #[test]
    fn level_metadata_preserved() {
        let mut mb = ModuleBuilder::new();
        mb.func("f", vec![], Some(DType::Int), vec![ret(iconst(1))]);
        let p = mb.compile().unwrap();
        let id = p.find_method(MODULE_CLASS, "f").unwrap();
        for level in OptLevel::ALL {
            let r = emit(lower(&p, id).func, level);
            assert_eq!(r.code.level, level);
            assert!(r.work_units > 0);
        }
        assert!(OptLevel::L1 < OptLevel::L2 && OptLevel::L2 < OptLevel::L3);
        assert_eq!(OptLevel::L3.name(), "Local3");
    }
}

//! The pre-decoded fast-path execution engine.
//!
//! [`crate::interp`] pays a real price for every executed bytecode:
//! it re-derives the handler address, rebuilds the dispatch and
//! per-op work [`InstrMix`](jem_energy::InstrMix)es, and walks all
//! instruction classes twice to charge them. None of that depends on
//! anything but the opcode, so this module performs a **one-time
//! translation** of a method's `Vec<Op>` into a flattened
//! [`DecodedMethod`] stream whose entries carry
//!
//! * a precompiled [`ChargePlan`] index — the handler I-cache address
//!   and the exact ordered core-energy additions of
//!   `step + dispatch_mix + op_work_mix`, built once per machine
//!   energy table by [`CostCache`];
//! * pre-resolved operands (validated local slots, callee arity for
//!   static calls);
//! * **fused superinstructions** for the hot op sequences the energy
//!   flamegraphs show (`Load+Load+IArith`, `IConst+IArith`,
//!   `Load+Store`, compare-and-branch, `Load+Load+ALoad`);
//! * a **monomorphic inline cache** per virtual call site.
//!
//! # Bit-exactness
//!
//! The fast path is *observationally identical* to the reference
//! interpreter: the simulated machine receives the same I-cache
//! accesses at the same addresses, the same per-component energy
//! additions in the same order (f64 addition is not associative, so
//! plans store individual products — see
//! [`Machine::step_planned`](jem_energy::Machine::step_planned)), the
//! same step-budget increments at the same points, and errors surface
//! at the same execution points with the same machine state. Fused
//! superinstructions replay each component's charge plan and budget
//! bump *before* executing the combined semantics; this is safe
//! because every non-final component (loads, constants) is
//! side-effect-free and infallible once its local slot has been
//! validated at decode time. `crates/jvm/tests/fastpath_equiv.rs`
//! enforces the equivalence property across randomized programs.
//!
//! # Caching
//!
//! Decoded code is a **derived artifact**: keyed by
//! [`MethodId`], rebuilt on demand, never serialized. Checkpoint
//! snapshots (`jem_core::ckpt`) therefore need no format change, and a
//! resumed run with a cold decode cache is bit-identical to the warm
//! uninterrupted run.

use crate::arith;
use crate::bytecode::{ClassId, Cond, FBin, IBin, MethodId, Op};
use crate::class::Method;
use crate::costs;
use crate::value::{Type, Value};
use crate::vm::Vm;
use crate::VmError;
use jem_energy::{ChargePlan, ChargeSeq, EnergyTable, InstrClass, MemOp};
use std::cell::Cell;

/// Number of distinct interpreter handlers (dense opcode indices).
pub const NUM_HANDLERS: usize = 43;

/// Plan indices (== [`costs`] opcode indices) for the handlers the
/// decoded engine references directly.
const P_ICONST: usize = 0;
const P_FCONST: usize = 1;
const P_NULLCONST: usize = 2;
const P_LOAD: usize = 3;
const P_STORE: usize = 4;
const P_POP: usize = 5;
const P_DUP: usize = 6;
const P_SWAP: usize = 7;
const P_IARITH: usize = 8; // + ibin index, 8..=17
const P_INEG: usize = 18;
const P_ICMP: usize = 19;
const P_FARITH: usize = 20;
const P_FNEG: usize = 24;
const P_FCMP: usize = 25;
const P_I2F: usize = 26;
const P_F2I: usize = 27;
const P_GOTO: usize = 28;
const P_ICMPBR: usize = 29;
const P_BRZ: usize = 30;
const P_NEWARR: usize = 31;
const P_ALOAD: usize = 32;
const P_ASTORE: usize = 33;
const P_ARRLEN: usize = 34;
const P_NEW: usize = 35;
const P_GETFIELD: usize = 36;
const P_PUTFIELD: usize = 37;
const P_CALL: usize = 38;
const P_CALLVIRT: usize = 39;
const P_RET: usize = 40;
const P_RETVAL: usize = 41;
const P_NOP: usize = 42;

/// Simulated address of the second fetch heap-op handlers issue (the
/// element/field touch), mirroring `handler_address(op) + 4`.
const fn aux_pc(plan_idx: usize) -> u64 {
    costs::INTERP_CODE_BASE + plan_idx as u64 * costs::HANDLER_STRIDE + 4
}

/// One precompiled charge plan per interpreter handler, built from a
/// machine's energy table, plus merged [`ChargeSeq`]s — the cached
/// cost mixes — for every fused superinstruction shape. Plans fold the
/// handler fetch, the dispatch mix and the per-op work mix of
/// [`crate::costs`] — the three charges the reference interpreter
/// recomputes on every executed bytecode; a merged seq folds the whole
/// fused sequence's dispatches into one replay.
#[derive(Debug)]
pub struct CostCache {
    plans: [ChargePlan; NUM_HANDLERS],
    /// `Load; Load; IArith op` merged, indexed by `IBin`.
    ll_iarith: [ChargeSeq; 10],
    /// `Load; IConst; IArith op` merged, indexed by `IBin`.
    lic_iarith: [ChargeSeq; 10],
    /// `Load; IArith op` merged, indexed by `IBin`.
    l_iarith: [ChargeSeq; 10],
    /// `IConst; IArith op` merged, indexed by `IBin`.
    ic_iarith: [ChargeSeq; 10],
    /// `Load; Store` merged.
    load_store: ChargeSeq,
    /// `IConst; Store` merged.
    iconst_store: ChargeSeq,
    /// `Load; Load; ICmpBr` merged.
    ll_icmpbr: ChargeSeq,
    /// `Load; IConst; ICmpBr` merged.
    lic_icmpbr: ChargeSeq,
    /// `Load; Load; ALoad` merged.
    ll_aload: ChargeSeq,
}

impl CostCache {
    /// Build the per-handler plans for `table`.
    pub fn new(table: &EnergyTable) -> Self {
        let rep = representative_ops();
        let plans: [ChargePlan; NUM_HANDLERS] = std::array::from_fn(|i| {
            let op = &rep[i];
            debug_assert!(costs::opcode_index(op) as usize == i || matches!(op, Op::FArith(_)));
            ChargePlan::compile(
                table,
                costs::INTERP_CODE_BASE + i as u64 * costs::HANDLER_STRIDE,
                InstrClass::Branch,
                &[costs::dispatch_mix(), costs::op_work_mix(op)],
            )
        });
        let m2 = |i: usize, j: usize| ChargeSeq::merge(&[&plans[i], &plans[j]]);
        let m3 =
            |i: usize, j: usize, k: usize| ChargeSeq::merge(&[&plans[i], &plans[j], &plans[k]]);
        CostCache {
            ll_iarith: std::array::from_fn(|i| m3(P_LOAD, P_LOAD, P_IARITH + i)),
            lic_iarith: std::array::from_fn(|i| m3(P_LOAD, P_ICONST, P_IARITH + i)),
            l_iarith: std::array::from_fn(|i| m2(P_LOAD, P_IARITH + i)),
            ic_iarith: std::array::from_fn(|i| m2(P_ICONST, P_IARITH + i)),
            load_store: m2(P_LOAD, P_STORE),
            iconst_store: m2(P_ICONST, P_STORE),
            ll_icmpbr: m3(P_LOAD, P_LOAD, P_ICMPBR),
            lic_icmpbr: m3(P_LOAD, P_ICONST, P_ICMPBR),
            ll_aload: m3(P_LOAD, P_LOAD, P_ALOAD),
            plans,
        }
    }

    /// The plan for handler index `idx`.
    #[inline]
    pub fn plan(&self, idx: usize) -> &ChargePlan {
        &self.plans[idx]
    }
}

/// One op with each dense opcode index (indices 21–23 are unassigned
/// gaps in the handler layout and reuse the `FArith` shape, which owns
/// index 20 for all four float operators).
fn representative_ops() -> [Op; NUM_HANDLERS] {
    [
        Op::IConst(0),
        Op::FConst(0.0),
        Op::NullConst,
        Op::Load(0),
        Op::Store(0),
        Op::Pop,
        Op::Dup,
        Op::Swap,
        Op::IArith(IBin::Add),
        Op::IArith(IBin::Sub),
        Op::IArith(IBin::Mul),
        Op::IArith(IBin::Div),
        Op::IArith(IBin::Rem),
        Op::IArith(IBin::And),
        Op::IArith(IBin::Or),
        Op::IArith(IBin::Xor),
        Op::IArith(IBin::Shl),
        Op::IArith(IBin::Shr),
        Op::INeg,
        Op::ICmp,
        Op::FArith(FBin::Add),
        Op::FArith(FBin::Sub), // gap: same handler shape as 20
        Op::FArith(FBin::Mul), // gap
        Op::FArith(FBin::Div), // gap
        Op::FNeg,
        Op::FCmp,
        Op::I2F,
        Op::F2I,
        Op::Goto(0),
        Op::ICmpBr(Cond::Eq, 0),
        Op::BrZ(Cond::Eq, 0),
        Op::NewArr(Type::Int),
        Op::ALoad(Type::Int),
        Op::AStore(Type::Int),
        Op::ArrLen,
        Op::New(ClassId(0)),
        Op::GetField(0, Type::Int),
        Op::PutField(0),
        Op::Call(MethodId(0)),
        Op::CallVirt { slot: 0, argc: 0 },
        Op::Ret,
        Op::RetVal,
        Op::Nop,
    ]
}

/// Plan index for an integer-arithmetic handler.
#[inline]
const fn iarith_plan(b: IBin) -> usize {
    P_IARITH
        + match b {
            IBin::Add => 0,
            IBin::Sub => 1,
            IBin::Mul => 2,
            IBin::Div => 3,
            IBin::Rem => 4,
            IBin::And => 5,
            IBin::Or => 6,
            IBin::Xor => 7,
            IBin::Shl => 8,
            IBin::Shr => 9,
        }
}

/// Inline-cache cell of one virtual call site: `(receiver class,
/// resolved target)`. [`IC_EMPTY`] marks a cold site.
type InlineCache = Cell<(u32, MethodId)>;

const IC_EMPTY: (u32, MethodId) = (u32::MAX, MethodId(0));

/// One decoded instruction.
///
/// Plain variants mirror [`Op`] with operands pre-resolved; fused
/// variants execute a whole hot sequence in one dispatch. Local-slot
/// operands of plain `Load`/`Store` and of every fused variant are
/// validated against `nlocals` at decode time; out-of-range slots
/// decode to `BadLoad`/`BadStore`, which charge and then fail exactly
/// like the reference interpreter.
#[derive(Debug)]
pub enum DOp {
    /// Push an integer constant.
    IConst(i32),
    /// Push a float constant.
    FConst(f64),
    /// Push `null`.
    NullConst,
    /// Push local `n` (slot validated at decode time).
    Load(u16),
    /// Pop into local `n` (slot validated at decode time).
    Store(u16),
    /// `Load` with an out-of-range slot: charge, then `BadLocal`.
    BadLoad(u16),
    /// `Store` with an out-of-range slot: charge, pop, then `BadLocal`.
    BadStore(u16),
    /// Discard the top of stack.
    Pop,
    /// Duplicate the top of stack.
    Dup,
    /// Swap the two topmost values.
    Swap,
    /// Pop two ints, push the binary result.
    IArith(IBin),
    /// Negate the top int.
    INeg,
    /// Pop two ints, push the comparison result.
    ICmp,
    /// Pop two floats, push the binary result.
    FArith(FBin),
    /// Negate the top float.
    FNeg,
    /// Pop two floats, push the comparison result.
    FCmp,
    /// int → float.
    I2F,
    /// float → int.
    F2I,
    /// Unconditional jump.
    Goto(u32),
    /// Pop two ints, conditional jump.
    ICmpBr(Cond, u32),
    /// Pop one int, compare against zero, conditional jump.
    BrZ(Cond, u32),
    /// Pop length, allocate an array, push its reference.
    NewArr(Type),
    /// Pop index and array ref, push the element.
    ALoad,
    /// Pop value, index and array ref; store the element.
    AStore,
    /// Pop array ref, push its length.
    ArrLen,
    /// Allocate an instance, push its reference.
    New(ClassId),
    /// Pop object ref, push field `n`.
    GetField(u16),
    /// Pop value and object ref; store into field `n`.
    PutField(u16),
    /// Static call with the callee's arity pre-resolved.
    Call {
        /// Callee.
        target: MethodId,
        /// Pre-resolved argument count.
        nargs: u32,
    },
    /// Virtual call with a monomorphic inline cache.
    CallVirt {
        /// Vtable slot.
        slot: u16,
        /// Non-receiver argument count.
        argc: u8,
        /// `(class, target)` of the last dispatch from this site.
        ic: InlineCache,
    },
    /// Return with no value.
    Ret,
    /// Return the top of stack.
    RetVal,
    /// No-op.
    Nop,

    // ---- fused superinstructions ----
    /// `Load a; Load b; IArith op`.
    LoadLoadIArith(u16, u16, IBin),
    /// `Load a; IConst k; IArith op`.
    LoadIConstIArith(u16, i32, IBin),
    /// `Load b; IArith op` (left operand already on the stack).
    LoadIArith(u16, IBin),
    /// `IConst k; IArith op` (left operand already on the stack).
    IConstIArith(i32, IBin),
    /// `Load src; Store dst` (local-to-local move).
    LoadStore(u16, u16),
    /// `IConst k; Store dst` (constant into a local).
    IConstStore(i32, u16),
    /// `Load a; Load b; ICmpBr cond, t`.
    LoadLoadICmpBr(u16, u16, Cond, u32),
    /// `Load a; IConst k; ICmpBr cond, t`.
    LoadIConstICmpBr(u16, i32, Cond, u32),
    /// `Load arr; Load idx; ALoad` (array element read).
    LoadLoadALoad(u16, u16),
}

/// One decoded slot: the operation plus how many original bytecode
/// slots it spans (1 for plain ops, 2–3 for superinstructions).
#[derive(Debug)]
pub struct DecodedOp {
    /// The decoded operation.
    pub op: DOp,
    /// Original slots consumed (fall-through advance).
    pub len: u8,
}

/// A method translated for the fast path. Slots map 1:1 onto the
/// original bytecode indices, so branch targets need no relocation;
/// the interior slots of a fused sequence are kept in plain decoded
/// form but are unreachable (fusion never spans a branch target).
#[derive(Debug)]
pub struct DecodedMethod {
    /// Decoded code, index-compatible with the original `Vec<Op>`.
    pub ops: Vec<DecodedOp>,
    /// Local-variable slots.
    pub nlocals: u16,
    /// Whether the signature declares a return value.
    pub ret_is_some: bool,
}

/// Plain (unfused) decoding of one op.
fn decode_plain(op: &Op, nlocals: u16) -> DOp {
    match *op {
        Op::IConst(v) => DOp::IConst(v),
        Op::FConst(v) => DOp::FConst(v),
        Op::NullConst => DOp::NullConst,
        Op::Load(n) => {
            if n < nlocals {
                DOp::Load(n)
            } else {
                DOp::BadLoad(n)
            }
        }
        Op::Store(n) => {
            if n < nlocals {
                DOp::Store(n)
            } else {
                DOp::BadStore(n)
            }
        }
        Op::Pop => DOp::Pop,
        Op::Dup => DOp::Dup,
        Op::Swap => DOp::Swap,
        Op::IArith(b) => DOp::IArith(b),
        Op::INeg => DOp::INeg,
        Op::ICmp => DOp::ICmp,
        Op::FArith(b) => DOp::FArith(b),
        Op::FNeg => DOp::FNeg,
        Op::FCmp => DOp::FCmp,
        Op::I2F => DOp::I2F,
        Op::F2I => DOp::F2I,
        Op::Goto(t) => DOp::Goto(t),
        Op::ICmpBr(c, t) => DOp::ICmpBr(c, t),
        Op::BrZ(c, t) => DOp::BrZ(c, t),
        Op::NewArr(ty) => DOp::NewArr(ty),
        Op::ALoad(_) => DOp::ALoad,
        Op::AStore(_) => DOp::AStore,
        Op::ArrLen => DOp::ArrLen,
        Op::New(cid) => DOp::New(cid),
        Op::GetField(slot, _) => DOp::GetField(slot),
        Op::PutField(slot) => DOp::PutField(slot),
        Op::Call(mid) => DOp::Call {
            target: mid,
            // Arity resolved lazily by the engine on first execution
            // would cost a branch per call; resolving here needs the
            // program, which `decode_method` threads through.
            nargs: 0,
        },
        Op::CallVirt { slot, argc } => DOp::CallVirt {
            slot,
            argc,
            ic: Cell::new(IC_EMPTY),
        },
        Op::Ret => DOp::Ret,
        Op::RetVal => DOp::RetVal,
        Op::Nop => DOp::Nop,
    }
}

/// Translate `method` into its decoded fast-path form.
///
/// `callee_arity(mid)` pre-resolves static-call arities (the reference
/// interpreter re-reads them from the program on every call).
pub fn decode_method(method: &Method, callee_arity: &dyn Fn(MethodId) -> u32) -> DecodedMethod {
    let code = &method.code;
    let nlocals = method.nlocals;

    // Slots any branch can land on: fusion must not swallow them.
    let mut is_target = vec![false; code.len()];
    for op in code {
        if let Op::Goto(t) | Op::ICmpBr(_, t) | Op::BrZ(_, t) = *op {
            if let Some(flag) = is_target.get_mut(t as usize) {
                *flag = true;
            }
        }
    }

    let in_range = |n: u16| n < nlocals;
    let free = |i: usize| i < code.len() && !is_target[i];

    let mut ops = Vec::with_capacity(code.len());
    let mut i = 0usize;
    while i < code.len() {
        // Try the longest fusion first; every component local slot
        // must be statically in range so interior semantics cannot
        // fail or charge.
        let fused: Option<(DOp, u8)> = match code[i] {
            Op::Load(a) if in_range(a) && free(i + 1) => match code[i + 1] {
                Op::Load(b) if in_range(b) && free(i + 2) => match code[i + 2] {
                    Op::IArith(op) => Some((DOp::LoadLoadIArith(a, b, op), 3)),
                    Op::ICmpBr(c, t) => Some((DOp::LoadLoadICmpBr(a, b, c, t), 3)),
                    Op::ALoad(_) => Some((DOp::LoadLoadALoad(a, b), 3)),
                    _ => None,
                },
                Op::IConst(k) if free(i + 2) => match code[i + 2] {
                    Op::IArith(op) => Some((DOp::LoadIConstIArith(a, k, op), 3)),
                    Op::ICmpBr(c, t) => Some((DOp::LoadIConstICmpBr(a, k, c, t), 3)),
                    _ => None,
                },
                Op::IArith(op) => Some((DOp::LoadIArith(a, op), 2)),
                Op::Store(d) if in_range(d) => Some((DOp::LoadStore(a, d), 2)),
                _ => None,
            },
            Op::IConst(k) if free(i + 1) => match code[i + 1] {
                Op::IArith(op) => Some((DOp::IConstIArith(k, op), 2)),
                Op::Store(d) if in_range(d) => Some((DOp::IConstStore(k, d), 2)),
                _ => None,
            },
            _ => None,
        };

        match fused {
            Some((dop, len)) => {
                ops.push(DecodedOp { op: dop, len });
                // Interior slots: unreachable (not branch targets),
                // decoded plainly to keep 1:1 index mapping.
                for k in 1..len as usize {
                    ops.push(DecodedOp {
                        op: decode_plain(&code[i + k], nlocals),
                        len: 1,
                    });
                }
                i += len as usize;
            }
            None => {
                let mut dop = decode_plain(&code[i], nlocals);
                if let DOp::Call { target, nargs } = &mut dop {
                    *nargs = callee_arity(*target);
                }
                ops.push(DecodedOp { op: dop, len: 1 });
                i += 1;
            }
        }
    }

    DecodedMethod {
        ops,
        nlocals,
        ret_is_some: method.sig.ret.is_some(),
    }
}

// ---------------------------------------------------------------------
// Batched interpreter runs
//
// A *run* is a maximal straight-line stretch of decoded ops whose
// charges can be replayed as one merged [`ChargeSeq`] and whose budget
// bumps can be folded into a single addition, before the per-op
// semantics execute. Bit-exactness holds because every **interior** op
// of a run is machine-free (its only machine interaction is the
// hoisted handler charge) and statically infallible, so the machine
// event sequence and every possible error point are unchanged; only
// the **final** op of a run may fail, branch, return, or touch the
// machine mid-semantics (heap micro-accesses, calls), and by then the
// hoisted charges exactly equal the per-op charges the reference
// interpreter would have issued.
//
// Infallibility is proved by a conservative forward dataflow analysis
// over the decoded stream: an abstract stack/locals state of
// [`STy`]s, met at join points, `Unknown` once depth information is
// lost. The single soundness caveat is unverified code whose callee
// returns a value when its signature (or the consistent vtable view)
// says it does not, or vice versa — the only way the runtime stack
// depth can diverge from the static model. Every call site therefore
// carries its expected return presence ([`MethodRuns::call_ret`]);
// the engine compares it against the actual return and sets a
// per-frame *taint* flag on mismatch, after which the frame never
// enters a batched run again and falls back to per-op execution.

/// Sentinel in [`MethodRuns::run_at`]: no batched run starts here.
pub const NO_RUN: u32 = u32::MAX;

/// One batched straight-line stretch of decoded ops.
#[derive(Debug)]
pub struct InterpRun {
    /// Number of decoded ops covered (≥ 2).
    pub nops: u32,
    /// Charged instruction events (budget bumps) for the whole run —
    /// one per original bytecode, so fused ops contribute 2–3.
    pub steps: u64,
    /// The merged charge replay of every covered handler plan.
    pub seq: ChargeSeq,
}

/// Batched-run metadata of one decoded method, compiled for one
/// machine energy table. A derived artifact — keyed by [`MethodId`]
/// in the VM, rebuilt on demand, never serialized.
#[derive(Debug)]
pub struct MethodRuns {
    /// Index into `runs` of the run starting at each decoded slot
    /// ([`NO_RUN`] = none).
    pub run_at: Vec<u32>,
    /// The batched runs.
    pub runs: Vec<InterpRun>,
    /// Expected return presence per call-site slot: 0 = no value,
    /// 1 = value, 2 = statically unknown (don't care). A runtime
    /// mismatch taints the frame (see module notes above).
    pub call_ret: Vec<u8>,
}

/// Abstract operand type. `Any` is the lattice bottom: a value of
/// unknown kind. `Int`/`Float` are *guarantees* — every runtime value
/// in an untainted frame at this position is of that kind.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum STy {
    Int,
    Float,
    Any,
}

#[inline]
fn meet(a: STy, b: STy) -> STy {
    if a == b {
        a
    } else {
        STy::Any
    }
}

/// Abstract frame state. `Unknown` (absorbing at joins) means the
/// stack depth itself is no longer tracked — only unconditionally
/// infallible ops may join a run from here.
#[derive(Debug, Clone)]
enum AState {
    Known { stack: Vec<STy>, locals: Vec<STy> },
    Unknown,
}

/// Static effect of one decoded op.
struct Eff {
    /// Cannot raise a [`VmError`] from the analyzed state.
    infallible: bool,
    /// Semantics touch the machine (heap micro-charges, allocation
    /// mixes, calls) — may only be the *final* op of a run.
    machine_mid: bool,
    /// Falls through to the next slot.
    fall: bool,
    /// Branch-target successor.
    target: Option<u32>,
}

const FALL: Eff = Eff {
    infallible: true,
    machine_mid: false,
    fall: true,
    target: None,
};
/// Guaranteed runtime error before any successor.
const NO_SUCC: Eff = Eff {
    infallible: false,
    machine_mid: false,
    fall: false,
    target: None,
};
const MID: Eff = Eff {
    infallible: false,
    machine_mid: true,
    fall: true,
    target: None,
};

#[inline]
fn fallible_fall(infallible: bool) -> Eff {
    Eff {
        infallible,
        machine_mid: false,
        fall: true,
        target: None,
    }
}

#[inline]
fn divrem(b: IBin) -> bool {
    matches!(b, IBin::Div | IBin::Rem)
}

/// The branch target of a decoded op, if any.
fn branch_target(dop: &DOp) -> Option<u32> {
    match *dop {
        DOp::Goto(t)
        | DOp::ICmpBr(_, t)
        | DOp::BrZ(_, t)
        | DOp::LoadLoadICmpBr(_, _, _, t)
        | DOp::LoadIConstICmpBr(_, _, _, t) => Some(t),
        _ => None,
    }
}

/// Return presence of virtual slot `slot` across every class that
/// provides it: `Some(r)` when all agree (or `Some(false)` when none
/// provides it — the call site can only raise `BadVSlot`), `None`
/// when providers disagree (unverified program).
fn virt_ret(program: &crate::class::Program, slot: u16) -> Option<bool> {
    let mut ret: Option<bool> = None;
    for class in &program.classes {
        if let Some(&t) = class.vtable.get(slot as usize) {
            let r = program.method(t).sig.ret.is_some();
            match ret {
                None => ret = Some(r),
                Some(p) if p != r => return None,
                _ => {}
            }
        }
    }
    Some(ret.unwrap_or(false))
}

/// Transfer function: mutate `st` by `dop`'s stack effect and report
/// its static effect.
fn apply_dop(dop: &DOp, st: &mut AState, program: &crate::class::Program) -> Eff {
    let (stack, locals) = match st {
        AState::Unknown => {
            // Depth unknown: only control flow and the ops that are
            // infallible from *any* state matter.
            return match *dop {
                DOp::Goto(t) => Eff {
                    infallible: true,
                    machine_mid: false,
                    fall: false,
                    target: Some(t),
                },
                DOp::ICmpBr(_, t)
                | DOp::BrZ(_, t)
                | DOp::LoadLoadICmpBr(_, _, _, t)
                | DOp::LoadIConstICmpBr(_, _, _, t) => Eff {
                    infallible: false,
                    machine_mid: false,
                    fall: true,
                    target: Some(t),
                },
                DOp::Ret | DOp::RetVal | DOp::BadLoad(_) | DOp::BadStore(_) => NO_SUCC,
                DOp::IConst(_)
                | DOp::FConst(_)
                | DOp::NullConst
                | DOp::Load(_)
                | DOp::Nop
                | DOp::LoadStore(_, _)
                | DOp::IConstStore(_, _) => FALL,
                DOp::NewArr(_)
                | DOp::ALoad
                | DOp::AStore
                | DOp::ArrLen
                | DOp::New(_)
                | DOp::GetField(_)
                | DOp::PutField(_)
                | DOp::Call { .. }
                | DOp::CallVirt { .. }
                | DOp::LoadLoadALoad(_, _) => MID,
                _ => fallible_fall(false),
            };
        }
        AState::Known { stack, locals } => (stack, locals),
    };

    macro_rules! pop {
        () => {
            match stack.pop() {
                Some(t) => t,
                // Guaranteed stack underflow at runtime.
                None => return NO_SUCC,
            }
        };
    }

    let mut make_unknown = false;
    let eff = match *dop {
        DOp::IConst(_) => {
            stack.push(STy::Int);
            FALL
        }
        DOp::FConst(_) => {
            stack.push(STy::Float);
            FALL
        }
        DOp::NullConst => {
            stack.push(STy::Any);
            FALL
        }
        DOp::Load(n) => {
            stack.push(locals[n as usize]);
            FALL
        }
        DOp::Store(n) => {
            let v = pop!();
            locals[n as usize] = v;
            FALL
        }
        DOp::BadLoad(_) | DOp::BadStore(_) => NO_SUCC,
        DOp::Pop => {
            pop!();
            FALL
        }
        DOp::Dup => {
            let t = match stack.last() {
                Some(&t) => t,
                None => return NO_SUCC,
            };
            stack.push(t);
            FALL
        }
        DOp::Swap => {
            let a = pop!();
            let b = pop!();
            stack.push(a);
            stack.push(b);
            FALL
        }
        DOp::IArith(b) => {
            let rb = pop!();
            let ra = pop!();
            stack.push(STy::Int);
            fallible_fall(ra == STy::Int && rb == STy::Int && !divrem(b))
        }
        DOp::INeg => {
            let a = pop!();
            stack.push(STy::Int);
            fallible_fall(a == STy::Int)
        }
        DOp::ICmp => {
            let b = pop!();
            let a = pop!();
            stack.push(STy::Int);
            fallible_fall(a == STy::Int && b == STy::Int)
        }
        DOp::FArith(_) => {
            let b = pop!();
            let a = pop!();
            stack.push(STy::Float);
            fallible_fall(a == STy::Float && b == STy::Float)
        }
        DOp::FNeg => {
            let a = pop!();
            stack.push(STy::Float);
            fallible_fall(a == STy::Float)
        }
        DOp::FCmp => {
            let b = pop!();
            let a = pop!();
            stack.push(STy::Int);
            fallible_fall(a == STy::Float && b == STy::Float)
        }
        DOp::I2F => {
            let a = pop!();
            stack.push(STy::Float);
            fallible_fall(a == STy::Int)
        }
        DOp::F2I => {
            let a = pop!();
            stack.push(STy::Int);
            fallible_fall(a == STy::Float)
        }
        DOp::Goto(t) => Eff {
            infallible: true,
            machine_mid: false,
            fall: false,
            target: Some(t),
        },
        DOp::ICmpBr(_, t) => {
            let b = pop!();
            let a = pop!();
            Eff {
                infallible: a == STy::Int && b == STy::Int,
                machine_mid: false,
                fall: true,
                target: Some(t),
            }
        }
        DOp::BrZ(_, t) => {
            let a = pop!();
            Eff {
                infallible: a == STy::Int,
                machine_mid: false,
                fall: true,
                target: Some(t),
            }
        }
        DOp::NewArr(_) => {
            pop!();
            stack.push(STy::Any);
            MID
        }
        DOp::ALoad => {
            pop!();
            pop!();
            stack.push(STy::Any);
            MID
        }
        DOp::AStore => {
            pop!();
            pop!();
            pop!();
            MID
        }
        DOp::ArrLen => {
            pop!();
            stack.push(STy::Int);
            MID
        }
        DOp::New(_) => {
            stack.push(STy::Any);
            MID
        }
        DOp::GetField(_) => {
            pop!();
            stack.push(STy::Any);
            MID
        }
        DOp::PutField(_) => {
            pop!();
            pop!();
            MID
        }
        DOp::Call { target, nargs } => {
            for _ in 0..nargs {
                pop!();
            }
            if program.method(target).sig.ret.is_some() {
                stack.push(STy::Any);
            }
            MID
        }
        DOp::CallVirt { slot, argc, .. } => {
            for _ in 0..=argc {
                pop!();
            }
            match virt_ret(program, slot) {
                Some(true) => stack.push(STy::Any),
                Some(false) => {}
                None => make_unknown = true,
            }
            MID
        }
        DOp::Ret => NO_SUCC,
        DOp::RetVal => {
            pop!();
            NO_SUCC
        }
        DOp::Nop => FALL,

        DOp::LoadLoadIArith(a, b, op) => {
            let (ta, tb) = (locals[a as usize], locals[b as usize]);
            stack.push(STy::Int);
            fallible_fall(ta == STy::Int && tb == STy::Int && !divrem(op))
        }
        DOp::LoadIConstIArith(a, k, op) => {
            let ta = locals[a as usize];
            stack.push(STy::Int);
            fallible_fall(ta == STy::Int && (!divrem(op) || k != 0))
        }
        DOp::LoadIArith(b, op) => {
            let ta = pop!();
            let tb = locals[b as usize];
            stack.push(STy::Int);
            fallible_fall(ta == STy::Int && tb == STy::Int && !divrem(op))
        }
        DOp::IConstIArith(k, op) => {
            let ta = pop!();
            stack.push(STy::Int);
            fallible_fall(ta == STy::Int && (!divrem(op) || k != 0))
        }
        DOp::LoadStore(s, d) => {
            locals[d as usize] = locals[s as usize];
            FALL
        }
        DOp::IConstStore(_, d) => {
            locals[d as usize] = STy::Int;
            FALL
        }
        DOp::LoadLoadICmpBr(a, b, _, t) => Eff {
            infallible: locals[a as usize] == STy::Int && locals[b as usize] == STy::Int,
            machine_mid: false,
            fall: true,
            target: Some(t),
        },
        DOp::LoadIConstICmpBr(a, _, _, t) => Eff {
            infallible: locals[a as usize] == STy::Int,
            machine_mid: false,
            fall: true,
            target: Some(t),
        },
        DOp::LoadLoadALoad(_, _) => {
            stack.push(STy::Any);
            MID
        }
    };
    if make_unknown {
        *st = AState::Unknown;
    }
    eff
}

/// Join `src` into `dst`; true when `dst` changed.
fn merge_into(dst: &mut Option<AState>, src: &AState) -> bool {
    match dst {
        None => {
            *dst = Some(src.clone());
            true
        }
        Some(AState::Unknown) => false,
        Some(AState::Known { stack, locals }) => match src {
            AState::Unknown => {
                *dst = Some(AState::Unknown);
                true
            }
            AState::Known {
                stack: s2,
                locals: l2,
            } => {
                if stack.len() != s2.len() {
                    // Depth disagreement at a join: depth unknown.
                    *dst = Some(AState::Unknown);
                    return true;
                }
                let mut changed = false;
                for (a, b) in stack.iter_mut().zip(s2).chain(locals.iter_mut().zip(l2)) {
                    let m = meet(*a, *b);
                    if m != *a {
                        *a = m;
                        changed = true;
                    }
                }
                changed
            }
        },
    }
}

/// The handler-plan indices one decoded op charges (1 for plain ops,
/// 2–3 for fused superinstructions), in reference order.
fn dop_plans(dop: &DOp, out: &mut Vec<usize>) {
    match *dop {
        DOp::IConst(_) => out.push(P_ICONST),
        DOp::FConst(_) => out.push(P_FCONST),
        DOp::NullConst => out.push(P_NULLCONST),
        DOp::Load(_) | DOp::BadLoad(_) => out.push(P_LOAD),
        DOp::Store(_) | DOp::BadStore(_) => out.push(P_STORE),
        DOp::Pop => out.push(P_POP),
        DOp::Dup => out.push(P_DUP),
        DOp::Swap => out.push(P_SWAP),
        DOp::IArith(b) => out.push(iarith_plan(b)),
        DOp::INeg => out.push(P_INEG),
        DOp::ICmp => out.push(P_ICMP),
        DOp::FArith(_) => out.push(P_FARITH),
        DOp::FNeg => out.push(P_FNEG),
        DOp::FCmp => out.push(P_FCMP),
        DOp::I2F => out.push(P_I2F),
        DOp::F2I => out.push(P_F2I),
        DOp::Goto(_) => out.push(P_GOTO),
        DOp::ICmpBr(..) => out.push(P_ICMPBR),
        DOp::BrZ(..) => out.push(P_BRZ),
        DOp::NewArr(_) => out.push(P_NEWARR),
        DOp::ALoad => out.push(P_ALOAD),
        DOp::AStore => out.push(P_ASTORE),
        DOp::ArrLen => out.push(P_ARRLEN),
        DOp::New(_) => out.push(P_NEW),
        DOp::GetField(_) => out.push(P_GETFIELD),
        DOp::PutField(_) => out.push(P_PUTFIELD),
        DOp::Call { .. } => out.push(P_CALL),
        DOp::CallVirt { .. } => out.push(P_CALLVIRT),
        DOp::Ret => out.push(P_RET),
        DOp::RetVal => out.push(P_RETVAL),
        DOp::Nop => out.push(P_NOP),
        DOp::LoadLoadIArith(_, _, b) => out.extend([P_LOAD, P_LOAD, iarith_plan(b)]),
        DOp::LoadIConstIArith(_, _, b) => out.extend([P_LOAD, P_ICONST, iarith_plan(b)]),
        DOp::LoadIArith(_, b) => out.extend([P_LOAD, iarith_plan(b)]),
        DOp::IConstIArith(_, b) => out.extend([P_ICONST, iarith_plan(b)]),
        DOp::LoadStore(_, _) => out.extend([P_LOAD, P_STORE]),
        DOp::IConstStore(_, _) => out.extend([P_ICONST, P_STORE]),
        DOp::LoadLoadICmpBr(..) => out.extend([P_LOAD, P_LOAD, P_ICMPBR]),
        DOp::LoadIConstICmpBr(..) => out.extend([P_LOAD, P_ICONST, P_ICMPBR]),
        DOp::LoadLoadALoad(_, _) => out.extend([P_LOAD, P_LOAD, P_ALOAD]),
    }
}

/// Partition `dm` into batched runs for one machine energy table.
///
/// Runs begin at branch targets or after a run-terminating op, span
/// only statically infallible machine-free interiors, and end at the
/// first fallible / machine-touching / control-transferring op
/// (inclusive). Single-op stretches get no run (nothing to batch).
pub fn compile_runs(
    program: &crate::class::Program,
    method: MethodId,
    dm: &DecodedMethod,
    cc: &CostCache,
) -> MethodRuns {
    let n = dm.ops.len();
    let mut run_at = vec![NO_RUN; n];
    let mut call_ret = vec![2u8; n];
    let mut runs = Vec::new();
    if n == 0 {
        return MethodRuns {
            run_at,
            runs,
            call_ret,
        };
    }

    // Branch targets are always run leaders (fusion already
    // guarantees they are never fused-op interiors).
    let mut is_target = vec![false; n];
    for d in &dm.ops {
        if let Some(t) = branch_target(&d.op) {
            if let Some(f) = is_target.get_mut(t as usize) {
                *f = true;
            }
        }
    }

    // Expected return presence of every call site (taint reference).
    let mut i = 0usize;
    while i < n {
        match &dm.ops[i].op {
            DOp::Call { target, .. } => {
                call_ret[i] = u8::from(program.method(*target).sig.ret.is_some());
            }
            DOp::CallVirt { slot, .. } => {
                call_ret[i] = match virt_ret(program, *slot) {
                    Some(r) => u8::from(r),
                    None => 2,
                };
            }
            _ => {}
        }
        i += dm.ops[i].len as usize;
    }

    // Forward dataflow fixpoint over executable slots. Entry mirrors
    // the engine: non-argument locals are `Int(0)`, arguments are
    // caller-supplied (`Any`).
    let nargs = program
        .method(method)
        .invoke_arity()
        .min(dm.nlocals as usize);
    let mut entry_locals = vec![STy::Int; dm.nlocals as usize];
    for l in entry_locals.iter_mut().take(nargs) {
        *l = STy::Any;
    }
    let mut states: Vec<Option<AState>> = vec![None; n];
    states[0] = Some(AState::Known {
        stack: Vec::new(),
        locals: entry_locals,
    });
    let mut work = vec![0usize];
    while let Some(i) = work.pop() {
        let Some(st0) = states[i].clone() else {
            continue;
        };
        let mut st = st0;
        let eff = apply_dop(&dm.ops[i].op, &mut st, program);
        if eff.fall {
            let next = i + dm.ops[i].len as usize;
            if next < n && merge_into(&mut states[next], &st) {
                work.push(next);
            }
        }
        if let Some(t) = eff.target {
            if (t as usize) < n && merge_into(&mut states[t as usize], &st) {
                work.push(t as usize);
            }
        }
    }

    // Greedy maximal runs over the linear head walk.
    let mut plan_idxs: Vec<usize> = Vec::new();
    let mut i = 0usize;
    while i < n {
        let Some(st0) = &states[i] else {
            // Unreachable (in untainted frames) — no run.
            i += dm.ops[i].len as usize;
            continue;
        };
        let mut st = st0.clone();
        let mut j = i;
        let mut nops = 0u32;
        plan_idxs.clear();
        loop {
            if j >= n || (j > i && is_target[j]) {
                break;
            }
            let d = &dm.ops[j];
            let eff = apply_dop(&d.op, &mut st, program);
            dop_plans(&d.op, &mut plan_idxs);
            nops += 1;
            j += d.len as usize;
            if !eff.infallible || eff.machine_mid || !eff.fall || eff.target.is_some() {
                break;
            }
        }
        if nops >= 2 {
            let plans: Vec<&ChargePlan> = plan_idxs.iter().map(|&p| cc.plan(p)).collect();
            run_at[i] = runs.len() as u32;
            runs.push(InterpRun {
                nops,
                steps: plan_idxs.len() as u64,
                seq: ChargeSeq::merge(&plans),
            });
            i = j;
        } else {
            i += dm.ops[i].len as usize;
        }
    }

    MethodRuns {
        run_at,
        runs,
        call_ret,
    }
}

/// Execute `method` on the decoded fast path with the given arguments.
///
/// Observationally identical to [`crate::interp::run`] — same results,
/// same energy/cycle/step accounting bit-for-bit, same errors.
///
/// # Errors
/// Any [`VmError`] raised by the executed code.
pub fn run(vm: &mut Vm<'_>, method: MethodId, args: Vec<Value>) -> Result<Option<Value>, VmError> {
    let dm = vm.decoded_code(method);
    let cc = vm.cost_cache();
    let mr = vm.decoded_runs(method);

    // Locals and operand stack are pooled; the wrapper keeps the
    // recycling off the hot path and covers every exit (returns and
    // errors alike).
    let mut locals = vm.take_buf();
    let mut stack = vm.take_buf();
    let out = run_inner(vm, &dm, &cc, &mr, args, &mut locals, &mut stack);
    vm.put_buf(locals);
    vm.put_buf(stack);
    out
}

/// Where control goes after one op's semantics on the batched path.
enum Flow {
    /// Continue at `pc` (already advanced; branch arms overwrote it).
    Next,
    /// Method return.
    Return(Option<Value>),
}

fn run_inner(
    vm: &mut Vm<'_>,
    dm: &DecodedMethod,
    cc: &CostCache,
    mr: &MethodRuns,
    args: Vec<Value>,
    locals: &mut Vec<Value>,
    stack: &mut Vec<Value>,
) -> Result<Option<Value>, VmError> {
    locals.resize(dm.nlocals as usize, Value::Int(0));
    locals[..args.len()].copy_from_slice(&args);
    vm.machine.charge_mix(&costs::arg_copy_mix(args.len()));
    vm.put_buf(args);

    let mut pc: usize = 0;
    // Set once a callee's actual return presence contradicts the
    // static model (unverified code); disables batched runs for the
    // rest of this frame, whose abstract stack depths are now suspect.
    let mut tainted = false;

    macro_rules! pop {
        () => {
            stack.pop().ok_or(VmError::StackUnderflow)?
        };
    }
    // Charge one original bytecode: replay its plan (handler fetch +
    // dispatch + op work) and bump the step budget — the exact
    // accounting sequence of the reference interpreter.
    macro_rules! charge {
        ($idx:expr) => {
            vm.machine.step_planned(cc.plan($idx));
            vm.bump_steps(1)?;
        };
    }
    // Charge a whole fused sequence with one merged replay (bit-exact
    // with the per-plan sequence — see
    // [`jem_energy::Machine::step_charge_seq`]) when the remaining
    // step budget covers it; otherwise fall back to per-plan charging
    // so a budget error surfaces at the exact reference point with the
    // exact reference machine state.
    macro_rules! charge_fused {
        ($seq:expr, $($idx:expr),+) => {
            let seq = $seq;
            if vm.options.step_budget.saturating_sub(vm.steps) >= seq.steps() {
                vm.machine.step_charge_seq(seq);
                vm.bump_steps(seq.steps())?;
            } else {
                $( charge!($idx); )+
            }
        };
    }

    loop {
        let d = dm.ops.get(pc).ok_or(VmError::FellOffEnd)?;

        // Batched fast path: one merged charge replay and one budget
        // bump for the whole straight-line run, then pure semantics
        // ([`op_sem`]). Requires an untainted frame (exact static
        // stack model) and enough budget headroom that no mid-run
        // budget error could have fired on the reference path.
        if !tainted && mr.run_at[pc] != NO_RUN {
            let run = &mr.runs[mr.run_at[pc] as usize];
            if vm.options.step_budget.saturating_sub(vm.steps) >= run.steps {
                vm.machine.step_charge_seq(&run.seq);
                vm.bump_steps(run.steps)?;
                let mut flow = Flow::Next;
                // Count-based: a final backward branch must not
                // re-enter this loop (its target's own run, or the
                // per-op path, handles the next dispatch).
                for _ in 0..run.nops {
                    let d = &dm.ops[pc];
                    let cur = pc;
                    pc += d.len as usize;
                    flow = op_sem(
                        vm,
                        &d.op,
                        locals,
                        stack,
                        &mut pc,
                        mr.call_ret[cur],
                        &mut tainted,
                    )?;
                }
                match flow {
                    Flow::Next => continue,
                    Flow::Return(v) => return Ok(v),
                }
            }
        }

        let cur = pc;
        pc += d.len as usize;
        match &d.op {
            DOp::IConst(v) => {
                charge!(P_ICONST);
                stack.push(Value::Int(*v));
            }
            DOp::FConst(v) => {
                charge!(P_FCONST);
                stack.push(Value::Float(*v));
            }
            DOp::NullConst => {
                charge!(P_NULLCONST);
                stack.push(Value::Null);
            }
            DOp::Load(n) => {
                charge!(P_LOAD);
                stack.push(locals[*n as usize]);
            }
            DOp::Store(n) => {
                charge!(P_STORE);
                let v = pop!();
                locals[*n as usize] = v;
            }
            DOp::BadLoad(n) => {
                charge!(P_LOAD);
                return Err(VmError::BadLocal(*n));
            }
            DOp::BadStore(n) => {
                charge!(P_STORE);
                let _ = pop!();
                return Err(VmError::BadLocal(*n));
            }
            DOp::Pop => {
                charge!(P_POP);
                let _ = pop!();
            }
            DOp::Dup => {
                charge!(P_DUP);
                let v = *stack.last().ok_or(VmError::StackUnderflow)?;
                stack.push(v);
            }
            DOp::Swap => {
                charge!(P_SWAP);
                let a = pop!();
                let b = pop!();
                stack.push(a);
                stack.push(b);
            }
            DOp::IArith(opk) => {
                charge!(iarith_plan(*opk));
                let b = pop!().as_int()?;
                let a = pop!().as_int()?;
                stack.push(Value::Int(arith::ibin(*opk, a, b)?));
            }
            DOp::INeg => {
                charge!(P_INEG);
                let a = pop!().as_int()?;
                stack.push(Value::Int(a.wrapping_neg()));
            }
            DOp::ICmp => {
                charge!(P_ICMP);
                let b = pop!().as_int()?;
                let a = pop!().as_int()?;
                stack.push(Value::Int(arith::icmp(a, b)));
            }
            DOp::FArith(opk) => {
                charge!(P_FARITH);
                let b = pop!().as_float()?;
                let a = pop!().as_float()?;
                stack.push(Value::Float(arith::fbin(*opk, a, b)));
            }
            DOp::FNeg => {
                charge!(P_FNEG);
                let a = pop!().as_float()?;
                stack.push(Value::Float(-a));
            }
            DOp::FCmp => {
                charge!(P_FCMP);
                let b = pop!().as_float()?;
                let a = pop!().as_float()?;
                stack.push(Value::Int(arith::fcmp(a, b)));
            }
            DOp::I2F => {
                charge!(P_I2F);
                let a = pop!().as_int()?;
                stack.push(Value::Float(f64::from(a)));
            }
            DOp::F2I => {
                charge!(P_F2I);
                let a = pop!().as_float()?;
                stack.push(Value::Int(arith::f2i(a)));
            }
            DOp::Goto(t) => {
                charge!(P_GOTO);
                pc = *t as usize;
            }
            DOp::ICmpBr(cond, t) => {
                charge!(P_ICMPBR);
                let b = pop!().as_int()?;
                let a = pop!().as_int()?;
                if cond.eval(a, b) {
                    pc = *t as usize;
                }
            }
            DOp::BrZ(cond, t) => {
                charge!(P_BRZ);
                let a = pop!().as_int()?;
                if cond.eval(a, 0) {
                    pc = *t as usize;
                }
            }
            DOp::NewArr(ty) => {
                charge!(P_NEWARR);
                let len = pop!().as_int()?;
                if len < 0 {
                    return Err(VmError::NegativeArrayLength(len));
                }
                let bytes = match ty {
                    Type::Float => 8,
                    _ => 4,
                } * len as u64;
                vm.machine.charge_mix(&costs::alloc_zero_mix(bytes));
                let h = vm.heap.alloc_array(*ty, len as usize);
                stack.push(Value::Ref(h));
            }
            DOp::ALoad => {
                charge!(P_ALOAD);
                let idx = pop!().as_int()?;
                let arr = pop!().as_ref()?;
                if idx < 0 {
                    return Err(VmError::IndexOutOfBounds {
                        index: usize::MAX,
                        len: vm.heap.array_len(arr)?,
                    });
                }
                let v = vm.heap.array_get(arr, idx as usize)?;
                let addr = vm.heap.element_address(arr, idx as usize);
                vm.machine
                    .step(aux_pc(P_ALOAD), InstrClass::Load, MemOp::Read(addr));
                stack.push(v);
            }
            DOp::AStore => {
                charge!(P_ASTORE);
                let val = pop!();
                let idx = pop!().as_int()?;
                let arr = pop!().as_ref()?;
                if idx < 0 {
                    return Err(VmError::IndexOutOfBounds {
                        index: usize::MAX,
                        len: vm.heap.array_len(arr)?,
                    });
                }
                vm.heap.array_set(arr, idx as usize, val)?;
                let addr = vm.heap.element_address(arr, idx as usize);
                vm.machine
                    .step(aux_pc(P_ASTORE), InstrClass::Store, MemOp::Write(addr));
            }
            DOp::ArrLen => {
                charge!(P_ARRLEN);
                let arr = pop!().as_ref()?;
                let len = vm.heap.array_len(arr)?;
                let addr = vm.heap.address_of(arr);
                vm.machine
                    .step(aux_pc(P_ARRLEN), InstrClass::Load, MemOp::Read(addr));
                stack.push(Value::Int(len as i32));
            }
            DOp::New(cid) => {
                charge!(P_NEW);
                let class = vm.program.class(*cid);
                vm.machine
                    .charge_mix(&costs::alloc_zero_mix(8 * class.field_types.len() as u64));
                let h = vm.heap.alloc_object(cid.0, &class.field_types);
                stack.push(Value::Ref(h));
            }
            DOp::GetField(slot) => {
                charge!(P_GETFIELD);
                let obj = pop!().as_ref()?;
                let v = vm.heap.field_get(obj, *slot as usize)?;
                let addr = vm.heap.field_address(obj, *slot as usize);
                vm.machine
                    .step(aux_pc(P_GETFIELD), InstrClass::Load, MemOp::Read(addr));
                stack.push(v);
            }
            DOp::PutField(slot) => {
                charge!(P_PUTFIELD);
                let val = pop!();
                let obj = pop!().as_ref()?;
                vm.heap.field_set(obj, *slot as usize, val)?;
                let addr = vm.heap.field_address(obj, *slot as usize);
                vm.machine
                    .step(aux_pc(P_PUTFIELD), InstrClass::Store, MemOp::Write(addr));
            }
            DOp::Call { target, nargs } => {
                charge!(P_CALL);
                let nargs = *nargs as usize;
                if stack.len() < nargs {
                    return Err(VmError::StackUnderflow);
                }
                let split = stack.len() - nargs;
                let mut cargs = vm.take_buf();
                cargs.extend_from_slice(&stack[split..]);
                stack.truncate(split);
                let ret = vm.invoke(*target, cargs)?;
                if mr.call_ret[cur] != 2 && u8::from(ret.is_some()) != mr.call_ret[cur] {
                    tainted = true;
                }
                if let Some(v) = ret {
                    stack.push(v);
                }
            }
            DOp::CallVirt { slot, argc, ic } => {
                charge!(P_CALLVIRT);
                let nargs = *argc as usize;
                if stack.len() < nargs + 1 {
                    return Err(VmError::StackUnderflow);
                }
                let split = stack.len() - nargs - 1;
                let mut cargs = vm.take_buf();
                cargs.extend_from_slice(&stack[split..]);
                stack.truncate(split);
                let recv = cargs[0].as_ref()?;
                let class = vm.heap.class_of(recv)?;
                let (cached_class, cached_target) = ic.get();
                let target = if cached_class == class {
                    cached_target
                } else {
                    let vtable = &vm.program.class(ClassId(class)).vtable;
                    let t = *vtable.get(*slot as usize).ok_or(VmError::BadVSlot(*slot))?;
                    ic.set((class, t));
                    t
                };
                let ret = vm.invoke(target, cargs)?;
                if mr.call_ret[cur] != 2 && u8::from(ret.is_some()) != mr.call_ret[cur] {
                    tainted = true;
                }
                if let Some(v) = ret {
                    stack.push(v);
                }
            }
            DOp::Ret => {
                charge!(P_RET);
                return Ok(None);
            }
            DOp::RetVal => {
                charge!(P_RETVAL);
                let v = pop!();
                debug_assert!(dm.ret_is_some);
                return Ok(Some(v));
            }
            DOp::Nop => {
                charge!(P_NOP);
            }

            // ---- fused superinstructions ----
            //
            // Each replays its components' charge plans and budget
            // bumps in original order *before* the combined semantics;
            // interior components are infallible and chargeless (slots
            // validated at decode), so error points and machine state
            // match the reference interpreter exactly.
            DOp::LoadLoadIArith(a, b, opk) => {
                charge_fused!(
                    &cc.ll_iarith[iarith_plan(*opk) - P_IARITH],
                    P_LOAD,
                    P_LOAD,
                    iarith_plan(*opk)
                );
                let vb = locals[*b as usize].as_int()?;
                let va = locals[*a as usize].as_int()?;
                stack.push(Value::Int(arith::ibin(*opk, va, vb)?));
            }
            DOp::LoadIConstIArith(a, k, opk) => {
                charge_fused!(
                    &cc.lic_iarith[iarith_plan(*opk) - P_IARITH],
                    P_LOAD,
                    P_ICONST,
                    iarith_plan(*opk)
                );
                let va = locals[*a as usize].as_int()?;
                stack.push(Value::Int(arith::ibin(*opk, va, *k)?));
            }
            DOp::LoadIArith(b, opk) => {
                charge_fused!(
                    &cc.l_iarith[iarith_plan(*opk) - P_IARITH],
                    P_LOAD,
                    iarith_plan(*opk)
                );
                let vb = locals[*b as usize].as_int()?;
                let va = pop!().as_int()?;
                stack.push(Value::Int(arith::ibin(*opk, va, vb)?));
            }
            DOp::IConstIArith(k, opk) => {
                charge_fused!(
                    &cc.ic_iarith[iarith_plan(*opk) - P_IARITH],
                    P_ICONST,
                    iarith_plan(*opk)
                );
                let va = pop!().as_int()?;
                stack.push(Value::Int(arith::ibin(*opk, va, *k)?));
            }
            DOp::LoadStore(src, dst) => {
                charge_fused!(&cc.load_store, P_LOAD, P_STORE);
                locals[*dst as usize] = locals[*src as usize];
            }
            DOp::IConstStore(k, dst) => {
                charge_fused!(&cc.iconst_store, P_ICONST, P_STORE);
                locals[*dst as usize] = Value::Int(*k);
            }
            DOp::LoadLoadICmpBr(a, b, cond, t) => {
                charge_fused!(&cc.ll_icmpbr, P_LOAD, P_LOAD, P_ICMPBR);
                let vb = locals[*b as usize].as_int()?;
                let va = locals[*a as usize].as_int()?;
                if cond.eval(va, vb) {
                    pc = *t as usize;
                }
            }
            DOp::LoadIConstICmpBr(a, k, cond, t) => {
                charge_fused!(&cc.lic_icmpbr, P_LOAD, P_ICONST, P_ICMPBR);
                let va = locals[*a as usize].as_int()?;
                if cond.eval(va, *k) {
                    pc = *t as usize;
                }
            }
            DOp::LoadLoadALoad(arr_l, idx_l) => {
                charge_fused!(&cc.ll_aload, P_LOAD, P_LOAD, P_ALOAD);
                let idx = locals[*idx_l as usize].as_int()?;
                let arr = locals[*arr_l as usize].as_ref()?;
                if idx < 0 {
                    return Err(VmError::IndexOutOfBounds {
                        index: usize::MAX,
                        len: vm.heap.array_len(arr)?,
                    });
                }
                let v = vm.heap.array_get(arr, idx as usize)?;
                let addr = vm.heap.element_address(arr, idx as usize);
                vm.machine
                    .step(aux_pc(P_ALOAD), InstrClass::Load, MemOp::Read(addr));
                stack.push(v);
            }
        }
    }
}

/// The charge-free semantics of one decoded op, used by the batched
/// run path after the whole run's charges have been hoisted. `pc` has
/// already been advanced past the op; branch arms overwrite it.
/// `expect_ret` is the call site's statically expected return
/// presence (2 = don't care); a runtime mismatch sets `tainted`.
///
/// Must mirror the per-op arms of [`run_inner`] exactly, minus the
/// `charge!`/`charge_fused!` lines — `fastpath_equiv` exercises both
/// paths against the reference interpreter.
fn op_sem(
    vm: &mut Vm<'_>,
    dop: &DOp,
    locals: &mut [Value],
    stack: &mut Vec<Value>,
    pc: &mut usize,
    expect_ret: u8,
    tainted: &mut bool,
) -> Result<Flow, VmError> {
    macro_rules! pop {
        () => {
            stack.pop().ok_or(VmError::StackUnderflow)?
        };
    }

    match dop {
        DOp::IConst(v) => {
            stack.push(Value::Int(*v));
        }
        DOp::FConst(v) => {
            stack.push(Value::Float(*v));
        }
        DOp::NullConst => {
            stack.push(Value::Null);
        }
        DOp::Load(n) => {
            stack.push(locals[*n as usize]);
        }
        DOp::Store(n) => {
            let v = pop!();
            locals[*n as usize] = v;
        }
        DOp::BadLoad(n) => {
            return Err(VmError::BadLocal(*n));
        }
        DOp::BadStore(n) => {
            let _ = pop!();
            return Err(VmError::BadLocal(*n));
        }
        DOp::Pop => {
            let _ = pop!();
        }
        DOp::Dup => {
            let v = *stack.last().ok_or(VmError::StackUnderflow)?;
            stack.push(v);
        }
        DOp::Swap => {
            let a = pop!();
            let b = pop!();
            stack.push(a);
            stack.push(b);
        }
        DOp::IArith(opk) => {
            let b = pop!().as_int()?;
            let a = pop!().as_int()?;
            stack.push(Value::Int(arith::ibin(*opk, a, b)?));
        }
        DOp::INeg => {
            let a = pop!().as_int()?;
            stack.push(Value::Int(a.wrapping_neg()));
        }
        DOp::ICmp => {
            let b = pop!().as_int()?;
            let a = pop!().as_int()?;
            stack.push(Value::Int(arith::icmp(a, b)));
        }
        DOp::FArith(opk) => {
            let b = pop!().as_float()?;
            let a = pop!().as_float()?;
            stack.push(Value::Float(arith::fbin(*opk, a, b)));
        }
        DOp::FNeg => {
            let a = pop!().as_float()?;
            stack.push(Value::Float(-a));
        }
        DOp::FCmp => {
            let b = pop!().as_float()?;
            let a = pop!().as_float()?;
            stack.push(Value::Int(arith::fcmp(a, b)));
        }
        DOp::I2F => {
            let a = pop!().as_int()?;
            stack.push(Value::Float(f64::from(a)));
        }
        DOp::F2I => {
            let a = pop!().as_float()?;
            stack.push(Value::Int(arith::f2i(a)));
        }
        DOp::Goto(t) => {
            *pc = *t as usize;
        }
        DOp::ICmpBr(cond, t) => {
            let b = pop!().as_int()?;
            let a = pop!().as_int()?;
            if cond.eval(a, b) {
                *pc = *t as usize;
            }
        }
        DOp::BrZ(cond, t) => {
            let a = pop!().as_int()?;
            if cond.eval(a, 0) {
                *pc = *t as usize;
            }
        }
        DOp::NewArr(ty) => {
            let len = pop!().as_int()?;
            if len < 0 {
                return Err(VmError::NegativeArrayLength(len));
            }
            let bytes = match ty {
                Type::Float => 8,
                _ => 4,
            } * len as u64;
            vm.machine.charge_mix(&costs::alloc_zero_mix(bytes));
            let h = vm.heap.alloc_array(*ty, len as usize);
            stack.push(Value::Ref(h));
        }
        DOp::ALoad => {
            let idx = pop!().as_int()?;
            let arr = pop!().as_ref()?;
            if idx < 0 {
                return Err(VmError::IndexOutOfBounds {
                    index: usize::MAX,
                    len: vm.heap.array_len(arr)?,
                });
            }
            let v = vm.heap.array_get(arr, idx as usize)?;
            let addr = vm.heap.element_address(arr, idx as usize);
            vm.machine
                .step(aux_pc(P_ALOAD), InstrClass::Load, MemOp::Read(addr));
            stack.push(v);
        }
        DOp::AStore => {
            let val = pop!();
            let idx = pop!().as_int()?;
            let arr = pop!().as_ref()?;
            if idx < 0 {
                return Err(VmError::IndexOutOfBounds {
                    index: usize::MAX,
                    len: vm.heap.array_len(arr)?,
                });
            }
            vm.heap.array_set(arr, idx as usize, val)?;
            let addr = vm.heap.element_address(arr, idx as usize);
            vm.machine
                .step(aux_pc(P_ASTORE), InstrClass::Store, MemOp::Write(addr));
        }
        DOp::ArrLen => {
            let arr = pop!().as_ref()?;
            let len = vm.heap.array_len(arr)?;
            let addr = vm.heap.address_of(arr);
            vm.machine
                .step(aux_pc(P_ARRLEN), InstrClass::Load, MemOp::Read(addr));
            stack.push(Value::Int(len as i32));
        }
        DOp::New(cid) => {
            let class = vm.program.class(*cid);
            vm.machine
                .charge_mix(&costs::alloc_zero_mix(8 * class.field_types.len() as u64));
            let h = vm.heap.alloc_object(cid.0, &class.field_types);
            stack.push(Value::Ref(h));
        }
        DOp::GetField(slot) => {
            let obj = pop!().as_ref()?;
            let v = vm.heap.field_get(obj, *slot as usize)?;
            let addr = vm.heap.field_address(obj, *slot as usize);
            vm.machine
                .step(aux_pc(P_GETFIELD), InstrClass::Load, MemOp::Read(addr));
            stack.push(v);
        }
        DOp::PutField(slot) => {
            let val = pop!();
            let obj = pop!().as_ref()?;
            vm.heap.field_set(obj, *slot as usize, val)?;
            let addr = vm.heap.field_address(obj, *slot as usize);
            vm.machine
                .step(aux_pc(P_PUTFIELD), InstrClass::Store, MemOp::Write(addr));
        }
        DOp::Call { target, nargs } => {
            let nargs = *nargs as usize;
            if stack.len() < nargs {
                return Err(VmError::StackUnderflow);
            }
            let split = stack.len() - nargs;
            let mut cargs = vm.take_buf();
            cargs.extend_from_slice(&stack[split..]);
            stack.truncate(split);
            let ret = vm.invoke(*target, cargs)?;
            if expect_ret != 2 && u8::from(ret.is_some()) != expect_ret {
                *tainted = true;
            }
            if let Some(v) = ret {
                stack.push(v);
            }
        }
        DOp::CallVirt { slot, argc, ic } => {
            let nargs = *argc as usize;
            if stack.len() < nargs + 1 {
                return Err(VmError::StackUnderflow);
            }
            let split = stack.len() - nargs - 1;
            let mut cargs = vm.take_buf();
            cargs.extend_from_slice(&stack[split..]);
            stack.truncate(split);
            let recv = cargs[0].as_ref()?;
            let class = vm.heap.class_of(recv)?;
            let (cached_class, cached_target) = ic.get();
            let target = if cached_class == class {
                cached_target
            } else {
                let vtable = &vm.program.class(ClassId(class)).vtable;
                let t = *vtable.get(*slot as usize).ok_or(VmError::BadVSlot(*slot))?;
                ic.set((class, t));
                t
            };
            let ret = vm.invoke(target, cargs)?;
            if expect_ret != 2 && u8::from(ret.is_some()) != expect_ret {
                *tainted = true;
            }
            if let Some(v) = ret {
                stack.push(v);
            }
        }
        DOp::Ret => {
            return Ok(Flow::Return(None));
        }
        DOp::RetVal => {
            let v = pop!();
            return Ok(Flow::Return(Some(v)));
        }
        DOp::Nop => {}

        // ---- fused superinstructions ----
        DOp::LoadLoadIArith(a, b, opk) => {
            let vb = locals[*b as usize].as_int()?;
            let va = locals[*a as usize].as_int()?;
            stack.push(Value::Int(arith::ibin(*opk, va, vb)?));
        }
        DOp::LoadIConstIArith(a, k, opk) => {
            let va = locals[*a as usize].as_int()?;
            stack.push(Value::Int(arith::ibin(*opk, va, *k)?));
        }
        DOp::LoadIArith(b, opk) => {
            let vb = locals[*b as usize].as_int()?;
            let va = pop!().as_int()?;
            stack.push(Value::Int(arith::ibin(*opk, va, vb)?));
        }
        DOp::IConstIArith(k, opk) => {
            let va = pop!().as_int()?;
            stack.push(Value::Int(arith::ibin(*opk, va, *k)?));
        }
        DOp::LoadStore(src, dst) => {
            locals[*dst as usize] = locals[*src as usize];
        }
        DOp::IConstStore(k, dst) => {
            locals[*dst as usize] = Value::Int(*k);
        }
        DOp::LoadLoadICmpBr(a, b, cond, t) => {
            let vb = locals[*b as usize].as_int()?;
            let va = locals[*a as usize].as_int()?;
            if cond.eval(va, vb) {
                *pc = *t as usize;
            }
        }
        DOp::LoadIConstICmpBr(a, k, cond, t) => {
            let va = locals[*a as usize].as_int()?;
            if cond.eval(va, *k) {
                *pc = *t as usize;
            }
        }
        DOp::LoadLoadALoad(arr_l, idx_l) => {
            let idx = locals[*idx_l as usize].as_int()?;
            let arr = locals[*arr_l as usize].as_ref()?;
            if idx < 0 {
                return Err(VmError::IndexOutOfBounds {
                    index: usize::MAX,
                    len: vm.heap.array_len(arr)?,
                });
            }
            let v = vm.heap.array_get(arr, idx as usize)?;
            let addr = vm.heap.element_address(arr, idx as usize);
            vm.machine
                .step(aux_pc(P_ALOAD), InstrClass::Load, MemOp::Read(addr));
            stack.push(v);
        }
    }
    Ok(Flow::Next)
}

//! The bytecode interpreter.
//!
//! A classic threaded interpreter: each executed bytecode pays
//!
//! 1. an I-cache access for its handler (the handler region is laid
//!    out by [`crate::costs::handler_address`] and stays cache-resident
//!    for hot loops, as in real interpreters),
//! 2. the dispatch mix (opcode fetch, decode, pc bump),
//! 3. its operand-stack / locals traffic ([`crate::costs::op_work_mix`]),
//! 4. real D-cache traffic for heap reads and writes, using the
//!    simulated addresses of the touched elements.
//!
//! This is the execution engine behind the paper's **Interpreter (I)**
//! strategy, and the fallback for methods that have not (yet) been
//! JIT-compiled under the adaptive strategies.

use crate::arith;
use crate::bytecode::{MethodId, Op};
use crate::costs;
use crate::value::{Type, Value};
use crate::vm::Vm;
use crate::VmError;
use jem_energy::{InstrClass, MemOp};

/// Execute `method` by interpretation with the given arguments.
///
/// # Errors
/// Any [`VmError`] raised by the executed code.
pub fn run(vm: &mut Vm<'_>, method: MethodId, args: Vec<Value>) -> Result<Option<Value>, VmError> {
    let m = vm.program.method(method);
    let code: &[Op] = &m.code;
    let ret_is_some = m.sig.ret.is_some();

    let mut locals = vec![Value::Int(0); m.nlocals as usize];
    locals[..args.len()].copy_from_slice(&args);
    // Frame setup cost: copying arguments into the callee frame.
    vm.machine.charge_mix(&costs::arg_copy_mix(args.len()));

    let mut stack: Vec<Value> = Vec::with_capacity(16);
    let mut pc: usize = 0;

    macro_rules! pop {
        () => {
            stack.pop().ok_or(VmError::StackUnderflow)?
        };
    }

    loop {
        let op = code.get(pc).ok_or(VmError::FellOffEnd)?;
        // Dispatch: the indirect jump through the handler table (an
        // I-cache access at the handler's address) plus the fixed
        // decode mix and the op's own operand traffic.
        vm.machine
            .step(costs::handler_address(op), InstrClass::Branch, MemOp::None);
        vm.machine.charge_mix(&costs::dispatch_mix());
        vm.machine.charge_mix(&costs::op_work_mix(op));
        vm.bump_steps(1)?;

        pc += 1;
        match *op {
            Op::IConst(v) => stack.push(Value::Int(v)),
            Op::FConst(v) => stack.push(Value::Float(v)),
            Op::NullConst => stack.push(Value::Null),
            Op::Load(n) => {
                let v = *locals.get(n as usize).ok_or(VmError::BadLocal(n))?;
                stack.push(v);
            }
            Op::Store(n) => {
                let v = pop!();
                let slot = locals.get_mut(n as usize).ok_or(VmError::BadLocal(n))?;
                *slot = v;
            }
            Op::Pop => {
                let _ = pop!();
            }
            Op::Dup => {
                let v = *stack.last().ok_or(VmError::StackUnderflow)?;
                stack.push(v);
            }
            Op::Swap => {
                let a = pop!();
                let b = pop!();
                stack.push(a);
                stack.push(b);
            }
            Op::IArith(opk) => {
                let b = pop!().as_int()?;
                let a = pop!().as_int()?;
                stack.push(Value::Int(arith::ibin(opk, a, b)?));
            }
            Op::INeg => {
                let a = pop!().as_int()?;
                stack.push(Value::Int(a.wrapping_neg()));
            }
            Op::ICmp => {
                let b = pop!().as_int()?;
                let a = pop!().as_int()?;
                stack.push(Value::Int(arith::icmp(a, b)));
            }
            Op::FArith(opk) => {
                let b = pop!().as_float()?;
                let a = pop!().as_float()?;
                stack.push(Value::Float(arith::fbin(opk, a, b)));
            }
            Op::FNeg => {
                let a = pop!().as_float()?;
                stack.push(Value::Float(-a));
            }
            Op::FCmp => {
                let b = pop!().as_float()?;
                let a = pop!().as_float()?;
                stack.push(Value::Int(arith::fcmp(a, b)));
            }
            Op::I2F => {
                let a = pop!().as_int()?;
                stack.push(Value::Float(a as f64));
            }
            Op::F2I => {
                let a = pop!().as_float()?;
                stack.push(Value::Int(arith::f2i(a)));
            }
            Op::Goto(t) => pc = t as usize,
            Op::ICmpBr(cond, t) => {
                let b = pop!().as_int()?;
                let a = pop!().as_int()?;
                if cond.eval(a, b) {
                    pc = t as usize;
                }
            }
            Op::BrZ(cond, t) => {
                let a = pop!().as_int()?;
                if cond.eval(a, 0) {
                    pc = t as usize;
                }
            }
            Op::NewArr(ty) => {
                let len = pop!().as_int()?;
                if len < 0 {
                    return Err(VmError::NegativeArrayLength(len));
                }
                let bytes = match ty {
                    Type::Float => 8,
                    _ => 4,
                } * len as u64;
                vm.machine.charge_mix(&costs::alloc_zero_mix(bytes));
                let h = vm.heap.alloc_array(ty, len as usize);
                stack.push(Value::Ref(h));
            }
            Op::ALoad(_ty) => {
                let idx = pop!().as_int()?;
                let arr = pop!().as_ref()?;
                if idx < 0 {
                    return Err(VmError::IndexOutOfBounds {
                        index: usize::MAX,
                        len: vm.heap.array_len(arr)?,
                    });
                }
                let v = vm.heap.array_get(arr, idx as usize)?;
                let addr = vm.heap.element_address(arr, idx as usize);
                vm.machine.step(
                    costs::handler_address(op) + 4,
                    InstrClass::Load,
                    MemOp::Read(addr),
                );
                stack.push(v);
            }
            Op::AStore(_ty) => {
                let val = pop!();
                let idx = pop!().as_int()?;
                let arr = pop!().as_ref()?;
                if idx < 0 {
                    return Err(VmError::IndexOutOfBounds {
                        index: usize::MAX,
                        len: vm.heap.array_len(arr)?,
                    });
                }
                vm.heap.array_set(arr, idx as usize, val)?;
                let addr = vm.heap.element_address(arr, idx as usize);
                vm.machine.step(
                    costs::handler_address(op) + 4,
                    InstrClass::Store,
                    MemOp::Write(addr),
                );
            }
            Op::ArrLen => {
                let arr = pop!().as_ref()?;
                let len = vm.heap.array_len(arr)?;
                let addr = vm.heap.address_of(arr);
                vm.machine.step(
                    costs::handler_address(op) + 4,
                    InstrClass::Load,
                    MemOp::Read(addr),
                );
                stack.push(Value::Int(len as i32));
            }
            Op::New(cid) => {
                let class = vm.program.class(cid);
                vm.machine
                    .charge_mix(&costs::alloc_zero_mix(8 * class.field_types.len() as u64));
                let h = vm.heap.alloc_object(cid.0, &class.field_types);
                stack.push(Value::Ref(h));
            }
            Op::GetField(slot, _ty) => {
                let obj = pop!().as_ref()?;
                let v = vm.heap.field_get(obj, slot as usize)?;
                let addr = vm.heap.field_address(obj, slot as usize);
                vm.machine.step(
                    costs::handler_address(op) + 4,
                    InstrClass::Load,
                    MemOp::Read(addr),
                );
                stack.push(v);
            }
            Op::PutField(slot) => {
                let val = pop!();
                let obj = pop!().as_ref()?;
                vm.heap.field_set(obj, slot as usize, val)?;
                let addr = vm.heap.field_address(obj, slot as usize);
                vm.machine.step(
                    costs::handler_address(op) + 4,
                    InstrClass::Store,
                    MemOp::Write(addr),
                );
            }
            Op::Call(mid) => {
                let callee = vm.program.method(mid);
                let nargs = callee.sig.arity();
                if stack.len() < nargs {
                    return Err(VmError::StackUnderflow);
                }
                let args: Vec<Value> = stack.split_off(stack.len() - nargs);
                let ret = vm.invoke(mid, args)?;
                if let Some(v) = ret {
                    stack.push(v);
                }
            }
            Op::CallVirt { slot, argc } => {
                let nargs = argc as usize;
                if stack.len() < nargs + 1 {
                    return Err(VmError::StackUnderflow);
                }
                let mut args: Vec<Value> = stack.split_off(stack.len() - nargs - 1);
                let recv = args[0].as_ref()?;
                let class = vm.heap.class_of(recv)?;
                let class = crate::bytecode::ClassId(class);
                let vtable = &vm.program.class(class).vtable;
                let target = *vtable.get(slot as usize).ok_or(VmError::BadVSlot(slot))?;
                // The receiver stays in args[0] for the callee.
                let _ = &mut args;
                let ret = vm.invoke(target, args)?;
                if let Some(v) = ret {
                    stack.push(v);
                }
            }
            Op::Ret => return Ok(None),
            Op::RetVal => {
                let v = pop!();
                debug_assert!(ret_is_some);
                return Ok(Some(v));
            }
            Op::Nop => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dsl::*;
    use crate::verify::verify_program;

    fn run_main(m: ModuleBuilder, name: &str, args: Vec<Value>) -> (Option<Value>, f64) {
        let p = m.compile().unwrap();
        verify_program(&p).unwrap();
        let mut vm = Vm::client(&p);
        let id = p.find_method(MODULE_CLASS, name).unwrap();
        let out = vm.invoke(id, args).unwrap();
        (out, vm.machine.energy().nanojoules())
    }

    #[test]
    fn arithmetic_program() {
        let mut m = ModuleBuilder::new();
        m.func(
            "f",
            vec![("x", DType::Int)],
            Some(DType::Int),
            vec![ret(var("x").mul(var("x")).add(iconst(1)))],
        );
        let (out, energy) = run_main(m, "f", vec![Value::Int(7)]);
        assert_eq!(out, Some(Value::Int(50)));
        assert!(energy > 0.0);
    }

    #[test]
    fn loops_compute_sums() {
        let mut m = ModuleBuilder::new();
        m.func(
            "sum",
            vec![("n", DType::Int)],
            Some(DType::Int),
            vec![
                let_("acc", iconst(0)),
                for_(
                    "i",
                    iconst(0),
                    var("n"),
                    vec![assign("acc", var("acc").add(var("i")))],
                ),
                ret(var("acc")),
            ],
        );
        let (out, _) = run_main(m, "sum", vec![Value::Int(100)]);
        assert_eq!(out, Some(Value::Int(4950)));
    }

    #[test]
    fn arrays_and_calls() {
        let mut m = ModuleBuilder::new();
        m.func(
            "idx_sum",
            vec![("a", DType::int_arr())],
            Some(DType::Int),
            vec![
                let_("s", iconst(0)),
                for_(
                    "i",
                    iconst(0),
                    var("a").len(),
                    vec![assign("s", var("s").add(var("a").index(var("i"))))],
                ),
                ret(var("s")),
            ],
        );
        m.func(
            "main",
            vec![("n", DType::Int)],
            Some(DType::Int),
            vec![
                let_("a", new_arr(DType::Int, var("n"))),
                for_(
                    "i",
                    iconst(0),
                    var("n"),
                    vec![set_index(var("a"), var("i"), var("i").mul(iconst(3)))],
                ),
                ret(call("idx_sum", vec![var("a")])),
            ],
        );
        let (out, _) = run_main(m, "main", vec![Value::Int(10)]);
        assert_eq!(out, Some(Value::Int(135)));
    }

    #[test]
    fn virtual_dispatch_picks_override() {
        let mut m = ModuleBuilder::new();
        m.class("A", None, &[]);
        m.virtual_method("A", "id", vec![], Some(DType::Int), vec![ret(iconst(1))]);
        m.class("B", Some("A"), &[]);
        m.virtual_method("B", "id", vec![], Some(DType::Int), vec![ret(iconst(2))]);
        m.func(
            "main",
            vec![],
            Some(DType::Int),
            vec![
                let_("a", new_obj("A")),
                let_("b", new_obj("B")),
                ret(var("a")
                    .vcall("id", vec![])
                    .mul(iconst(10))
                    .add(var("b").vcall("id", vec![]))),
            ],
        );
        let (out, _) = run_main(m, "main", vec![]);
        assert_eq!(out, Some(Value::Int(12)));
    }

    #[test]
    fn float_computation() {
        let mut m = ModuleBuilder::new();
        m.func(
            "poly",
            vec![("x", DType::Float)],
            Some(DType::Float),
            vec![ret(var("x")
                .mul(var("x"))
                .add(var("x").mul(fconst(2.0)))
                .add(fconst(1.0)))],
        );
        let (out, _) = run_main(m, "poly", vec![Value::Float(3.0)]);
        assert_eq!(out, Some(Value::Float(16.0)));
    }

    #[test]
    fn division_by_zero_surfaces() {
        let mut m = ModuleBuilder::new();
        m.func(
            "f",
            vec![("x", DType::Int)],
            Some(DType::Int),
            vec![ret(iconst(1).div(var("x")))],
        );
        let p = m.compile().unwrap();
        let mut vm = Vm::client(&p);
        let id = p.find_method(MODULE_CLASS, "f").unwrap();
        assert_eq!(vm.invoke(id, vec![Value::Int(0)]), Err(VmError::DivByZero));
    }

    #[test]
    fn out_of_bounds_surfaces() {
        let mut m = ModuleBuilder::new();
        m.func(
            "f",
            vec![],
            Some(DType::Int),
            vec![
                let_("a", new_arr(DType::Int, iconst(2))),
                ret(var("a").index(iconst(5))),
            ],
        );
        let p = m.compile().unwrap();
        let mut vm = Vm::client(&p);
        let id = p.find_method(MODULE_CLASS, "f").unwrap();
        assert!(matches!(
            vm.invoke(id, vec![]),
            Err(VmError::IndexOutOfBounds { .. })
        ));
    }

    #[test]
    fn step_budget_stops_infinite_loops() {
        let mut m = ModuleBuilder::new();
        m.func(
            "spin",
            vec![],
            None,
            vec![while_(iconst(1), vec![]), ret_void()],
        );
        let p = m.compile().unwrap();
        let mut vm = Vm::client(&p);
        vm.options.step_budget = 10_000;
        let id = p.find_method(MODULE_CLASS, "spin").unwrap();
        assert_eq!(vm.invoke(id, vec![]), Err(VmError::StepBudgetExceeded));
    }

    #[test]
    fn recursion_depth_guard() {
        let mut m = ModuleBuilder::new();
        m.func(
            "inf",
            vec![("x", DType::Int)],
            Some(DType::Int),
            vec![ret(call("inf", vec![var("x")]))],
        );
        let p = m.compile().unwrap();
        let mut vm = Vm::client(&p);
        let id = p.find_method(MODULE_CLASS, "inf").unwrap();
        assert_eq!(
            vm.invoke(id, vec![Value::Int(0)]),
            Err(VmError::CallDepthExceeded)
        );
    }

    #[test]
    fn arity_checked_at_entry() {
        let mut m = ModuleBuilder::new();
        m.func(
            "f",
            vec![("x", DType::Int)],
            Some(DType::Int),
            vec![ret(var("x"))],
        );
        let p = m.compile().unwrap();
        let mut vm = Vm::client(&p);
        let id = p.find_method(MODULE_CLASS, "f").unwrap();
        assert!(matches!(
            vm.invoke(id, vec![]),
            Err(VmError::ArityMismatch { .. })
        ));
    }

    #[test]
    fn interpretation_energy_scales_with_work() {
        let mut m = ModuleBuilder::new();
        m.func(
            "sum",
            vec![("n", DType::Int)],
            Some(DType::Int),
            vec![
                let_("acc", iconst(0)),
                for_(
                    "i",
                    iconst(0),
                    var("n"),
                    vec![assign("acc", var("acc").add(var("i")))],
                ),
                ret(var("acc")),
            ],
        );
        let p = m.compile().unwrap();
        verify_program(&p).unwrap();
        let id = p.find_method(MODULE_CLASS, "sum").unwrap();

        let mut small = Vm::client(&p);
        small.invoke(id, vec![Value::Int(100)]).unwrap();
        let mut large = Vm::client(&p);
        large.invoke(id, vec![Value::Int(1000)]).unwrap();
        let ratio = large.machine.energy().ratio(small.machine.energy());
        assert!(ratio > 8.0 && ratio < 12.0, "expected ~10x, got {ratio}");
    }
}

//! Linear-scan register allocation (spill decision).
//!
//! LaTTe's claim to fame was "fast and efficient register allocation"
//! for JIT-compiled code; we model the part that matters for energy:
//! which virtual registers fit in the physical register file and which
//! spill to the stack frame. Spilled registers cost an extra frame
//! load per use and a frame store per definition — traffic the
//! executor routes through the D-cache.
//!
//! Intervals come from a proper backward liveness analysis (so
//! loop-carried values are live across their loops, but nothing is
//! extended needlessly), then the classic Poletto–Sarkar linear scan
//! assigns registers and picks spill victims (furthest end first).

use crate::nir::{NFunc, VReg};
use std::collections::{BTreeSet, HashMap};

/// Number of allocatable physical registers on the target
/// (SPARC v8: 32 integer registers minus globals, stack/frame
/// pointers, return address and assembler temporaries).
pub const PHYS_REGS: usize = 16;

/// Allocation result.
#[derive(Debug, Clone, Default)]
pub struct Allocation {
    /// Spilled registers and their frame slots.
    pub spill_slots: HashMap<VReg, u32>,
    /// Work units expended.
    pub work_units: u64,
}

impl Allocation {
    /// Whether `r` was spilled.
    pub fn is_spilled(&self, r: VReg) -> bool {
        self.spill_slots.contains_key(&r)
    }

    /// Number of spilled registers.
    pub fn spill_count(&self) -> usize {
        self.spill_slots.len()
    }
}

/// Run linear scan with `k` physical registers.
pub fn allocate(func: &NFunc, k: usize) -> Allocation {
    let mut work_units = 0u64;
    let nblocks = func.blocks.len();

    // Linear positions.
    let mut block_start = vec![0u32; nblocks];
    let mut block_end = vec![0u32; nblocks]; // exclusive
    {
        let mut pos = 0u32;
        for (b, block) in func.blocks.iter().enumerate() {
            block_start[b] = pos;
            pos += block.insts.len() as u32;
            block_end[b] = pos;
        }
    }

    // Backward liveness (live-in per block).
    let mut live_in: Vec<BTreeSet<VReg>> = vec![BTreeSet::new(); nblocks];
    let mut changed = true;
    while changed {
        changed = false;
        for b in (0..nblocks).rev() {
            let mut live: BTreeSet<VReg> = BTreeSet::new();
            if let Some(term) = func.blocks[b].insts.last() {
                for s in term.successors() {
                    live.extend(live_in[s.0 as usize].iter().copied());
                }
            }
            for inst in func.blocks[b].insts.iter().rev() {
                work_units += 1;
                if let Some(d) = inst.def() {
                    live.remove(&d);
                }
                live.extend(inst.uses());
            }
            if live != live_in[b] {
                live_in[b] = live;
                changed = true;
            }
        }
    }

    // Intervals: min/max positions where each register matters —
    // its defs/uses, plus whole blocks where it is live-through.
    let mut first: HashMap<VReg, u32> = HashMap::new();
    let mut last: HashMap<VReg, u32> = HashMap::new();
    let touch =
        |r: VReg, at: u32, first: &mut HashMap<VReg, u32>, last: &mut HashMap<VReg, u32>| {
            first
                .entry(r)
                .and_modify(|f| *f = (*f).min(at))
                .or_insert(at);
            last.entry(r)
                .and_modify(|l| *l = (*l).max(at))
                .or_insert(at);
        };
    // Arguments are live from position 0.
    for a in 0..func.nlocals.min(func.nregs) {
        touch(VReg(a), 0, &mut first, &mut last);
    }
    for (b, block) in func.blocks.iter().enumerate() {
        // live-out = union of successors' live-in.
        let mut live_out: BTreeSet<VReg> = BTreeSet::new();
        if let Some(term) = block.insts.last() {
            for s in term.successors() {
                live_out.extend(live_in[s.0 as usize].iter().copied());
            }
        }
        for &r in &live_in[b] {
            touch(r, block_start[b], &mut first, &mut last);
            work_units += 1;
        }
        for &r in &live_out {
            touch(r, block_end[b].saturating_sub(1), &mut first, &mut last);
            work_units += 1;
        }
        for (k, inst) in block.insts.iter().enumerate() {
            work_units += 1;
            let pos = block_start[b] + k as u32;
            for r in inst.uses().into_iter().chain(inst.def()) {
                touch(r, pos, &mut first, &mut last);
            }
        }
    }

    // Linear scan.
    let mut intervals: Vec<(VReg, u32, u32)> =
        first.iter().map(|(&r, &f)| (r, f, last[&r])).collect();
    intervals.sort_by_key(|&(r, f, _)| (f, r));
    work_units += (intervals.len() as u64).saturating_mul(2);

    let mut active: Vec<(VReg, u32)> = Vec::new(); // (reg, end) sorted by end
    let mut spilled: Vec<VReg> = Vec::new();
    for &(r, f, l) in &intervals {
        active.retain(|&(_, end)| end >= f);
        if active.len() < k {
            let ins = active.partition_point(|&(_, end)| end <= l);
            active.insert(ins, (r, l));
        } else {
            // Spill the interval that ends last (it blocks the most).
            let (last_reg, last_end) = *active.last().expect("active non-empty");
            if last_end > l {
                active.pop();
                spilled.push(last_reg);
                let ins = active.partition_point(|&(_, end)| end <= l);
                active.insert(ins, (r, l));
            } else {
                spilled.push(r);
            }
        }
        work_units += 1;
    }

    let spill_slots = spilled
        .into_iter()
        .enumerate()
        .map(|(i, r)| (r, i as u32))
        .collect();
    Allocation {
        spill_slots,
        work_units,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bytecode::{Cond, IBin, MethodId};
    use crate::nir::{Block, BlockId, NInst};

    fn chain_func(n: u32) -> NFunc {
        // r1 = r0+r0; r2 = r1+r1; ... all short-lived.
        let mut insts = Vec::new();
        for i in 1..n {
            insts.push(NInst::IBinOp {
                op: IBin::Add,
                d: VReg(i),
                a: VReg(i - 1),
                b: VReg(i - 1),
            });
        }
        insts.push(NInst::Ret {
            val: Some(VReg(n - 1)),
        });
        NFunc {
            method: MethodId(0),
            blocks: vec![Block { insts }],
            nregs: n,
            nlocals: 1,
        }
    }

    #[test]
    fn short_lived_chain_never_spills() {
        let f = chain_func(100);
        let a = allocate(&f, 8);
        assert_eq!(a.spill_count(), 0);
    }

    #[test]
    fn wide_simultaneous_liveness_spills() {
        // Define r1..r40 all up front, then use them all at the end:
        // every interval overlaps every other.
        let n = 40u32;
        let mut insts = Vec::new();
        for i in 1..=n {
            insts.push(NInst::IConst {
                d: VReg(i),
                v: i as i32,
            });
        }
        // One giant consumer keeps them all live to the end.
        let args: Vec<VReg> = (1..=n).map(VReg).collect();
        insts.push(NInst::CallOp {
            d: None,
            target: MethodId(0),
            args,
        });
        insts.push(NInst::Ret { val: None });
        let f = NFunc {
            method: MethodId(0),
            blocks: vec![Block { insts }],
            nregs: n + 1,
            nlocals: 1,
        };
        let a = allocate(&f, 16);
        // All 40 constant registers overlap at the call: at least
        // 40 - 16 of them must spill.
        assert!(
            a.spill_count() >= n as usize - 16,
            "expected heavy spilling, got {}",
            a.spill_count()
        );
    }

    #[test]
    fn spill_slots_are_distinct() {
        let n = 40u32;
        let mut insts = Vec::new();
        for i in 1..=n {
            insts.push(NInst::IConst { d: VReg(i), v: 0 });
        }
        let args: Vec<VReg> = (1..=n).map(VReg).collect();
        insts.push(NInst::CallOp {
            d: None,
            target: MethodId(0),
            args,
        });
        insts.push(NInst::Ret { val: None });
        let f = NFunc {
            method: MethodId(0),
            blocks: vec![Block { insts }],
            nregs: n + 1,
            nlocals: 1,
        };
        let a = allocate(&f, 4);
        let mut slots: Vec<u32> = a.spill_slots.values().copied().collect();
        slots.sort_unstable();
        slots.dedup();
        assert_eq!(slots.len(), a.spill_count());
    }

    #[test]
    fn more_physical_registers_never_spill_more() {
        let f = chain_func(60);
        for k in [2usize, 4, 8, 16] {
            let a1 = allocate(&f, k);
            let a2 = allocate(&f, k * 2);
            assert!(a2.spill_count() <= a1.spill_count());
        }
    }

    #[test]
    fn loop_carried_value_is_live_across_loop() {
        // b0: jmp b1
        // b1 (header): if r1 >= r0 -> b3 else b2
        // b2: r2 = r9 + r9 (r9 defined before loop); r1 += r2; jmp b1
        // b3: ret r9  — r9 must be live across the whole loop.
        let f = NFunc {
            method: MethodId(0),
            blocks: vec![
                Block {
                    insts: vec![
                        NInst::IConst { d: VReg(9), v: 3 },
                        NInst::Jmp { target: BlockId(1) },
                    ],
                },
                Block {
                    insts: vec![NInst::BrCond {
                        cond: Cond::Ge,
                        a: VReg(1),
                        b: VReg(0),
                        then_: BlockId(3),
                        else_: BlockId(2),
                    }],
                },
                Block {
                    insts: vec![
                        NInst::IBinOp {
                            op: IBin::Add,
                            d: VReg(2),
                            a: VReg(9),
                            b: VReg(9),
                        },
                        NInst::IBinOp {
                            op: IBin::Add,
                            d: VReg(1),
                            a: VReg(1),
                            b: VReg(2),
                        },
                        NInst::Jmp { target: BlockId(1) },
                    ],
                },
                Block {
                    insts: vec![NInst::Ret { val: Some(VReg(9)) }],
                },
            ],
            nregs: 10,
            nlocals: 2,
        };
        // With 3 registers, r0/r1/r9 are all live through the loop and
        // r2 is short-lived inside it: someone must spill.
        let tight = allocate(&f, 3);
        assert!(tight.spill_count() >= 1);
        // With 8 registers, nothing spills.
        let roomy = allocate(&f, 8);
        assert_eq!(roomy.spill_count(), 0);
    }

    #[test]
    fn disjoint_lifetimes_share_registers() {
        // Two values with non-overlapping lifetimes fit in one
        // register slot each-after-other: with k=2 (r0 arg + 1 slot),
        // no spills.
        let f = NFunc {
            method: MethodId(0),
            blocks: vec![Block {
                insts: vec![
                    NInst::IConst { d: VReg(1), v: 1 },
                    NInst::IBinOp {
                        op: IBin::Add,
                        d: VReg(0),
                        a: VReg(1),
                        b: VReg(1),
                    },
                    // r1 dead now; r2's lifetime starts.
                    NInst::IConst { d: VReg(2), v: 2 },
                    NInst::IBinOp {
                        op: IBin::Add,
                        d: VReg(0),
                        a: VReg(2),
                        b: VReg(2),
                    },
                    NInst::Ret { val: Some(VReg(0)) },
                ],
            }],
            nregs: 3,
            nlocals: 1,
        };
        let a = allocate(&f, 2);
        assert_eq!(a.spill_count(), 0);
    }
}

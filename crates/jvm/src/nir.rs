//! NIR — the JIT's register-based native intermediate representation.
//!
//! Bytecode is lowered to NIR by [`crate::lower`]; optimization passes
//! ([`crate::opt`]) rewrite it; [`crate::emit`] turns it into a
//! "native code object" whose execution cost and code size the energy
//! model prices.
//!
//! NIR uses *positional* virtual registers: register `k` holds local
//! slot `k`, and registers above `nlocals` model the JVM operand stack
//! at a fixed depth. This is the classic baseline-JIT lowering (no SSA
//! construction): joins agree by construction because registers are
//! positional, and the optimizer works with explicit def/use analysis.
//! Passes may additionally allocate *temporary* registers above the
//! positional range (e.g. LICM hoists into fresh temps).

use crate::bytecode::{ClassId, Cond, FBin, IBin, MethodId};
use crate::value::Type;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A virtual register.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct VReg(pub u32);

/// A basic-block id.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct BlockId(pub u32);

/// One NIR instruction. The last instruction of every block is a
/// terminator ([`NInst::is_terminator`]); terminators appear nowhere
/// else.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum NInst {
    /// `d = imm`
    IConst {
        /// Destination.
        d: VReg,
        /// Immediate.
        v: i32,
    },
    /// `d = imm` (float)
    FConst {
        /// Destination.
        d: VReg,
        /// Immediate.
        v: f64,
    },
    /// `d = null`
    NullConst {
        /// Destination.
        d: VReg,
    },
    /// `d = s`
    Mov {
        /// Destination.
        d: VReg,
        /// Source.
        s: VReg,
    },
    /// `d = a <op> b` (int)
    IBinOp {
        /// Operator.
        op: IBin,
        /// Destination.
        d: VReg,
        /// Left operand.
        a: VReg,
        /// Right operand.
        b: VReg,
    },
    /// `d = a << k` — strength-reduced multiply (immediate shift).
    IShlImm {
        /// Destination.
        d: VReg,
        /// Operand.
        a: VReg,
        /// Shift amount.
        k: u8,
    },
    /// `d = -a` (int)
    INegOp {
        /// Destination.
        d: VReg,
        /// Operand.
        a: VReg,
    },
    /// `d = sign(a - b)` ∈ {-1, 0, 1}
    ICmpOp {
        /// Destination.
        d: VReg,
        /// Left operand.
        a: VReg,
        /// Right operand.
        b: VReg,
    },
    /// `d = a <op> b` (float)
    FBinOp {
        /// Operator.
        op: FBin,
        /// Destination.
        d: VReg,
        /// Left operand.
        a: VReg,
        /// Right operand.
        b: VReg,
    },
    /// `d = -a` (float)
    FNegOp {
        /// Destination.
        d: VReg,
        /// Operand.
        a: VReg,
    },
    /// `d = sign(a - b)` for floats (NaN → -1, like `fcmpl`)
    FCmpOp {
        /// Destination.
        d: VReg,
        /// Left operand.
        a: VReg,
        /// Right operand.
        b: VReg,
    },
    /// `d = (float) a`
    I2FOp {
        /// Destination.
        d: VReg,
        /// Operand.
        a: VReg,
    },
    /// `d = (int) a` (truncating, saturating)
    F2IOp {
        /// Destination.
        d: VReg,
        /// Operand.
        a: VReg,
    },
    /// `d = new ty[len]`
    NewArr {
        /// Destination.
        d: VReg,
        /// Element type.
        ty: Type,
        /// Length register.
        len: VReg,
    },
    /// `d = new C()`
    NewObj {
        /// Destination.
        d: VReg,
        /// Class.
        class: ClassId,
    },
    /// `d = arr[idx]`
    ALoadOp {
        /// Destination.
        d: VReg,
        /// Array register.
        arr: VReg,
        /// Index register.
        idx: VReg,
        /// Element type.
        ty: Type,
    },
    /// `arr[idx] = val`
    AStoreOp {
        /// Array register.
        arr: VReg,
        /// Index register.
        idx: VReg,
        /// Value register.
        val: VReg,
        /// Element type.
        ty: Type,
    },
    /// `d = arr.length`
    ArrLenOp {
        /// Destination.
        d: VReg,
        /// Array register.
        arr: VReg,
    },
    /// `d = obj.field[slot]`
    GetFieldOp {
        /// Destination.
        d: VReg,
        /// Object register.
        obj: VReg,
        /// Field slot.
        slot: u16,
        /// Field type.
        ty: Type,
    },
    /// `obj.field[slot] = val`
    PutFieldOp {
        /// Object register.
        obj: VReg,
        /// Field slot.
        slot: u16,
        /// Value register.
        val: VReg,
    },
    /// Static call.
    CallOp {
        /// Destination (None for void).
        d: Option<VReg>,
        /// Callee.
        target: MethodId,
        /// Argument registers.
        args: Vec<VReg>,
    },
    /// Virtual call through the receiver's vtable.
    CallVirtOp {
        /// Destination (None for void).
        d: Option<VReg>,
        /// Vtable slot.
        slot: u16,
        /// Receiver register.
        recv: VReg,
        /// Argument registers (receiver excluded).
        args: Vec<VReg>,
    },
    // ---- terminators ----
    /// Unconditional jump.
    Jmp {
        /// Target block.
        target: BlockId,
    },
    /// Conditional branch on an integer compare.
    BrCond {
        /// Condition.
        cond: Cond,
        /// Left operand.
        a: VReg,
        /// Right operand.
        b: VReg,
        /// Taken target.
        then_: BlockId,
        /// Fall-through target.
        else_: BlockId,
    },
    /// Return.
    Ret {
        /// Returned register (None for void).
        val: Option<VReg>,
    },
}

impl NInst {
    /// True for block terminators.
    pub fn is_terminator(&self) -> bool {
        matches!(
            self,
            NInst::Jmp { .. } | NInst::BrCond { .. } | NInst::Ret { .. }
        )
    }

    /// The register this instruction defines, if any.
    pub fn def(&self) -> Option<VReg> {
        match self {
            NInst::IConst { d, .. }
            | NInst::FConst { d, .. }
            | NInst::NullConst { d }
            | NInst::Mov { d, .. }
            | NInst::IBinOp { d, .. }
            | NInst::IShlImm { d, .. }
            | NInst::INegOp { d, .. }
            | NInst::ICmpOp { d, .. }
            | NInst::FBinOp { d, .. }
            | NInst::FNegOp { d, .. }
            | NInst::FCmpOp { d, .. }
            | NInst::I2FOp { d, .. }
            | NInst::F2IOp { d, .. }
            | NInst::NewArr { d, .. }
            | NInst::NewObj { d, .. }
            | NInst::ALoadOp { d, .. }
            | NInst::ArrLenOp { d, .. }
            | NInst::GetFieldOp { d, .. } => Some(*d),
            NInst::CallOp { d, .. } | NInst::CallVirtOp { d, .. } => *d,
            _ => None,
        }
    }

    /// The registers this instruction reads.
    pub fn uses(&self) -> Vec<VReg> {
        match self {
            NInst::IConst { .. } | NInst::FConst { .. } | NInst::NullConst { .. } => vec![],
            NInst::Mov { s, .. } => vec![*s],
            NInst::IBinOp { a, b, .. }
            | NInst::ICmpOp { a, b, .. }
            | NInst::FBinOp { a, b, .. }
            | NInst::FCmpOp { a, b, .. } => vec![*a, *b],
            NInst::IShlImm { a, .. }
            | NInst::INegOp { a, .. }
            | NInst::FNegOp { a, .. }
            | NInst::I2FOp { a, .. }
            | NInst::F2IOp { a, .. } => vec![*a],
            NInst::NewArr { len, .. } => vec![*len],
            NInst::NewObj { .. } => vec![],
            NInst::ALoadOp { arr, idx, .. } => vec![*arr, *idx],
            NInst::AStoreOp { arr, idx, val, .. } => vec![*arr, *idx, *val],
            NInst::ArrLenOp { arr, .. } => vec![*arr],
            NInst::GetFieldOp { obj, .. } => vec![*obj],
            NInst::PutFieldOp { obj, val, .. } => vec![*obj, *val],
            NInst::CallOp { args, .. } => args.clone(),
            NInst::CallVirtOp { recv, args, .. } => {
                let mut v = vec![*recv];
                v.extend(args);
                v
            }
            NInst::Jmp { .. } => vec![],
            NInst::BrCond { a, b, .. } => vec![*a, *b],
            NInst::Ret { val } => val.iter().copied().collect(),
        }
    }

    /// True when the instruction has no side effects and produces a
    /// value that depends only on its operands — candidates for CSE,
    /// LICM and dead-code elimination.
    ///
    /// Heap loads are *not* pure (stores or calls may intervene);
    /// allocation is not pure (observable identity); calls are not
    /// pure; division is excluded from speculation because it can
    /// trap.
    pub fn is_pure(&self) -> bool {
        match self {
            NInst::IConst { .. }
            | NInst::FConst { .. }
            | NInst::NullConst { .. }
            | NInst::Mov { .. }
            | NInst::IShlImm { .. }
            | NInst::INegOp { .. }
            | NInst::ICmpOp { .. }
            | NInst::FBinOp { .. }
            | NInst::FNegOp { .. }
            | NInst::FCmpOp { .. }
            | NInst::I2FOp { .. }
            | NInst::F2IOp { .. } => true,
            NInst::IBinOp { op, .. } => !matches!(op, IBin::Div | IBin::Rem),
            _ => false,
        }
    }

    /// True for heap reads (safe to CSE within a block as long as no
    /// write or call intervenes).
    pub fn is_heap_read(&self) -> bool {
        matches!(
            self,
            NInst::ALoadOp { .. } | NInst::GetFieldOp { .. } | NInst::ArrLenOp { .. }
        )
    }

    /// True for instructions that can write the heap or transfer
    /// control into unknown code.
    pub fn clobbers_heap(&self) -> bool {
        matches!(
            self,
            NInst::AStoreOp { .. }
                | NInst::PutFieldOp { .. }
                | NInst::CallOp { .. }
                | NInst::CallVirtOp { .. }
        )
    }

    /// Successor blocks (empty for non-terminators and returns).
    pub fn successors(&self) -> Vec<BlockId> {
        match self {
            NInst::Jmp { target } => vec![*target],
            NInst::BrCond { then_, else_, .. } => vec![*then_, *else_],
            _ => vec![],
        }
    }

    /// Remap every register through `f`.
    pub fn map_regs(&mut self, f: &mut impl FnMut(VReg) -> VReg) {
        match self {
            NInst::IConst { d, .. } | NInst::FConst { d, .. } | NInst::NullConst { d } => {
                *d = f(*d)
            }
            NInst::Mov { d, s } => {
                *d = f(*d);
                *s = f(*s);
            }
            NInst::IBinOp { d, a, b, .. }
            | NInst::ICmpOp { d, a, b }
            | NInst::FBinOp { d, a, b, .. }
            | NInst::FCmpOp { d, a, b } => {
                *d = f(*d);
                *a = f(*a);
                *b = f(*b);
            }
            NInst::IShlImm { d, a, .. }
            | NInst::INegOp { d, a }
            | NInst::FNegOp { d, a }
            | NInst::I2FOp { d, a }
            | NInst::F2IOp { d, a } => {
                *d = f(*d);
                *a = f(*a);
            }
            NInst::NewArr { d, len, .. } => {
                *d = f(*d);
                *len = f(*len);
            }
            NInst::NewObj { d, .. } => *d = f(*d),
            NInst::ALoadOp { d, arr, idx, .. } => {
                *d = f(*d);
                *arr = f(*arr);
                *idx = f(*idx);
            }
            NInst::AStoreOp { arr, idx, val, .. } => {
                *arr = f(*arr);
                *idx = f(*idx);
                *val = f(*val);
            }
            NInst::ArrLenOp { d, arr } => {
                *d = f(*d);
                *arr = f(*arr);
            }
            NInst::GetFieldOp { d, obj, .. } => {
                *d = f(*d);
                *obj = f(*obj);
            }
            NInst::PutFieldOp { obj, val, .. } => {
                *obj = f(*obj);
                *val = f(*val);
            }
            NInst::CallOp { d, args, .. } => {
                if let Some(d) = d {
                    *d = f(*d);
                }
                for a in args {
                    *a = f(*a);
                }
            }
            NInst::CallVirtOp { d, recv, args, .. } => {
                if let Some(d) = d {
                    *d = f(*d);
                }
                *recv = f(*recv);
                for a in args {
                    *a = f(*a);
                }
            }
            NInst::Jmp { .. } => {}
            NInst::BrCond { a, b, .. } => {
                *a = f(*a);
                *b = f(*b);
            }
            NInst::Ret { val } => {
                if let Some(v) = val {
                    *v = f(*v);
                }
            }
        }
    }

    /// Remap only the *used* (read) registers through `f`, leaving the
    /// defined register untouched — even when the same register number
    /// appears in both roles (e.g. `add d=r4, a=r4, b=r5`).
    pub fn map_uses(&mut self, f: &mut impl FnMut(VReg) -> VReg) {
        match self {
            NInst::IConst { .. }
            | NInst::FConst { .. }
            | NInst::NullConst { .. }
            | NInst::NewObj { .. }
            | NInst::Jmp { .. } => {}
            NInst::Mov { s, .. } => *s = f(*s),
            NInst::IBinOp { a, b, .. }
            | NInst::ICmpOp { a, b, .. }
            | NInst::FBinOp { a, b, .. }
            | NInst::FCmpOp { a, b, .. }
            | NInst::BrCond { a, b, .. } => {
                *a = f(*a);
                *b = f(*b);
            }
            NInst::IShlImm { a, .. }
            | NInst::INegOp { a, .. }
            | NInst::FNegOp { a, .. }
            | NInst::I2FOp { a, .. }
            | NInst::F2IOp { a, .. } => *a = f(*a),
            NInst::NewArr { len, .. } => *len = f(*len),
            NInst::ALoadOp { arr, idx, .. } => {
                *arr = f(*arr);
                *idx = f(*idx);
            }
            NInst::AStoreOp { arr, idx, val, .. } => {
                *arr = f(*arr);
                *idx = f(*idx);
                *val = f(*val);
            }
            NInst::ArrLenOp { arr, .. } => *arr = f(*arr),
            NInst::GetFieldOp { obj, .. } => *obj = f(*obj),
            NInst::PutFieldOp { obj, val, .. } => {
                *obj = f(*obj);
                *val = f(*val);
            }
            NInst::CallOp { args, .. } => {
                for a in args {
                    *a = f(*a);
                }
            }
            NInst::CallVirtOp { recv, args, .. } => {
                *recv = f(*recv);
                for a in args {
                    *a = f(*a);
                }
            }
            NInst::Ret { val } => {
                if let Some(v) = val {
                    *v = f(*v);
                }
            }
        }
    }

    /// Remap every block reference through `f`.
    pub fn map_blocks(&mut self, f: &mut impl FnMut(BlockId) -> BlockId) {
        match self {
            NInst::Jmp { target } => *target = f(*target),
            NInst::BrCond { then_, else_, .. } => {
                *then_ = f(*then_);
                *else_ = f(*else_);
            }
            _ => {}
        }
    }
}

/// A basic block: straight-line instructions ending in a terminator.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Block {
    /// The instructions; the last is a terminator once construction
    /// finishes.
    pub insts: Vec<NInst>,
}

impl Block {
    /// The block's terminator.
    ///
    /// # Panics
    /// If the block is unterminated (not valid after construction).
    pub fn terminator(&self) -> &NInst {
        let t = self.insts.last().expect("empty block");
        debug_assert!(t.is_terminator());
        t
    }
}

/// A function in NIR form.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NFunc {
    /// Method this NIR was compiled from.
    pub method: MethodId,
    /// Basic blocks; block 0 is the entry.
    pub blocks: Vec<Block>,
    /// Number of virtual registers in use (positional + temps).
    pub nregs: u32,
    /// Number of positional registers reserved for locals (arguments
    /// arrive in registers `0..invoke_arity`).
    pub nlocals: u32,
}

impl NFunc {
    /// Total instruction count.
    pub fn len(&self) -> usize {
        self.blocks.iter().map(|b| b.insts.len()).sum()
    }

    /// True when the function has no instructions.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Allocate a fresh temp register.
    pub fn fresh_reg(&mut self) -> VReg {
        let r = VReg(self.nregs);
        self.nregs += 1;
        r
    }

    /// Predecessor map: `preds[b]` = blocks that jump to `b`.
    pub fn predecessors(&self) -> Vec<Vec<BlockId>> {
        let mut preds = vec![Vec::new(); self.blocks.len()];
        for (i, b) in self.blocks.iter().enumerate() {
            if let Some(term) = b.insts.last() {
                for s in term.successors() {
                    preds[s.0 as usize].push(BlockId(i as u32));
                }
            }
        }
        preds
    }

    /// Validate structural invariants (every block terminated exactly
    /// once at the end; all targets in range; all regs < nregs).
    /// Used by tests and debug assertions between passes.
    pub fn validate(&self) -> Result<(), String> {
        if self.blocks.is_empty() {
            return Err("no blocks".into());
        }
        for (i, b) in self.blocks.iter().enumerate() {
            if b.insts.is_empty() {
                return Err(format!("block {i} empty"));
            }
            for (j, inst) in b.insts.iter().enumerate() {
                let last = j + 1 == b.insts.len();
                if inst.is_terminator() != last {
                    return Err(format!("block {i} inst {j}: terminator misplaced"));
                }
                for s in inst.successors() {
                    if s.0 as usize >= self.blocks.len() {
                        return Err(format!("block {i}: target {} out of range", s.0));
                    }
                }
                for r in inst.uses().into_iter().chain(inst.def()) {
                    if r.0 >= self.nregs {
                        return Err(format!("block {i} inst {j}: reg {} out of range", r.0));
                    }
                }
            }
        }
        Ok(())
    }
}

impl fmt::Display for NFunc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "nfunc m{} ({} regs)", self.method.0, self.nregs)?;
        for (i, b) in self.blocks.iter().enumerate() {
            writeln!(f, "b{i}:")?;
            for inst in &b.insts {
                writeln!(f, "  {inst:?}")?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> NFunc {
        // b0: r2 = r0 + r1; if r2 > r0 goto b1 else b2
        // b1: ret r2
        // b2: ret r0
        NFunc {
            method: MethodId(0),
            blocks: vec![
                Block {
                    insts: vec![
                        NInst::IBinOp {
                            op: IBin::Add,
                            d: VReg(2),
                            a: VReg(0),
                            b: VReg(1),
                        },
                        NInst::BrCond {
                            cond: Cond::Gt,
                            a: VReg(2),
                            b: VReg(0),
                            then_: BlockId(1),
                            else_: BlockId(2),
                        },
                    ],
                },
                Block {
                    insts: vec![NInst::Ret { val: Some(VReg(2)) }],
                },
                Block {
                    insts: vec![NInst::Ret { val: Some(VReg(0)) }],
                },
            ],
            nregs: 3,
            nlocals: 2,
        }
    }

    #[test]
    fn validate_accepts_sample() {
        sample().validate().unwrap();
    }

    #[test]
    fn validate_rejects_bad_target() {
        let mut f = sample();
        f.blocks[0].insts[1] = NInst::Jmp { target: BlockId(9) };
        assert!(f.validate().is_err());
    }

    #[test]
    fn validate_rejects_missing_terminator() {
        let mut f = sample();
        f.blocks[1].insts = vec![NInst::IConst { d: VReg(2), v: 0 }];
        assert!(f.validate().is_err());
    }

    #[test]
    fn validate_rejects_out_of_range_reg() {
        let mut f = sample();
        f.blocks[1].insts = vec![NInst::Ret {
            val: Some(VReg(99)),
        }];
        assert!(f.validate().is_err());
    }

    #[test]
    fn def_use_sets() {
        let i = NInst::IBinOp {
            op: IBin::Add,
            d: VReg(5),
            a: VReg(1),
            b: VReg(2),
        };
        assert_eq!(i.def(), Some(VReg(5)));
        assert_eq!(i.uses(), vec![VReg(1), VReg(2)]);
        let r = NInst::Ret { val: None };
        assert_eq!(r.def(), None);
        assert!(r.uses().is_empty());
        let c = NInst::CallVirtOp {
            d: Some(VReg(3)),
            slot: 0,
            recv: VReg(0),
            args: vec![VReg(1)],
        };
        assert_eq!(c.uses(), vec![VReg(0), VReg(1)]);
    }

    #[test]
    fn purity_classification() {
        assert!(NInst::IBinOp {
            op: IBin::Add,
            d: VReg(0),
            a: VReg(0),
            b: VReg(0)
        }
        .is_pure());
        // Division traps: not speculatable.
        assert!(!NInst::IBinOp {
            op: IBin::Div,
            d: VReg(0),
            a: VReg(0),
            b: VReg(0)
        }
        .is_pure());
        assert!(!NInst::ALoadOp {
            d: VReg(0),
            arr: VReg(0),
            idx: VReg(0),
            ty: Type::Int
        }
        .is_pure());
        assert!(NInst::ALoadOp {
            d: VReg(0),
            arr: VReg(0),
            idx: VReg(0),
            ty: Type::Int
        }
        .is_heap_read());
        assert!(NInst::CallOp {
            d: None,
            target: MethodId(0),
            args: vec![]
        }
        .clobbers_heap());
    }

    #[test]
    fn predecessors_computed() {
        let f = sample();
        let preds = f.predecessors();
        assert!(preds[0].is_empty());
        assert_eq!(preds[1], vec![BlockId(0)]);
        assert_eq!(preds[2], vec![BlockId(0)]);
    }

    #[test]
    fn map_regs_remaps_everything() {
        let mut i = NInst::AStoreOp {
            arr: VReg(0),
            idx: VReg(1),
            val: VReg(2),
            ty: Type::Int,
        };
        i.map_regs(&mut |r| VReg(r.0 + 10));
        assert_eq!(
            i,
            NInst::AStoreOp {
                arr: VReg(10),
                idx: VReg(11),
                val: VReg(12),
                ty: Type::Int,
            }
        );
    }

    #[test]
    fn fresh_reg_monotonic() {
        let mut f = sample();
        let a = f.fresh_reg();
        let b = f.fresh_reg();
        assert_eq!(a, VReg(3));
        assert_eq!(b, VReg(4));
        assert_eq!(f.nregs, 5);
    }
}

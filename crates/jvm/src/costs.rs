//! The MJVM cost model: how much simulated machine work each VM
//! activity performs.
//!
//! The paper's energy numbers come from running the LaTTe JVM under an
//! instruction-level simulator — interpretation, JIT compilation and
//! generated native code all decompose into counted SPARC instructions.
//! We reproduce that decomposition with explicit per-activity
//! instruction mixes:
//!
//! * **Interpretation** — every bytecode pays a dispatch overhead
//!   (opcode fetch, decode, indirect jump: the classic threaded
//!   interpreter loop) plus the cost of its operand-stack traffic,
//!   which lives in memory. This is why interpreted execution is
//!   energy-expensive relative to native code.
//! * **Native execution** — each emitted native instruction is one
//!   machine event; operand traffic lives in registers.
//! * **JIT compilation** — compiler passes report *work units*
//!   (IR nodes visited); each unit costs [`compile_work_mix`].
//! * **Serialization** — charged per byte via [`serialize_mix`].
//!
//! Simulated address-space layout (for the cache models):
//!
//! | region | base |
//! |---|---|
//! | interpreter handlers (I-cache) | [`INTERP_CODE_BASE`] |
//! | JIT-emitted native code (I-cache) | [`NATIVE_CODE_BASE`] |
//! | operand stack / frames (D-cache) | [`FRAME_BASE`] |
//! | heap objects (D-cache) | `jem_jvm::heap::HEAP_BASE` |

use crate::bytecode::{IBin, Op};
use jem_energy::{InstrClass, InstrMix};

/// Base simulated address of the interpreter's handler code.
pub const INTERP_CODE_BASE: u64 = 0x1000_0000;
/// Bytes reserved per opcode handler (spreads handlers over I-cache
/// sets like a real threaded interpreter).
pub const HANDLER_STRIDE: u64 = 128;
/// Base simulated address of JIT-emitted native code.
pub const NATIVE_CODE_BASE: u64 = 0x3000_0000;
/// Base simulated address of the operand stack / frame region.
pub const FRAME_BASE: u64 = 0x5000_0000;
/// Simulated bytes per emitted native instruction (SPARC: 4).
pub const NATIVE_INSTR_BYTES: u64 = 4;

/// Simulated I-cache address of the handler for `op`.
pub fn handler_address(op: &Op) -> u64 {
    INTERP_CODE_BASE + opcode_index(op) * HANDLER_STRIDE
}

/// Dense opcode index (for handler addressing).
pub(crate) fn opcode_index(op: &Op) -> u64 {
    match op {
        Op::IConst(_) => 0,
        Op::FConst(_) => 1,
        Op::NullConst => 2,
        Op::Load(_) => 3,
        Op::Store(_) => 4,
        Op::Pop => 5,
        Op::Dup => 6,
        Op::Swap => 7,
        Op::IArith(b) => 8 + ibin_index(*b),
        Op::INeg => 18,
        Op::ICmp => 19,
        Op::FArith(_) => 20,
        Op::FNeg => 24,
        Op::FCmp => 25,
        Op::I2F => 26,
        Op::F2I => 27,
        Op::Goto(_) => 28,
        Op::ICmpBr(..) => 29,
        Op::BrZ(..) => 30,
        Op::NewArr(_) => 31,
        Op::ALoad(_) => 32,
        Op::AStore(_) => 33,
        Op::ArrLen => 34,
        Op::New(_) => 35,
        Op::GetField(..) => 36,
        Op::PutField(_) => 37,
        Op::Call(_) => 38,
        Op::CallVirt { .. } => 39,
        Op::Ret => 40,
        Op::RetVal => 41,
        Op::Nop => 42,
    }
}

fn ibin_index(b: IBin) -> u64 {
    match b {
        IBin::Add => 0,
        IBin::Sub => 1,
        IBin::Mul => 2,
        IBin::Div => 3,
        IBin::Rem => 4,
        IBin::And => 5,
        IBin::Or => 6,
        IBin::Xor => 7,
        IBin::Shl => 8,
        IBin::Shr => 9,
    }
}

/// Per-bytecode dispatch overhead of the threaded interpreter:
/// opcode fetch (load from the bytecode array), pc bump + decode
/// (2 simple ALU ops). The indirect dispatch jump itself is issued
/// separately through the I-cache by the interpreter so it can miss
/// realistically.
pub fn dispatch_mix() -> InstrMix {
    InstrMix::new()
        .with(InstrClass::Load, 1)
        .with(InstrClass::AluSimple, 2)
}

/// The interpreter's per-op work beyond dispatch and beyond explicit
/// heap traffic (which the interpreter routes through the D-cache with
/// real addresses). Operand-stack pushes are stores, pops are loads —
/// the memory traffic that makes interpretation expensive.
pub fn op_work_mix(op: &Op) -> InstrMix {
    let m = InstrMix::new();
    match op {
        // push imm
        Op::IConst(_) | Op::NullConst => m
            .with(InstrClass::Load, 1) // operand fetch
            .with(InstrClass::Store, 1),
        Op::FConst(_) => m
            .with(InstrClass::Load, 2) // 8-byte operand fetch
            .with(InstrClass::Store, 2),
        // local read + push / pop + local write
        Op::Load(_) => m.with(InstrClass::Load, 2).with(InstrClass::Store, 1),
        Op::Store(_) => m.with(InstrClass::Load, 2).with(InstrClass::Store, 1),
        Op::Pop => m.with(InstrClass::AluSimple, 1),
        Op::Dup => m.with(InstrClass::Load, 1).with(InstrClass::Store, 1),
        Op::Swap => m.with(InstrClass::Load, 2).with(InstrClass::Store, 2),
        // pop 2, op, push 1
        Op::IArith(b) => {
            let alu = if b.is_complex() {
                InstrClass::AluComplex
            } else {
                InstrClass::AluSimple
            };
            m.with(InstrClass::Load, 2)
                .with(alu, 1)
                .with(InstrClass::Store, 1)
        }
        Op::INeg => m
            .with(InstrClass::Load, 1)
            .with(InstrClass::AluSimple, 1)
            .with(InstrClass::Store, 1),
        Op::ICmp => m
            .with(InstrClass::Load, 2)
            .with(InstrClass::AluSimple, 2)
            .with(InstrClass::Store, 1),
        // float ops: complex ALU (no FPU on the microSPARC-IIep)
        Op::FArith(_) => m
            .with(InstrClass::Load, 2)
            .with(InstrClass::AluComplex, 1)
            .with(InstrClass::Store, 1),
        Op::FNeg => m
            .with(InstrClass::Load, 1)
            .with(InstrClass::AluComplex, 1)
            .with(InstrClass::Store, 1),
        Op::FCmp => m
            .with(InstrClass::Load, 2)
            .with(InstrClass::AluComplex, 1)
            .with(InstrClass::Store, 1),
        Op::I2F | Op::F2I => m
            .with(InstrClass::Load, 1)
            .with(InstrClass::AluComplex, 1)
            .with(InstrClass::Store, 1),
        // control: operand fetch + compare + taken/untaken branch
        Op::Goto(_) => m.with(InstrClass::Load, 1).with(InstrClass::Branch, 1),
        Op::ICmpBr(..) => m
            .with(InstrClass::Load, 3)
            .with(InstrClass::AluSimple, 1)
            .with(InstrClass::Branch, 1),
        Op::BrZ(..) => m
            .with(InstrClass::Load, 2)
            .with(InstrClass::AluSimple, 1)
            .with(InstrClass::Branch, 1),
        // allocation: header init + zeroing is charged per element by
        // the interpreter (see `alloc_zero_mix`)
        Op::NewArr(_) => m
            .with(InstrClass::Load, 1)
            .with(InstrClass::AluSimple, 3)
            .with(InstrClass::Store, 2),
        Op::New(_) => m
            .with(InstrClass::Load, 1)
            .with(InstrClass::AluSimple, 3)
            .with(InstrClass::Store, 2),
        // array access: pops + bounds check; the element touch goes
        // through the D-cache separately
        Op::ALoad(_) => m
            .with(InstrClass::Load, 2)
            .with(InstrClass::AluSimple, 2)
            .with(InstrClass::Branch, 1)
            .with(InstrClass::Store, 1),
        Op::AStore(_) => m
            .with(InstrClass::Load, 3)
            .with(InstrClass::AluSimple, 2)
            .with(InstrClass::Branch, 1),
        Op::ArrLen => m.with(InstrClass::Load, 2).with(InstrClass::Store, 1),
        Op::GetField(..) => m
            .with(InstrClass::Load, 2)
            .with(InstrClass::AluSimple, 1)
            .with(InstrClass::Store, 1),
        Op::PutField(_) => m.with(InstrClass::Load, 2).with(InstrClass::AluSimple, 1),
        // call/return: frame setup (locals copy priced per arg by the
        // interpreter), vtable lookup for virtual
        Op::Call(_) => m
            .with(InstrClass::Load, 2)
            .with(InstrClass::AluSimple, 4)
            .with(InstrClass::Store, 2)
            .with(InstrClass::Branch, 1),
        Op::CallVirt { .. } => m
            .with(InstrClass::Load, 4) // receiver class + vtable entry
            .with(InstrClass::AluSimple, 4)
            .with(InstrClass::Store, 2)
            .with(InstrClass::Branch, 1),
        Op::Ret => m
            .with(InstrClass::Load, 1)
            .with(InstrClass::AluSimple, 2)
            .with(InstrClass::Branch, 1),
        Op::RetVal => m
            .with(InstrClass::Load, 2)
            .with(InstrClass::AluSimple, 2)
            .with(InstrClass::Store, 1)
            .with(InstrClass::Branch, 1),
        Op::Nop => m,
    }
}

/// Per-argument cost of copying arguments into a callee frame.
pub fn arg_copy_mix(nargs: usize) -> InstrMix {
    InstrMix::new()
        .with(InstrClass::Load, nargs as u64)
        .with(InstrClass::Store, nargs as u64)
}

/// Per-element zeroing cost of array/object allocation (one store per
/// 8 bytes, like an optimized memset).
pub fn alloc_zero_mix(bytes: u64) -> InstrMix {
    InstrMix::new().with(InstrClass::Store, bytes.div_ceil(8))
}

/// One-time cost of loading and initializing the JIT compiler's own
/// classes on the client — paid before the *first* local compilation.
/// The paper's Fig 6 energies explicitly "include the energy cost of
/// loading and initializing the compiler classes", and this cost is
/// what makes interpretation or remote execution preferable for small
/// inputs, and remote *compilation* attractive at all ("remote
/// compilation … can reduce both the energy and memory overheads").
///
/// Sized at ~2.5M instructions (~25 ms at 100 MHz): reading, verifying
/// and initializing the compiler while still running interpreted — in
/// line with JIT warm-up measurements from the era. Large enough to
/// dominate a small-input invocation (the paper's Fig 6 shows I and R
/// beating every local strategy at small sizes for exactly this
/// reason), small enough to amortize over a 300-invocation scenario.
pub fn compiler_init_mix() -> InstrMix {
    InstrMix::new()
        .with(InstrClass::Load, 875_000)
        .with(InstrClass::Store, 375_000)
        .with(InstrClass::AluSimple, 875_000)
        .with(InstrClass::AluComplex, 37_500)
        .with(InstrClass::Branch, 250_000)
        .with_mem(50_000)
}

/// One compiler *work unit*: the instruction footprint of visiting
/// one IR node in a pass, including its share of the surrounding
/// machinery a JVM JIT drags along per compiled node — class-file
/// parsing and constant-pool resolution, bytecode re-verification,
/// allocation and GC of the IR itself, and hash-table churn. The
/// per-unit footprint is calibrated so that a whole-application
/// compile lands in the regime the paper's Fig 8 establishes
/// empirically: local compilation energy is comparable to the radio
/// energy of downloading the resulting code (which is what makes the
/// local/remote compilation tradeoff a real decision).
pub fn compile_work_mix(units: u64) -> InstrMix {
    InstrMix::new()
        .with(InstrClass::Load, 120 * units)
        .with(InstrClass::Store, 40 * units)
        .with(InstrClass::AluSimple, 120 * units)
        .with(InstrClass::Branch, 40 * units)
        .with_mem(3 * units)
}

/// Cost of serializing or deserializing `bytes` bytes of object data
/// (tag handling, copying, handle fixup — roughly one load+store plus
/// bookkeeping per word).
pub fn serialize_mix(bytes: u64) -> InstrMix {
    let words = bytes.div_ceil(4);
    InstrMix::new()
        .with(InstrClass::Load, words)
        .with(InstrClass::Store, words)
        .with(InstrClass::AluSimple, words / 2)
        .with(InstrClass::Branch, words / 8)
        .with_mem(words / 32)
}

#[cfg(test)]
mod tests {
    use super::*;
    use jem_energy::EnergyTable;

    #[test]
    fn handler_addresses_are_distinct_per_opcode() {
        let ops = [
            Op::IConst(0),
            Op::Load(0),
            Op::IArith(IBin::Add),
            Op::IArith(IBin::Mul),
            Op::Goto(0),
            Op::Ret,
        ];
        let mut addrs: Vec<u64> = ops.iter().map(handler_address).collect();
        addrs.sort_unstable();
        addrs.dedup();
        assert_eq!(addrs.len(), ops.len());
    }

    #[test]
    fn handlers_fit_in_icache() {
        // All handlers must fit in the 16 KB client I-cache so a hot
        // interpreter loop stays cache-resident, as real threaded
        // interpreters do.
        let max = 43 * HANDLER_STRIDE;
        assert!(max <= 16 * 1024, "handler region too large: {max}");
    }

    #[test]
    fn interpretation_overhead_dominates_op_work() {
        // Dispatch + operand-stack traffic should make the interpreted
        // iadd several times more expensive than the single simple-ALU
        // instruction native code uses.
        let table = EnergyTable::default();
        let interp = table.energy_of_mix(&(dispatch_mix() + op_work_mix(&Op::IArith(IBin::Add))));
        let native = table.energy_of_mix(&InstrMix::new().with(InstrClass::AluSimple, 1));
        let ratio = interp.ratio(native);
        assert!(ratio > 4.0, "interpretation too cheap: {ratio}");
        assert!(ratio < 20.0, "interpretation unrealistically dear: {ratio}");
    }

    #[test]
    fn complex_ops_cost_more_than_simple() {
        let table = EnergyTable::default();
        let add = table.energy_of_mix(&op_work_mix(&Op::IArith(IBin::Add)));
        let mul = table.energy_of_mix(&op_work_mix(&Op::IArith(IBin::Mul)));
        assert!(mul > add);
    }

    #[test]
    fn serialize_cost_scales_linearly() {
        let table = EnergyTable::default();
        let small = table.energy_of_mix(&serialize_mix(1024));
        let large = table.energy_of_mix(&serialize_mix(4096));
        let ratio = large.ratio(small);
        assert!((ratio - 4.0).abs() < 0.1, "{ratio}");
    }

    #[test]
    fn compile_work_nonzero() {
        let table = EnergyTable::default();
        assert!(table.energy_of_mix(&compile_work_mix(100)).nanojoules() > 0.0);
        assert!(compile_work_mix(0).is_empty());
    }

    #[test]
    fn alloc_zeroing_per_8_bytes() {
        assert_eq!(alloc_zero_mix(64).count(InstrClass::Store), 8);
        assert_eq!(alloc_zero_mix(1).count(InstrClass::Store), 1);
        assert_eq!(alloc_zero_mix(0).count(InstrClass::Store), 0);
    }
}

//! Arithmetic semantics shared by the interpreter and JIT-compiled
//! code.
//!
//! Compilation must never change observable results, so both engines
//! call these single definitions: wrapping 32-bit integer arithmetic
//! (JVM semantics), trapping division by zero, `fcmpl`-style float
//! comparison (NaN sorts low), and saturating float→int truncation.

use crate::bytecode::{FBin, IBin};
use crate::VmError;

/// Apply an integer binary operator with JVM semantics.
///
/// # Errors
/// [`VmError::DivByZero`] for `Div`/`Rem` with a zero divisor.
#[inline]
pub fn ibin(op: IBin, a: i32, b: i32) -> Result<i32, VmError> {
    Ok(match op {
        IBin::Add => a.wrapping_add(b),
        IBin::Sub => a.wrapping_sub(b),
        IBin::Mul => a.wrapping_mul(b),
        IBin::Div => {
            if b == 0 {
                return Err(VmError::DivByZero);
            }
            a.wrapping_div(b)
        }
        IBin::Rem => {
            if b == 0 {
                return Err(VmError::DivByZero);
            }
            a.wrapping_rem(b)
        }
        IBin::And => a & b,
        IBin::Or => a | b,
        IBin::Xor => a ^ b,
        IBin::Shl => a.wrapping_shl(b as u32 & 31),
        IBin::Shr => a.wrapping_shr(b as u32 & 31),
    })
}

/// Apply a float binary operator (IEEE-754, like the JVM).
#[inline]
pub fn fbin(op: FBin, a: f64, b: f64) -> f64 {
    match op {
        FBin::Add => a + b,
        FBin::Sub => a - b,
        FBin::Mul => a * b,
        FBin::Div => a / b,
    }
}

/// Three-way integer comparison: `sign(a - b)` without overflow.
#[inline]
pub fn icmp(a: i32, b: i32) -> i32 {
    match a.cmp(&b) {
        std::cmp::Ordering::Less => -1,
        std::cmp::Ordering::Equal => 0,
        std::cmp::Ordering::Greater => 1,
    }
}

/// Three-way float comparison with NaN sorting low (`fcmpl`).
#[inline]
pub fn fcmp(a: f64, b: f64) -> i32 {
    // NaN sorts low, exactly like `fcmpl`.
    if a.is_nan() || b.is_nan() || a < b {
        -1
    } else if a > b {
        1
    } else {
        0
    }
}

/// Truncating, saturating float → int conversion (JVM `d2i`).
#[inline]
pub fn f2i(x: f64) -> i32 {
    // Rust's `as` performs exactly the saturating JVM conversion
    // (NaN → 0).
    x as i32
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wrapping_int_ops() {
        assert_eq!(ibin(IBin::Add, i32::MAX, 1).unwrap(), i32::MIN);
        assert_eq!(ibin(IBin::Sub, i32::MIN, 1).unwrap(), i32::MAX);
        assert_eq!(ibin(IBin::Mul, 1 << 30, 4).unwrap(), 0);
        assert_eq!(ibin(IBin::Div, i32::MIN, -1).unwrap(), i32::MIN);
        assert_eq!(ibin(IBin::Rem, 7, 3).unwrap(), 1);
        assert_eq!(ibin(IBin::Rem, -7, 3).unwrap(), -1);
    }

    #[test]
    fn division_by_zero_traps() {
        assert_eq!(ibin(IBin::Div, 1, 0), Err(VmError::DivByZero));
        assert_eq!(ibin(IBin::Rem, 1, 0), Err(VmError::DivByZero));
    }

    #[test]
    fn shifts_mask_to_five_bits() {
        assert_eq!(ibin(IBin::Shl, 1, 33).unwrap(), 2);
        assert_eq!(ibin(IBin::Shr, -8, 1).unwrap(), -4); // arithmetic
        assert_eq!(ibin(IBin::Shr, 8, 2).unwrap(), 2);
    }

    #[test]
    fn bitwise_ops() {
        assert_eq!(ibin(IBin::And, 0b1100, 0b1010).unwrap(), 0b1000);
        assert_eq!(ibin(IBin::Or, 0b1100, 0b1010).unwrap(), 0b1110);
        assert_eq!(ibin(IBin::Xor, 0b1100, 0b1010).unwrap(), 0b0110);
    }

    #[test]
    fn comparisons() {
        assert_eq!(icmp(1, 2), -1);
        assert_eq!(icmp(2, 2), 0);
        assert_eq!(icmp(3, 2), 1);
        assert_eq!(icmp(i32::MIN, i32::MAX), -1); // no overflow
        assert_eq!(fcmp(1.0, 2.0), -1);
        assert_eq!(fcmp(2.0, 2.0), 0);
        assert_eq!(fcmp(f64::NAN, 0.0), -1);
        assert_eq!(fcmp(0.0, f64::NAN), -1);
    }

    #[test]
    fn float_to_int_saturates() {
        assert_eq!(f2i(1.9), 1);
        assert_eq!(f2i(-1.9), -1);
        assert_eq!(f2i(1e99), i32::MAX);
        assert_eq!(f2i(-1e99), i32::MIN);
        assert_eq!(f2i(f64::NAN), 0);
    }

    #[test]
    fn float_ops_are_ieee() {
        assert_eq!(fbin(FBin::Div, 1.0, 0.0), f64::INFINITY);
        assert!(fbin(FBin::Div, 0.0, 0.0).is_nan());
        assert_eq!(fbin(FBin::Mul, 2.0, 3.5), 7.0);
    }
}

//! Runtime values and static types of the MJVM.
//!
//! The MJVM is a compact Java-like VM: 32-bit integers, 64-bit floats
//! (the paper's microSPARC-IIep has no FPU, so float arithmetic is
//! priced as complex-ALU work), and references into a garbage-free
//! arena heap. `null` is a distinct value, as in the JVM.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Index of a heap object. Handles are dense indices into the
/// [`crate::heap::Heap`] arena.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Handle(pub u32);

/// A runtime value.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Value {
    /// 32-bit signed integer (also carries booleans: 0/1).
    Int(i32),
    /// 64-bit float.
    Float(f64),
    /// Reference to a heap object.
    Ref(Handle),
    /// The null reference.
    Null,
}

impl Value {
    /// Extract an integer.
    ///
    /// # Errors
    /// [`TypeMismatch`](crate::VmError::TypeMismatch) if not an `Int`.
    pub fn as_int(self) -> Result<i32, crate::VmError> {
        match self {
            Value::Int(v) => Ok(v),
            other => Err(crate::VmError::TypeMismatch {
                expected: Type::Int,
                got: other.runtime_type(),
            }),
        }
    }

    /// Extract a float.
    ///
    /// # Errors
    /// [`TypeMismatch`](crate::VmError::TypeMismatch) if not a `Float`.
    pub fn as_float(self) -> Result<f64, crate::VmError> {
        match self {
            Value::Float(v) => Ok(v),
            other => Err(crate::VmError::TypeMismatch {
                expected: Type::Float,
                got: other.runtime_type(),
            }),
        }
    }

    /// Extract a (non-null) reference.
    ///
    /// # Errors
    /// [`NullDeref`](crate::VmError::NullDeref) on `Null`,
    /// [`TypeMismatch`](crate::VmError::TypeMismatch) otherwise.
    pub fn as_ref(self) -> Result<Handle, crate::VmError> {
        match self {
            Value::Ref(h) => Ok(h),
            Value::Null => Err(crate::VmError::NullDeref),
            other => Err(crate::VmError::TypeMismatch {
                expected: Type::Ref,
                got: other.runtime_type(),
            }),
        }
    }

    /// The static type this value inhabits.
    pub fn runtime_type(self) -> Type {
        match self {
            Value::Int(_) => Type::Int,
            Value::Float(_) => Type::Float,
            Value::Ref(_) | Value::Null => Type::Ref,
        }
    }

    /// Default (zero) value of a type — field/array initialization.
    pub fn zero_of(ty: Type) -> Value {
        match ty {
            Type::Int => Value::Int(0),
            Type::Float => Value::Float(0.0),
            Type::Ref => Value::Null,
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(v) => write!(f, "{v}"),
            Value::Float(v) => write!(f, "{v}"),
            Value::Ref(h) => write!(f, "@{}", h.0),
            Value::Null => write!(f, "null"),
        }
    }
}

/// Static value categories tracked by the verifier and the DSL
/// type-checker.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Type {
    /// 32-bit integer.
    Int,
    /// 64-bit float.
    Float,
    /// Reference (array or object) — may be null.
    Ref,
}

impl fmt::Display for Type {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Type::Int => write!(f, "int"),
            Type::Float => write!(f, "float"),
            Type::Ref => write!(f, "ref"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::VmError;

    #[test]
    fn accessors_accept_matching() {
        assert_eq!(Value::Int(7).as_int().unwrap(), 7);
        assert_eq!(Value::Float(2.5).as_float().unwrap(), 2.5);
        assert_eq!(Value::Ref(Handle(3)).as_ref().unwrap(), Handle(3));
    }

    #[test]
    fn accessors_reject_mismatched() {
        assert!(matches!(
            Value::Float(1.0).as_int(),
            Err(VmError::TypeMismatch { .. })
        ));
        assert!(matches!(
            Value::Int(1).as_float(),
            Err(VmError::TypeMismatch { .. })
        ));
        assert!(matches!(Value::Null.as_ref(), Err(VmError::NullDeref)));
        assert!(matches!(
            Value::Int(0).as_ref(),
            Err(VmError::TypeMismatch { .. })
        ));
    }

    #[test]
    fn zero_values() {
        assert_eq!(Value::zero_of(Type::Int), Value::Int(0));
        assert_eq!(Value::zero_of(Type::Float), Value::Float(0.0));
        assert_eq!(Value::zero_of(Type::Ref), Value::Null);
    }

    #[test]
    fn runtime_types() {
        assert_eq!(Value::Int(1).runtime_type(), Type::Int);
        assert_eq!(Value::Float(1.0).runtime_type(), Type::Float);
        assert_eq!(Value::Ref(Handle(0)).runtime_type(), Type::Ref);
        assert_eq!(Value::Null.runtime_type(), Type::Ref);
    }

    #[test]
    fn display_forms() {
        assert_eq!(Value::Int(-3).to_string(), "-3");
        assert_eq!(Value::Null.to_string(), "null");
        assert_eq!(Value::Ref(Handle(9)).to_string(), "@9");
        assert_eq!(Type::Float.to_string(), "float");
    }
}

//! The JIT compiler driver.
//!
//! Assembles the pass pipelines for the paper's three compilation
//! levels and reports the work expended, which the caller converts to
//! compilation energy (charged to the client for local compilation, or
//! to nobody for server-side remote compilation — the client then pays
//! radio energy to download the code instead).

use crate::bytecode::MethodId;
use crate::class::Program;
use crate::emit::{emit, NativeCode, OptLevel};
use crate::lower;
use crate::opt::{copyprop, cse, dce, inline, licm, strength};

/// Per-pass work accounting for one compilation.
#[derive(Debug, Clone)]
pub struct CompileReport {
    /// Method compiled.
    pub method: MethodId,
    /// Level compiled at.
    pub level: OptLevel,
    /// Total work units across all passes.
    pub work_units: u64,
    /// Per-pass breakdown `(pass name, work units)`.
    pub per_pass: Vec<(&'static str, u64)>,
    /// NIR instructions after optimization.
    pub nir_insts: usize,
    /// Emitted code bytes.
    pub code_bytes: u32,
    /// Number of spilled registers.
    pub spills: usize,
}

/// One compiled method: the code object plus its compile report.
#[derive(Debug, Clone)]
pub struct Compiled {
    /// Executable code.
    pub code: NativeCode,
    /// Work accounting.
    pub report: CompileReport,
}

/// Compile `method` at `level`.
pub fn compile(program: &Program, method: MethodId, level: OptLevel) -> Compiled {
    let mut per_pass: Vec<(&'static str, u64)> = Vec::new();

    let lowered = lower::lower(program, method);
    per_pass.push(("lower", lowered.work_units));
    let mut func = lowered.func;

    if level >= OptLevel::L3 {
        let r = inline::run(&mut func, program, &inline::InlineConfig::default());
        per_pass.push(("inline", r.work_units));
    }
    if level >= OptLevel::L2 {
        let r = copyprop::run(&mut func);
        per_pass.push(("copyprop", r.work_units));
        let r = strength::run(&mut func);
        per_pass.push(("strength", r.work_units));
        let r = cse::run(&mut func);
        per_pass.push(("cse", r.work_units));
        let r = licm::run(&mut func);
        per_pass.push(("licm", r.work_units));
        // A second local round cleans up copies LICM introduced.
        let r = copyprop::run(&mut func);
        per_pass.push(("copyprop2", r.work_units));
        let r = strength::run(&mut func);
        per_pass.push(("strength2", r.work_units));
        let r = cse::run(&mut func);
        per_pass.push(("cse2", r.work_units));
        let r = dce::run(&mut func);
        per_pass.push(("dce", r.work_units));
    }

    let emitted = emit(func, level);
    per_pass.push(("regalloc+emit", emitted.work_units));

    let work_units = per_pass.iter().map(|(_, w)| w).sum();
    let report = CompileReport {
        method,
        level,
        work_units,
        per_pass,
        nir_insts: emitted.code.func.len(),
        code_bytes: emitted.code.code_bytes,
        spills: emitted.code.spill_slots.len(),
    };
    Compiled {
        code: emitted.code,
        report,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dsl::*;
    use crate::verify::verify_program;

    fn benchy_module() -> Program {
        let mut m = ModuleBuilder::new();
        m.func(
            "inner",
            vec![("x", DType::Int), ("c", DType::Int)],
            Some(DType::Int),
            vec![ret(var("x").mul(var("c")).add(iconst(3)))],
        );
        m.func(
            "kernel",
            vec![("n", DType::Int), ("c", DType::Int)],
            Some(DType::Int),
            vec![
                let_("acc", iconst(0)),
                for_(
                    "i",
                    iconst(0),
                    var("n"),
                    vec![
                        // invariant: c * 8 (strength-reducible, LICM-able)
                        let_("k", var("c").mul(iconst(8))),
                        assign(
                            "acc",
                            var("acc").add(call("inner", vec![var("i"), var("k")])),
                        ),
                    ],
                ),
                ret(var("acc")),
            ],
        );
        let p = m.compile().unwrap();
        verify_program(&p).unwrap();
        p
    }

    #[test]
    fn compile_work_increases_with_level() {
        let p = benchy_module();
        let id = p.find_method(MODULE_CLASS, "kernel").unwrap();
        let w1 = compile(&p, id, OptLevel::L1).report.work_units;
        let w2 = compile(&p, id, OptLevel::L2).report.work_units;
        let w3 = compile(&p, id, OptLevel::L3).report.work_units;
        assert!(w1 < w2, "L1 {w1} !< L2 {w2}");
        assert!(w2 < w3, "L2 {w2} !< L3 {w3}");
        // Paper Fig 8 ballpark: L2 within ~1.4–3.5x of L1, L3 above L2.
        let r21 = w2 as f64 / w1 as f64;
        assert!(r21 > 1.2 && r21 < 6.0, "L2/L1 ratio {r21}");
    }

    #[test]
    fn inlining_changes_code_size() {
        let p = benchy_module();
        let id = p.find_method(MODULE_CLASS, "kernel").unwrap();
        let c1 = compile(&p, id, OptLevel::L1);
        let c3 = compile(&p, id, OptLevel::L3);
        assert_ne!(c1.report.code_bytes, c3.report.code_bytes);
        // The L3 body inlined `inner`, so no calls remain.
        let calls = c3
            .code
            .func
            .blocks
            .iter()
            .flat_map(|b| &b.insts)
            .filter(|i| matches!(i, crate::nir::NInst::CallOp { .. }))
            .count();
        assert_eq!(calls, 0);
    }

    #[test]
    fn optimization_reduces_instruction_count() {
        let p = benchy_module();
        let id = p.find_method(MODULE_CLASS, "kernel").unwrap();
        let c1 = compile(&p, id, OptLevel::L1);
        let c2 = compile(&p, id, OptLevel::L2);
        assert!(
            c2.report.nir_insts < c1.report.nir_insts,
            "L2 {} !< L1 {}",
            c2.report.nir_insts,
            c1.report.nir_insts
        );
    }

    #[test]
    fn report_pass_list_matches_level() {
        let p = benchy_module();
        let id = p.find_method(MODULE_CLASS, "kernel").unwrap();
        let c1 = compile(&p, id, OptLevel::L1);
        assert_eq!(c1.report.per_pass.len(), 2); // lower + emit
        let c2 = compile(&p, id, OptLevel::L2);
        assert!(c2.report.per_pass.iter().any(|(n, _)| *n == "licm"));
        assert!(!c2.report.per_pass.iter().any(|(n, _)| *n == "inline"));
        let c3 = compile(&p, id, OptLevel::L3);
        assert!(c3.report.per_pass.iter().any(|(n, _)| *n == "inline"));
    }

    #[test]
    fn compiled_code_validates() {
        let p = benchy_module();
        for m in 0..p.methods.len() {
            let id = MethodId(m as u32);
            if p.method(id).code.is_empty() {
                continue;
            }
            for level in OptLevel::ALL {
                let c = compile(&p, id, level);
                c.code
                    .func
                    .validate()
                    .unwrap_or_else(|e| panic!("{} at {level}: {e}", p.qualified_name(id)));
            }
        }
    }
}

//! Pre-decoded execution form and run-level batched charge planning
//! for the native executor.
//!
//! Installing native code compiles a [`NativeCode`] object into an
//! [`XCode`]: the executable plan [`crate::exec`] actually runs. It
//! contains two cooperating artifacts, both derived (never
//! serialized):
//!
//! 1. **A pre-decoded instruction stream** ([`XOp`]) — the NIR
//!    flattened into a dense array of small fixed-size ops with every
//!    field pre-resolved: register numbers narrowed to `u16`, binary
//!    operators split into per-op variants (no inner operator match at
//!    run time), call argument lists pooled into one flat side table,
//!    and each virtual call's inline-cache slot index precomputed.
//! 2. **Batched charge plans** — a per-instruction [`SeqPlan`] (the
//!    reference-shaped path) plus merged multi-instruction *runs*
//!    whose charging is hoisted to the run head.
//!
//! # Why hoisting run charges is bit-exact
//!
//! The reference execution model interleaves accounting and semantics
//! per instruction: charge the instruction's emitted micro sequence,
//! then run its semantics, then the next instruction. For most
//! straight-line NIR that interleaving is unobservable — the semantics
//! of register-only instructions never touch the simulated
//! [`Machine`](jem_energy::Machine), so the machine sees the exact same
//! event sequence whether the charges land one instruction at a time
//! or all at once at the head of the run. A run must preserve that
//! equivalence on **every** path, including errors, so its shape is
//! constrained:
//!
//! * No instruction in a run may touch the machine from its semantics
//!   (allocations charge a zeroing mix, calls recurse into the VM) or
//!   carry a heap-addressed micro (the D-cache needs the address
//!   resolved *after* the preceding semantics ran). Such instructions
//!   execute on the per-instruction path.
//! * Every instruction except the last must have **infallible**
//!   semantics: if semantics `i` could fail, the reference sequence
//!   stops after charge `i`, while the batched sequence already
//!   charged the whole run. Infallibility is proven by a conservative
//!   forward type inference over the virtual registers ([`Ty`]): only
//!   values the engine itself constructed (constants, arithmetic
//!   results, conversions, copies of those) get a known type —
//!   arguments, heap loads and call returns are never trusted. A
//!   fallible instruction may still *end* a run: the reference charges
//!   it before running its semantics, so both engines have charged
//!   exactly the same prefix when the error surfaces.
//! * The step budget is handled by the executor: the batched path is
//!   only taken when the remaining budget covers the whole run, so the
//!   folded `bump_steps` cannot fail mid-run; otherwise the
//!   per-instruction path reproduces the reference budget error
//!   exactly.
//!
//! Because the semantics inside a run never touch the I-cache, the
//! merged plan's consecutive fetches remain back-to-back, which is
//! precisely the property [`SeqPlan`] line grouping relies on.

use crate::bytecode::{Cond, FBin, IBin};
use crate::costs::NATIVE_INSTR_BYTES;
use crate::emit::{Micro, MicroMem, NativeCode};
use crate::nir::{NFunc, NInst, VReg};
use crate::value::Type;
use jem_energy::{InstrClass, MachineConfig, SeqDataRef, SeqPlan};

/// Sentinel for [`XBlock::run_at`] slots where no batched run starts.
pub const NO_RUN: u32 = u32::MAX;

/// Sentinel register number meaning "absent" (void call destination,
/// void return). Valid registers are `< NONE` — enforced at decode.
pub const NONE: u16 = u16::MAX;

/// One pre-decoded executable instruction. Fixed 16-byte layout, every
/// field pre-resolved; semantics are identical to the corresponding
/// [`NInst`] as executed by the reference path.
#[derive(Debug, Clone)]
pub enum XOp {
    /// `r[d] = v`
    IConst {
        /// Destination.
        d: u16,
        /// Immediate.
        v: i32,
    },
    /// `r[d] = v` (float)
    FConst {
        /// Destination.
        d: u16,
        /// Immediate.
        v: f64,
    },
    /// `r[d] = null`
    NullConst {
        /// Destination.
        d: u16,
    },
    /// `r[d] = r[s]`
    Mov {
        /// Destination.
        d: u16,
        /// Source.
        s: u16,
    },
    /// `r[d] = r[a] + r[b]` (wrapping)
    IAdd {
        /// Destination.
        d: u16,
        /// Left operand.
        a: u16,
        /// Right operand.
        b: u16,
    },
    /// `r[d] = r[a] - r[b]` (wrapping)
    ISub {
        /// Destination.
        d: u16,
        /// Left operand.
        a: u16,
        /// Right operand.
        b: u16,
    },
    /// `r[d] = r[a] * r[b]` (wrapping)
    IMul {
        /// Destination.
        d: u16,
        /// Left operand.
        a: u16,
        /// Right operand.
        b: u16,
    },
    /// `r[d] = r[a] / r[b]` (traps on zero)
    IDiv {
        /// Destination.
        d: u16,
        /// Left operand.
        a: u16,
        /// Right operand.
        b: u16,
    },
    /// `r[d] = r[a] % r[b]` (traps on zero)
    IRem {
        /// Destination.
        d: u16,
        /// Left operand.
        a: u16,
        /// Right operand.
        b: u16,
    },
    /// `r[d] = r[a] & r[b]`
    IAnd {
        /// Destination.
        d: u16,
        /// Left operand.
        a: u16,
        /// Right operand.
        b: u16,
    },
    /// `r[d] = r[a] | r[b]`
    IOr {
        /// Destination.
        d: u16,
        /// Left operand.
        a: u16,
        /// Right operand.
        b: u16,
    },
    /// `r[d] = r[a] ^ r[b]`
    IXor {
        /// Destination.
        d: u16,
        /// Left operand.
        a: u16,
        /// Right operand.
        b: u16,
    },
    /// `r[d] = r[a] << (r[b] & 31)`
    IShl {
        /// Destination.
        d: u16,
        /// Left operand.
        a: u16,
        /// Right operand.
        b: u16,
    },
    /// `r[d] = r[a] >> (r[b] & 31)` (arithmetic)
    IShr {
        /// Destination.
        d: u16,
        /// Left operand.
        a: u16,
        /// Right operand.
        b: u16,
    },
    /// `r[d] = r[a] << k`
    IShlImm {
        /// Destination.
        d: u16,
        /// Operand.
        a: u16,
        /// Shift amount.
        k: u8,
    },
    /// `r[d] = -r[a]` (wrapping)
    INeg {
        /// Destination.
        d: u16,
        /// Operand.
        a: u16,
    },
    /// `r[d] = sign(r[a] - r[b])`
    ICmp {
        /// Destination.
        d: u16,
        /// Left operand.
        a: u16,
        /// Right operand.
        b: u16,
    },
    /// `r[d] = r[a] + r[b]` (float)
    FAdd {
        /// Destination.
        d: u16,
        /// Left operand.
        a: u16,
        /// Right operand.
        b: u16,
    },
    /// `r[d] = r[a] - r[b]` (float)
    FSub {
        /// Destination.
        d: u16,
        /// Left operand.
        a: u16,
        /// Right operand.
        b: u16,
    },
    /// `r[d] = r[a] * r[b]` (float)
    FMul {
        /// Destination.
        d: u16,
        /// Left operand.
        a: u16,
        /// Right operand.
        b: u16,
    },
    /// `r[d] = r[a] / r[b]` (float, IEEE — no trap)
    FDiv {
        /// Destination.
        d: u16,
        /// Left operand.
        a: u16,
        /// Right operand.
        b: u16,
    },
    /// `r[d] = -r[a]` (float)
    FNeg {
        /// Destination.
        d: u16,
        /// Operand.
        a: u16,
    },
    /// `r[d] = sign(r[a] - r[b])` (float, NaN → -1)
    FCmp {
        /// Destination.
        d: u16,
        /// Left operand.
        a: u16,
        /// Right operand.
        b: u16,
    },
    /// `r[d] = (float) r[a]`
    I2F {
        /// Destination.
        d: u16,
        /// Operand.
        a: u16,
    },
    /// `r[d] = (int) r[a]` (truncating, saturating)
    F2I {
        /// Destination.
        d: u16,
        /// Operand.
        a: u16,
    },
    /// `r[d] = new ty[r[len]]`
    NewArr {
        /// Destination.
        d: u16,
        /// Element type.
        ty: Type,
        /// Length register.
        len: u16,
    },
    /// `r[d] = new class()`
    NewObj {
        /// Destination.
        d: u16,
        /// Class id.
        class: u32,
    },
    /// `r[d] = r[arr][r[idx]]`
    ALoad {
        /// Destination.
        d: u16,
        /// Array register.
        arr: u16,
        /// Index register.
        idx: u16,
    },
    /// `r[arr][r[idx]] = r[val]`
    AStore {
        /// Array register.
        arr: u16,
        /// Index register.
        idx: u16,
        /// Value register.
        val: u16,
    },
    /// `r[d] = r[arr].length`
    ArrLen {
        /// Destination.
        d: u16,
        /// Array register.
        arr: u16,
    },
    /// `r[d] = r[obj].field[slot]`
    GetField {
        /// Destination.
        d: u16,
        /// Object register.
        obj: u16,
        /// Field slot.
        slot: u16,
    },
    /// `r[obj].field[slot] = r[val]`
    PutField {
        /// Object register.
        obj: u16,
        /// Field slot.
        slot: u16,
        /// Value register.
        val: u16,
    },
    /// Static call; argument registers at
    /// `args_pool[argi..argi + argc]`.
    Call {
        /// Destination, or [`NONE`] for void.
        d: u16,
        /// Argument count.
        argc: u16,
        /// Callee method id.
        target: u32,
        /// Start index into [`XCode::args_pool`].
        argi: u32,
    },
    /// Virtual call; argument registers (receiver excluded) at
    /// `args_pool[argi..argi + argc]`.
    CallVirt {
        /// Destination, or [`NONE`] for void.
        d: u16,
        /// Vtable slot.
        slot: u16,
        /// Receiver register.
        recv: u16,
        /// Argument count.
        argc: u16,
        /// Precomputed inline-cache slot (the call's emitted
        /// instruction offset).
        ic: u32,
        /// Start index into [`XCode::args_pool`].
        argi: u32,
    },
    /// Unconditional jump.
    Jmp {
        /// Target block.
        t: u32,
    },
    /// Conditional branch on an integer compare.
    Br {
        /// Condition.
        cond: Cond,
        /// Left operand.
        a: u16,
        /// Right operand.
        b: u16,
        /// Taken target.
        t: u32,
        /// Fall-through target.
        e: u32,
    },
    /// Return `r[v]` ([`NONE`] for void).
    Ret {
        /// Returned register or [`NONE`].
        v: u16,
    },
}

/// The executable plan for one installed method: pre-decoded ops plus
/// charge plans, compiled against one machine's energy table and
/// I-cache geometry. A derived artifact — cache-reconstructable from
/// the [`NativeCode`], never serialized.
#[derive(Debug)]
pub struct XCode {
    /// Per-block executable form.
    pub blocks: Vec<XBlock>,
    /// Register file size.
    pub nregs: u32,
    /// Pooled call-argument registers (see [`XOp::Call`]).
    pub args_pool: Vec<u16>,
}

/// One basic block of an [`XCode`]: decoded ops, the per-instruction
/// charge plans (the reference-shaped path) and the batched
/// multi-instruction runs layered over them.
#[derive(Debug)]
pub struct XBlock {
    /// Pre-decoded instructions.
    pub ops: Vec<XOp>,
    /// Per-instruction batched charge plan (one straight-line emitted
    /// micro sequence each).
    pub plans: Vec<SeqPlan>,
    /// Multi-instruction batched runs (each covers ≥ 2 instructions).
    pub runs: Vec<SeqRun>,
    /// `run_at[ii]` is the index into [`XBlock::runs`] of the run
    /// starting at instruction `ii`, or [`NO_RUN`].
    pub run_at: Vec<u32>,
}

/// One batched run: a maximal straight-line stretch of instructions
/// whose charging is hoisted to the run head.
#[derive(Debug)]
pub struct SeqRun {
    /// Number of instructions covered.
    pub len: u32,
    /// Step-budget cost of the whole run: `Σ max(1, micros_i)`,
    /// matching what the per-instruction path would bump.
    pub steps: u64,
    /// The merged charge plan (never heap-addressed).
    pub plan: SeqPlan,
}

/// Inferred virtual-register type, for proving semantics infallible.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Ty {
    /// Definitely `Value::Int`.
    Int,
    /// Definitely `Value::Float`.
    Float,
    /// Definitely a reference or null (never `Int`/`Float`).
    Other,
    /// Unknown / conflicting — assume nothing.
    Any,
}

fn meet(a: Ty, b: Ty) -> Ty {
    if a == b {
        a
    } else {
        Ty::Any
    }
}

/// Apply one instruction's register effect to the type state. The
/// state describes the *success* path — the only path that continues —
/// so besides typing the def, an instruction *refines* its operands:
/// `FAdd a, b` only continues if both unwrapped as floats, so every
/// later use may assume `Float`. This is what lets an untrusted
/// ([`Ty::Any`]) argument register break a run once at its first use
/// instead of at every use on every loop iteration.
fn apply(inst: &NInst, tys: &mut [Ty]) {
    fn set(tys: &mut [Ty], d: VReg, t: Ty) {
        tys[d.0 as usize] = t;
    }
    // Operand refinement (before the def: the def overwrites on
    // overlap).
    match inst {
        NInst::IBinOp { a, b, .. } | NInst::ICmpOp { a, b, .. } | NInst::BrCond { a, b, .. } => {
            set(tys, *a, Ty::Int);
            set(tys, *b, Ty::Int);
        }
        NInst::IShlImm { a, .. } | NInst::INegOp { a, .. } | NInst::I2FOp { a, .. } => {
            set(tys, *a, Ty::Int)
        }
        NInst::FBinOp { a, b, .. } | NInst::FCmpOp { a, b, .. } => {
            set(tys, *a, Ty::Float);
            set(tys, *b, Ty::Float);
        }
        NInst::FNegOp { a, .. } | NInst::F2IOp { a, .. } => set(tys, *a, Ty::Float),
        NInst::NewArr { len, .. } => set(tys, *len, Ty::Int),
        NInst::ALoadOp { arr, idx, .. } => {
            set(tys, *arr, Ty::Other);
            set(tys, *idx, Ty::Int);
        }
        NInst::AStoreOp { arr, idx, .. } => {
            set(tys, *arr, Ty::Other);
            set(tys, *idx, Ty::Int);
        }
        NInst::ArrLenOp { arr, .. } => set(tys, *arr, Ty::Other),
        NInst::GetFieldOp { obj, .. } | NInst::PutFieldOp { obj, .. } => set(tys, *obj, Ty::Other),
        NInst::CallVirtOp { recv, .. } => set(tys, *recv, Ty::Other),
        _ => {}
    }
    match inst {
        NInst::IConst { d, .. } => set(tys, *d, Ty::Int),
        NInst::FConst { d, .. } => set(tys, *d, Ty::Float),
        NInst::NullConst { d } => set(tys, *d, Ty::Other),
        NInst::Mov { d, s } => tys[d.0 as usize] = tys[s.0 as usize],
        NInst::IBinOp { d, .. }
        | NInst::IShlImm { d, .. }
        | NInst::INegOp { d, .. }
        | NInst::ICmpOp { d, .. }
        | NInst::FCmpOp { d, .. }
        | NInst::F2IOp { d, .. }
        | NInst::ArrLenOp { d, .. } => set(tys, *d, Ty::Int),
        NInst::FBinOp { d, .. } | NInst::FNegOp { d, .. } | NInst::I2FOp { d, .. } => {
            set(tys, *d, Ty::Float)
        }
        NInst::NewArr { d, .. } | NInst::NewObj { d, .. } => set(tys, *d, Ty::Other),
        // Values materialized from outside the engine's own register
        // dataflow are never trusted.
        NInst::ALoadOp { d, .. } | NInst::GetFieldOp { d, .. } => set(tys, *d, Ty::Any),
        NInst::CallOp { d, .. } | NInst::CallVirtOp { d, .. } => {
            if let Some(d) = d {
                set(tys, *d, Ty::Any);
            }
        }
        NInst::AStoreOp { .. }
        | NInst::PutFieldOp { .. }
        | NInst::Jmp { .. }
        | NInst::BrCond { .. }
        | NInst::Ret { .. } => {}
    }
}

/// Whether `inst`'s semantics provably cannot return an error, given
/// the register types on entry to the instruction.
fn infallible(inst: &NInst, tys: &[Ty]) -> bool {
    let int = |r: &VReg| tys[r.0 as usize] == Ty::Int;
    let flt = |r: &VReg| tys[r.0 as usize] == Ty::Float;
    match inst {
        NInst::IConst { .. }
        | NInst::FConst { .. }
        | NInst::NullConst { .. }
        | NInst::Mov { .. }
        | NInst::Jmp { .. }
        | NInst::Ret { .. } => true,
        // Div/Rem fail on a zero divisor regardless of types.
        NInst::IBinOp { op, a, b, .. } => !matches!(op, IBin::Div | IBin::Rem) && int(a) && int(b),
        NInst::IShlImm { a, .. } | NInst::INegOp { a, .. } | NInst::I2FOp { a, .. } => int(a),
        NInst::ICmpOp { a, b, .. } | NInst::BrCond { a, b, .. } => int(a) && int(b),
        NInst::FBinOp { a, b, .. } | NInst::FCmpOp { a, b, .. } => flt(a) && flt(b),
        NInst::FNegOp { a, .. } | NInst::F2IOp { a, .. } => flt(a),
        // Heap, allocation and call instructions never sit inside a
        // run, so their fallibility is moot — report fallible.
        _ => false,
    }
}

/// Forward type inference: the register type state on entry to every
/// block. Non-argument registers start as `Int` (the executor
/// zero-initializes the register file with `Value::Int(0)`); argument
/// registers start as [`Ty::Any`] because caller-supplied values are
/// not trusted.
fn infer(func: &NFunc, nargs: usize) -> Vec<Vec<Ty>> {
    let nregs = func.nregs as usize;
    let mut entry = vec![Ty::Int; nregs];
    for t in entry.iter_mut().take(nargs.min(nregs)) {
        *t = Ty::Any;
    }
    let mut states: Vec<Option<Vec<Ty>>> = vec![None; func.blocks.len()];
    states[0] = Some(entry);
    let mut work = vec![0usize];
    while let Some(b) = work.pop() {
        let mut tys = states[b].clone().expect("worklist block has a state");
        for inst in &func.blocks[b].insts {
            apply(inst, &mut tys);
        }
        let succs: [Option<usize>; 2] = match func.blocks[b].insts.last() {
            Some(NInst::Jmp { target }) => [Some(target.0 as usize), None],
            Some(NInst::BrCond { then_, else_, .. }) => {
                [Some(then_.0 as usize), Some(else_.0 as usize)]
            }
            _ => [None, None],
        };
        for succ in succs.into_iter().flatten() {
            match &mut states[succ] {
                Some(old) => {
                    let mut changed = false;
                    for (o, n) in old.iter_mut().zip(&tys) {
                        let m = meet(*o, *n);
                        if m != *o {
                            *o = m;
                            changed = true;
                        }
                    }
                    if changed {
                        work.push(succ);
                    }
                }
                slot @ None => {
                    *slot = Some(tys.clone());
                    work.push(succ);
                }
            }
        }
    }
    states
        .into_iter()
        .map(|s| s.unwrap_or_else(|| vec![Ty::Any; nregs]))
        .collect()
}

/// The `(byte offset, class, data ref)` micros of one emitted
/// instruction, as the reference executor would step them. The spill
/// cursor resets per instruction, mirroring the executor's frame
/// addressing.
fn inst_micros(seq: &[Micro], off: u32, out: &mut Vec<(u64, InstrClass, SeqDataRef)>) {
    let mut spill_cursor = 0u64;
    for (i, m) in seq.iter().enumerate() {
        let store = m.class == InstrClass::Store;
        let mem = match m.mem {
            MicroMem::None => SeqDataRef::None,
            MicroMem::Frame => {
                spill_cursor += 1;
                SeqDataRef::Frame {
                    store,
                    offset: spill_cursor * 8,
                }
            }
            MicroMem::Heap => SeqDataRef::Heap { store },
        };
        out.push((
            (u64::from(off) + i as u64) * NATIVE_INSTR_BYTES,
            m.class,
            mem,
        ));
    }
}

/// Narrow a register number, enforcing the `u16` decode invariant.
fn r(v: VReg) -> u16 {
    debug_assert!(v.0 < u32::from(NONE));
    v.0 as u16
}

/// Decode one NIR instruction. `ic` is the instruction's emitted
/// offset (inline-cache slot for virtual calls); call argument
/// registers are appended to `pool`.
fn decode_op(inst: &NInst, ic: u32, pool: &mut Vec<u16>) -> XOp {
    match inst {
        NInst::IConst { d, v } => XOp::IConst { d: r(*d), v: *v },
        NInst::FConst { d, v } => XOp::FConst { d: r(*d), v: *v },
        NInst::NullConst { d } => XOp::NullConst { d: r(*d) },
        NInst::Mov { d, s } => XOp::Mov { d: r(*d), s: r(*s) },
        NInst::IBinOp { op, d, a, b } => {
            let (d, a, b) = (r(*d), r(*a), r(*b));
            match op {
                IBin::Add => XOp::IAdd { d, a, b },
                IBin::Sub => XOp::ISub { d, a, b },
                IBin::Mul => XOp::IMul { d, a, b },
                IBin::Div => XOp::IDiv { d, a, b },
                IBin::Rem => XOp::IRem { d, a, b },
                IBin::And => XOp::IAnd { d, a, b },
                IBin::Or => XOp::IOr { d, a, b },
                IBin::Xor => XOp::IXor { d, a, b },
                IBin::Shl => XOp::IShl { d, a, b },
                IBin::Shr => XOp::IShr { d, a, b },
            }
        }
        NInst::IShlImm { d, a, k } => XOp::IShlImm {
            d: r(*d),
            a: r(*a),
            k: *k,
        },
        NInst::INegOp { d, a } => XOp::INeg { d: r(*d), a: r(*a) },
        NInst::ICmpOp { d, a, b } => XOp::ICmp {
            d: r(*d),
            a: r(*a),
            b: r(*b),
        },
        NInst::FBinOp { op, d, a, b } => {
            let (d, a, b) = (r(*d), r(*a), r(*b));
            match op {
                FBin::Add => XOp::FAdd { d, a, b },
                FBin::Sub => XOp::FSub { d, a, b },
                FBin::Mul => XOp::FMul { d, a, b },
                FBin::Div => XOp::FDiv { d, a, b },
            }
        }
        NInst::FNegOp { d, a } => XOp::FNeg { d: r(*d), a: r(*a) },
        NInst::FCmpOp { d, a, b } => XOp::FCmp {
            d: r(*d),
            a: r(*a),
            b: r(*b),
        },
        NInst::I2FOp { d, a } => XOp::I2F { d: r(*d), a: r(*a) },
        NInst::F2IOp { d, a } => XOp::F2I { d: r(*d), a: r(*a) },
        NInst::NewArr { d, ty, len } => XOp::NewArr {
            d: r(*d),
            ty: *ty,
            len: r(*len),
        },
        NInst::NewObj { d, class } => XOp::NewObj {
            d: r(*d),
            class: class.0,
        },
        NInst::ALoadOp { d, arr, idx, .. } => XOp::ALoad {
            d: r(*d),
            arr: r(*arr),
            idx: r(*idx),
        },
        NInst::AStoreOp { arr, idx, val, .. } => XOp::AStore {
            arr: r(*arr),
            idx: r(*idx),
            val: r(*val),
        },
        NInst::ArrLenOp { d, arr } => XOp::ArrLen {
            d: r(*d),
            arr: r(*arr),
        },
        NInst::GetFieldOp { d, obj, slot, .. } => XOp::GetField {
            d: r(*d),
            obj: r(*obj),
            slot: *slot,
        },
        NInst::PutFieldOp { obj, slot, val } => XOp::PutField {
            obj: r(*obj),
            slot: *slot,
            val: r(*val),
        },
        NInst::CallOp { d, target, args } => {
            let argi = pool.len() as u32;
            pool.extend(args.iter().map(|&a| r(a)));
            XOp::Call {
                d: d.map_or(NONE, r),
                argc: args.len() as u16,
                target: target.0,
                argi,
            }
        }
        NInst::CallVirtOp {
            d,
            slot,
            recv,
            args,
        } => {
            let argi = pool.len() as u32;
            pool.extend(args.iter().map(|&a| r(a)));
            XOp::CallVirt {
                d: d.map_or(NONE, r),
                slot: *slot,
                recv: r(*recv),
                argc: args.len() as u16,
                ic,
                argi,
            }
        }
        NInst::Jmp { target } => XOp::Jmp { t: target.0 },
        NInst::BrCond {
            cond,
            a,
            b,
            then_,
            else_,
        } => XOp::Br {
            cond: *cond,
            a: r(*a),
            b: r(*b),
            t: then_.0,
            e: else_.0,
        },
        NInst::Ret { val } => XOp::Ret {
            v: val.map_or(NONE, r),
        },
    }
}

/// Compile `code` into its executable plan against `config`'s energy
/// table and I-cache geometry: pre-decoded ops, per-instruction charge
/// plans and batched runs. `nargs` is the method's invoke arity
/// (argument registers are typed [`Ty::Any`]). Grouping at
/// `line_bytes.min(32)` is sound because code bases are 32-byte
/// aligned (see [`SeqPlan::compile_at`]).
///
/// # Panics
/// If the function uses ≥ `u16::MAX` virtual registers (far beyond
/// anything the JIT emits).
pub fn compile(config: &MachineConfig, code: &NativeCode, nargs: usize) -> XCode {
    assert!(
        code.func.nregs < u32::from(NONE),
        "register file too large to pre-decode"
    );
    let line_bytes = config.icache.map_or(32, |c| c.line_bytes).min(32);
    let states = infer(&code.func, nargs);
    let mut scratch: Vec<(u64, InstrClass, SeqDataRef)> = Vec::new();
    let mut args_pool: Vec<u16> = Vec::new();
    let blocks = code
        .func
        .blocks
        .iter()
        .enumerate()
        .map(|(b, block)| {
            let seqs = &code.micros[b];
            let offs = &code.offsets[b];
            let ninsts = block.insts.len();

            // Decoded ops and per-instruction plans (the
            // reference-shaped path).
            let mut ops = Vec::with_capacity(ninsts);
            let mut insts = Vec::with_capacity(ninsts);
            for (ii, inst) in block.insts.iter().enumerate() {
                ops.push(decode_op(inst, offs[ii], &mut args_pool));
                scratch.clear();
                inst_micros(&seqs[ii], offs[ii], &mut scratch);
                insts.push(SeqPlan::compile_at(&config.table, line_bytes, &scratch));
            }

            // Partition into batched runs.
            let mut tys = states[b].clone();
            let mut runs = Vec::new();
            let mut run_at = vec![NO_RUN; ninsts];
            let mut start = 0usize;
            let mut steps = 0u64;
            scratch.clear();
            let close = |scratch: &mut Vec<(u64, InstrClass, SeqDataRef)>,
                         runs: &mut Vec<SeqRun>,
                         run_at: &mut [u32],
                         start: usize,
                         end: usize,
                         steps: u64| {
                if end - start >= 2 {
                    run_at[start] = runs.len() as u32;
                    runs.push(SeqRun {
                        len: (end - start) as u32,
                        steps,
                        plan: SeqPlan::compile_at(&config.table, line_bytes, scratch),
                    });
                }
                scratch.clear();
            };
            for (ii, inst) in block.insts.iter().enumerate() {
                let excluded = matches!(
                    inst,
                    NInst::NewArr { .. }
                        | NInst::NewObj { .. }
                        | NInst::CallOp { .. }
                        | NInst::CallVirtOp { .. }
                ) || seqs[ii].iter().any(|m| m.mem == MicroMem::Heap);
                if excluded {
                    close(&mut scratch, &mut runs, &mut run_at, start, ii, steps);
                    apply(inst, &mut tys);
                    start = ii + 1;
                    steps = 0;
                    continue;
                }
                let ok = infallible(inst, &tys);
                inst_micros(&seqs[ii], offs[ii], &mut scratch);
                steps += (seqs[ii].len() as u64).max(1);
                apply(inst, &mut tys);
                if !ok {
                    // A fallible instruction may end a run but not sit
                    // inside one.
                    close(&mut scratch, &mut runs, &mut run_at, start, ii + 1, steps);
                    start = ii + 1;
                    steps = 0;
                }
            }
            close(&mut scratch, &mut runs, &mut run_at, start, ninsts, steps);

            XBlock {
                ops,
                plans: insts,
                runs,
                run_at,
            }
        })
        .collect();

    XCode {
        blocks,
        nregs: code.func.nregs,
        args_pool,
    }
}

//! The MJVM bytecode instruction set.
//!
//! A stack-oriented ISA closely modeled on the JVM's: typed loads and
//! stores, local-variable slots, array and field access, static and
//! virtual calls. Branch targets are indices into the method's `code`
//! vector. The encoded byte size of each op (what would sit in a class
//! file) is modeled by [`Op::encoded_size`]; class-file and
//! over-the-air sizes are derived from it.

use crate::value::Type;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Comparison conditions for branches and compares.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Cond {
    /// Equal.
    Eq,
    /// Not equal.
    Ne,
    /// Less than.
    Lt,
    /// Less or equal.
    Le,
    /// Greater than.
    Gt,
    /// Greater or equal.
    Ge,
}

impl Cond {
    /// Evaluate on an ordering of `a` vs `b`.
    #[inline]
    pub fn eval(self, a: i32, b: i32) -> bool {
        match self {
            Cond::Eq => a == b,
            Cond::Ne => a != b,
            Cond::Lt => a < b,
            Cond::Le => a <= b,
            Cond::Gt => a > b,
            Cond::Ge => a >= b,
        }
    }

    /// The condition testing the opposite outcome.
    pub fn negate(self) -> Cond {
        match self {
            Cond::Eq => Cond::Ne,
            Cond::Ne => Cond::Eq,
            Cond::Lt => Cond::Ge,
            Cond::Le => Cond::Gt,
            Cond::Gt => Cond::Le,
            Cond::Ge => Cond::Lt,
        }
    }
}

/// Integer binary ALU operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum IBin {
    /// Wrapping addition.
    Add,
    /// Wrapping subtraction.
    Sub,
    /// Wrapping multiplication.
    Mul,
    /// Truncating division (traps on zero divisor).
    Div,
    /// Remainder (traps on zero divisor).
    Rem,
    /// Bitwise and.
    And,
    /// Bitwise or.
    Or,
    /// Bitwise xor.
    Xor,
    /// Shift left (masked to 0..31).
    Shl,
    /// Arithmetic shift right (masked to 0..31).
    Shr,
}

impl IBin {
    /// True for multiply/divide/remainder, which the energy model
    /// prices as complex-ALU work.
    pub fn is_complex(self) -> bool {
        matches!(self, IBin::Mul | IBin::Div | IBin::Rem)
    }
}

/// Float binary ALU operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FBin {
    /// Addition.
    Add,
    /// Subtraction.
    Sub,
    /// Multiplication.
    Mul,
    /// Division.
    Div,
}

/// A method reference: index into the program's flat method table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct MethodId(pub u32);

/// A class reference: index into the program's class table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ClassId(pub u32);

/// One bytecode instruction.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Op {
    // ---- constants ----
    /// Push an integer constant.
    IConst(i32),
    /// Push a float constant.
    FConst(f64),
    /// Push `null`.
    NullConst,

    // ---- locals ----
    /// Push local slot `n`.
    Load(u16),
    /// Pop into local slot `n`.
    Store(u16),

    // ---- stack ----
    /// Discard the top of stack.
    Pop,
    /// Duplicate the top of stack.
    Dup,
    /// Swap the two topmost values.
    Swap,

    // ---- integer arithmetic ----
    /// Pop two ints, push the binary result.
    IArith(IBin),
    /// Negate the top int.
    INeg,
    /// Pop two ints, push `-1/0/1` comparison result.
    ICmp,

    // ---- float arithmetic ----
    /// Pop two floats, push the binary result.
    FArith(FBin),
    /// Negate the top float.
    FNeg,
    /// Pop two floats, push `-1/0/1` (NaN compares as less, like
    /// the JVM's `fcmpl`).
    FCmp,

    // ---- conversions ----
    /// int → float.
    I2F,
    /// float → int (truncating; saturates at i32 bounds).
    F2I,

    // ---- control flow ----
    /// Unconditional jump to code index.
    Goto(u32),
    /// Pop two ints `a, b`; jump when `cond(a, b)`.
    ICmpBr(Cond, u32),
    /// Pop one int `a`; jump when `cond(a, 0)`.
    BrZ(Cond, u32),

    // ---- arrays ----
    /// Pop length, allocate an array of `ty`, push its reference.
    NewArr(Type),
    /// Pop index and array ref, push the element (typed, like the
    /// JVM's `iaload`/`faload`/`aaload`).
    ALoad(Type),
    /// Pop value, index and array ref; store the element (typed).
    AStore(Type),
    /// Pop array ref, push its length.
    ArrLen,

    // ---- objects ----
    /// Allocate an instance of the class, push its reference.
    New(ClassId),
    /// Pop object ref, push field `n` (the type is the field's
    /// declared type, resolved from the class file's descriptor).
    GetField(u16, Type),
    /// Pop value and object ref; store into field `n`.
    PutField(u16),

    // ---- calls ----
    /// Static call: pops the callee's `nargs` arguments.
    Call(MethodId),
    /// Virtual call through vtable slot `slot` with `argc` arguments
    /// *plus* the receiver beneath them.
    CallVirt {
        /// Vtable slot to dispatch through.
        slot: u16,
        /// Number of non-receiver arguments.
        argc: u8,
    },
    /// Return with no value.
    Ret,
    /// Return the top of stack.
    RetVal,

    /// No operation.
    Nop,
}

impl Op {
    /// The size in bytes this op would occupy in an encoded class file
    /// (JVM-like: one opcode byte plus operand bytes). Used to model
    /// bytecode footprint and transfer sizes.
    pub fn encoded_size(self) -> u32 {
        match self {
            Op::IConst(v) => {
                if (-1..=5).contains(&v) {
                    1 // iconst_<n>
                } else if i8::try_from(v).is_ok() {
                    2 // bipush
                } else {
                    3 // sipush, or ldc via the constant pool
                }
            }
            Op::FConst(_) => 3,
            Op::NullConst => 1,
            Op::Load(n) | Op::Store(n) => {
                if n < 4 {
                    1
                } else {
                    2
                }
            }
            Op::Pop | Op::Dup | Op::Swap => 1,
            Op::IArith(_) | Op::INeg | Op::ICmp => 1,
            Op::FArith(_) | Op::FNeg | Op::FCmp => 1,
            Op::I2F | Op::F2I => 1,
            Op::Goto(_) | Op::ICmpBr(..) | Op::BrZ(..) => 3,
            Op::NewArr(_) => 2,
            Op::ALoad(_) | Op::AStore(_) | Op::ArrLen => 1,
            Op::New(_) => 3,
            Op::GetField(..) | Op::PutField(_) => 3,
            Op::Call(_) => 3,
            Op::CallVirt { .. } => 3,
            Op::Ret | Op::RetVal => 1,
            Op::Nop => 1,
        }
    }

    /// The branch target, if this is a control-transfer op.
    pub fn branch_target(self) -> Option<u32> {
        match self {
            Op::Goto(t) | Op::ICmpBr(_, t) | Op::BrZ(_, t) => Some(t),
            _ => None,
        }
    }

    /// Rewrite the branch target (no-op for non-branches).
    pub fn with_branch_target(self, t: u32) -> Op {
        match self {
            Op::Goto(_) => Op::Goto(t),
            Op::ICmpBr(c, _) => Op::ICmpBr(c, t),
            Op::BrZ(c, _) => Op::BrZ(c, t),
            other => other,
        }
    }

    /// True when control never falls through to the next op.
    pub fn is_terminator(self) -> bool {
        matches!(self, Op::Goto(_) | Op::Ret | Op::RetVal)
    }
}

impl fmt::Display for Op {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self:?}")
    }
}

/// Total encoded size of a code vector in bytes.
pub fn code_size_bytes(code: &[Op]) -> u32 {
    code.iter().map(|op| op.encoded_size()).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cond_eval_matrix() {
        assert!(Cond::Eq.eval(3, 3));
        assert!(!Cond::Eq.eval(3, 4));
        assert!(Cond::Ne.eval(3, 4));
        assert!(Cond::Lt.eval(1, 2));
        assert!(Cond::Le.eval(2, 2));
        assert!(Cond::Gt.eval(3, 2));
        assert!(Cond::Ge.eval(2, 2));
        assert!(!Cond::Ge.eval(1, 2));
    }

    #[test]
    fn cond_negation_is_involutive_and_exclusive() {
        let conds = [Cond::Eq, Cond::Ne, Cond::Lt, Cond::Le, Cond::Gt, Cond::Ge];
        for c in conds {
            assert_eq!(c.negate().negate(), c);
            for (a, b) in [(0, 0), (1, 2), (2, 1), (-3, 3)] {
                assert_ne!(c.eval(a, b), c.negate().eval(a, b));
            }
        }
    }

    #[test]
    fn complex_arith_classification() {
        assert!(IBin::Mul.is_complex());
        assert!(IBin::Div.is_complex());
        assert!(IBin::Rem.is_complex());
        assert!(!IBin::Add.is_complex());
        assert!(!IBin::Shl.is_complex());
    }

    #[test]
    fn encoded_sizes_match_jvm_conventions() {
        assert_eq!(Op::IConst(0).encoded_size(), 1);
        assert_eq!(Op::IConst(100).encoded_size(), 2);
        assert_eq!(Op::IConst(1000).encoded_size(), 3);
        assert_eq!(Op::IConst(1_000_000).encoded_size(), 3);
        assert_eq!(Op::Load(0).encoded_size(), 1);
        assert_eq!(Op::Load(9).encoded_size(), 2);
        assert_eq!(Op::Goto(0).encoded_size(), 3);
        assert_eq!(Op::Call(MethodId(0)).encoded_size(), 3);
    }

    #[test]
    fn branch_target_accessors() {
        assert_eq!(Op::Goto(7).branch_target(), Some(7));
        assert_eq!(Op::ICmpBr(Cond::Lt, 9).branch_target(), Some(9));
        assert_eq!(Op::BrZ(Cond::Eq, 2).branch_target(), Some(2));
        assert_eq!(Op::Nop.branch_target(), None);
        assert_eq!(
            Op::ICmpBr(Cond::Lt, 9).with_branch_target(4),
            Op::ICmpBr(Cond::Lt, 4)
        );
        assert_eq!(Op::Pop.with_branch_target(4), Op::Pop);
    }

    #[test]
    fn terminators() {
        assert!(Op::Goto(0).is_terminator());
        assert!(Op::Ret.is_terminator());
        assert!(Op::RetVal.is_terminator());
        assert!(!Op::BrZ(Cond::Eq, 0).is_terminator());
        assert!(!Op::Call(MethodId(0)).is_terminator());
    }

    #[test]
    fn code_size_sums() {
        let code = [
            Op::IConst(1),
            Op::IConst(2),
            Op::IArith(IBin::Add),
            Op::RetVal,
        ];
        assert_eq!(code_size_bytes(&code), 1 + 1 + 1 + 1);
    }
}

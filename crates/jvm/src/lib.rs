//! # jem-jvm — the MJVM: a miniature Java-like virtual machine
//!
//! A from-scratch stack-bytecode VM standing in for the paper's LaTTe
//! JVM. It provides everything the energy-aware execution framework
//! (`jem-core`) needs:
//!
//! * a Java-shaped [`dsl`] whose compiler plays `javac`,
//! * a class/program model ([`class`]) with the paper's class-file
//!   annotations (potential methods, size parameters),
//! * a dataflow [`verify`]er (bytecode only — downloaded native code
//!   cannot be verified, as the paper notes),
//! * an instrumented [`interp`]reter whose energy per bytecode follows
//!   the threaded-dispatch cost model in [`costs`],
//! * object [`serial`]ization for offloading (paper Fig 4),
//! * a real optimizing JIT: [`lower`]ing to a register IR ([`nir`]),
//!   the Local2 passes (CSE, LICM, strength reduction, redundancy
//!   elimination) and Local3 inlining in [`opt`], linear-scan
//!   [`regalloc`], and [`emit`]ssion to costed native code run by
//!   [`exec`],
//! * a mixed-mode runtime ([`vm`]) dispatching per-method between the
//!   two engines.
//!
//! Interpreted and compiled execution produce bit-identical results;
//! they differ only in the instruction events they feed the simulated
//! machine — which is the entire subject of the paper.

#![warn(missing_docs)]

pub mod arith;
pub mod bytecode;
pub mod class;
pub mod costs;
pub mod decode;
pub mod dsl;
pub mod emit;
pub mod error;
pub mod exec;
pub mod heap;
pub mod interp;
pub mod jit;
pub mod lower;
pub mod nir;
pub mod opt;
pub mod regalloc;
pub mod runplan;
pub mod serial;
pub mod value;
pub mod verify;
pub mod vm;

pub use bytecode::{ClassId, Cond, FBin, IBin, MethodId, Op};
pub use class::{Method, MethodAttrs, MethodSig, Program, ProgramBuilder};
pub use emit::{NativeCode, OptLevel};
pub use error::{VerifyError, VmError};
pub use heap::Heap;
pub use jit::{compile, CompileReport, Compiled};
pub use value::{Handle, Type, Value};
pub use vm::{set_slow_interp_default, MethodCode, Vm, VmOptions};

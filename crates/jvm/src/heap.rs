//! The MJVM object heap.
//!
//! A bump-allocated arena of arrays and objects. Every object is given
//! a stable simulated byte address in the client's DRAM map so that
//! interpreter and native-code data accesses drive the D-cache model
//! with realistic locality (sequential array walks hit within cache
//! lines; pointer chasing does not).
//!
//! There is no garbage collector: the paper's benchmarks are
//! short-running method invocations and the heap is reset between
//! experiment runs, mirroring how the original study measured
//! per-invocation energy.

use crate::value::{Handle, Type, Value};
use crate::VmError;

/// Base simulated address of the heap region.
pub const HEAP_BASE: u64 = 0x4000_0000;

/// Element size in simulated bytes (ints are 4, floats 8, refs 4).
fn elem_size(ty: Type) -> u64 {
    match ty {
        Type::Int => 4,
        Type::Float => 8,
        Type::Ref => 4,
    }
}

/// Array payloads, one vector per element type.
#[derive(Debug, Clone, PartialEq)]
pub enum ArrayData {
    /// `int[]`
    Int(Vec<i32>),
    /// `float[]`
    Float(Vec<f64>),
    /// `ref[]` (elements may be `Value::Null` or `Value::Ref`)
    Ref(Vec<Value>),
}

impl ArrayData {
    /// Number of elements.
    pub fn len(&self) -> usize {
        match self {
            ArrayData::Int(v) => v.len(),
            ArrayData::Float(v) => v.len(),
            ArrayData::Ref(v) => v.len(),
        }
    }

    /// True when the array has no elements.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Element type.
    pub fn elem_type(&self) -> Type {
        match self {
            ArrayData::Int(_) => Type::Int,
            ArrayData::Float(_) => Type::Float,
            ArrayData::Ref(_) => Type::Ref,
        }
    }
}

/// One heap entity.
#[derive(Debug, Clone, PartialEq)]
pub enum HeapObj {
    /// An array.
    Array(ArrayData),
    /// An object instance: class id + field slots.
    Object {
        /// Class of the instance (index into the program's class table).
        class: u32,
        /// Field values, in declaration order.
        fields: Vec<Value>,
    },
}

/// The arena heap.
#[derive(Debug, Clone, Default)]
pub struct Heap {
    objects: Vec<HeapObj>,
    /// Simulated base address of each object.
    addrs: Vec<u64>,
    /// Next free simulated address (bump pointer).
    next_addr: u64,
    /// Total simulated bytes allocated.
    pub bytes_allocated: u64,
}

impl Heap {
    /// An empty heap.
    pub fn new() -> Self {
        Heap {
            objects: Vec::new(),
            addrs: Vec::new(),
            next_addr: HEAP_BASE,
            bytes_allocated: 0,
        }
    }

    /// Number of live objects.
    pub fn len(&self) -> usize {
        self.objects.len()
    }

    /// True when no objects are allocated.
    pub fn is_empty(&self) -> bool {
        self.objects.is_empty()
    }

    fn push(&mut self, obj: HeapObj, size_bytes: u64) -> Handle {
        let h = Handle(self.objects.len() as u32);
        self.objects.push(obj);
        self.addrs.push(self.next_addr);
        // Round object sizes to 8-byte alignment, like a real allocator.
        let padded = (size_bytes + 7) & !7;
        self.next_addr += padded.max(8);
        self.bytes_allocated += padded.max(8);
        h
    }

    /// Allocate an `int[]` of `len` zeros.
    pub fn alloc_int_array(&mut self, len: usize) -> Handle {
        self.push(
            HeapObj::Array(ArrayData::Int(vec![0; len])),
            4 * len as u64 + 8,
        )
    }

    /// Allocate a `float[]` of `len` zeros.
    pub fn alloc_float_array(&mut self, len: usize) -> Handle {
        self.push(
            HeapObj::Array(ArrayData::Float(vec![0.0; len])),
            8 * len as u64 + 8,
        )
    }

    /// Allocate a `ref[]` of `len` nulls.
    pub fn alloc_ref_array(&mut self, len: usize) -> Handle {
        self.push(
            HeapObj::Array(ArrayData::Ref(vec![Value::Null; len])),
            4 * len as u64 + 8,
        )
    }

    /// Allocate an array of `ty` with `len` zero elements.
    pub fn alloc_array(&mut self, ty: Type, len: usize) -> Handle {
        match ty {
            Type::Int => self.alloc_int_array(len),
            Type::Float => self.alloc_float_array(len),
            Type::Ref => self.alloc_ref_array(len),
        }
    }

    /// Allocate an instance of `class` with `nfields` zeroed slots
    /// (`field_types` supplies the zero value of each slot).
    pub fn alloc_object(&mut self, class: u32, field_types: &[Type]) -> Handle {
        let fields: Vec<Value> = field_types.iter().map(|&t| Value::zero_of(t)).collect();
        let size = 8 + 8 * fields.len() as u64;
        self.push(HeapObj::Object { class, fields }, size)
    }

    /// Borrow an object.
    ///
    /// # Errors
    /// [`VmError::BadHandle`] for out-of-range handles.
    pub fn get(&self, h: Handle) -> Result<&HeapObj, VmError> {
        self.objects
            .get(h.0 as usize)
            .ok_or(VmError::BadHandle(h.0))
    }

    /// Mutably borrow an object.
    ///
    /// # Errors
    /// [`VmError::BadHandle`] for out-of-range handles.
    pub fn get_mut(&mut self, h: Handle) -> Result<&mut HeapObj, VmError> {
        self.objects
            .get_mut(h.0 as usize)
            .ok_or(VmError::BadHandle(h.0))
    }

    /// Simulated base address of an object (for the cache model).
    pub fn address_of(&self, h: Handle) -> u64 {
        self.addrs.get(h.0 as usize).copied().unwrap_or(HEAP_BASE)
    }

    /// Simulated address of element `idx` of array `h` (assumes `h`
    /// is an array handle; used only for cache simulation so a wrong
    /// guess about element width is harmless).
    pub fn element_address(&self, h: Handle, idx: usize) -> u64 {
        let base = self.address_of(h);
        let width = match self.objects.get(h.0 as usize) {
            Some(HeapObj::Array(a)) => elem_size(a.elem_type()),
            _ => 8,
        };
        base + 8 + width * idx as u64
    }

    /// Simulated address of field `idx` of object `h`.
    pub fn field_address(&self, h: Handle, idx: usize) -> u64 {
        self.address_of(h) + 8 + 8 * idx as u64
    }

    /// Array length of `h`.
    ///
    /// # Errors
    /// [`VmError::NotAnArray`] if `h` refers to an object.
    pub fn array_len(&self, h: Handle) -> Result<usize, VmError> {
        match self.get(h)? {
            HeapObj::Array(a) => Ok(a.len()),
            _ => Err(VmError::NotAnArray),
        }
    }

    /// Read array element with bounds checking.
    ///
    /// # Errors
    /// [`VmError::IndexOutOfBounds`], [`VmError::NotAnArray`],
    /// [`VmError::BadHandle`].
    pub fn array_get(&self, h: Handle, idx: usize) -> Result<Value, VmError> {
        match self.get(h)? {
            HeapObj::Array(ArrayData::Int(v)) => {
                v.get(idx)
                    .map(|&x| Value::Int(x))
                    .ok_or(VmError::IndexOutOfBounds {
                        index: idx,
                        len: v.len(),
                    })
            }
            HeapObj::Array(ArrayData::Float(v)) => {
                v.get(idx)
                    .map(|&x| Value::Float(x))
                    .ok_or(VmError::IndexOutOfBounds {
                        index: idx,
                        len: v.len(),
                    })
            }
            HeapObj::Array(ArrayData::Ref(v)) => {
                v.get(idx).copied().ok_or(VmError::IndexOutOfBounds {
                    index: idx,
                    len: v.len(),
                })
            }
            _ => Err(VmError::NotAnArray),
        }
    }

    /// Write array element with bounds and type checking.
    ///
    /// # Errors
    /// [`VmError::IndexOutOfBounds`], [`VmError::TypeMismatch`],
    /// [`VmError::NotAnArray`], [`VmError::BadHandle`].
    pub fn array_set(&mut self, h: Handle, idx: usize, val: Value) -> Result<(), VmError> {
        match self.get_mut(h)? {
            HeapObj::Array(ArrayData::Int(v)) => {
                let len = v.len();
                let slot = v
                    .get_mut(idx)
                    .ok_or(VmError::IndexOutOfBounds { index: idx, len })?;
                *slot = val.as_int()?;
            }
            HeapObj::Array(ArrayData::Float(v)) => {
                let len = v.len();
                let slot = v
                    .get_mut(idx)
                    .ok_or(VmError::IndexOutOfBounds { index: idx, len })?;
                *slot = val.as_float()?;
            }
            HeapObj::Array(ArrayData::Ref(v)) => {
                let len = v.len();
                let slot = v
                    .get_mut(idx)
                    .ok_or(VmError::IndexOutOfBounds { index: idx, len })?;
                match val {
                    Value::Ref(_) | Value::Null => *slot = val,
                    other => {
                        return Err(VmError::TypeMismatch {
                            expected: Type::Ref,
                            got: other.runtime_type(),
                        })
                    }
                }
            }
            _ => return Err(VmError::NotAnArray),
        }
        Ok(())
    }

    /// Read object field.
    ///
    /// # Errors
    /// [`VmError::BadField`], [`VmError::NotAnObject`],
    /// [`VmError::BadHandle`].
    pub fn field_get(&self, h: Handle, idx: usize) -> Result<Value, VmError> {
        match self.get(h)? {
            HeapObj::Object { fields, .. } => {
                fields.get(idx).copied().ok_or(VmError::BadField(idx))
            }
            _ => Err(VmError::NotAnObject),
        }
    }

    /// Write object field.
    ///
    /// # Errors
    /// [`VmError::BadField`], [`VmError::NotAnObject`],
    /// [`VmError::BadHandle`].
    pub fn field_set(&mut self, h: Handle, idx: usize, val: Value) -> Result<(), VmError> {
        match self.get_mut(h)? {
            HeapObj::Object { fields, .. } => {
                let slot = fields.get_mut(idx).ok_or(VmError::BadField(idx))?;
                *slot = val;
                Ok(())
            }
            _ => Err(VmError::NotAnObject),
        }
    }

    /// Class of the object `h`.
    ///
    /// # Errors
    /// [`VmError::NotAnObject`], [`VmError::BadHandle`].
    pub fn class_of(&self, h: Handle) -> Result<u32, VmError> {
        match self.get(h)? {
            HeapObj::Object { class, .. } => Ok(*class),
            _ => Err(VmError::NotAnObject),
        }
    }

    /// Drop every object (fresh run).
    pub fn clear(&mut self) {
        self.objects.clear();
        self.addrs.clear();
        self.next_addr = HEAP_BASE;
        self.bytes_allocated = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_and_rw_int_array() {
        let mut h = Heap::new();
        let a = h.alloc_int_array(4);
        assert_eq!(h.array_len(a).unwrap(), 4);
        h.array_set(a, 2, Value::Int(42)).unwrap();
        assert_eq!(h.array_get(a, 2).unwrap(), Value::Int(42));
        assert_eq!(h.array_get(a, 0).unwrap(), Value::Int(0));
    }

    #[test]
    fn bounds_checked() {
        let mut h = Heap::new();
        let a = h.alloc_float_array(2);
        assert!(matches!(
            h.array_get(a, 2),
            Err(VmError::IndexOutOfBounds { index: 2, len: 2 })
        ));
        assert!(matches!(
            h.array_set(a, 5, Value::Float(1.0)),
            Err(VmError::IndexOutOfBounds { .. })
        ));
    }

    #[test]
    fn type_checked_stores() {
        let mut h = Heap::new();
        let a = h.alloc_int_array(1);
        assert!(matches!(
            h.array_set(a, 0, Value::Float(1.0)),
            Err(VmError::TypeMismatch { .. })
        ));
        let r = h.alloc_ref_array(1);
        assert!(h.array_set(r, 0, Value::Null).is_ok());
        assert!(h.array_set(r, 0, Value::Ref(a)).is_ok());
        assert!(matches!(
            h.array_set(r, 0, Value::Int(1)),
            Err(VmError::TypeMismatch { .. })
        ));
    }

    #[test]
    fn objects_fields_and_class() {
        let mut h = Heap::new();
        let o = h.alloc_object(3, &[Type::Int, Type::Ref]);
        assert_eq!(h.class_of(o).unwrap(), 3);
        assert_eq!(h.field_get(o, 0).unwrap(), Value::Int(0));
        assert_eq!(h.field_get(o, 1).unwrap(), Value::Null);
        h.field_set(o, 0, Value::Int(-5)).unwrap();
        assert_eq!(h.field_get(o, 0).unwrap(), Value::Int(-5));
        assert!(matches!(h.field_get(o, 2), Err(VmError::BadField(2))));
    }

    #[test]
    fn arrays_are_not_objects_and_vice_versa() {
        let mut h = Heap::new();
        let a = h.alloc_int_array(1);
        let o = h.alloc_object(0, &[]);
        assert!(matches!(h.field_get(a, 0), Err(VmError::NotAnObject)));
        assert!(matches!(h.array_get(o, 0), Err(VmError::NotAnArray)));
        assert!(matches!(h.array_len(o), Err(VmError::NotAnArray)));
    }

    #[test]
    fn bad_handles_rejected() {
        let h = Heap::new();
        assert!(matches!(h.get(Handle(0)), Err(VmError::BadHandle(0))));
    }

    #[test]
    fn addresses_are_disjoint_and_aligned() {
        let mut h = Heap::new();
        let a = h.alloc_int_array(3); // 12 + 8 header = 20 -> padded 24
        let b = h.alloc_float_array(1);
        let addr_a = h.address_of(a);
        let addr_b = h.address_of(b);
        assert!(addr_a >= HEAP_BASE);
        assert_eq!(addr_a % 8, 0);
        assert_eq!(addr_b % 8, 0);
        assert!(addr_b >= addr_a + 24);
    }

    #[test]
    fn element_addresses_are_sequential() {
        let mut h = Heap::new();
        let a = h.alloc_int_array(8);
        let e0 = h.element_address(a, 0);
        let e1 = h.element_address(a, 1);
        assert_eq!(e1 - e0, 4);
        let f = h.alloc_float_array(8);
        assert_eq!(h.element_address(f, 1) - h.element_address(f, 0), 8);
    }

    #[test]
    fn clear_resets() {
        let mut h = Heap::new();
        h.alloc_int_array(100);
        assert!(h.bytes_allocated > 0);
        h.clear();
        assert!(h.is_empty());
        assert_eq!(h.bytes_allocated, 0);
        let a = h.alloc_int_array(1);
        assert_eq!(h.address_of(a), HEAP_BASE);
    }
}

//! The MJVM runtime: mixed-mode method dispatch.
//!
//! A [`Vm`] ties a [`Program`] to a simulated [`Machine`] and a
//! [`Heap`]. Each method is currently either in bytecode form
//! (executed by [`crate::interp`]) or native form (a JIT-compiled
//! [`NativeCode`] object executed by [`crate::exec`]); calls cross
//! freely between the two, as in a real mixed-mode JVM. Installing
//! native code assigns it a simulated address range so the I-cache
//! model sees realistic code footprints — including the larger
//! footprints of aggressively inlined (Local3) code.

use crate::bytecode::MethodId;
use crate::class::Program;
use crate::costs::{NATIVE_CODE_BASE, NATIVE_INSTR_BYTES};
use crate::decode::{CostCache, DecodedMethod, MethodRuns};
use crate::emit::NativeCode;
use crate::heap::Heap;
use crate::runplan::XCode;
use crate::value::Value;
use crate::VmError;
use jem_energy::{Machine, MachineConfig};
use std::cell::Cell;
use std::rc::Rc;
use std::sync::atomic::{AtomicBool, Ordering};

/// Process-wide default for [`VmOptions::slow_interp`].
static SLOW_INTERP_DEFAULT: AtomicBool = AtomicBool::new(false);

/// Select which interpreter engine freshly constructed [`VmOptions`]
/// default to: `true` routes bytecode methods through the reference
/// per-op interpreter ([`crate::interp`]), `false` (the default)
/// through the pre-decoded fast path ([`crate::decode`]).
///
/// Both engines are observationally identical — this switch exists so
/// differential tests and `--slow-interp` bench flags can exercise the
/// reference engine through scenario layers that don't thread
/// `VmOptions` explicitly.
pub fn set_slow_interp_default(slow: bool) {
    SLOW_INTERP_DEFAULT.store(slow, Ordering::Relaxed);
}

/// Execution limits (runaway guards for property tests and experiment
/// sweeps).
#[derive(Debug, Clone, Copy)]
pub struct VmOptions {
    /// Maximum number of charged bytecode/native instructions.
    pub step_budget: u64,
    /// Maximum host call depth.
    pub max_call_depth: u32,
    /// Use the reference per-op interpreter instead of the pre-decoded
    /// fast path (see [`set_slow_interp_default`]).
    pub slow_interp: bool,
}

impl Default for VmOptions {
    fn default() -> Self {
        VmOptions {
            step_budget: u64::MAX,
            max_call_depth: 128,
            slow_interp: SLOW_INTERP_DEFAULT.load(Ordering::Relaxed),
        }
    }
}

/// Current executable form of one method.
#[derive(Debug, Clone)]
pub enum MethodCode {
    /// Interpret the class-file bytecode.
    Bytecode,
    /// Run installed native code.
    Native {
        /// The code object.
        code: Rc<NativeCode>,
        /// Simulated base address of the emitted instructions.
        base: u64,
        /// Monomorphic inline caches, one slot per emitted native
        /// instruction offset, `(class << 32) | target` per virtual
        /// call site (`u64::MAX` = cold). Pure memoization of the
        /// immutable program's vtables — never serialized; a fresh
        /// (cold) vector after resume is observationally identical.
        ics: Rc<Vec<Cell<u64>>>,
        /// The pre-decoded executable plan: flat [`crate::runplan::XOp`]
        /// stream plus batched charge plans (per-instruction plans and
        /// merged multi-instruction runs), compiled for this machine's
        /// energy table and I-cache geometry at install time. A
        /// derived artifact — never serialized.
        plans: Rc<XCode>,
    },
}

/// The runtime.
#[derive(Debug)]
pub struct Vm<'p> {
    /// The deployed program.
    pub program: &'p Program,
    /// The object heap.
    pub heap: Heap,
    /// The machine executing this VM (energy + time accounting).
    pub machine: Machine,
    /// Execution limits.
    pub options: VmOptions,
    code: Vec<MethodCode>,
    next_code_addr: u64,
    /// Charged instruction events so far (for the step budget).
    pub steps: u64,
    pub(crate) depth: u32,
    /// Lazily decoded fast-path form of each bytecode method — a
    /// derived artifact, rebuilt on demand, never serialized.
    decoded: Vec<Option<Rc<DecodedMethod>>>,
    /// Lazily compiled batched-run metadata per bytecode method (for
    /// this machine's energy table) — derived, never serialized.
    runs: Vec<Option<Rc<MethodRuns>>>,
    /// Lazily built per-handler charge plans for this machine's
    /// energy table.
    cost_cache: Option<Rc<CostCache>>,
    /// Reusable `Value` buffers (argument vectors, register files,
    /// operand stacks), recycled across invocations so the hot
    /// engines stay allocation-free on the call path.
    scratch: Vec<Vec<Value>>,
}

impl<'p> Vm<'p> {
    /// A VM for `program` on `machine`.
    pub fn new(program: &'p Program, machine: Machine) -> Self {
        Vm {
            program,
            heap: Heap::new(),
            machine,
            options: VmOptions::default(),
            code: vec![MethodCode::Bytecode; program.methods.len()],
            next_code_addr: NATIVE_CODE_BASE,
            steps: 0,
            depth: 0,
            decoded: vec![None; program.methods.len()],
            runs: vec![None; program.methods.len()],
            cost_cache: None,
            scratch: Vec::new(),
        }
    }

    /// Take a cleared scratch buffer from the pool (empty, but with
    /// whatever capacity its last user grew it to).
    #[inline]
    pub(crate) fn take_buf(&mut self) -> Vec<Value> {
        self.scratch.pop().unwrap_or_default()
    }

    /// Return a scratch buffer to the pool.
    #[inline]
    pub(crate) fn put_buf(&mut self, mut buf: Vec<Value>) {
        if self.scratch.len() < 64 {
            buf.clear();
            self.scratch.push(buf);
        }
    }

    /// Convenience: a VM on the paper's mobile-client machine.
    pub fn client(program: &'p Program) -> Self {
        Vm::new(program, Machine::new(MachineConfig::mobile_client()))
    }

    /// Convenience: a VM on the paper's 750 MHz server machine.
    pub fn server(program: &'p Program) -> Self {
        Vm::new(program, Machine::new(MachineConfig::sparc_server()))
    }

    /// The current code form of `m`.
    pub fn code_of(&self, m: MethodId) -> &MethodCode {
        &self.code[m.0 as usize]
    }

    /// True when `m` has native code installed.
    pub fn is_native(&self, m: MethodId) -> bool {
        matches!(self.code[m.0 as usize], MethodCode::Native { .. })
    }

    /// Install native code for `m`, laying it out in the simulated
    /// code region. Replaces any previous code (recompilation).
    pub fn install_native(&mut self, m: MethodId, code: Rc<NativeCode>) {
        let base = self.next_code_addr;
        self.next_code_addr += code.code_bytes as u64;
        // Keep code regions line-aligned.
        self.next_code_addr = (self.next_code_addr + 31) & !31;
        let nslots = (code.code_bytes as u64 / NATIVE_INSTR_BYTES) as usize + 1;
        let ics = Rc::new(vec![Cell::new(u64::MAX); nslots]);
        let nargs = self.program.method(m).invoke_arity();
        let plans = Rc::new(crate::runplan::compile(self.machine.config(), &code, nargs));
        self.code[m.0 as usize] = MethodCode::Native {
            code,
            base,
            ics,
            plans,
        };
    }

    /// Revert `m` to interpreted execution.
    pub fn deinstall(&mut self, m: MethodId) {
        self.code[m.0 as usize] = MethodCode::Bytecode;
    }

    /// Invoke a method with the given argument values. For virtual
    /// methods the receiver is `args[0]`.
    ///
    /// # Errors
    /// Any [`VmError`] raised during execution, including arity
    /// mismatches of this entry invocation.
    pub fn invoke(&mut self, m: MethodId, args: Vec<Value>) -> Result<Option<Value>, VmError> {
        let method = self.program.method(m);
        if args.len() != method.invoke_arity() {
            return Err(VmError::ArityMismatch {
                expected: method.invoke_arity(),
                got: args.len(),
            });
        }
        if self.depth >= self.options.max_call_depth {
            return Err(VmError::CallDepthExceeded);
        }
        self.depth += 1;
        let result = match &self.code[m.0 as usize] {
            MethodCode::Bytecode => {
                if self.options.slow_interp {
                    crate::interp::run(self, m, args)
                } else {
                    crate::decode::run(self, m, args)
                }
            }
            MethodCode::Native {
                base, ics, plans, ..
            } => {
                let base = *base;
                let ics = Rc::clone(ics);
                let plans = Rc::clone(plans);
                crate::exec::run(self, &plans, base, &ics, args)
            }
        };
        self.depth -= 1;
        result
    }

    /// Current host call depth (used for frame addressing).
    pub fn depth(&self) -> u32 {
        self.depth
    }

    /// The decoded fast-path form of `m`, translating on first use.
    pub(crate) fn decoded_code(&mut self, m: MethodId) -> Rc<DecodedMethod> {
        if let Some(d) = &self.decoded[m.0 as usize] {
            return Rc::clone(d);
        }
        let program = self.program;
        let d = Rc::new(crate::decode::decode_method(program.method(m), &|mid| {
            program.method(mid).sig.arity() as u32
        }));
        self.decoded[m.0 as usize] = Some(Rc::clone(&d));
        d
    }

    /// The batched-run metadata of `m` for this machine's energy
    /// table, compiled on first use.
    pub(crate) fn decoded_runs(&mut self, m: MethodId) -> Rc<MethodRuns> {
        if let Some(r) = &self.runs[m.0 as usize] {
            return Rc::clone(r);
        }
        let dm = self.decoded_code(m);
        let cc = self.cost_cache();
        let r = Rc::new(crate::decode::compile_runs(self.program, m, &dm, &cc));
        self.runs[m.0 as usize] = Some(Rc::clone(&r));
        r
    }

    /// The per-handler charge plans for this machine's energy table,
    /// compiled on first use.
    pub(crate) fn cost_cache(&mut self) -> Rc<CostCache> {
        if let Some(c) = &self.cost_cache {
            return Rc::clone(c);
        }
        let c = Rc::new(CostCache::new(&self.machine.config().table));
        self.cost_cache = Some(Rc::clone(&c));
        c
    }

    /// Charge `n` instruction events against the step budget.
    ///
    /// # Errors
    /// [`VmError::StepBudgetExceeded`] once the budget is exhausted.
    #[inline]
    pub(crate) fn bump_steps(&mut self, n: u64) -> Result<(), VmError> {
        self.steps += n;
        if self.steps > self.options.step_budget {
            Err(VmError::StepBudgetExceeded)
        } else {
            Ok(())
        }
    }

    /// Reset heap and accounting for a fresh run (installed native
    /// code is kept, as a warm JVM would).
    pub fn reset_run(&mut self) {
        self.heap.clear();
        self.machine.reset();
        self.steps = 0;
        self.depth = 0;
    }
}

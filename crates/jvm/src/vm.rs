//! The MJVM runtime: mixed-mode method dispatch.
//!
//! A [`Vm`] ties a [`Program`] to a simulated [`Machine`] and a
//! [`Heap`]. Each method is currently either in bytecode form
//! (executed by [`crate::interp`]) or native form (a JIT-compiled
//! [`NativeCode`] object executed by [`crate::exec`]); calls cross
//! freely between the two, as in a real mixed-mode JVM. Installing
//! native code assigns it a simulated address range so the I-cache
//! model sees realistic code footprints — including the larger
//! footprints of aggressively inlined (Local3) code.

use crate::bytecode::MethodId;
use crate::class::Program;
use crate::costs::NATIVE_CODE_BASE;
use crate::emit::NativeCode;
use crate::heap::Heap;
use crate::value::Value;
use crate::VmError;
use jem_energy::{Machine, MachineConfig};
use std::rc::Rc;

/// Execution limits (runaway guards for property tests and experiment
/// sweeps).
#[derive(Debug, Clone, Copy)]
pub struct VmOptions {
    /// Maximum number of charged bytecode/native instructions.
    pub step_budget: u64,
    /// Maximum host call depth.
    pub max_call_depth: u32,
}

impl Default for VmOptions {
    fn default() -> Self {
        VmOptions {
            step_budget: u64::MAX,
            max_call_depth: 128,
        }
    }
}

/// Current executable form of one method.
#[derive(Debug, Clone)]
pub enum MethodCode {
    /// Interpret the class-file bytecode.
    Bytecode,
    /// Run installed native code.
    Native {
        /// The code object.
        code: Rc<NativeCode>,
        /// Simulated base address of the emitted instructions.
        base: u64,
    },
}

/// The runtime.
#[derive(Debug)]
pub struct Vm<'p> {
    /// The deployed program.
    pub program: &'p Program,
    /// The object heap.
    pub heap: Heap,
    /// The machine executing this VM (energy + time accounting).
    pub machine: Machine,
    /// Execution limits.
    pub options: VmOptions,
    code: Vec<MethodCode>,
    next_code_addr: u64,
    /// Charged instruction events so far (for the step budget).
    pub steps: u64,
    pub(crate) depth: u32,
}

impl<'p> Vm<'p> {
    /// A VM for `program` on `machine`.
    pub fn new(program: &'p Program, machine: Machine) -> Self {
        Vm {
            program,
            heap: Heap::new(),
            machine,
            options: VmOptions::default(),
            code: vec![MethodCode::Bytecode; program.methods.len()],
            next_code_addr: NATIVE_CODE_BASE,
            steps: 0,
            depth: 0,
        }
    }

    /// Convenience: a VM on the paper's mobile-client machine.
    pub fn client(program: &'p Program) -> Self {
        Vm::new(program, Machine::new(MachineConfig::mobile_client()))
    }

    /// Convenience: a VM on the paper's 750 MHz server machine.
    pub fn server(program: &'p Program) -> Self {
        Vm::new(program, Machine::new(MachineConfig::sparc_server()))
    }

    /// The current code form of `m`.
    pub fn code_of(&self, m: MethodId) -> &MethodCode {
        &self.code[m.0 as usize]
    }

    /// True when `m` has native code installed.
    pub fn is_native(&self, m: MethodId) -> bool {
        matches!(self.code[m.0 as usize], MethodCode::Native { .. })
    }

    /// Install native code for `m`, laying it out in the simulated
    /// code region. Replaces any previous code (recompilation).
    pub fn install_native(&mut self, m: MethodId, code: Rc<NativeCode>) {
        let base = self.next_code_addr;
        self.next_code_addr += code.code_bytes as u64;
        // Keep code regions line-aligned.
        self.next_code_addr = (self.next_code_addr + 31) & !31;
        self.code[m.0 as usize] = MethodCode::Native { code, base };
    }

    /// Revert `m` to interpreted execution.
    pub fn deinstall(&mut self, m: MethodId) {
        self.code[m.0 as usize] = MethodCode::Bytecode;
    }

    /// Invoke a method with the given argument values. For virtual
    /// methods the receiver is `args[0]`.
    ///
    /// # Errors
    /// Any [`VmError`] raised during execution, including arity
    /// mismatches of this entry invocation.
    pub fn invoke(&mut self, m: MethodId, args: Vec<Value>) -> Result<Option<Value>, VmError> {
        let method = self.program.method(m);
        if args.len() != method.invoke_arity() {
            return Err(VmError::ArityMismatch {
                expected: method.invoke_arity(),
                got: args.len(),
            });
        }
        if self.depth >= self.options.max_call_depth {
            return Err(VmError::CallDepthExceeded);
        }
        self.depth += 1;
        let result = match &self.code[m.0 as usize] {
            MethodCode::Bytecode => crate::interp::run(self, m, args),
            MethodCode::Native { code, base } => {
                let code = Rc::clone(code);
                let base = *base;
                crate::exec::run(self, &code, base, args)
            }
        };
        self.depth -= 1;
        result
    }

    /// Current host call depth (used for frame addressing).
    pub fn depth(&self) -> u32 {
        self.depth
    }

    /// Charge `n` instruction events against the step budget.
    ///
    /// # Errors
    /// [`VmError::StepBudgetExceeded`] once the budget is exhausted.
    #[inline]
    pub(crate) fn bump_steps(&mut self, n: u64) -> Result<(), VmError> {
        self.steps += n;
        if self.steps > self.options.step_budget {
            Err(VmError::StepBudgetExceeded)
        } else {
            Ok(())
        }
    }

    /// Reset heap and accounting for a fresh run (installed native
    /// code is kept, as a warm JVM would).
    pub fn reset_run(&mut self) {
        self.heap.clear();
        self.machine.reset();
        self.steps = 0;
        self.depth = 0;
    }
}

//! Bytecode → NIR lowering (the JIT front end).
//!
//! This is the "no special optimizations, just translate the bytecode
//! to native form" step that by itself constitutes the paper's
//! **Local1** compilation level. Stack slots become positional virtual
//! registers (`nlocals + depth`), locals keep their slot numbers, and
//! each bytecode maps to at most a few NIR instructions.
//!
//! The returned work-unit count is what the energy model charges for
//! running this pass (see [`crate::costs::compile_work_mix`]).

use crate::bytecode::{MethodId, Op};
use crate::class::Program;
use crate::nir::{Block, BlockId, NFunc, NInst, VReg};

/// Result of lowering: the NIR function plus the work units expended.
#[derive(Debug, Clone)]
pub struct LowerResult {
    /// The lowered function.
    pub func: NFunc,
    /// Work units consumed by the pass.
    pub work_units: u64,
}

/// Lower `method` to NIR.
///
/// # Panics
/// On malformed bytecode; run the verifier first. (The JIT only ever
/// compiles verified methods, as in a real JVM.)
#[allow(clippy::needless_range_loop)] // block ids double as indices throughout
pub fn lower(program: &Program, id: MethodId) -> LowerResult {
    let method = program.method(id);
    let code = &method.code;
    assert!(!code.is_empty(), "lowering empty method");

    // 1. Identify leaders.
    let mut is_leader = vec![false; code.len()];
    is_leader[0] = true;
    for (pc, op) in code.iter().enumerate() {
        if let Some(t) = op.branch_target() {
            is_leader[t as usize] = true;
            if pc + 1 < code.len() {
                is_leader[pc + 1] = true;
            }
        } else if op.is_terminator() && pc + 1 < code.len() {
            is_leader[pc + 1] = true;
        }
    }

    // 2. pc → block id. Block 0 is a synthetic entry (a single jump)
    // so optimization passes can always create loop preheaders without
    // disturbing the function entry; real blocks start at 1.
    let mut block_of = vec![0u32; code.len()];
    let mut nblocks = 1u32;
    for (pc, leader) in is_leader.iter().enumerate() {
        if *leader {
            nblocks += 1;
        }
        block_of[pc] = nblocks - 1;
    }
    // block_start[b - 1] = first pc of real block b.
    let block_start: Vec<usize> = (0..code.len()).filter(|&pc| is_leader[pc]).collect();
    let start_of = |b: u32| block_start[b as usize - 1];
    let end_of = |b: u32| block_start.get(b as usize).copied().unwrap_or(code.len());

    // 3. Entry stack depth per block (dataflow over verified code).
    let mut entry_depth: Vec<Option<usize>> = vec![None; nblocks as usize];
    entry_depth[1] = Some(0);
    let mut work = vec![1u32];
    while let Some(b) = work.pop() {
        let mut depth = entry_depth[b as usize].expect("worklist entries have depth");
        let start = start_of(b);
        let end = end_of(b);
        let mut targets: Vec<u32> = Vec::new();
        for op in &code[start..end] {
            let (pops, pushes) = stack_effect(program, op);
            depth = depth
                .checked_sub(pops)
                .expect("verified code cannot underflow");
            depth += pushes;
            if let Some(t) = op.branch_target() {
                targets.push(block_of[t as usize]);
            }
        }
        let last = &code[end - 1];
        if !last.is_terminator() {
            targets.push(block_of.get(end).copied().unwrap_or(b));
        }
        for t in targets {
            match entry_depth[t as usize] {
                None => {
                    // Depth at a branch *target* excludes operands the
                    // branch itself consumed — already accounted above.
                    entry_depth[t as usize] = Some(depth);
                    work.push(t);
                }
                Some(d) => debug_assert_eq!(d, depth, "inconsistent stack depth"),
            }
        }
    }

    // 4. Lower.
    let nlocals = method.nlocals as u32;
    let mut max_depth = 0usize;
    for d in entry_depth.iter().flatten() {
        max_depth = max_depth.max(*d);
    }
    // Worst-case additional depth inside a block: scan once more while
    // lowering; start with a generous bound and tighten at the end.
    let mut func = NFunc {
        method: id,
        blocks: vec![Block::default(); nblocks as usize],
        nregs: nlocals, // grows as stack registers are touched
        nlocals,
    };
    let mut work_units: u64 = 0;

    let sreg = |depth: usize| VReg(nlocals + depth as u32);

    // Synthetic entry.
    func.blocks[0].insts.push(NInst::Jmp { target: BlockId(1) });

    for b in 1..nblocks as usize {
        let Some(mut depth) = entry_depth[b] else {
            // Unreachable block (e.g. code after an unconditional
            // branch with no inbound edges): emit a trap-free stub.
            func.blocks[b].insts.push(NInst::Ret { val: None });
            continue;
        };
        let start = start_of(b as u32);
        let end = end_of(b as u32);
        let insts = &mut func.blocks[b].insts;

        for op in &code[start..end] {
            work_units += 2; // decode + translate
            match *op {
                Op::IConst(v) => {
                    insts.push(NInst::IConst { d: sreg(depth), v });
                    depth += 1;
                }
                Op::FConst(v) => {
                    insts.push(NInst::FConst { d: sreg(depth), v });
                    depth += 1;
                }
                Op::NullConst => {
                    insts.push(NInst::NullConst { d: sreg(depth) });
                    depth += 1;
                }
                Op::Load(n) => {
                    insts.push(NInst::Mov {
                        d: sreg(depth),
                        s: VReg(n as u32),
                    });
                    depth += 1;
                }
                Op::Store(n) => {
                    depth -= 1;
                    insts.push(NInst::Mov {
                        d: VReg(n as u32),
                        s: sreg(depth),
                    });
                }
                Op::Pop => depth -= 1,
                Op::Dup => {
                    insts.push(NInst::Mov {
                        d: sreg(depth),
                        s: sreg(depth - 1),
                    });
                    depth += 1;
                }
                Op::Swap => {
                    // Three-mov swap through a depth+1 scratch slot.
                    insts.push(NInst::Mov {
                        d: sreg(depth),
                        s: sreg(depth - 1),
                    });
                    insts.push(NInst::Mov {
                        d: sreg(depth - 1),
                        s: sreg(depth - 2),
                    });
                    insts.push(NInst::Mov {
                        d: sreg(depth - 2),
                        s: sreg(depth),
                    });
                }
                Op::IArith(opk) => {
                    depth -= 1;
                    insts.push(NInst::IBinOp {
                        op: opk,
                        d: sreg(depth - 1),
                        a: sreg(depth - 1),
                        b: sreg(depth),
                    });
                }
                Op::INeg => insts.push(NInst::INegOp {
                    d: sreg(depth - 1),
                    a: sreg(depth - 1),
                }),
                Op::ICmp => {
                    depth -= 1;
                    insts.push(NInst::ICmpOp {
                        d: sreg(depth - 1),
                        a: sreg(depth - 1),
                        b: sreg(depth),
                    });
                }
                Op::FArith(opk) => {
                    depth -= 1;
                    insts.push(NInst::FBinOp {
                        op: opk,
                        d: sreg(depth - 1),
                        a: sreg(depth - 1),
                        b: sreg(depth),
                    });
                }
                Op::FNeg => insts.push(NInst::FNegOp {
                    d: sreg(depth - 1),
                    a: sreg(depth - 1),
                }),
                Op::FCmp => {
                    depth -= 1;
                    insts.push(NInst::FCmpOp {
                        d: sreg(depth - 1),
                        a: sreg(depth - 1),
                        b: sreg(depth),
                    });
                }
                Op::I2F => insts.push(NInst::I2FOp {
                    d: sreg(depth - 1),
                    a: sreg(depth - 1),
                }),
                Op::F2I => insts.push(NInst::F2IOp {
                    d: sreg(depth - 1),
                    a: sreg(depth - 1),
                }),
                Op::Goto(t) => insts.push(NInst::Jmp {
                    target: BlockId(block_of[t as usize]),
                }),
                Op::ICmpBr(c, t) => {
                    depth -= 2;
                    let next = BlockId(block_of[end.min(code.len() - 1)]);
                    insts.push(NInst::BrCond {
                        cond: c,
                        a: sreg(depth),
                        b: sreg(depth + 1),
                        then_: BlockId(block_of[t as usize]),
                        else_: next,
                    });
                }
                Op::BrZ(c, t) => {
                    depth -= 1;
                    let zero = sreg(depth + 1);
                    insts.push(NInst::IConst { d: zero, v: 0 });
                    let next = BlockId(block_of[end.min(code.len() - 1)]);
                    insts.push(NInst::BrCond {
                        cond: c,
                        a: sreg(depth),
                        b: zero,
                        then_: BlockId(block_of[t as usize]),
                        else_: next,
                    });
                }
                Op::NewArr(ty) => insts.push(NInst::NewArr {
                    d: sreg(depth - 1),
                    ty,
                    len: sreg(depth - 1),
                }),
                Op::ALoad(ty) => {
                    depth -= 1;
                    insts.push(NInst::ALoadOp {
                        d: sreg(depth - 1),
                        arr: sreg(depth - 1),
                        idx: sreg(depth),
                        ty,
                    });
                }
                Op::AStore(ty) => {
                    depth -= 3;
                    insts.push(NInst::AStoreOp {
                        arr: sreg(depth),
                        idx: sreg(depth + 1),
                        val: sreg(depth + 2),
                        ty,
                    });
                }
                Op::ArrLen => insts.push(NInst::ArrLenOp {
                    d: sreg(depth - 1),
                    arr: sreg(depth - 1),
                }),
                Op::New(cid) => {
                    insts.push(NInst::NewObj {
                        d: sreg(depth),
                        class: cid,
                    });
                    depth += 1;
                }
                Op::GetField(slot, ty) => insts.push(NInst::GetFieldOp {
                    d: sreg(depth - 1),
                    obj: sreg(depth - 1),
                    slot,
                    ty,
                }),
                Op::PutField(slot) => {
                    depth -= 2;
                    insts.push(NInst::PutFieldOp {
                        obj: sreg(depth),
                        slot,
                        val: sreg(depth + 1),
                    });
                }
                Op::Call(mid) => {
                    let callee = program.method(mid);
                    let nargs = callee.sig.arity();
                    depth -= nargs;
                    let args: Vec<VReg> = (0..nargs).map(|i| sreg(depth + i)).collect();
                    let d = callee.sig.ret.map(|_| sreg(depth));
                    if d.is_some() {
                        depth += 1;
                    }
                    insts.push(NInst::CallOp {
                        d,
                        target: mid,
                        args,
                    });
                }
                Op::CallVirt { slot, argc } => {
                    let nargs = argc as usize;
                    depth -= nargs + 1;
                    let recv = sreg(depth);
                    let args: Vec<VReg> = (0..nargs).map(|i| sreg(depth + 1 + i)).collect();
                    // Return type from any implementor (verifier
                    // guarantees consistency).
                    let ret = program
                        .classes
                        .iter()
                        .find_map(|c| c.vtable.get(slot as usize))
                        .map(|&m| program.method(m).sig.ret)
                        .unwrap_or(None);
                    let d = ret.map(|_| sreg(depth));
                    if d.is_some() {
                        depth += 1;
                    }
                    insts.push(NInst::CallVirtOp {
                        d,
                        slot,
                        recv,
                        args,
                    });
                }
                Op::Ret => insts.push(NInst::Ret { val: None }),
                Op::RetVal => {
                    depth -= 1;
                    insts.push(NInst::Ret {
                        val: Some(sreg(depth)),
                    });
                }
                Op::Nop => {}
            }
            max_depth = max_depth.max(depth + 2); // +2 scratch headroom
        }

        // Fall-through blocks get an explicit jump.
        let needs_jump = match insts.last() {
            Some(t) => !t.is_terminator(),
            None => true,
        };
        if needs_jump {
            let next = BlockId((b as u32 + 1).min(nblocks - 1));
            insts.push(NInst::Jmp { target: next });
        }
        work_units += insts.len() as u64;
    }

    func.nregs = nlocals + max_depth as u32 + 2;
    debug_assert_eq!(func.validate(), Ok(()));
    LowerResult { func, work_units }
}

/// (pops, pushes) of one op.
fn stack_effect(program: &Program, op: &Op) -> (usize, usize) {
    match *op {
        Op::IConst(_) | Op::FConst(_) | Op::NullConst | Op::New(_) => (0, 1),
        Op::Load(_) => (0, 1),
        Op::Store(_) | Op::Pop => (1, 0),
        Op::Dup => (1, 2),
        Op::Swap => (2, 2),
        Op::IArith(_) | Op::FArith(_) | Op::ICmp | Op::FCmp => (2, 1),
        Op::INeg | Op::FNeg | Op::I2F | Op::F2I | Op::NewArr(_) | Op::ArrLen => (1, 1),
        Op::Goto(_) | Op::Nop | Op::Ret => (0, 0),
        Op::ICmpBr(..) => (2, 0),
        Op::BrZ(..) => (1, 0),
        Op::ALoad(_) => (2, 1),
        Op::AStore(_) => (3, 0),
        Op::GetField(..) => (1, 1),
        Op::PutField(_) => (2, 0),
        Op::Call(mid) => {
            let callee = program.method(mid);
            (callee.sig.arity(), usize::from(callee.sig.ret.is_some()))
        }
        Op::CallVirt { slot, argc } => {
            let ret = program
                .classes
                .iter()
                .find_map(|c| c.vtable.get(slot as usize))
                .map(|&m| program.method(m).sig.ret)
                .unwrap_or(None);
            (argc as usize + 1, usize::from(ret.is_some()))
        }
        Op::RetVal => (1, 0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dsl::*;
    use crate::verify::verify_program;

    fn compile(src: ModuleBuilder) -> Program {
        let p = src.compile().unwrap();
        verify_program(&p).unwrap();
        p
    }

    #[test]
    fn lowers_straightline_code() {
        let mut m = ModuleBuilder::new();
        m.func(
            "f",
            vec![("x", DType::Int)],
            Some(DType::Int),
            vec![ret(var("x").add(iconst(1)))],
        );
        let p = compile(m);
        let id = p.find_method(MODULE_CLASS, "f").unwrap();
        let r = lower(&p, id);
        r.func.validate().unwrap();
        assert!(r.work_units > 0);
        // Synthetic entry + one real block.
        assert_eq!(r.func.blocks.len(), 2);
        assert!(matches!(r.func.blocks[0].terminator(), NInst::Jmp { .. }));
        assert!(matches!(
            r.func.blocks[1].terminator(),
            NInst::Ret { val: Some(_) }
        ));
    }

    #[test]
    fn lowers_loops_with_back_edges() {
        let mut m = ModuleBuilder::new();
        m.func(
            "sum",
            vec![("n", DType::Int)],
            Some(DType::Int),
            vec![
                let_("acc", iconst(0)),
                for_(
                    "i",
                    iconst(0),
                    var("n"),
                    vec![assign("acc", var("acc").add(var("i")))],
                ),
                ret(var("acc")),
            ],
        );
        let p = compile(m);
        let id = p.find_method(MODULE_CLASS, "sum").unwrap();
        let f = lower(&p, id).func;
        f.validate().unwrap();
        // Loop structure: some block jumps backwards.
        let has_back_edge = f.blocks.iter().enumerate().any(|(i, b)| {
            b.terminator()
                .successors()
                .iter()
                .any(|s| (s.0 as usize) <= i)
        });
        assert!(has_back_edge, "no back edge found:\n{f}");
    }

    #[test]
    fn lowers_calls_and_arrays() {
        let mut m = ModuleBuilder::new();
        m.func(
            "helper",
            vec![("a", DType::int_arr()), ("i", DType::Int)],
            Some(DType::Int),
            vec![ret(var("a").index(var("i")))],
        );
        m.func(
            "main",
            vec![("n", DType::Int)],
            Some(DType::Int),
            vec![
                let_("a", new_arr(DType::Int, var("n"))),
                set_index(var("a"), iconst(0), iconst(9)),
                ret(call("helper", vec![var("a"), iconst(0)])),
            ],
        );
        let p = compile(m);
        let id = p.find_method(MODULE_CLASS, "main").unwrap();
        let f = lower(&p, id).func;
        f.validate().unwrap();
        let all: Vec<_> = f.blocks.iter().flat_map(|b| &b.insts).collect();
        assert!(all.iter().any(|i| matches!(i, NInst::NewArr { .. })));
        assert!(all.iter().any(|i| matches!(i, NInst::AStoreOp { .. })));
        assert!(all.iter().any(|i| matches!(i, NInst::CallOp { .. })));
    }

    #[test]
    fn lowers_virtual_calls() {
        let mut m = ModuleBuilder::new();
        m.class("C", None, &[("v", DType::Int)]);
        m.virtual_method(
            "C",
            "get",
            vec![],
            Some(DType::Int),
            vec![ret(var("this").field("v"))],
        );
        m.func(
            "main",
            vec![],
            Some(DType::Int),
            vec![let_("c", new_obj("C")), ret(var("c").vcall("get", vec![]))],
        );
        let p = compile(m);
        let id = p.find_method(MODULE_CLASS, "main").unwrap();
        let f = lower(&p, id).func;
        f.validate().unwrap();
        let all: Vec<_> = f.blocks.iter().flat_map(|b| &b.insts).collect();
        assert!(all.iter().any(|i| matches!(i, NInst::CallVirtOp { .. })));
    }

    #[test]
    fn branch_lowering_produces_two_way_terminators() {
        let mut m = ModuleBuilder::new();
        m.func(
            "max",
            vec![("a", DType::Int), ("b", DType::Int)],
            Some(DType::Int),
            vec![if_else(
                var("a").gt(var("b")),
                vec![ret(var("a"))],
                vec![ret(var("b"))],
            )],
        );
        let p = compile(m);
        let id = p.find_method(MODULE_CLASS, "max").unwrap();
        let f = lower(&p, id).func;
        f.validate().unwrap();
        let has_brcond = f
            .blocks
            .iter()
            .any(|b| matches!(b.terminator(), NInst::BrCond { .. }));
        assert!(has_brcond);
    }
}

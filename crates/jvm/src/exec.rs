//! The native-code executor.
//!
//! Runs a [`NativeCode`] object: NIR semantics over a virtual register
//! file, with every emitted micro-instruction issued to the simulated
//! [`Machine`](jem_energy::Machine) — instruction fetches walk the
//! method's code region (so big, heavily inlined Local3 bodies exert
//! real I-cache pressure), heap accesses touch their true simulated
//! addresses, and spilled registers generate frame traffic.
//!
//! Results are bit-identical to the interpreter's: both engines share
//! [`crate::arith`] and the same heap.

use crate::arith;
use crate::bytecode::ClassId;
use crate::costs::{self, NATIVE_INSTR_BYTES};
use crate::emit::{MicroMem, NativeCode};
use crate::nir::{BlockId, NInst};
use crate::value::{Type, Value};
use crate::vm::Vm;
use crate::VmError;
use jem_energy::MemOp;

/// Execute `code` (installed at simulated address `base`) with `args`.
///
/// # Errors
/// Any [`VmError`] raised by the executed code.
pub fn run(
    vm: &mut Vm<'_>,
    code: &NativeCode,
    base: u64,
    args: Vec<Value>,
) -> Result<Option<Value>, VmError> {
    let func = &code.func;
    let mut regs: Vec<Value> = vec![Value::Int(0); func.nregs as usize];
    regs[..args.len()].copy_from_slice(&args);
    vm.machine.charge_mix(&costs::arg_copy_mix(args.len()));

    let frame_base = costs::FRAME_BASE + u64::from(vm.depth()) * 8192;

    let mut block = 0usize;
    let mut ii = 0usize;

    macro_rules! geti {
        ($r:expr) => {
            regs[$r.0 as usize].as_int()?
        };
    }
    macro_rules! getf {
        ($r:expr) => {
            regs[$r.0 as usize].as_float()?
        };
    }
    macro_rules! getref {
        ($r:expr) => {
            regs[$r.0 as usize].as_ref()?
        };
    }
    macro_rules! set {
        ($r:expr, $v:expr) => {
            regs[$r.0 as usize] = $v
        };
    }

    loop {
        let inst = &func.blocks[block].insts[ii];

        // Heap address for the (at most one) heap micro, computed
        // before charging so the D-cache sees the true location.
        let heap_addr: Option<u64> = match inst {
            NInst::ALoadOp { arr, idx, .. } | NInst::AStoreOp { arr, idx, .. } => {
                match (regs[arr.0 as usize], regs[idx.0 as usize]) {
                    (Value::Ref(h), Value::Int(i)) if i >= 0 => {
                        Some(vm.heap.element_address(h, i as usize))
                    }
                    _ => None,
                }
            }
            NInst::ArrLenOp { arr, .. } => match regs[arr.0 as usize] {
                Value::Ref(h) => Some(vm.heap.address_of(h)),
                _ => None,
            },
            NInst::GetFieldOp { obj, slot, .. } => match regs[obj.0 as usize] {
                Value::Ref(h) => Some(vm.heap.field_address(h, *slot as usize)),
                _ => None,
            },
            NInst::PutFieldOp { obj, slot, .. } => match regs[obj.0 as usize] {
                Value::Ref(h) => Some(vm.heap.field_address(h, *slot as usize)),
                _ => None,
            },
            NInst::CallVirtOp { recv, .. } => match regs[recv.0 as usize] {
                Value::Ref(h) => Some(vm.heap.address_of(h)),
                _ => None,
            },
            _ => None,
        };

        // Charge the emitted micro sequence.
        let seq = &code.micros[block][ii];
        let mut pc = base + u64::from(code.offsets[block][ii]) * NATIVE_INSTR_BYTES;
        let mut spill_cursor = 0u64;
        for micro in seq {
            let mem = match micro.mem {
                MicroMem::None => MemOp::None,
                MicroMem::Frame => {
                    // Distinct spill slots per access in sequence
                    // (addresses don't need to be exact, only local).
                    spill_cursor += 1;
                    let addr = frame_base + spill_cursor * 8;
                    if micro.class == jem_energy::InstrClass::Store {
                        MemOp::Write(addr)
                    } else {
                        MemOp::Read(addr)
                    }
                }
                MicroMem::Heap => match heap_addr {
                    Some(a) => {
                        if micro.class == jem_energy::InstrClass::Store {
                            MemOp::Write(a)
                        } else {
                            MemOp::Read(a)
                        }
                    }
                    None => MemOp::None,
                },
            };
            vm.machine.step(pc, micro.class, mem);
            pc += NATIVE_INSTR_BYTES;
        }
        vm.bump_steps(seq.len().max(1) as u64)?;

        // Execute semantics.
        let mut next: Option<BlockId> = None;
        match inst {
            NInst::IConst { d, v } => set!(d, Value::Int(*v)),
            NInst::FConst { d, v } => set!(d, Value::Float(*v)),
            NInst::NullConst { d } => set!(d, Value::Null),
            NInst::Mov { d, s } => set!(d, regs[s.0 as usize]),
            NInst::IBinOp { op, d, a, b } => {
                let r = arith::ibin(*op, geti!(a), geti!(b))?;
                set!(d, Value::Int(r));
            }
            NInst::IShlImm { d, a, k } => {
                let r = geti!(a).wrapping_shl(u32::from(*k));
                set!(d, Value::Int(r));
            }
            NInst::INegOp { d, a } => {
                let r = geti!(a).wrapping_neg();
                set!(d, Value::Int(r));
            }
            NInst::ICmpOp { d, a, b } => {
                let r = arith::icmp(geti!(a), geti!(b));
                set!(d, Value::Int(r));
            }
            NInst::FBinOp { op, d, a, b } => {
                let r = arith::fbin(*op, getf!(a), getf!(b));
                set!(d, Value::Float(r));
            }
            NInst::FNegOp { d, a } => {
                let r = -getf!(a);
                set!(d, Value::Float(r));
            }
            NInst::FCmpOp { d, a, b } => {
                let r = arith::fcmp(getf!(a), getf!(b));
                set!(d, Value::Int(r));
            }
            NInst::I2FOp { d, a } => {
                let r = f64::from(geti!(a));
                set!(d, Value::Float(r));
            }
            NInst::F2IOp { d, a } => {
                let r = arith::f2i(getf!(a));
                set!(d, Value::Int(r));
            }
            NInst::NewArr { d, ty, len } => {
                let n = geti!(len);
                if n < 0 {
                    return Err(VmError::NegativeArrayLength(n));
                }
                let bytes = match ty {
                    Type::Float => 8,
                    _ => 4,
                } * n as u64;
                vm.machine.charge_mix(&costs::alloc_zero_mix(bytes));
                let h = vm.heap.alloc_array(*ty, n as usize);
                set!(d, Value::Ref(h));
            }
            NInst::NewObj { d, class } => {
                let c = vm.program.class(*class);
                vm.machine
                    .charge_mix(&costs::alloc_zero_mix(8 * c.field_types.len() as u64));
                let h = vm.heap.alloc_object(class.0, &c.field_types);
                set!(d, Value::Ref(h));
            }
            NInst::ALoadOp { d, arr, idx, .. } => {
                let h = getref!(arr);
                let i = geti!(idx);
                if i < 0 {
                    return Err(VmError::IndexOutOfBounds {
                        index: usize::MAX,
                        len: vm.heap.array_len(h)?,
                    });
                }
                let v = vm.heap.array_get(h, i as usize)?;
                set!(d, v);
            }
            NInst::AStoreOp { arr, idx, val, .. } => {
                let h = getref!(arr);
                let i = geti!(idx);
                if i < 0 {
                    return Err(VmError::IndexOutOfBounds {
                        index: usize::MAX,
                        len: vm.heap.array_len(h)?,
                    });
                }
                vm.heap.array_set(h, i as usize, regs[val.0 as usize])?;
            }
            NInst::ArrLenOp { d, arr } => {
                let h = getref!(arr);
                let n = vm.heap.array_len(h)?;
                set!(d, Value::Int(n as i32));
            }
            NInst::GetFieldOp { d, obj, slot, .. } => {
                let h = getref!(obj);
                let v = vm.heap.field_get(h, *slot as usize)?;
                set!(d, v);
            }
            NInst::PutFieldOp { obj, slot, val } => {
                let h = getref!(obj);
                vm.heap.field_set(h, *slot as usize, regs[val.0 as usize])?;
            }
            NInst::CallOp { d, target, args } => {
                let argv: Vec<Value> = args.iter().map(|r| regs[r.0 as usize]).collect();
                let ret = vm.invoke(*target, argv)?;
                if let (Some(d), Some(v)) = (d, ret) {
                    set!(d, v);
                }
            }
            NInst::CallVirtOp {
                d,
                slot,
                recv,
                args,
            } => {
                let h = getref!(recv);
                let class = ClassId(vm.heap.class_of(h)?);
                let vtable = &vm.program.class(class).vtable;
                let target = *vtable.get(*slot as usize).ok_or(VmError::BadVSlot(*slot))?;
                let mut argv: Vec<Value> = Vec::with_capacity(args.len() + 1);
                argv.push(Value::Ref(h));
                argv.extend(args.iter().map(|r| regs[r.0 as usize]));
                let ret = vm.invoke(target, argv)?;
                if let (Some(d), Some(v)) = (d, ret) {
                    set!(d, v);
                }
            }
            NInst::Jmp { target } => next = Some(*target),
            NInst::BrCond {
                cond,
                a,
                b,
                then_,
                else_,
            } => {
                next = Some(if cond.eval(geti!(a), geti!(b)) {
                    *then_
                } else {
                    *else_
                });
            }
            NInst::Ret { val } => {
                return Ok(val.map(|v| regs[v.0 as usize]));
            }
        }

        match next {
            Some(b) => {
                block = b.0 as usize;
                ii = 0;
            }
            None => ii += 1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dsl::*;
    use crate::jit;
    use crate::verify::verify_program;
    use crate::vm::Vm;
    use std::rc::Rc;

    /// Compile + install `f` at the given level, run, and return
    /// (result, energy_nj, cycles).
    fn run_compiled(
        mb: ModuleBuilder,
        name: &str,
        level: crate::emit::OptLevel,
        args: Vec<Value>,
    ) -> (Option<Value>, f64, u64) {
        let p = mb.compile().unwrap();
        verify_program(&p).unwrap();
        let id = p.find_method(MODULE_CLASS, name).unwrap();
        let mut vm = Vm::client(&p);
        let compiled = jit::compile(&p, id, level);
        vm.install_native(id, Rc::new(compiled.code));
        let out = vm.invoke(id, args).unwrap();
        (out, vm.machine.energy().nanojoules(), vm.machine.cycles())
    }

    fn sum_module() -> ModuleBuilder {
        let mut m = ModuleBuilder::new();
        m.func(
            "sum",
            vec![("n", DType::Int)],
            Some(DType::Int),
            vec![
                let_("acc", iconst(0)),
                for_(
                    "i",
                    iconst(0),
                    var("n"),
                    vec![assign("acc", var("acc").add(var("i")))],
                ),
                ret(var("acc")),
            ],
        );
        m
    }

    #[test]
    fn compiled_sum_matches_interpreter() {
        for level in crate::emit::OptLevel::ALL {
            let (out, _, _) = run_compiled(sum_module(), "sum", level, vec![Value::Int(50)]);
            assert_eq!(out, Some(Value::Int(1225)), "{level}");
        }
    }

    #[test]
    fn compiled_code_uses_less_energy_than_interpreter() {
        let p = sum_module().compile().unwrap();
        let id = p.find_method(MODULE_CLASS, "sum").unwrap();

        let mut interp_vm = Vm::client(&p);
        interp_vm.invoke(id, vec![Value::Int(500)]).unwrap();
        let interp_energy = interp_vm.machine.energy();

        let mut native_vm = Vm::client(&p);
        let compiled = jit::compile(&p, id, crate::emit::OptLevel::L1);
        native_vm.install_native(id, Rc::new(compiled.code));
        native_vm.invoke(id, vec![Value::Int(500)]).unwrap();
        let native_energy = native_vm.machine.energy();

        let ratio = interp_energy.ratio(native_energy);
        assert!(
            ratio > 2.5 && ratio < 15.0,
            "interpreter/native energy ratio {ratio}"
        );
    }

    #[test]
    fn optimized_code_is_cheaper_to_run() {
        let (out1, e1, c1) = run_compiled(
            sum_module(),
            "sum",
            crate::emit::OptLevel::L1,
            vec![Value::Int(2000)],
        );
        let (out2, e2, c2) = run_compiled(
            sum_module(),
            "sum",
            crate::emit::OptLevel::L2,
            vec![Value::Int(2000)],
        );
        assert_eq!(out1, out2);
        assert!(e2 < e1, "L2 ({e2}) should beat L1 ({e1})");
        assert!(c2 < c1, "L2 cycles ({c2}) should beat L1 ({c1})");
    }

    #[test]
    fn mixed_mode_calls_work_both_ways() {
        // callee compiled, caller interpreted — and vice versa.
        let mut m = ModuleBuilder::new();
        m.func(
            "double",
            vec![("x", DType::Int)],
            Some(DType::Int),
            vec![ret(var("x").mul(iconst(2)))],
        );
        m.func(
            "main",
            vec![("x", DType::Int)],
            Some(DType::Int),
            vec![ret(call("double", vec![var("x")]).add(iconst(1)))],
        );
        let p = m.compile().unwrap();
        let dbl = p.find_method(MODULE_CLASS, "double").unwrap();
        let main = p.find_method(MODULE_CLASS, "main").unwrap();

        // Case 1: only callee compiled.
        let mut vm = Vm::client(&p);
        let c = jit::compile(&p, dbl, crate::emit::OptLevel::L1);
        vm.install_native(dbl, Rc::new(c.code));
        assert_eq!(
            vm.invoke(main, vec![Value::Int(21)]).unwrap(),
            Some(Value::Int(43))
        );

        // Case 2: only caller compiled.
        let mut vm = Vm::client(&p);
        let c = jit::compile(&p, main, crate::emit::OptLevel::L1);
        vm.install_native(main, Rc::new(c.code));
        assert_eq!(
            vm.invoke(main, vec![Value::Int(21)]).unwrap(),
            Some(Value::Int(43))
        );
    }

    #[test]
    fn runtime_errors_surface_from_native_code() {
        let mut m = ModuleBuilder::new();
        m.func(
            "div",
            vec![("a", DType::Int), ("b", DType::Int)],
            Some(DType::Int),
            vec![ret(var("a").div(var("b")))],
        );
        let p = m.compile().unwrap();
        let id = p.find_method(MODULE_CLASS, "div").unwrap();
        let mut vm = Vm::client(&p);
        let c = jit::compile(&p, id, crate::emit::OptLevel::L2);
        vm.install_native(id, Rc::new(c.code));
        assert_eq!(
            vm.invoke(id, vec![Value::Int(1), Value::Int(0)]),
            Err(VmError::DivByZero)
        );
    }

    #[test]
    fn arrays_virtuals_and_floats_in_native_code() {
        let mut m = ModuleBuilder::new();
        m.class("Acc", None, &[("total", DType::Float)]);
        m.virtual_method(
            "Acc",
            "add",
            vec![("x", DType::Float)],
            None,
            vec![set_field(
                var("this"),
                "total",
                var("this").field("total").add(var("x")),
            )],
        );
        m.func(
            "main",
            vec![("n", DType::Int)],
            Some(DType::Float),
            vec![
                let_("a", new_arr(DType::Float, var("n"))),
                for_(
                    "i",
                    iconst(0),
                    var("n"),
                    vec![set_index(
                        var("a"),
                        var("i"),
                        var("i").to_f().mul(fconst(0.5)),
                    )],
                ),
                let_("acc", new_obj("Acc")),
                for_(
                    "i",
                    iconst(0),
                    var("n"),
                    vec![expr_stmt(
                        var("acc").vcall("add", vec![var("a").index(var("i"))]),
                    )],
                ),
                ret(var("acc").field("total")),
            ],
        );
        for level in crate::emit::OptLevel::ALL {
            let (out, _, _) = run_compiled(
                {
                    // rebuild the module each time (ModuleBuilder is
                    // consumed by compile)
                    let mut m2 = ModuleBuilder::new();
                    m2.class("Acc", None, &[("total", DType::Float)]);
                    m2.virtual_method(
                        "Acc",
                        "add",
                        vec![("x", DType::Float)],
                        None,
                        vec![set_field(
                            var("this"),
                            "total",
                            var("this").field("total").add(var("x")),
                        )],
                    );
                    m2.func(
                        "main",
                        vec![("n", DType::Int)],
                        Some(DType::Float),
                        vec![
                            let_("a", new_arr(DType::Float, var("n"))),
                            for_(
                                "i",
                                iconst(0),
                                var("n"),
                                vec![set_index(
                                    var("a"),
                                    var("i"),
                                    var("i").to_f().mul(fconst(0.5)),
                                )],
                            ),
                            let_("acc", new_obj("Acc")),
                            for_(
                                "i",
                                iconst(0),
                                var("n"),
                                vec![expr_stmt(
                                    var("acc").vcall("add", vec![var("a").index(var("i"))]),
                                )],
                            ),
                            ret(var("acc").field("total")),
                        ],
                    );
                    m2
                },
                "main",
                level,
                vec![Value::Int(10)],
            );
            // 0.5 * (0 + 1 + ... + 9) = 22.5
            assert_eq!(out, Some(Value::Float(22.5)), "{level}");
        }
    }
}

//! The native-code executor.
//!
//! Runs a method's pre-decoded executable plan (an
//! [`XCode`], compiled at install time from the JIT's
//! [`NativeCode`](crate::emit::NativeCode)): NIR semantics over a
//! virtual register file, with every emitted micro-instruction issued
//! to the simulated [`Machine`](jem_energy::Machine) — instruction
//! fetches walk the method's code region (so big, heavily inlined
//! Local3 bodies exert real I-cache pressure), heap accesses touch
//! their true simulated addresses, and spilled registers generate
//! frame traffic.
//!
//! The hot loop interprets compact fixed-size [`XOp`]s rather than the
//! NIR itself: register numbers are pre-narrowed, operators pre-split
//! into per-op variants, inline-cache slots precomputed, so dispatch
//! is one match on a 16-byte op with no nested decoding.
//!
//! Results are bit-identical to the interpreter's: both engines share
//! [`crate::arith`] and the same heap.

use crate::arith::{f2i, fcmp, icmp};
use crate::bytecode::{ClassId, MethodId};
use crate::costs;
use crate::runplan::{XCode, XOp, NONE, NO_RUN};
use crate::value::{Type, Value};
use crate::vm::Vm;
use crate::VmError;
use std::cell::Cell;

/// Where control goes after one instruction's semantics.
enum Ctl {
    /// Fall through to the next instruction.
    Next,
    /// Jump to a block.
    Jump(u32),
    /// Return from the method.
    Ret(Option<Value>),
}

/// Execute a method's pre-decoded plan `x` (installed at simulated
/// address `base`) with `args`.
///
/// `ics` holds the method's monomorphic inline caches, indexed by the
/// virtual call's emitted instruction offset: `(class << 32) | target`
/// packed per site, `u64::MAX` when cold. The cache memoizes the
/// immutable program's vtable lookups, so hits are observationally
/// identical to the full resolution path.
///
/// `x` also carries the batched charge plans compiled at install time
/// for this VM's machine: per-instruction plans plus merged
/// multi-instruction runs whose charging is hoisted to the run head
/// (see [`crate::runplan`]); replaying either is bit-exact with
/// stepping the micros one by one (see
/// [`jem_energy::Machine::step_seq`]).
///
/// # Errors
/// Any [`VmError`] raised by the executed code.
pub fn run(
    vm: &mut Vm<'_>,
    x: &XCode,
    base: u64,
    ics: &[Cell<u64>],
    args: Vec<Value>,
) -> Result<Option<Value>, VmError> {
    // The register file is pooled; the wrapper keeps recycling off the
    // hot path and covers every exit (returns and errors alike).
    let mut regs = vm.take_buf();
    let out = run_inner(vm, x, base, ics, args, &mut regs);
    vm.put_buf(regs);
    out
}

fn run_inner(
    vm: &mut Vm<'_>,
    x: &XCode,
    base: u64,
    ics: &[Cell<u64>],
    args: Vec<Value>,
    regs: &mut Vec<Value>,
) -> Result<Option<Value>, VmError> {
    regs.resize(x.nregs as usize, Value::Int(0));
    regs[..args.len()].copy_from_slice(&args);
    vm.machine.charge_mix(&costs::arg_copy_mix(args.len()));
    vm.put_buf(args);

    let frame_base = costs::FRAME_BASE + u64::from(vm.depth()) * 8192;

    let mut block = 0usize;
    let mut ii = 0usize;

    'blocks: loop {
        // Hoist the per-block slices: the inner loop then indexes flat
        // slices instead of chasing nested spines per instruction.
        let xb = &x.blocks[block];
        let ops = &xb.ops[..];

        loop {
            // Batched fast path: a multi-instruction run starts here and
            // the remaining step budget covers all of it, so the whole
            // run's charges are hoisted ahead of its (machine-free,
            // interior-infallible) semantics — bit-exact with the
            // per-instruction path below (see [`crate::runplan`]).
            let ri = xb.run_at[ii];
            if ri != NO_RUN {
                let run = &xb.runs[ri as usize];
                if vm.options.step_budget.saturating_sub(vm.steps) >= run.steps {
                    vm.machine.step_seq(&run.plan, base, frame_base, None);
                    let end = ii + run.len as usize;
                    vm.bump_steps(run.steps)?;
                    for op in &ops[ii..end] {
                        match step_semantics(vm, regs, op, ics, &x.args_pool)? {
                            Ctl::Next => {}
                            Ctl::Jump(b) => {
                                block = b as usize;
                                ii = 0;
                                continue 'blocks;
                            }
                            Ctl::Ret(v) => return Ok(v),
                        }
                    }
                    ii = end;
                    continue;
                }
            }

            let op = &ops[ii];
            let plan = &xb.plans[ii];

            // Heap address for the (at most one) heap micro, resolved only
            // when the plan needs it, before charging so the D-cache sees
            // the true location.
            let heap_addr: Option<u64> = if !plan.wants_heap_addr() {
                None
            } else {
                match op {
                    XOp::ALoad { arr, idx, .. } | XOp::AStore { arr, idx, .. } => {
                        match (regs[*arr as usize], regs[*idx as usize]) {
                            (Value::Ref(h), Value::Int(i)) if i >= 0 => {
                                Some(vm.heap.element_address(h, i as usize))
                            }
                            _ => None,
                        }
                    }
                    XOp::ArrLen { arr, .. } => match regs[*arr as usize] {
                        Value::Ref(h) => Some(vm.heap.address_of(h)),
                        _ => None,
                    },
                    XOp::GetField { obj, slot, .. } | XOp::PutField { obj, slot, .. } => {
                        match regs[*obj as usize] {
                            Value::Ref(h) => Some(vm.heap.field_address(h, *slot as usize)),
                            _ => None,
                        }
                    }
                    XOp::CallVirt { recv, .. } => match regs[*recv as usize] {
                        Value::Ref(h) => Some(vm.heap.address_of(h)),
                        _ => None,
                    },
                    _ => None,
                }
            };

            // Charge the emitted micro sequence (batched, bit-exact).
            vm.machine.step_seq(plan, base, frame_base, heap_addr);
            vm.bump_steps(plan.len().max(1))?;

            match step_semantics(vm, regs, op, ics, &x.args_pool)? {
                Ctl::Next => ii += 1,
                Ctl::Jump(b) => {
                    block = b as usize;
                    ii = 0;
                    continue 'blocks;
                }
                Ctl::Ret(v) => return Ok(v),
            }
        }
    }
}

/// One instruction's semantics — charging has already happened on the
/// caller's side (either per instruction or hoisted for a whole run).
#[inline]
fn step_semantics(
    vm: &mut Vm<'_>,
    regs: &mut [Value],
    op: &XOp,
    ics: &[Cell<u64>],
    pool: &[u16],
) -> Result<Ctl, VmError> {
    macro_rules! geti {
        ($r:expr) => {
            regs[$r as usize].as_int()?
        };
    }
    macro_rules! getf {
        ($r:expr) => {
            regs[$r as usize].as_float()?
        };
    }
    macro_rules! getref {
        ($r:expr) => {
            regs[$r as usize].as_ref()?
        };
    }
    macro_rules! set {
        ($r:expr, $v:expr) => {
            regs[$r as usize] = $v
        };
    }
    // Flattened integer/float binary ops: operands load left-to-right
    // then apply, exactly as `arith::ibin`/`arith::fbin` would.
    macro_rules! ibin {
        ($d:expr, $a:expr, $b:expr, |$x:ident, $y:ident| $e:expr) => {{
            let $x = geti!(*$a);
            let $y = geti!(*$b);
            set!(*$d, Value::Int($e));
        }};
    }
    macro_rules! fbin {
        ($d:expr, $a:expr, $b:expr, |$x:ident, $y:ident| $e:expr) => {{
            let $x = getf!(*$a);
            let $y = getf!(*$b);
            set!(*$d, Value::Float($e));
        }};
    }

    match op {
        XOp::IConst { d, v } => set!(*d, Value::Int(*v)),
        XOp::FConst { d, v } => set!(*d, Value::Float(*v)),
        XOp::NullConst { d } => set!(*d, Value::Null),
        XOp::Mov { d, s } => set!(*d, regs[*s as usize]),
        XOp::IAdd { d, a, b } => ibin!(d, a, b, |x, y| x.wrapping_add(y)),
        XOp::ISub { d, a, b } => ibin!(d, a, b, |x, y| x.wrapping_sub(y)),
        XOp::IMul { d, a, b } => ibin!(d, a, b, |x, y| x.wrapping_mul(y)),
        XOp::IDiv { d, a, b } => {
            let x = geti!(*a);
            let y = geti!(*b);
            if y == 0 {
                return Err(VmError::DivByZero);
            }
            set!(*d, Value::Int(x.wrapping_div(y)));
        }
        XOp::IRem { d, a, b } => {
            let x = geti!(*a);
            let y = geti!(*b);
            if y == 0 {
                return Err(VmError::DivByZero);
            }
            set!(*d, Value::Int(x.wrapping_rem(y)));
        }
        XOp::IAnd { d, a, b } => ibin!(d, a, b, |x, y| x & y),
        XOp::IOr { d, a, b } => ibin!(d, a, b, |x, y| x | y),
        XOp::IXor { d, a, b } => ibin!(d, a, b, |x, y| x ^ y),
        XOp::IShl { d, a, b } => ibin!(d, a, b, |x, y| x.wrapping_shl(y as u32 & 31)),
        XOp::IShr { d, a, b } => ibin!(d, a, b, |x, y| x.wrapping_shr(y as u32 & 31)),
        XOp::IShlImm { d, a, k } => {
            let r = geti!(*a).wrapping_shl(u32::from(*k));
            set!(*d, Value::Int(r));
        }
        XOp::INeg { d, a } => {
            let r = geti!(*a).wrapping_neg();
            set!(*d, Value::Int(r));
        }
        XOp::ICmp { d, a, b } => ibin!(d, a, b, |x, y| icmp(x, y)),
        XOp::FAdd { d, a, b } => fbin!(d, a, b, |x, y| x + y),
        XOp::FSub { d, a, b } => fbin!(d, a, b, |x, y| x - y),
        XOp::FMul { d, a, b } => fbin!(d, a, b, |x, y| x * y),
        XOp::FDiv { d, a, b } => fbin!(d, a, b, |x, y| x / y),
        XOp::FNeg { d, a } => {
            let r = -getf!(*a);
            set!(*d, Value::Float(r));
        }
        XOp::FCmp { d, a, b } => {
            let x = getf!(*a);
            let y = getf!(*b);
            set!(*d, Value::Int(fcmp(x, y)));
        }
        XOp::I2F { d, a } => {
            let r = f64::from(geti!(*a));
            set!(*d, Value::Float(r));
        }
        XOp::F2I { d, a } => {
            let r = f2i(getf!(*a));
            set!(*d, Value::Int(r));
        }
        XOp::NewArr { d, ty, len } => {
            let n = geti!(*len);
            if n < 0 {
                return Err(VmError::NegativeArrayLength(n));
            }
            let bytes = match ty {
                Type::Float => 8,
                _ => 4,
            } * n as u64;
            vm.machine.charge_mix(&costs::alloc_zero_mix(bytes));
            let h = vm.heap.alloc_array(*ty, n as usize);
            set!(*d, Value::Ref(h));
        }
        XOp::NewObj { d, class } => {
            let c = vm.program.class(ClassId(*class));
            vm.machine
                .charge_mix(&costs::alloc_zero_mix(8 * c.field_types.len() as u64));
            let h = vm.heap.alloc_object(*class, &c.field_types);
            set!(*d, Value::Ref(h));
        }
        XOp::ALoad { d, arr, idx } => {
            let h = getref!(*arr);
            let i = geti!(*idx);
            if i < 0 {
                return Err(VmError::IndexOutOfBounds {
                    index: usize::MAX,
                    len: vm.heap.array_len(h)?,
                });
            }
            let v = vm.heap.array_get(h, i as usize)?;
            set!(*d, v);
        }
        XOp::AStore { arr, idx, val } => {
            let h = getref!(*arr);
            let i = geti!(*idx);
            if i < 0 {
                return Err(VmError::IndexOutOfBounds {
                    index: usize::MAX,
                    len: vm.heap.array_len(h)?,
                });
            }
            vm.heap.array_set(h, i as usize, regs[*val as usize])?;
        }
        XOp::ArrLen { d, arr } => {
            let h = getref!(*arr);
            let n = vm.heap.array_len(h)?;
            set!(*d, Value::Int(n as i32));
        }
        XOp::GetField { d, obj, slot } => {
            let h = getref!(*obj);
            let v = vm.heap.field_get(h, *slot as usize)?;
            set!(*d, v);
        }
        XOp::PutField { obj, slot, val } => {
            let h = getref!(*obj);
            vm.heap.field_set(h, *slot as usize, regs[*val as usize])?;
        }
        XOp::Call {
            d,
            argc,
            target,
            argi,
        } => {
            let mut argv = vm.take_buf();
            let args = &pool[*argi as usize..*argi as usize + *argc as usize];
            argv.extend(args.iter().map(|&r| regs[r as usize]));
            let ret = vm.invoke(MethodId(*target), argv)?;
            if *d != NONE {
                if let Some(v) = ret {
                    set!(*d, v);
                }
            }
        }
        XOp::CallVirt {
            d,
            slot,
            recv,
            argc,
            ic,
            argi,
        } => {
            let h = getref!(*recv);
            let class = vm.heap.class_of(h)?;
            let ic = ics.get(*ic as usize);
            let cached = ic.map_or(u64::MAX, Cell::get);
            let target = if (cached >> 32) as u32 == class {
                MethodId(cached as u32)
            } else {
                let vtable = &vm.program.class(ClassId(class)).vtable;
                let t = *vtable.get(*slot as usize).ok_or(VmError::BadVSlot(*slot))?;
                if let Some(c) = ic {
                    c.set((u64::from(class) << 32) | u64::from(t.0));
                }
                t
            };
            let mut argv = vm.take_buf();
            argv.push(Value::Ref(h));
            let args = &pool[*argi as usize..*argi as usize + *argc as usize];
            argv.extend(args.iter().map(|&r| regs[r as usize]));
            let ret = vm.invoke(target, argv)?;
            if *d != NONE {
                if let Some(v) = ret {
                    set!(*d, v);
                }
            }
        }
        XOp::Jmp { t } => return Ok(Ctl::Jump(*t)),
        XOp::Br { cond, a, b, t, e } => {
            return Ok(Ctl::Jump(if cond.eval(geti!(*a), geti!(*b)) {
                *t
            } else {
                *e
            }));
        }
        XOp::Ret { v } => {
            return Ok(Ctl::Ret(if *v == NONE {
                None
            } else {
                Some(regs[*v as usize])
            }));
        }
    }
    Ok(Ctl::Next)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dsl::*;
    use crate::jit;
    use crate::verify::verify_program;
    use crate::vm::Vm;
    use std::rc::Rc;

    /// Compile + install `f` at the given level, run, and return
    /// (result, energy_nj, cycles).
    fn run_compiled(
        mb: ModuleBuilder,
        name: &str,
        level: crate::emit::OptLevel,
        args: Vec<Value>,
    ) -> (Option<Value>, f64, u64) {
        let p = mb.compile().unwrap();
        verify_program(&p).unwrap();
        let id = p.find_method(MODULE_CLASS, name).unwrap();
        let mut vm = Vm::client(&p);
        let compiled = jit::compile(&p, id, level);
        vm.install_native(id, Rc::new(compiled.code));
        let out = vm.invoke(id, args).unwrap();
        (out, vm.machine.energy().nanojoules(), vm.machine.cycles())
    }

    fn sum_module() -> ModuleBuilder {
        let mut m = ModuleBuilder::new();
        m.func(
            "sum",
            vec![("n", DType::Int)],
            Some(DType::Int),
            vec![
                let_("acc", iconst(0)),
                for_(
                    "i",
                    iconst(0),
                    var("n"),
                    vec![assign("acc", var("acc").add(var("i")))],
                ),
                ret(var("acc")),
            ],
        );
        m
    }

    #[test]
    fn compiled_sum_matches_interpreter() {
        for level in crate::emit::OptLevel::ALL {
            let (out, _, _) = run_compiled(sum_module(), "sum", level, vec![Value::Int(50)]);
            assert_eq!(out, Some(Value::Int(1225)), "{level}");
        }
    }

    #[test]
    fn compiled_code_uses_less_energy_than_interpreter() {
        let p = sum_module().compile().unwrap();
        let id = p.find_method(MODULE_CLASS, "sum").unwrap();

        let mut interp_vm = Vm::client(&p);
        interp_vm.invoke(id, vec![Value::Int(500)]).unwrap();
        let interp_energy = interp_vm.machine.energy();

        let mut native_vm = Vm::client(&p);
        let compiled = jit::compile(&p, id, crate::emit::OptLevel::L1);
        native_vm.install_native(id, Rc::new(compiled.code));
        native_vm.invoke(id, vec![Value::Int(500)]).unwrap();
        let native_energy = native_vm.machine.energy();

        let ratio = interp_energy.ratio(native_energy);
        assert!(
            ratio > 2.5 && ratio < 15.0,
            "interpreter/native energy ratio {ratio}"
        );
    }

    #[test]
    fn optimized_code_is_cheaper_to_run() {
        let (out1, e1, c1) = run_compiled(
            sum_module(),
            "sum",
            crate::emit::OptLevel::L1,
            vec![Value::Int(2000)],
        );
        let (out2, e2, c2) = run_compiled(
            sum_module(),
            "sum",
            crate::emit::OptLevel::L2,
            vec![Value::Int(2000)],
        );
        assert_eq!(out1, out2);
        assert!(e2 < e1, "L2 ({e2}) should beat L1 ({e1})");
        assert!(c2 < c1, "L2 cycles ({c2}) should beat L1 ({c1})");
    }

    #[test]
    fn mixed_mode_calls_work_both_ways() {
        // callee compiled, caller interpreted — and vice versa.
        let mut m = ModuleBuilder::new();
        m.func(
            "double",
            vec![("x", DType::Int)],
            Some(DType::Int),
            vec![ret(var("x").mul(iconst(2)))],
        );
        m.func(
            "main",
            vec![("x", DType::Int)],
            Some(DType::Int),
            vec![ret(call("double", vec![var("x")]).add(iconst(1)))],
        );
        let p = m.compile().unwrap();
        let dbl = p.find_method(MODULE_CLASS, "double").unwrap();
        let main = p.find_method(MODULE_CLASS, "main").unwrap();

        // Case 1: only callee compiled.
        let mut vm = Vm::client(&p);
        let c = jit::compile(&p, dbl, crate::emit::OptLevel::L1);
        vm.install_native(dbl, Rc::new(c.code));
        assert_eq!(
            vm.invoke(main, vec![Value::Int(21)]).unwrap(),
            Some(Value::Int(43))
        );

        // Case 2: only caller compiled.
        let mut vm = Vm::client(&p);
        let c = jit::compile(&p, main, crate::emit::OptLevel::L1);
        vm.install_native(main, Rc::new(c.code));
        assert_eq!(
            vm.invoke(main, vec![Value::Int(21)]).unwrap(),
            Some(Value::Int(43))
        );
    }

    #[test]
    fn runtime_errors_surface_from_native_code() {
        let mut m = ModuleBuilder::new();
        m.func(
            "div",
            vec![("a", DType::Int), ("b", DType::Int)],
            Some(DType::Int),
            vec![ret(var("a").div(var("b")))],
        );
        let p = m.compile().unwrap();
        let id = p.find_method(MODULE_CLASS, "div").unwrap();
        let mut vm = Vm::client(&p);
        let c = jit::compile(&p, id, crate::emit::OptLevel::L2);
        vm.install_native(id, Rc::new(c.code));
        assert_eq!(
            vm.invoke(id, vec![Value::Int(1), Value::Int(0)]),
            Err(VmError::DivByZero)
        );
    }

    #[test]
    fn arrays_virtuals_and_floats_in_native_code() {
        let mut m = ModuleBuilder::new();
        m.class("Acc", None, &[("total", DType::Float)]);
        m.virtual_method(
            "Acc",
            "add",
            vec![("x", DType::Float)],
            None,
            vec![set_field(
                var("this"),
                "total",
                var("this").field("total").add(var("x")),
            )],
        );
        m.func(
            "main",
            vec![("n", DType::Int)],
            Some(DType::Float),
            vec![
                let_("a", new_arr(DType::Float, var("n"))),
                for_(
                    "i",
                    iconst(0),
                    var("n"),
                    vec![set_index(
                        var("a"),
                        var("i"),
                        var("i").to_f().mul(fconst(0.5)),
                    )],
                ),
                let_("acc", new_obj("Acc")),
                for_(
                    "i",
                    iconst(0),
                    var("n"),
                    vec![expr_stmt(
                        var("acc").vcall("add", vec![var("a").index(var("i"))]),
                    )],
                ),
                ret(var("acc").field("total")),
            ],
        );
        for level in crate::emit::OptLevel::ALL {
            let (out, _, _) = run_compiled(
                {
                    // rebuild the module each time (ModuleBuilder is
                    // consumed by compile)
                    let mut m2 = ModuleBuilder::new();
                    m2.class("Acc", None, &[("total", DType::Float)]);
                    m2.virtual_method(
                        "Acc",
                        "add",
                        vec![("x", DType::Float)],
                        None,
                        vec![set_field(
                            var("this"),
                            "total",
                            var("this").field("total").add(var("x")),
                        )],
                    );
                    m2.func(
                        "main",
                        vec![("n", DType::Int)],
                        Some(DType::Float),
                        vec![
                            let_("a", new_arr(DType::Float, var("n"))),
                            for_(
                                "i",
                                iconst(0),
                                var("n"),
                                vec![set_index(
                                    var("a"),
                                    var("i"),
                                    var("i").to_f().mul(fconst(0.5)),
                                )],
                            ),
                            let_("acc", new_obj("Acc")),
                            for_(
                                "i",
                                iconst(0),
                                var("n"),
                                vec![expr_stmt(
                                    var("acc").vcall("add", vec![var("a").index(var("i"))]),
                                )],
                            ),
                            ret(var("acc").field("total")),
                        ],
                    );
                    m2
                },
                "main",
                level,
                vec![Value::Int(10)],
            );
            // 0.5 * (0 + 1 + ... + 9) = 22.5
            assert_eq!(out, Some(Value::Float(22.5)), "{level}");
        }
    }
}

//! Classes, methods, and whole programs.
//!
//! A [`Program`] is the MJVM's unit of deployment — the analogue of a
//! set of Java class files. It holds a class table (with single
//! inheritance and vtables for virtual dispatch) and a flat method
//! table. Method attributes carry the paper's class-file annotations:
//! the *potential method* marker ("potential methods of a class are
//! annotated using the attribute string in the class file"), the
//! *inherently local* marker for I/O-bound methods that "cannot be
//! potential methods or called by a potential method", and the index
//! of the *size parameter* the helper methods feed their cost models.

use crate::bytecode::{code_size_bytes, ClassId, MethodId, Op};
use crate::value::Type;
use serde::{Deserialize, Serialize};

/// A method signature: parameter types and optional return type.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MethodSig {
    /// Parameter types, in order. For virtual methods the receiver is
    /// *not* listed; it implicitly occupies local slot 0.
    pub params: Vec<Type>,
    /// Return type, or `None` for void.
    pub ret: Option<Type>,
}

impl MethodSig {
    /// Signature with the given parameters and return type.
    pub fn new(params: Vec<Type>, ret: Option<Type>) -> Self {
        MethodSig { params, ret }
    }

    /// Number of declared parameters.
    pub fn arity(&self) -> usize {
        self.params.len()
    }
}

/// Class-file attributes attached to a method (paper §3).
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct MethodAttrs {
    /// Annotated as a *potential method*: may be executed remotely.
    pub potential: bool,
    /// Contains inherently local operations (I/O); can never be
    /// offloaded nor called from an offloaded method.
    pub local_only: bool,
    /// Index (into locals, i.e. params with receiver at 0 for virtual
    /// methods) of the size parameter used by cost estimation.
    pub size_param: Option<u16>,
}

/// One method.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Method {
    /// Unqualified name.
    pub name: String,
    /// Owning class.
    pub class: ClassId,
    /// Signature.
    pub sig: MethodSig,
    /// Total local slots (must cover receiver + params + temporaries).
    pub nlocals: u16,
    /// Bytecode.
    pub code: Vec<Op>,
    /// Paper annotations.
    pub attrs: MethodAttrs,
    /// True when the method is virtual (receiver in slot 0, vtable
    /// dispatched).
    pub is_virtual: bool,
}

impl Method {
    /// Number of argument slots on invocation (receiver included for
    /// virtual methods).
    pub fn invoke_arity(&self) -> usize {
        self.sig.arity() + usize::from(self.is_virtual)
    }

    /// Encoded bytecode size in bytes.
    pub fn bytecode_size(&self) -> u32 {
        code_size_bytes(&self.code)
    }
}

/// One declared field.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Field {
    /// Field name.
    pub name: String,
    /// Field type.
    pub ty: Type,
}

/// One class.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Class {
    /// Class name (unique within the program).
    pub name: String,
    /// Superclass, if any.
    pub super_class: Option<ClassId>,
    /// Own (non-inherited) fields.
    pub fields: Vec<Field>,
    /// Resolved field types including inherited fields, in slot order
    /// (inherited first).
    pub field_types: Vec<Type>,
    /// Resolved vtable: slot → implementing method.
    pub vtable: Vec<MethodId>,
}

impl Class {
    /// Slot of the field named `name` (searching inherited + own
    /// resolved slots via the builder's recorded names).
    pub fn field_count(&self) -> usize {
        self.field_types.len()
    }
}

/// A complete MJVM program.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Program {
    /// Class table.
    pub classes: Vec<Class>,
    /// Flat method table.
    pub methods: Vec<Method>,
}

impl Program {
    /// Borrow a method.
    ///
    /// # Panics
    /// On out-of-range ids (program construction guarantees validity).
    pub fn method(&self, id: MethodId) -> &Method {
        &self.methods[id.0 as usize]
    }

    /// Borrow a class.
    ///
    /// # Panics
    /// On out-of-range ids.
    pub fn class(&self, id: ClassId) -> &Class {
        &self.classes[id.0 as usize]
    }

    /// Find a method by class and method name.
    pub fn find_method(&self, class_name: &str, method_name: &str) -> Option<MethodId> {
        let class_idx = self.classes.iter().position(|c| c.name == class_name)?;
        self.methods
            .iter()
            .position(|m| m.class.0 as usize == class_idx && m.name == method_name)
            .map(|i| MethodId(i as u32))
    }

    /// Find a class by name.
    pub fn find_class(&self, name: &str) -> Option<ClassId> {
        self.classes
            .iter()
            .position(|c| c.name == name)
            .map(|i| ClassId(i as u32))
    }

    /// Fully-qualified name of a method (`Class.method`).
    pub fn qualified_name(&self, id: MethodId) -> String {
        let m = self.method(id);
        format!("{}.{}", self.class(m.class).name, m.name)
    }

    /// Resolve a virtual dispatch: the implementation `class` provides
    /// for vtable `slot`.
    ///
    /// # Panics
    /// If the slot is out of range for the class (verified programs
    /// never are).
    pub fn resolve_virtual(&self, class: ClassId, slot: u16) -> MethodId {
        self.class(class).vtable[slot as usize]
    }

    /// True when `sub` equals `ancestor` or inherits from it.
    pub fn is_subclass_of(&self, sub: ClassId, ancestor: ClassId) -> bool {
        let mut cur = Some(sub);
        while let Some(c) = cur {
            if c == ancestor {
                return true;
            }
            cur = self.class(c).super_class;
        }
        false
    }

    /// All methods annotated as potential methods.
    pub fn potential_methods(&self) -> Vec<MethodId> {
        self.methods
            .iter()
            .enumerate()
            .filter(|(_, m)| m.attrs.potential)
            .map(|(i, _)| MethodId(i as u32))
            .collect()
    }

    /// Total bytecode footprint of the program in bytes.
    pub fn total_bytecode_size(&self) -> u32 {
        self.methods.iter().map(Method::bytecode_size).sum()
    }

    /// All classes that override vtable `slot` differently from
    /// `class` (used by the JIT's class-hierarchy analysis to decide
    /// whether virtual inlining is safe).
    pub fn overriding_classes(&self, class: ClassId, slot: u16) -> Vec<ClassId> {
        let base_impl = self.resolve_virtual(class, slot);
        self.classes
            .iter()
            .enumerate()
            .filter(|(i, c)| {
                let cid = ClassId(*i as u32);
                cid != class
                    && self.is_subclass_of(cid, class)
                    && (slot as usize) < c.vtable.len()
                    && c.vtable[slot as usize] != base_impl
            })
            .map(|(i, _)| ClassId(i as u32))
            .collect()
    }
}

/// Incremental builder for [`Program`]s, mirroring how class files are
/// assembled. Handles vtable construction and inherited field layout.
#[derive(Debug, Default)]
pub struct ProgramBuilder {
    classes: Vec<Class>,
    methods: Vec<Method>,
    /// Per class: resolved field names (inherited + own) for slot
    /// lookup during construction.
    field_names: Vec<Vec<String>>,
    /// Per class: vtable slot → method name (to match overrides).
    vslot_names: Vec<Vec<String>>,
}

impl ProgramBuilder {
    /// A fresh builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Declare a class. Inherited fields and vtable entries are copied
    /// from the superclass, which must have been declared first.
    ///
    /// # Panics
    /// If the name duplicates an existing class.
    pub fn add_class(
        &mut self,
        name: &str,
        super_class: Option<ClassId>,
        fields: &[(&str, Type)],
    ) -> ClassId {
        assert!(
            self.classes.iter().all(|c| c.name != name),
            "duplicate class {name}"
        );
        let (mut field_types, mut names, vtable, vnames) = match super_class {
            Some(sup) => {
                let sc = &self.classes[sup.0 as usize];
                (
                    sc.field_types.clone(),
                    self.field_names[sup.0 as usize].clone(),
                    sc.vtable.clone(),
                    self.vslot_names[sup.0 as usize].clone(),
                )
            }
            None => (Vec::new(), Vec::new(), Vec::new(), Vec::new()),
        };
        for (fname, fty) in fields {
            assert!(
                !names.iter().any(|n| n == fname),
                "duplicate field {fname} in {name}"
            );
            names.push((*fname).to_string());
            field_types.push(*fty);
        }
        let id = ClassId(self.classes.len() as u32);
        self.classes.push(Class {
            name: name.to_string(),
            super_class,
            fields: fields
                .iter()
                .map(|(n, t)| Field {
                    name: (*n).to_string(),
                    ty: *t,
                })
                .collect(),
            field_types,
            vtable,
        });
        self.field_names.push(names);
        self.vslot_names.push(vnames);
        id
    }

    /// Field slot of `field` in `class` (inherited slots included).
    ///
    /// # Panics
    /// If the field does not exist.
    pub fn field_slot(&self, class: ClassId, field: &str) -> u16 {
        self.field_names[class.0 as usize]
            .iter()
            .position(|n| n == field)
            .unwrap_or_else(|| {
                panic!(
                    "no field {field} in {}",
                    self.classes[class.0 as usize].name
                )
            }) as u16
    }

    /// Add a static (non-virtual) method.
    pub fn add_static_method(
        &mut self,
        class: ClassId,
        name: &str,
        sig: MethodSig,
        nlocals: u16,
        code: Vec<Op>,
        attrs: MethodAttrs,
    ) -> MethodId {
        let id = MethodId(self.methods.len() as u32);
        assert!(nlocals as usize >= sig.arity(), "locals must cover params");
        self.methods.push(Method {
            name: name.to_string(),
            class,
            sig,
            nlocals,
            code,
            attrs,
            is_virtual: false,
        });
        id
    }

    /// Add (or override) a virtual method; returns `(method, vtable
    /// slot)`. A method with the same name in the superclass vtable is
    /// overridden; otherwise a fresh slot is appended.
    pub fn add_virtual_method(
        &mut self,
        class: ClassId,
        name: &str,
        sig: MethodSig,
        nlocals: u16,
        code: Vec<Op>,
        attrs: MethodAttrs,
    ) -> (MethodId, u16) {
        assert!(
            nlocals as usize > sig.arity(),
            "locals must cover receiver + params"
        );
        let id = MethodId(self.methods.len() as u32);
        self.methods.push(Method {
            name: name.to_string(),
            class,
            sig,
            nlocals,
            code,
            attrs,
            is_virtual: true,
        });
        let ci = class.0 as usize;
        let slot = match self.vslot_names[ci].iter().position(|n| n == name) {
            Some(slot) => {
                self.classes[ci].vtable[slot] = id;
                slot
            }
            None => {
                self.vslot_names[ci].push(name.to_string());
                self.classes[ci].vtable.push(id);
                self.classes[ci].vtable.len() - 1
            }
        };
        (id, slot as u16)
    }

    /// Vtable slot of virtual method `name` in `class`.
    ///
    /// # Panics
    /// If no such virtual method exists.
    pub fn vslot(&self, class: ClassId, name: &str) -> u16 {
        self.vslot_names[class.0 as usize]
            .iter()
            .position(|n| n == name)
            .unwrap_or_else(|| panic!("no virtual method {name}")) as u16
    }

    /// Finish construction.
    pub fn finish(self) -> Program {
        Program {
            classes: self.classes,
            methods: self.methods,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bytecode::Op;

    fn void_sig() -> MethodSig {
        MethodSig::new(vec![], None)
    }

    #[test]
    fn build_class_with_fields() {
        let mut b = ProgramBuilder::new();
        let c = b.add_class("Point", None, &[("x", Type::Int), ("y", Type::Int)]);
        assert_eq!(b.field_slot(c, "x"), 0);
        assert_eq!(b.field_slot(c, "y"), 1);
        let p = b.finish();
        assert_eq!(p.class(c).field_count(), 2);
        assert_eq!(p.find_class("Point"), Some(c));
        assert_eq!(p.find_class("Nope"), None);
    }

    #[test]
    fn inheritance_layouts_fields_after_super() {
        let mut b = ProgramBuilder::new();
        let base = b.add_class("Base", None, &[("a", Type::Int)]);
        let derived = b.add_class("Derived", Some(base), &[("b", Type::Float)]);
        assert_eq!(b.field_slot(derived, "a"), 0);
        assert_eq!(b.field_slot(derived, "b"), 1);
        let p = b.finish();
        assert_eq!(p.class(derived).field_types, vec![Type::Int, Type::Float]);
        assert!(p.is_subclass_of(derived, base));
        assert!(!p.is_subclass_of(base, derived));
    }

    #[test]
    fn vtable_override() {
        let mut b = ProgramBuilder::new();
        let base = b.add_class("Shape", None, &[]);
        let (area_base, slot) = b.add_virtual_method(
            base,
            "area",
            void_sig(),
            1,
            vec![Op::Ret],
            MethodAttrs::default(),
        );
        let circle = b.add_class("Circle", Some(base), &[]);
        let (area_circle, slot2) = b.add_virtual_method(
            circle,
            "area",
            void_sig(),
            1,
            vec![Op::Ret],
            MethodAttrs::default(),
        );
        assert_eq!(slot, slot2);
        let p = b.finish();
        assert_eq!(p.resolve_virtual(base, slot), area_base);
        assert_eq!(p.resolve_virtual(circle, slot), area_circle);
    }

    #[test]
    fn overriding_classes_found_by_cha() {
        let mut b = ProgramBuilder::new();
        let base = b.add_class("B", None, &[]);
        let (_, slot) = b.add_virtual_method(
            base,
            "f",
            void_sig(),
            1,
            vec![Op::Ret],
            MethodAttrs::default(),
        );
        let d1 = b.add_class("D1", Some(base), &[]);
        let _d2 = b.add_class("D2", Some(base), &[]); // inherits, no override
        b.add_virtual_method(
            d1,
            "f",
            void_sig(),
            1,
            vec![Op::Ret],
            MethodAttrs::default(),
        );
        let p = b.finish();
        assert_eq!(p.overriding_classes(base, slot), vec![d1]);
    }

    #[test]
    fn potential_method_registry() {
        let mut b = ProgramBuilder::new();
        let c = b.add_class("App", None, &[]);
        let m1 = b.add_static_method(
            c,
            "hot",
            void_sig(),
            0,
            vec![Op::Ret],
            MethodAttrs {
                potential: true,
                size_param: Some(0),
                ..Default::default()
            },
        );
        let _m2 = b.add_static_method(
            c,
            "cold",
            void_sig(),
            0,
            vec![Op::Ret],
            MethodAttrs::default(),
        );
        let p = b.finish();
        assert_eq!(p.potential_methods(), vec![m1]);
        assert_eq!(p.qualified_name(m1), "App.hot");
    }

    #[test]
    fn find_method_scoped_by_class() {
        let mut b = ProgramBuilder::new();
        let a = b.add_class("A", None, &[]);
        let c = b.add_class("C", None, &[]);
        let ma = b.add_static_method(
            a,
            "run",
            void_sig(),
            0,
            vec![Op::Ret],
            MethodAttrs::default(),
        );
        let mc = b.add_static_method(
            c,
            "run",
            void_sig(),
            0,
            vec![Op::Ret],
            MethodAttrs::default(),
        );
        let p = b.finish();
        assert_eq!(p.find_method("A", "run"), Some(ma));
        assert_eq!(p.find_method("C", "run"), Some(mc));
        assert_eq!(p.find_method("A", "walk"), None);
    }

    #[test]
    #[should_panic(expected = "duplicate class")]
    fn duplicate_class_rejected() {
        let mut b = ProgramBuilder::new();
        b.add_class("X", None, &[]);
        b.add_class("X", None, &[]);
    }

    #[test]
    #[should_panic(expected = "locals must cover")]
    fn insufficient_locals_rejected() {
        let mut b = ProgramBuilder::new();
        let c = b.add_class("X", None, &[]);
        b.add_static_method(
            c,
            "f",
            MethodSig::new(vec![Type::Int, Type::Int], None),
            1,
            vec![Op::Ret],
            MethodAttrs::default(),
        );
    }

    #[test]
    fn bytecode_size_accumulates() {
        let mut b = ProgramBuilder::new();
        let c = b.add_class("X", None, &[]);
        b.add_static_method(
            c,
            "f",
            void_sig(),
            0,
            vec![Op::IConst(1), Op::Pop, Op::Ret],
            MethodAttrs::default(),
        );
        let p = b.finish();
        assert_eq!(p.total_bytecode_size(), 3);
    }
}
